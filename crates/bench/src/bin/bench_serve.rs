//! Load generator for `cualign-serve`: concurrent clients over real
//! sockets against an in-process server, mixing repeat and novel graph
//! pairs, reporting client-observed p50/p99 latency and throughput.
//!
//! The claim under test is the service's reason to exist: a repeated
//! graph pair is served from the session LRU and skips the pipeline
//! front half, so warm requests must be far cheaper than cold ones
//! (the run asserts ≥5× on medians). Running with no flags refreshes
//! the checked-in snapshot:
//!
//! ```text
//! cargo run --release -p cualign-bench --bin bench_serve
//! ```
//!
//! Knobs (env): `CUALIGN_BENCH_N` (vertices per graph),
//! `CUALIGN_BENCH_PAIRS` (distinct pairs), `CUALIGN_BENCH_CLIENTS`
//! (concurrent clients), `CUALIGN_BENCH_REPEATS` (warm requests per
//! client), `CUALIGN_BENCH_WORKERS` (server worker threads),
//! `CUALIGN_BENCH_OUT` (output path, default `BENCH_serve.json`).

use cualign_bench::env_u64;
use cualign_bench::json::JsonRecord;
use cualign_graph::generators::erdos_renyi_gnm;
use cualign_graph::CsrGraph;
use cualign_serve::{client, Server, ServerConfig};
use cualign_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write as _;
use std::net::SocketAddr;
use std::time::Instant;

const SEED: u64 = 42;

fn graph_to_json(g: &CsrGraph) -> String {
    let mut edges = String::new();
    let offsets = g.offsets();
    let targets = g.targets();
    for u in 0..g.num_vertices() {
        for idx in offsets[u]..offsets[u + 1] {
            let v = targets[idx] as usize;
            if u < v {
                if !edges.is_empty() {
                    edges.push(',');
                }
                edges.push_str(&format!("[{u},{v}]"));
            }
        }
    }
    format!("{{\"n\":{},\"edges\":[{edges}]}}", g.num_vertices())
}

fn align_body(a: &CsrGraph, b: &CsrGraph) -> String {
    format!(
        "{{\"a\":{},\"b\":{},\"config\":{{\"dim\":8,\"k\":4,\"bp_iters\":8,\"subspace_anchors\":0}}}}",
        graph_to_json(a),
        graph_to_json(b),
    )
}

fn post_timed(addr: SocketAddr, body: &str) -> f64 {
    let t = Instant::now();
    let resp = client::post(addr, "/align", body).expect("bench request");
    assert_eq!(resp.status, 200, "bench request failed: {}", resp.body);
    t.elapsed().as_secs_f64()
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let n = env_u64("CUALIGN_BENCH_N", 192) as usize;
    let pairs = env_u64("CUALIGN_BENCH_PAIRS", 3) as usize;
    let clients = env_u64("CUALIGN_BENCH_CLIENTS", 4) as usize;
    let repeats = env_u64("CUALIGN_BENCH_REPEATS", 6) as usize;
    let workers = env_u64("CUALIGN_BENCH_WORKERS", 4) as usize;
    let out_path =
        std::env::var("CUALIGN_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_string());

    let registry: &'static Registry = Box::leak(Box::new(Registry::new_enabled()));
    let server = Server::start_with_registry(
        ServerConfig {
            workers,
            sessions: pairs + 1,
            queue_capacity: clients * 4,
            ..ServerConfig::default()
        },
        registry,
    )
    .expect("bind ephemeral port");
    let addr = server.addr();
    println!("bench_serve: server on {addr}, n = {n}, {pairs} pairs, {clients} clients x {repeats} repeats, {workers} workers");

    let mut rng = StdRng::seed_from_u64(SEED);
    let bodies: Vec<String> = (0..pairs)
        .map(|_| {
            let a = erdos_renyi_gnm(n, 3 * n, &mut rng);
            let b = erdos_renyi_gnm(n, 3 * n, &mut rng);
            align_body(&a, &b)
        })
        .collect();

    // Phase 1 — cold: first sight of every pair pays the full pipeline.
    let cold: Vec<f64> = bodies.iter().map(|b| post_timed(addr, b)).collect();
    let cold_mean = cold.iter().sum::<f64>() / cold.len() as f64;
    println!("  cold: {pairs} pairs, mean {:.1} ms", cold_mean * 1e3);

    // Phase 2 — warm: concurrent clients hammer the now-resident pairs.
    let load_start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let bodies = bodies.clone();
            std::thread::spawn(move || {
                (0..repeats)
                    .map(|r| post_timed(addr, &bodies[(c + r) % bodies.len()]))
                    .collect::<Vec<f64>>()
            })
        })
        .collect();
    let mut warm: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let wall = load_start.elapsed().as_secs_f64();
    warm.sort_by(|x, y| x.total_cmp(y));

    let p50 = percentile(&warm, 0.50);
    let p99 = percentile(&warm, 0.99);
    let req_per_s = warm.len() as f64 / wall;
    let speedup = cold_mean / p50.max(1e-9);
    println!(
        "  warm: {} requests in {wall:.2} s -> {req_per_s:.0} req/s, p50 {:.2} ms, p99 {:.2} ms, cold/warm {speedup:.1}x",
        warm.len(),
        p50 * 1e3,
        p99 * 1e3,
    );

    let hits = registry.counter("serve.session_hits").get();
    let misses = registry.counter("serve.session_misses").get();
    server.shutdown();

    assert!(
        hits >= (clients * repeats) as u64,
        "warm phase must be served from the session LRU (hits {hits}, misses {misses})"
    );
    assert!(
        speedup >= 5.0,
        "repeat-pair requests must be at least 5x faster than cold (got {speedup:.1}x)"
    );

    let record = JsonRecord::new()
        .str("bench", "serve")
        .int("n", n)
        .int("pairs", pairs)
        .int("clients", clients)
        .int("repeats", repeats)
        .int("workers", workers)
        .num("cold_mean_s", cold_mean)
        .num("warm_p50_s", p50)
        .num("warm_p99_s", p99)
        .num("warm_req_per_s", req_per_s)
        .num("cold_over_warm", speedup)
        .int("session_hits", hits as usize)
        .int("session_misses", misses as usize)
        .finish();
    let mut file = std::fs::File::create(&out_path).expect("open output file");
    writeln!(file, "{record}").expect("write record");
    println!("  wrote {out_path}");
}
