//! Regenerates **Figure 4**: alignment quality (NCV-GS³) for each input
//! at density ∈ {1, 2.5, 5, 10, 25}% of the complete bipartite graph.
//!
//! The paper's finding: quality *degrades* as density grows (noisy
//! candidate edges mislead the heuristic), and Synthetic_8000 @ 25% does
//! not finish — reproduced here by the projected-size DNF rule.
//!
//! The sweep runs on one [`cualign::AlignmentSession`] per input, so the
//! five densities share one embedding + subspace build. Set
//! `CUALIGN_ONESHOT=1` to force the old one-shot-per-cell path instead
//! (useful for before/after timing of the session cache).
//!
//! ```text
//! cargo run --release -p cualign-bench --bin fig4
//! ```

use cualign::PaperInput;
use cualign_bench::json::JsonRecord;
use cualign_bench::{run_cell, sweep_densities, HarnessConfig, DENSITY_GRID};

fn main() {
    let telemetry = cualign_bench::telemetry_sink();
    let h = HarnessConfig::from_env();
    let oneshot = std::env::var("CUALIGN_ONESHOT")
        .map(|v| v == "1")
        .unwrap_or(false);
    println!(
        "Figure 4: NCV-GS3 vs density (scale = {}, bp_iters = {}, seed = {}{})\n",
        h.scale,
        h.bp_iters,
        h.seed,
        if oneshot { ", one-shot mode" } else { "" }
    );
    print!("{:<16}", "Network");
    for d in DENSITY_GRID {
        print!(" {:>8}", format!("{}%", d * 100.0));
    }
    println!();
    println!("{}", "-".repeat(16 + 9 * DENSITY_GRID.len()));
    let mut records = Vec::new();
    for input in PaperInput::all() {
        print!("{:<16}", input.name());
        if oneshot {
            // Pre-session behavior: every cell pays the full pipeline.
            for density in DENSITY_GRID {
                let (quality, _, total_s) = run_cell(&h, input, density);
                print!(" {:>8.4}", quality);
                records.push(
                    JsonRecord::new()
                        .str("figure", "fig4")
                        .str("input", input.name())
                        .num("density", density)
                        .num("quality", quality)
                        .num("total_s", total_s)
                        .int("cache_hits", 0)
                        .finish(),
                );
            }
        } else {
            for cell in sweep_densities(&h, input, &DENSITY_GRID) {
                let rec = JsonRecord::new()
                    .str("figure", "fig4")
                    .str("input", input.name())
                    .num("density", cell.density);
                match cell.result {
                    Some(m) => {
                        print!(" {:>8.4}", m.quality);
                        records.push(
                            rec.num("quality", m.quality)
                                .num("optimize_s", m.optimize_s)
                                .int("l_edges", m.l_edges)
                                .int("s_nnz", m.s_nnz)
                                .int("cache_hits", m.cache_hits)
                                .finish(),
                        );
                    }
                    None => {
                        print!(" {:>8}", "DNF");
                        records.push(rec.null("quality").str("status", "dnf").finish());
                    }
                }
            }
        }
        println!();
    }
    println!("\nExpected shape (paper): quality flat-to-decreasing in density; best at ≤ 2.5%.");
    println!();
    for r in records {
        println!("{r}");
    }
    cualign_bench::emit_telemetry(&telemetry);
}
