//! Regenerates **Figure 5**: compute time (log₂ seconds in the paper) of
//! the optimization phase for each input at each density.
//!
//! The paper's finding: runtime grows steeply (super-linearly) with
//! density — sparsification buys time as well as quality.
//!
//! ```text
//! cargo run --release -p cualign-bench --bin fig5
//! ```

use cualign::PaperInput;
use cualign_bench::{sweep_densities, HarnessConfig, DENSITY_GRID};

fn main() {
    let h = HarnessConfig::from_env();
    println!(
        "Figure 5: optimization time (s) vs density (scale = {}, bp_iters = {}, seed = {})\n",
        h.scale, h.bp_iters, h.seed
    );
    print!("{:<16}", "Network");
    for d in DENSITY_GRID {
        print!(" {:>9}", format!("{}%", d * 100.0));
    }
    println!();
    println!("{}", "-".repeat(16 + 10 * DENSITY_GRID.len()));
    for input in PaperInput::all() {
        print!("{:<16}", input.name());
        for cell in sweep_densities(&h, input, &DENSITY_GRID) {
            match cell.result {
                Some(m) => print!(" {:>9.3}", m.optimize_s),
                None => print!(" {:>9}", "DNF"),
            }
        }
        println!();
    }
    println!("\nExpected shape (paper, log2 y-axis): time rises steeply with density.");
}
