//! Sparsification density sweep — a scaled-down interactive version of the
//! paper's Figures 4 and 5: quality and runtime as a function of how much
//! of the complete bipartite candidate graph is retained.
//!
//! The sweep holds one [`AlignmentSession`]: the embedding and subspace
//! alignment are computed for the first density and *reused* for every
//! later one (watch the `cached` column — changing `sparsity` only
//! invalidates the sparsifier and everything after it).
//!
//! The full-scale reproduction (paper-sized inputs, all five graphs) is
//! `cargo run -p cualign-bench --bin fig4` / `--bin fig5`; this example
//! demonstrates the same two trends in under a minute.
//!
//! Run with:
//! ```text
//! cargo run --release --example density_sweep
//! ```

use cualign::{AlignerConfig, AlignmentSession, SparsityChoice};
use cualign_graph::generators::powerlaw_configuration;
use cualign_graph::permutation::AlignmentInstance;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let a = powerlaw_configuration(1000, 3000, 2.5, &mut rng);
    let inst = AlignmentInstance::permuted_pair(a, &mut rng);
    println!(
        "input: |V| = {}, |E| = {}",
        inst.a.num_vertices(),
        inst.a.num_edges()
    );

    let cfg = AlignerConfig::builder()
        .density(0.01)
        .bp_iters(15)
        .build()
        .expect("sweep parameters are in range");
    let mut session =
        AlignmentSession::new(&inst.a, &inst.b, cfg).expect("generated inputs are non-degenerate");

    println!(
        "\n{:>8} | {:>8} | {:>9} | {:>8} | {:>9} | {:>6}",
        "density", "|E_L|", "nnz(S)", "NCV-GS3", "time (s)", "cached"
    );
    println!("{}", "-".repeat(64));
    for density in [0.01, 0.025, 0.05, 0.10] {
        session
            .update_config(|c| c.sparsity = SparsityChoice::Density(density))
            .expect("densities are in (0, 1]");
        let t = Instant::now();
        let r = session.align().expect("densities yield non-empty L");
        let secs = t.elapsed().as_secs_f64();
        println!(
            "{:>7.1}% | {:>8} | {:>9} | {:>8.4} | {:>9.2} | {:>4}/5",
            density * 100.0,
            r.l_edges,
            r.s_nnz,
            r.scores.ncv_gs3,
            secs,
            r.timings.cache_hits
        );
    }
    let c = session.counters();
    println!(
        "\nstage builds over the whole sweep: embed {} | subspace {} | sparsify {} | overlap {} | optimize {}",
        c.embedding_builds, c.subspace_builds, c.sparsify_builds, c.overlap_builds, c.optimize_builds
    );
    println!("\nThe paper's two findings reproduce: quality does not improve (often");
    println!("degrades) with density, while runtime grows sharply — sparsification");
    println!("helps both quality and cost (Figures 4 and 5).");
}
