//! Property-based tests for the graph substrate: structural invariants
//! that must hold for *every* edge list, permutation, and generator
//! parameterization, not just hand-picked fixtures.

use cualign_graph::generators::{
    barabasi_albert, duplication_divergence, erdos_renyi_gnm, powerlaw_configuration,
    with_edge_budget,
};
use cualign_graph::{io, noise, BipartiteGraph, CsrGraph, Permutation};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: an arbitrary edge list over `n ≤ 40` vertices.
fn edge_list() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as u32, 0..n as u32), 0..120);
        (Just(n), edges)
    })
}

proptest! {
    /// Every constructed CSR graph satisfies its invariants, regardless of
    /// duplicates, self loops, or ordering in the input.
    #[test]
    fn csr_invariants_hold((n, edges) in edge_list()) {
        let g = CsrGraph::from_edges(n, &edges);
        prop_assert!(g.check_invariants().is_ok());
        // Edge count is bounded by the distinct non-loop pairs supplied.
        let mut distinct: Vec<(u32, u32)> = edges
            .iter()
            .filter(|(u, v)| u != v)
            .map(|&(u, v)| (u.min(v), u.max(v)))
            .collect();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(g.num_edges(), distinct.len());
    }

    /// from_edges ∘ edge_list is the identity on canonical graphs.
    #[test]
    fn csr_edge_list_roundtrip((n, edges) in edge_list()) {
        let g = CsrGraph::from_edges(n, &edges);
        let g2 = CsrGraph::from_edges(n, &g.edge_list());
        prop_assert_eq!(g, g2);
    }

    /// Edge-list IO round-trips any graph.
    #[test]
    fn io_roundtrip((n, edges) in edge_list()) {
        let g = CsrGraph::from_edges(n, &edges);
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = io::read_edge_list(buf.as_slice(), n).unwrap();
        prop_assert_eq!(g, g2);
    }

    /// Permutations: inverse composes to the identity; relabeling
    /// preserves the degree multiset and edge count.
    #[test]
    fn permutation_properties((n, edges) in edge_list(), seed in 0u64..1000) {
        let g = CsrGraph::from_edges(n, &edges);
        let p = Permutation::random(n, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(p.compose(&p.inverse()), Permutation::identity(n));
        let h = p.apply_to_graph(&g);
        prop_assert_eq!(g.num_edges(), h.num_edges());
        let mut dg: Vec<usize> = (0..n as u32).map(|u| g.degree(u)).collect();
        let mut dh: Vec<usize> = (0..n as u32).map(|u| h.degree(u)).collect();
        dg.sort_unstable();
        dh.sort_unstable();
        prop_assert_eq!(dg, dh);
    }

    /// Generators are deterministic under a fixed seed and satisfy
    /// invariants across their parameter spaces.
    #[test]
    fn generators_valid_and_deterministic(
        n in 10usize..120,
        seed in 0u64..500,
        retain in 0.2f64..0.6,
    ) {
        let er = erdos_renyi_gnm(n, n, &mut StdRng::seed_from_u64(seed));
        prop_assert!(er.check_invariants().is_ok());
        prop_assert_eq!(er.num_edges(), n);

        let ba = barabasi_albert(n.max(5), 2, &mut StdRng::seed_from_u64(seed));
        prop_assert!(ba.check_invariants().is_ok());
        let ba2 = barabasi_albert(n.max(5), 2, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(ba, ba2);

        let dd = duplication_divergence(n, retain, 0.3, &mut StdRng::seed_from_u64(seed));
        prop_assert!(dd.check_invariants().is_ok());
        for u in 0..n as u32 {
            prop_assert!(dd.degree(u) >= 1, "vertex {} isolated", u);
        }

        let pl = powerlaw_configuration(n.max(20), 2 * n, 2.5, &mut StdRng::seed_from_u64(seed));
        prop_assert!(pl.check_invariants().is_ok());
    }

    /// Edge budgeting hits the requested count exactly whenever feasible.
    #[test]
    fn edge_budget_exact(n in 10usize..60, seed in 0u64..200, target_frac in 0.2f64..0.9) {
        let max_m = n * (n - 1) / 2;
        let g = erdos_renyi_gnm(n, max_m / 2, &mut StdRng::seed_from_u64(seed));
        let target = ((max_m as f64) * target_frac) as usize;
        let h = with_edge_budget(&g, target, &mut StdRng::seed_from_u64(seed + 1));
        prop_assert_eq!(h.num_edges(), target);
        prop_assert!(h.check_invariants().is_ok());
    }

    /// Noise: removal shrinks to the exact count and never invents edges;
    /// rewiring preserves the count.
    #[test]
    fn noise_properties(n in 10usize..60, seed in 0u64..200, frac in 0.0f64..0.9) {
        let g = erdos_renyi_gnm(n, n, &mut StdRng::seed_from_u64(seed));
        let removed = noise::remove_edges(&g, frac, &mut StdRng::seed_from_u64(seed + 1));
        prop_assert!(removed.check_invariants().is_ok());
        prop_assert_eq!(
            removed.num_edges(),
            g.num_edges() - ((g.num_edges() as f64 * frac).floor() as usize)
        );
        for (u, v) in removed.edges() {
            prop_assert!(g.has_edge(u, v));
        }
        let rewired = noise::rewire(&g, frac, &mut StdRng::seed_from_u64(seed + 2));
        prop_assert_eq!(rewired.num_edges(), g.num_edges());
    }

    /// Bipartite graphs: dual-CSR consistency for arbitrary weighted
    /// triples, and weight replacement never disturbs topology.
    #[test]
    fn bipartite_invariants(
        na in 1usize..20,
        nb in 1usize..20,
        raw in prop::collection::vec((0u32..20, 0u32..20, 0.0f64..10.0), 0..80),
    ) {
        let triples: Vec<(u32, u32, f64)> = raw
            .into_iter()
            .filter(|&(a, b, _)| (a as usize) < na && (b as usize) < nb)
            .collect();
        let mut l = BipartiteGraph::from_weighted_edges(na, nb, &triples);
        prop_assert!(l.check_invariants().is_ok());
        let m = l.num_edges();
        let new_w = vec![1.0; m];
        l.set_weights(&new_w);
        prop_assert!(l.check_invariants().is_ok());
        prop_assert_eq!(l.num_edges(), m);
        // Degrees sum to the edge count on both sides.
        let da: usize = (0..na as u32).map(|a| l.degree_a(a)).sum();
        let db: usize = (0..nb as u32).map(|b| l.degree_b(b)).sum();
        prop_assert_eq!(da, m);
        prop_assert_eq!(db, m);
    }
}
