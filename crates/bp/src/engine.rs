//! The belief-propagation engine: message state, the damped iteration of
//! Algorithm 2, and per-iteration rounding via approximate matching.

use crate::evaluate_matching;
use crate::othermax::{othermax_cols_reference, othermax_rows_reference, OthermaxWorkspace};
use cualign_graph::{BipartiteGraph, Side};
use cualign_linalg::sparse::{self, MergePlan};
use cualign_matching::{
    greedy_matching, locally_dominant_parallel, locally_dominant_serial, suitor_matching, Matching,
};
use cualign_overlap::OverlapMatrix;
use cualign_telemetry::{Counter, Histogram};
use rayon::prelude::*;
use std::sync::{Arc, OnceLock};

/// Interned telemetry handles, resolved once per process so the per-sweep
/// updates in [`BpEngine::iterate`] touch only atomics.
struct BpTele {
    runs: Arc<Counter>,
    iterations: Arc<Counter>,
    messages_updated: Arc<Counter>,
    clamp_saturations: Arc<Counter>,
    residual: Arc<Histogram>,
    sweep_seconds: Arc<Histogram>,
}

fn bp_tele() -> &'static BpTele {
    static TELE: OnceLock<BpTele> = OnceLock::new();
    TELE.get_or_init(|| {
        let r = cualign_telemetry::global();
        BpTele {
            runs: r.counter("bp.runs"),
            iterations: r.counter("bp.iterations"),
            messages_updated: r.counter("bp.messages_updated"),
            clamp_saturations: r.counter("bp.clamp_saturations"),
            residual: r.histogram("bp.residual"),
            sweep_seconds: r.histogram("bp.sweep_seconds"),
        }
    })
}

/// Which matcher rounds the messages each iteration (Algorithm 2,
/// lines 17–20). All four compute the same unique matching under the
/// shared preference order; they differ in execution strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatcherKind {
    /// Sequential locally-dominant (reference).
    Serial,
    /// Two-queue parallel locally-dominant (the paper's §4.3).
    Parallel,
    /// Globally-sorted greedy.
    Greedy,
    /// Suitor (deferred acceptance) — Manne & Halappanavar.
    Suitor,
}

/// How the damping factor evolves over iterations (Algorithm 2,
/// lines 14–16 use `γᵏ`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DampingSchedule {
    /// The paper's schedule: iteration `k` mixes with factor `γᵏ`, so the
    /// update weight decays and the messages are forced to converge.
    PowerDecay,
    /// Classic constant damping: every iteration mixes with factor `γ`.
    /// Bayati et al.'s alternative; keeps exploring but may oscillate.
    Constant,
}

/// Belief propagation configuration.
#[derive(Clone, Copy, Debug)]
pub struct BpConfig {
    /// Weight of the linear (matching-weight) objective term.
    pub alpha: f64,
    /// Weight of the quadratic (overlap) objective term.
    pub beta: f64,
    /// Damping base γ ∈ (0, 1]; iteration `k` mixes with factor `γᵏ`.
    pub gamma: f64,
    /// Number of BP iterations (BP has no natural stopping criterion; the
    /// paper fixes the count and keeps the best rounding seen).
    pub max_iters: usize,
    /// Fused `F`+`dᶜ` update (Listing 1) vs. two-pass. Identical results.
    pub fused: bool,
    /// Rounding matcher.
    pub matcher: MatcherKind,
    /// Damping schedule.
    pub damping: DampingSchedule,
    /// Warm start: initialize the damped exclusivity messages `yᵖ`/`zᵖ`
    /// from the similarity prior `α·w` instead of zero, so the very
    /// first sweep already penalizes contested pairs by their
    /// competitors' similarity. Used by the multilevel refinement, where
    /// `w` encodes the confidence of the projected coarse matching and
    /// only a few sweeps run per level. Cold start (`false`, the
    /// default) is Algorithm 2 lines 1–5 verbatim.
    pub warm_start: bool,
}

impl Default for BpConfig {
    fn default() -> Self {
        BpConfig {
            alpha: 1.0,
            beta: 2.0,
            gamma: 0.99,
            max_iters: 25,
            fused: true,
            matcher: MatcherKind::Parallel,
            damping: DampingSchedule::PowerDecay,
            warm_start: false,
        }
    }
}

/// One iteration's rounding record.
#[derive(Clone, Copy, Debug)]
pub struct IterationRecord {
    /// Iteration index (1-based).
    pub iteration: usize,
    /// Objective `α·weight + β·overlaps` of the better of the two
    /// roundings this iteration.
    pub score: f64,
    /// Matched weight (under the original `w`) of that rounding.
    pub weight: f64,
    /// Conserved-edge count of that rounding.
    pub overlaps: usize,
}

/// Result of a BP run.
#[derive(Clone, Debug)]
pub struct BpOutcome {
    /// Best matching found over all iterations (`bestM`).
    pub best_matching: Matching,
    /// Its objective score.
    pub best_score: f64,
    /// Its matched weight under the original `w`.
    pub best_weight: f64,
    /// Its conserved-edge count.
    pub best_overlaps: usize,
    /// Iteration at which the best was found (0 = the pre-BP direct
    /// rounding of the similarity weights).
    pub best_iteration: usize,
    /// Per-iteration records.
    pub history: Vec<IterationRecord>,
}

/// Message state and iteration of Algorithm 2. The sparsity structure of
/// all matrices is borrowed from the [`OverlapMatrix`]; messages live in
/// flat arrays parallel to its CSR (`f`, `sc`, `sp`) or to `E_L`
/// (`yc`, `zc`, `yp`, `zp`, `dc`).
pub struct BpEngine<'a> {
    /// Working copy of `L` whose weights get overwritten during rounding.
    l: BipartiteGraph,
    /// Pristine similarity weights (the `w` of Eq. 1).
    w0: Vec<f64>,
    s: &'a OverlapMatrix,
    cfg: BpConfig,
    iter: usize,
    // Edge-indexed messages.
    yc: Vec<f64>,
    zc: Vec<f64>,
    yp: Vec<f64>,
    zp: Vec<f64>,
    dc: Vec<f64>,
    // Nonzero-indexed messages.
    f: Vec<f64>,
    sc: Vec<f64>,
    sp: Vec<f64>,
    // Double buffers for the per-sweep `F`/`dᶜ` recomputation: the sweep
    // writes into these and swaps, so no iteration allocates.
    f_next: Vec<f64>,
    dc_next: Vec<f64>,
    /// Merge-path plan over the overlap CSR — shared by every sparse
    /// kernel call of the sweep.
    plan: MergePlan,
    /// Reusable othermax buffers (positional scratch, inverse position
    /// maps, side plans) so the exclusivity sweeps allocate nothing.
    om_ws: OthermaxWorkspace,
}

impl<'a> BpEngine<'a> {
    /// Creates an engine over `l` and its overlap matrix. All messages
    /// start at zero (Algorithm 2, lines 1–5) unless
    /// [`BpConfig::warm_start`] seeds the damped exclusivity messages
    /// with the similarity prior `α·w`.
    ///
    /// # Panics
    /// Panics if `s` was not built for `l` (row count mismatch), or on a
    /// non-positive `gamma` / zero iteration count at run time.
    pub fn new(l: &BipartiteGraph, s: &'a OverlapMatrix, cfg: &BpConfig) -> Self {
        assert_eq!(s.num_rows(), l.num_edges(), "S rows must index E_L");
        assert!(
            cfg.gamma > 0.0 && cfg.gamma <= 1.0,
            "gamma must be in (0, 1]"
        );
        assert!(
            l.weights().iter().all(|w| w.is_finite()),
            "similarity weights must be finite: NaN/∞ would poison every message"
        );
        // The fused A-side tail of `iterate` treats the positional
        // exclusion outputs as edge-indexed arrays.
        debug_assert!(
            l.eids(Side::A).iter().enumerate().all(|(p, &e)| p == e as usize),
            "side-A incidence positions must be edge ids"
        );
        let m = l.num_edges();
        let nnz = s.nnz();
        // Warm start seeds the damped exclusivity messages with the
        // similarity prior; everything else still starts at zero.
        let prior: Vec<f64> = if cfg.warm_start {
            l.weights().iter().map(|w| cfg.alpha * w).collect()
        } else {
            vec![0.0; m]
        };
        BpEngine {
            l: l.clone(),
            w0: l.weights().to_vec(),
            s,
            cfg: *cfg,
            iter: 0,
            yc: vec![0.0; m],
            zc: vec![0.0; m],
            yp: prior.clone(),
            zp: prior,
            dc: vec![0.0; m],
            f: vec![0.0; nnz],
            sc: vec![0.0; nnz],
            sp: vec![0.0; nnz],
            f_next: vec![0.0; nnz],
            dc_next: vec![0.0; m],
            plan: MergePlan::new(s.row_offsets()),
            om_ws: OthermaxWorkspace::new(l),
        }
    }

    /// Current iteration count (completed message updates).
    pub fn iteration(&self) -> usize {
        self.iter
    }

    /// `yᶜ` messages (A-side exclusivity).
    pub fn yc(&self) -> &[f64] {
        &self.yc
    }

    /// `zᶜ` messages (B-side exclusivity).
    pub fn zc(&self) -> &[f64] {
        &self.zc
    }

    /// `dᶜ` totals.
    pub fn dc(&self) -> &[f64] {
        &self.dc
    }

    /// Clamped overlap messages `F` (nonzero-indexed).
    pub fn f(&self) -> &[f64] {
        &self.f
    }

    /// Damped overlap messages `Sᵖ` (nonzero-indexed).
    pub fn sp(&self) -> &[f64] {
        &self.sp
    }

    /// Original similarity weights `w`.
    pub fn original_weights(&self) -> &[f64] {
        &self.w0
    }

    /// One full message update (Algorithm 2, lines 9–16). Does not round.
    ///
    /// Executes on the `linalg::sparse` kernel layer over the overlap
    /// CSR: the fused `F`+`dᶜ` recomputation is one
    /// [`sparse::row_map_reduce`] (the unfused pair maps to
    /// [`sparse::map_values`] + [`sparse::reduce_rows`]), the A-side
    /// othermax sweep is an [`sparse::exclusion_max_apply`] writing the
    /// damped `zᶜ`/`zᵖ` directly (side-A positions are edge ids), the
    /// B-side is a positional [exclusion max](sparse::exclusion_max)
    /// with the per-edge gather fused into the `dᶜ − om` subtraction,
    /// and the `Sᶜ` update is a [`sparse::row_scaled_map`]. All
    /// problem-sized buffers are engine-held workspaces, so a sweep
    /// allocates nothing proportional to the instance. Bitwise
    /// identical to [`BpEngine::iterate_reference`] (pinned in
    /// `docs/oracle_manifest.txt`).
    pub fn iterate(&mut self) {
        let t0 = std::time::Instant::now();
        self.iter += 1;
        let beta = self.cfg.beta;
        let alpha = self.cfg.alpha;
        let s = self.s;
        let offsets = s.row_offsets();
        let perm = s.transpose_perm();

        // F + dᶜ: both branches write into the persistent double buffers
        // and swap them in.
        let mut f_out = std::mem::take(&mut self.f_next);
        let mut dc_out = std::mem::take(&mut self.dc_next);
        {
            let sp = &self.sp;
            let w0 = &self.w0;
            // Listing 1's clamped gather through the transpose
            // permutation, and the `α·w + Σ` row initialization.
            let fmap = |j: usize| (beta + sp[perm[j] as usize]).clamp(0.0, beta);
            let init = |row: usize| alpha * w0[row];
            if self.cfg.fused {
                sparse::row_map_reduce(offsets, &self.plan, fmap, init, &mut f_out, &mut dc_out);
            } else {
                sparse::map_values(&self.plan, fmap, &mut f_out);
                sparse::reduce_rows(offsets, &self.plan, &f_out, init, &mut dc_out);
            }
        }
        self.f_next = std::mem::replace(&mut self.f, f_out);
        self.dc_next = std::mem::replace(&mut self.dc, dc_out);

        // B-side exclusion first: its input `zp` is this sweep's
        // *pre-damp* message, and the A-side tail below damps `zp`, so
        // the order is load-bearing. The per-edge gather is fused into
        // the consuming `yᶜ`/`yᵖ` pass.
        self.om_ws.cols_positional(&self.l, &self.zp);

        // Damping (lines 14–16): the paper's γᵏ power decay, or constant γ.
        let g = match self.cfg.damping {
            DampingSchedule::PowerDecay => self.cfg.gamma.powi(self.iter as i32),
            DampingSchedule::Constant => self.cfg.gamma,
        };

        // Telemetry: the per-sweep counter ticks are plain atomics and
        // stay on; the derived passes (saturation count, residual) cost
        // O(nnz) and run only when telemetry is enabled.
        let tele = bp_tele();
        tele.iterations.inc();
        tele.messages_updated
            .add((5 * self.yc.len() + 3 * self.f.len()) as u64);

        if cualign_telemetry::enabled() {
            // A-side exclusion into its positional scratch (`yᵖ` is
            // still pre-damp here — damping stays a separate tail pass
            // in this branch, so the residual can compare against it).
            self.om_ws.rows_positional(&self.l, &self.yp);
            // Gather-only `dᶜ − om` subtractions.
            {
                let (scratch, pos) = self.om_ws.cols_result();
                self.yc
                    .par_iter_mut()
                    .zip(&self.dc)
                    .zip(pos)
                    .for_each(|((y, d), &p)| *y = d - scratch[p as usize]);
            }
            {
                let (scratch, pos) = self.om_ws.rows_result();
                self.zc
                    .par_iter_mut()
                    .zip(&self.dc)
                    .zip(pos)
                    .for_each(|((z, d), &p)| *z = d - scratch[p as usize]);
            }
            // Sᶜ = diag(yᶜ + zᶜ − dᶜ)·S − F, materialized so the residual
            // can be derived before damping (the reference tail shape).
            {
                let yc = &self.yc;
                let zc = &self.zc;
                let dc = &self.dc;
                let f = &self.f;
                sparse::row_scaled_map(
                    offsets,
                    &self.plan,
                    |r| yc[r] + zc[r] - dc[r],
                    |v, j| v - f[j],
                    &mut self.sc,
                );
            }
            let saturated = self.f.iter().filter(|&&v| v <= 0.0 || v >= beta).count();
            tele.clamp_saturations.add(saturated as u64);
            // Residual: L∞ norm of the damped update about to be applied
            // — the quantity whose decay under γᵏ forces convergence.
            let linf = |cur: &[f64], prev: &[f64]| {
                cur.iter()
                    .zip(prev)
                    .map(|(c, p)| (g * (c - p)).abs())
                    .fold(0.0f64, f64::max)
            };
            let residual = linf(&self.yc, &self.yp)
                .max(linf(&self.zc, &self.zp))
                .max(linf(&self.sc, &self.sp));
            tele.residual.record(residual);
            let damp = |cur: &[f64], prev: &mut Vec<f64>| {
                prev.par_iter_mut().zip(cur).for_each(|(p, c)| {
                    *p = g * c + (1.0 - g) * *p;
                });
            };
            damp(&self.yc, &mut self.yp);
            damp(&self.zc, &mut self.zp);
            damp(&self.sc, &mut self.sp);
        } else {
            // A-side exclusion fused with its whole consuming tail:
            // side-A incidence positions coincide with edge ids (the
            // overlap build debug-asserts this invariant), so the
            // positional outputs of the exclusion *are* `zᶜ`/`zᵖ` — one
            // pass computes `om`, `zᶜ = dᶜ − om` and the damped `zᵖ`
            // without materializing the positional scratch. The damp is
            // the same `γ·c + (1−γ)·p` expression as the separate pass,
            // element for element, so the bits match the unfused tail.
            // `yᵖ` (the exclusion input) is still pre-damp here.
            {
                let dc = &self.dc;
                self.om_ws.rows_apply(
                    &self.l,
                    &self.yp,
                    |e, om, zcv, zpv| {
                        *zcv = dc[e] - om;
                        *zpv = g * *zcv + (1.0 - g) * *zpv;
                    },
                    &mut self.zc,
                    &mut self.zp,
                );
            }
            // B-side gather + damping, fused the same way: one pass
            // computes `yᶜ = dᶜ − om` through the position map and
            // immediately damps `yᵖ` with it.
            {
                let (scratch, pos) = self.om_ws.cols_result();
                self.yc
                    .par_iter_mut()
                    .zip(self.yp.par_iter_mut())
                    .zip(&self.dc)
                    .zip(pos)
                    .for_each(|(((y, ypv), d), &p)| {
                        *y = d - scratch[p as usize];
                        *ypv = g * *y + (1.0 - g) * *ypv;
                    });
            }
            // Fused Sᶜ update + Sᵖ damping: one pass writes
            // `γ·(v − F) + (1−γ)·Sᵖ` into the `sc` buffer, then the
            // buffers swap. `γ·(v − F[j])` is the same expression tree
            // as `γ·Sᶜ[j]` above, so the bits match the unfused tail;
            // `sc` itself is pure scratch between sweeps.
            {
                let yc = &self.yc;
                let zc = &self.zc;
                let dc = &self.dc;
                let f = &self.f;
                let sp = &self.sp;
                sparse::row_scaled_map(
                    offsets,
                    &self.plan,
                    |r| yc[r] + zc[r] - dc[r],
                    |v, j| g * (v - f[j]) + (1.0 - g) * sp[j],
                    &mut self.sc,
                );
            }
            std::mem::swap(&mut self.sc, &mut self.sp);
        }
        tele.sweep_seconds.record(t0.elapsed().as_secs_f64());
    }

    /// The pre-sparse-layer message update, kept verbatim as the pinned
    /// bitwise oracle for [`BpEngine::iterate`] (see
    /// `docs/oracle_manifest.txt`): hand-rolled per-row loops, a fresh
    /// `om` buffer per sweep, and the collect-and-apply othermax. Used
    /// by the equivalence property suite and by `bench_bp` as the
    /// speedup baseline.
    pub fn iterate_reference(&mut self) {
        let t0 = std::time::Instant::now();
        self.iter += 1;
        let beta = self.cfg.beta;
        let alpha = self.cfg.alpha;
        let offsets = self.s.row_offsets().to_vec();
        let perm = self.s.transpose_perm();

        // Both branches write into the persistent double buffers and swap
        // them in, so the sweep allocates nothing.
        let mut f_out = std::mem::take(&mut self.f_next);
        let mut dc_out = std::mem::take(&mut self.dc_next);
        if self.cfg.fused {
            // Fused kernel (Listing 1): one pass over each row computes the
            // clamped F values and their row sum together.
            let sp = &self.sp;
            let w0 = &self.w0;
            let f_slices = split_rows(&mut f_out, &offsets);
            f_slices
                .into_par_iter()
                .zip(dc_out.par_iter_mut())
                .enumerate()
                .for_each(|(row, ((start, frow), dcv))| {
                    let mut sum = 0.0;
                    for (j, fv) in frow.iter_mut().enumerate() {
                        let val = (beta + sp[perm[start + j] as usize]).clamp(0.0, beta);
                        *fv = val;
                        sum += val;
                    }
                    *dcv = alpha * w0[row] + sum;
                });
        } else {
            // Unfused: pass 1 writes F, pass 2 row-sums it.
            let sp = &self.sp;
            let w0 = &self.w0;
            f_out
                .par_iter_mut()
                .enumerate()
                .for_each(|(j, fv)| *fv = (beta + sp[perm[j] as usize]).clamp(0.0, beta));
            let f = &f_out;
            dc_out.par_iter_mut().enumerate().for_each(|(row, dcv)| {
                let sum: f64 = f[offsets[row]..offsets[row + 1]].iter().sum();
                *dcv = alpha * w0[row] + sum;
            });
        }
        self.f_next = std::mem::replace(&mut self.f, f_out);
        self.dc_next = std::mem::replace(&mut self.dc, dc_out);

        // y/z exclusivity messages.
        let mut om = vec![0.0; self.yc.len()];
        othermax_cols_reference(&self.l, &self.zp, &mut om);
        self.yc
            .par_iter_mut()
            .zip(&self.dc)
            .zip(&om)
            .for_each(|((y, d), o)| *y = d - o);
        othermax_rows_reference(&self.l, &self.yp, &mut om);
        self.zc
            .par_iter_mut()
            .zip(&self.dc)
            .zip(&om)
            .for_each(|((z, d), o)| *z = d - o);

        // Sᶜ = diag(yᶜ + zᶜ − dᶜ)·S − F.
        {
            let yc = &self.yc;
            let zc = &self.zc;
            let dc = &self.dc;
            let f = &self.f;
            let sc_slices = split_rows(&mut self.sc, &offsets);
            sc_slices
                .into_par_iter()
                .enumerate()
                .for_each(|(row, (start, srow))| {
                    let v = yc[row] + zc[row] - dc[row];
                    for (j, s) in srow.iter_mut().enumerate() {
                        *s = v - f[start + j];
                    }
                });
        }

        // Damping (lines 14–16): the paper's γᵏ power decay, or constant γ.
        let g = match self.cfg.damping {
            DampingSchedule::PowerDecay => self.cfg.gamma.powi(self.iter as i32),
            DampingSchedule::Constant => self.cfg.gamma,
        };

        // Telemetry: the per-sweep counter ticks are plain atomics and
        // stay on; the derived passes (saturation count, residual) cost
        // O(nnz) and run only when telemetry is enabled.
        let tele = bp_tele();
        tele.iterations.inc();
        tele.messages_updated
            .add((5 * self.yc.len() + 3 * self.f.len()) as u64);
        if cualign_telemetry::enabled() {
            let saturated = self.f.iter().filter(|&&v| v <= 0.0 || v >= beta).count();
            tele.clamp_saturations.add(saturated as u64);
            // Residual: L∞ norm of the damped update about to be applied
            // — the quantity whose decay under γᵏ forces convergence.
            let linf = |cur: &[f64], prev: &[f64]| {
                cur.iter()
                    .zip(prev)
                    .map(|(c, p)| (g * (c - p)).abs())
                    .fold(0.0f64, f64::max)
            };
            let residual = linf(&self.yc, &self.yp)
                .max(linf(&self.zc, &self.zp))
                .max(linf(&self.sc, &self.sp));
            tele.residual.record(residual);
        }

        let damp = |cur: &[f64], prev: &mut Vec<f64>| {
            prev.par_iter_mut().zip(cur).for_each(|(p, c)| {
                *p = g * c + (1.0 - g) * *p;
            });
        };
        damp(&self.yc, &mut self.yp);
        damp(&self.zc, &mut self.zp);
        damp(&self.sc, &mut self.sp);
        tele.sweep_seconds.record(t0.elapsed().as_secs_f64());
    }

    fn run_matcher(&self) -> Matching {
        match self.cfg.matcher {
            MatcherKind::Serial => locally_dominant_serial(&self.l),
            MatcherKind::Parallel => locally_dominant_parallel(&self.l),
            MatcherKind::Greedy => greedy_matching(&self.l),
            MatcherKind::Suitor => suitor_matching(&self.l),
        }
    }

    /// Rounds the current messages (Algorithm 2, lines 17–21): matches on
    /// `yᶜ` weights and on `zᶜ` weights, evaluates both against the
    /// original objective, returns the better `(matching, score, weight,
    /// overlaps)`.
    pub fn round(&mut self) -> (Matching, f64, f64, usize) {
        self.l.set_weights(&self.yc);
        let my = self.run_matcher();
        let (score_y, wy, oy) =
            evaluate_matching(&self.w0, self.s, &my, self.cfg.alpha, self.cfg.beta);
        self.l.set_weights(&self.zc);
        let mz = self.run_matcher();
        let (score_z, wz, oz) =
            evaluate_matching(&self.w0, self.s, &mz, self.cfg.alpha, self.cfg.beta);
        if score_y >= score_z {
            (my, score_y, wy, oy)
        } else {
            (mz, score_z, wz, oz)
        }
    }

    /// Runs the full loop: `max_iters` message updates, rounding after
    /// each, tracking the best matching seen.
    ///
    /// Iteration 0 rounds the *original* similarity weights before any
    /// message passing — i.e. the cone-align-style direct rounding enters
    /// the candidate pool, so the BP refinement can only improve on it
    /// ("take the best solution we find in any step of the computation").
    pub fn run(mut self) -> BpOutcome {
        assert!(self.cfg.max_iters > 0, "need at least one iteration");
        bp_tele().runs.inc();
        let _span = cualign_telemetry::global().span("bp.run");
        let mut history = Vec::with_capacity(self.cfg.max_iters + 1);
        let mut best: Option<(Matching, f64, f64, usize, usize)> = {
            self.l.set_weights(&self.w0);
            let m0 = self.run_matcher();
            let (score, weight, overlaps) =
                evaluate_matching(&self.w0, self.s, &m0, self.cfg.alpha, self.cfg.beta);
            history.push(IterationRecord {
                iteration: 0,
                score,
                weight,
                overlaps,
            });
            Some((m0, score, weight, overlaps, 0))
        };
        for _ in 0..self.cfg.max_iters {
            self.iterate();
            let (m, score, weight, overlaps) = self.round();
            history.push(IterationRecord {
                iteration: self.iter,
                score,
                weight,
                overlaps,
            });
            let better = match &best {
                None => true,
                Some((_, bs, _, _, _)) => score > *bs,
            };
            if better {
                best = Some((m, score, weight, overlaps, self.iter));
            }
        }
        let (best_matching, best_score, best_weight, best_overlaps, best_iteration) =
            // lint: allow(no-panic): `best` is seeded with the iteration-0 rounding above, so it is always Some
            best.expect("seeded with the iteration-0 rounding");
        BpOutcome {
            best_matching,
            best_score,
            best_weight,
            best_overlaps,
            best_iteration,
            history,
        }
    }
}

/// Splits a flat nonzero array into per-row mutable slices, returning
/// `(row_start_offset, slice)` pairs. Rayon-friendly: the slices are
/// disjoint by construction.
fn split_rows<'v>(values: &'v mut [f64], offsets: &[usize]) -> Vec<(usize, &'v mut [f64])> {
    let mut out = Vec::with_capacity(offsets.len() - 1);
    let mut rest = values;
    let mut consumed = 0usize;
    for r in 0..offsets.len() - 1 {
        let len = offsets[r + 1] - offsets[r];
        let (head, tail) = rest.split_at_mut(len);
        out.push((consumed, head));
        consumed += len;
        rest = tail;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cualign_graph::generators::erdos_renyi_gnm;
    use cualign_graph::{CsrGraph, Permutation, VertexId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A ground-truthed instance: B = P(A); L contains all true pairs plus
    /// random decoys, with the true pairs *not* distinguished by weight.
    fn planted_instance(
        n: usize,
        edges: usize,
        decoys_per_vertex: usize,
        seed: u64,
    ) -> (CsrGraph, CsrGraph, BipartiteGraph, Permutation) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = erdos_renyi_gnm(n, edges, &mut rng);
        let p = Permutation::random(n, &mut rng);
        let b = p.apply_to_graph(&a);
        let mut triples: Vec<(VertexId, VertexId, f64)> = Vec::new();
        for i in 0..n as VertexId {
            triples.push((i, p.apply(i), 0.5));
            for _ in 0..decoys_per_vertex {
                triples.push((i, rng.gen_range(0..n as VertexId), 0.5));
            }
        }
        let l = BipartiteGraph::from_weighted_edges(n, n, &triples);
        (a, b, l, p)
    }

    #[test]
    fn bp_recovers_planted_alignment() {
        let (a, b, l, p) = planted_instance(40, 100, 4, 1);
        let s = OverlapMatrix::build(&a, &b, &l);
        let cfg = BpConfig {
            max_iters: 30,
            ..Default::default()
        };
        let out = BpEngine::new(&l, &s, &cfg).run();
        // The true alignment conserves all |E_A| edges; BP should conserve
        // most of them (weights alone carry no signal here).
        assert!(
            out.best_overlaps as f64 >= 0.8 * a.num_edges() as f64,
            "conserved only {}/{} edges",
            out.best_overlaps,
            a.num_edges()
        );
        // And most matched pairs should be the true ones.
        let correct = (0..40)
            .filter(|&i| out.best_matching.mate_of_a(i as VertexId) == Some(p.apply(i as VertexId)))
            .count();
        assert!(correct >= 30, "only {correct}/40 true pairs recovered");
    }

    #[test]
    fn bp_beats_weight_only_matching() {
        // cone-align-style rounding (match on w directly) vs. BP: with
        // uninformative weights, BP must conserve strictly more edges.
        let (a, b, l, _) = planted_instance(30, 70, 5, 2);
        let s = OverlapMatrix::build(&a, &b, &l);
        let direct = locally_dominant_parallel(&l);
        let (_, _, direct_overlaps) = (0.0, 0.0, {
            let mut mask = vec![false; s.num_rows()];
            for &e in direct.edge_ids() {
                mask[e as usize] = true;
            }
            s.count_matched_overlaps(&mask)
        });
        let cfg = BpConfig {
            max_iters: 25,
            ..Default::default()
        };
        let out = BpEngine::new(&l, &s, &cfg).run();
        assert!(
            out.best_overlaps > direct_overlaps,
            "BP {} ≤ direct {}",
            out.best_overlaps,
            direct_overlaps
        );
    }

    #[test]
    fn fused_and_unfused_are_identical() {
        let (a, b, l, _) = planted_instance(25, 60, 3, 3);
        let s = OverlapMatrix::build(&a, &b, &l);
        let mut fused = BpEngine::new(
            &l,
            &s,
            &BpConfig {
                fused: true,
                ..Default::default()
            },
        );
        let mut unfused = BpEngine::new(
            &l,
            &s,
            &BpConfig {
                fused: false,
                ..Default::default()
            },
        );
        for _ in 0..5 {
            fused.iterate();
            unfused.iterate();
            assert_eq!(fused.dc(), unfused.dc());
            assert_eq!(fused.f(), unfused.f());
            assert_eq!(fused.yc(), unfused.yc());
            assert_eq!(fused.zc(), unfused.zc());
        }
    }

    #[test]
    fn messages_stay_finite() {
        let (a, b, l, _) = planted_instance(20, 50, 3, 4);
        let s = OverlapMatrix::build(&a, &b, &l);
        let mut e = BpEngine::new(&l, &s, &BpConfig::default());
        for _ in 0..40 {
            e.iterate();
        }
        assert!(e.yc().iter().all(|x| x.is_finite()));
        assert!(e.zc().iter().all(|x| x.is_finite()));
        assert!(e.sp().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn f_values_respect_bounds() {
        let (a, b, l, _) = planted_instance(20, 50, 3, 5);
        let s = OverlapMatrix::build(&a, &b, &l);
        let cfg = BpConfig::default();
        let mut e = BpEngine::new(&l, &s, &cfg);
        for _ in 0..10 {
            e.iterate();
            assert!(e.f().iter().all(|&x| (0.0..=cfg.beta).contains(&x)));
        }
    }

    #[test]
    fn best_score_is_max_of_history() {
        let (a, b, l, _) = planted_instance(25, 55, 4, 6);
        let s = OverlapMatrix::build(&a, &b, &l);
        let out = BpEngine::new(
            &l,
            &s,
            &BpConfig {
                max_iters: 15,
                ..Default::default()
            },
        )
        .run();
        let hist_max = out
            .history
            .iter()
            .map(|r| r.score)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(out.best_score, hist_max);
        // 15 BP iterations plus the iteration-0 direct rounding.
        assert_eq!(out.history.len(), 16);
        assert_eq!(out.history[0].iteration, 0);
        assert!(out.best_iteration <= 15);
    }

    #[test]
    fn serial_and_parallel_matchers_agree() {
        let (a, b, l, _) = planted_instance(20, 45, 3, 7);
        let s = OverlapMatrix::build(&a, &b, &l);
        let o1 = BpEngine::new(
            &l,
            &s,
            &BpConfig {
                matcher: MatcherKind::Serial,
                ..Default::default()
            },
        )
        .run();
        let o2 = BpEngine::new(
            &l,
            &s,
            &BpConfig {
                matcher: MatcherKind::Parallel,
                ..Default::default()
            },
        )
        .run();
        assert_eq!(o1.best_score, o2.best_score);
        assert_eq!(o1.best_matching, o2.best_matching);
    }

    #[test]
    fn warm_start_biases_the_first_sweep_and_still_recovers() {
        let (a, b, l, p) = planted_instance(40, 100, 4, 1);
        let s = OverlapMatrix::build(&a, &b, &l);
        let mut cold = BpEngine::new(&l, &s, &BpConfig::default());
        let mut warm = BpEngine::new(
            &l,
            &s,
            &BpConfig {
                warm_start: true,
                ..Default::default()
            },
        );
        cold.iterate();
        warm.iterate();
        // The prior enters through the othermax terms of the first sweep.
        assert_ne!(cold.yc(), warm.yc(), "warm start must change sweep 1");
        // And a short warm-started run still recovers the planted
        // alignment (the multilevel refine depends on this regime).
        let out = BpEngine::new(
            &l,
            &s,
            &BpConfig {
                warm_start: true,
                max_iters: 8,
                ..Default::default()
            },
        )
        .run();
        let correct = (0..40)
            .filter(|&i| out.best_matching.mate_of_a(i as VertexId) == Some(p.apply(i as VertexId)))
            .count();
        assert!(correct >= 28, "only {correct}/40 true pairs recovered");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nonfinite_weights() {
        let (a, b, mut l, _) = planted_instance(5, 6, 1, 9);
        let s = OverlapMatrix::build(&a, &b, &l);
        l.weights_mut()[0] = f64::NAN;
        let _ = BpEngine::new(&l, &s, &BpConfig::default());
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rejects_bad_gamma() {
        let (a, b, l, _) = planted_instance(5, 6, 1, 8);
        let s = OverlapMatrix::build(&a, &b, &l);
        let _ = BpEngine::new(
            &l,
            &s,
            &BpConfig {
                gamma: 0.0,
                ..Default::default()
            },
        );
    }
}
