//! # cualign-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§6). Each `src/bin/` target prints one artifact:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table 1 — input graphs |
//! | `fig4`   | Fig. 4 — quality vs. density |
//! | `fig5`   | Fig. 5 — compute time vs. density |
//! | `fig6`   | Fig. 6 — quality: cuAlign vs cone-align |
//! | `fig7`   | Fig. 7 — run time: cuAlign-GPU vs cone-align |
//! | `table2` | Table 2 — BP / matching / total GPU speedups |
//! | `ablation_gpu` | §5 design-choice ablations under the GPU model |
//! | `bench_session` | telemetry snapshot of a stage-cached session sweep |
//! | `bench_multilevel` | multilevel vs. flat speedup/quality record |
//!
//! Criterion microbenches (`benches/`) cover the component kernels and
//! the CPU-side ablations.
//!
//! **Place in the pipeline** (paper Fig. 2): above everything — this
//! crate only *drives* the public `cualign` API (sessions, the
//! multilevel wrapper, the GPU cost model) and serializes what comes
//! back; no alignment logic lives here.
//!
//! All sweep drivers run on [`cualign::AlignmentSession`]: a k-point
//! sweep pays the run-once initialization (embedding + subspace) once,
//! and every emitted record carries the per-run `cache_hits` count so
//! the JSON shows which stages were reused.
//!
//! ## Scaling
//!
//! The paper's testbed was a 64-core EPYC + A100; reproduction
//! environments are often much smaller. `CUALIGN_SCALE` (default `0.25`)
//! scales every input's vertex/edge counts; `CUALIGN_BP_ITERS` (default
//! `10`) sets the BP budget; `CUALIGN_SEED` (default `1`) the instance
//! seed. Shapes — who wins, by what factor, where the knees are — are
//! scale-stable; EXPERIMENTS.md records the scale used for the checked-in
//! numbers. Set `CUALIGN_SCALE=1.0` for paper-size runs.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use cualign::{Aligner, AlignerConfig, AlignmentSession, PaperInput, SparsityChoice};
use cualign_graph::generators::with_edge_budget;
use cualign_graph::permutation::AlignmentInstance;
use cualign_graph::{BipartiteGraph, CsrGraph};
use cualign_overlap::OverlapMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Reads an `f64` environment knob with a default.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a `u64` environment knob with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The harness-wide configuration resolved from the environment.
#[derive(Clone, Copy, Debug)]
pub struct HarnessConfig {
    /// Input size multiplier relative to Table 1.
    pub scale: f64,
    /// BP iterations per run.
    pub bp_iters: usize,
    /// Instance seed.
    pub seed: u64,
}

impl HarnessConfig {
    /// Resolves `CUALIGN_SCALE`, `CUALIGN_BP_ITERS`, `CUALIGN_SEED`.
    pub fn from_env() -> Self {
        HarnessConfig {
            scale: env_f64("CUALIGN_SCALE", 0.25).clamp(0.01, 1.0),
            bp_iters: env_u64("CUALIGN_BP_ITERS", 10) as usize,
            seed: env_u64("CUALIGN_SEED", 1),
        }
    }

    /// Scaled vertex count for an input.
    pub fn vertices(&self, input: PaperInput) -> usize {
        ((input.vertices() as f64 * self.scale).round() as usize).max(64)
    }

    /// Scaled edge count for an input (edges scale with vertices to keep
    /// the average degree of Table 1).
    pub fn edges(&self, input: PaperInput) -> usize {
        let n_ratio = self.vertices(input) as f64 / input.vertices() as f64;
        ((input.edges() as f64 * n_ratio).round() as usize).max(96)
    }

    /// Generates the (possibly scaled) stand-in for a Table 1 input.
    pub fn generate(&self, input: PaperInput) -> CsrGraph {
        if (self.scale - 1.0).abs() < 1e-9 {
            return input.generate(self.seed);
        }
        let full = input.generate(self.seed);
        // Subsample: keep the first `n` vertices of a degree-ordered
        // relabeling... simpler and unbiased: regenerate at the scaled
        // size with the same model parameters via the edge-budget trick on
        // a fresh generation seeded per input.
        let n = self.vertices(input);
        let m = self.edges(input);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xabcd);
        let base = match input {
            PaperInput::Synthetic4000 | PaperInput::Synthetic8000 => {
                cualign_graph::generators::powerlaw_configuration(n, m, 2.5, &mut rng)
            }
            _ => {
                // Match the duplication–divergence density to the target.
                let retain =
                    (2.0 * m as f64 / (n as f64 * full.average_degree().max(1.0))).clamp(0.3, 0.5);
                cualign_graph::generators::duplication_divergence(n, retain, 0.28, &mut rng)
            }
        };
        with_edge_budget(&base, m, &mut rng)
    }

    /// The aligner configuration for a given density, built through the
    /// validating builder so a bad grid value fails loudly up front.
    pub fn aligner_config(&self, density: f64) -> AlignerConfig {
        AlignerConfig::builder()
            .density(density)
            .bp_iters(self.bp_iters)
            .build()
            .expect("harness density grid is in (0, 1]")
    }

    /// The ground-truthed `B = P(A)` instance for an input.
    pub fn instance(&self, input: PaperInput) -> AlignmentInstance {
        let a = self.generate(input);
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_mul(0x9e37).wrapping_add(17));
        AlignmentInstance::permuted_pair(a, &mut rng)
    }
}

/// A fully prepared alignment instance with its pipeline front half.
pub struct PreparedInstance {
    /// First input graph.
    pub a: CsrGraph,
    /// Second input graph (permuted copy).
    pub b: CsrGraph,
    /// Ground-truthed instance (owns clones of `a`/`b`).
    pub inst: AlignmentInstance,
    /// Sparsified alignment graph.
    pub l: BipartiteGraph,
    /// Overlap matrix.
    pub s: OverlapMatrix,
}

/// Builds `B = P(A)` and runs the pipeline front half at `density`
/// through a stage-cached session (the artifacts are cloned out so the
/// result is self-contained).
pub fn prepare_instance(h: &HarnessConfig, input: PaperInput, density: f64) -> PreparedInstance {
    let inst = h.instance(input);
    let cfg = h.aligner_config(density);
    let mut session =
        AlignmentSession::new(&inst.a, &inst.b, cfg).expect("harness instances are non-degenerate");
    let (l, s) = {
        let (l, s) = session
            .artifacts()
            .expect("front half builds at grid densities");
        (l.clone(), s.clone())
    };
    PreparedInstance {
        a: inst.a.clone(),
        b: inst.b.clone(),
        inst,
        l,
        s,
    }
}

/// The paper's density sweep grid (Figures 4–5): {1, 2.5, 5, 10, 25}%.
pub const DENSITY_GRID: [f64; 5] = [0.01, 0.025, 0.05, 0.10, 0.25];

/// DNF rule: a sweep cell is skipped (reported as the paper reports its
/// Synthetic_8000 @ 25% cell — "did not finish") when the projected
/// overlap-matrix size exceeds this many nonzeros.
pub const DNF_NNZ_LIMIT: usize = 120_000_000;

/// Projects the overlap-matrix nonzero count for an input at a density
/// without building anything: `|E_L| · d̄_A · d̄_B · density`-ish upper
/// estimate from the degree distribution.
pub fn projected_nnz(a: &CsrGraph, b: &CsrGraph, density: f64) -> usize {
    let k = cualign_sparsify::density_to_k(a.num_vertices(), b.num_vertices(), density);
    let edges_l = 2 * k * a.num_vertices().max(b.num_vertices());
    let da = a.average_degree();
    let db = b.average_degree();
    // Probability a candidate pair is itself an L edge ≈ density·2.
    (edges_l as f64 * da * db * (2.0 * density).min(1.0)) as usize
}

/// One full cuAlign run at a density; returns `(NCV-GS3, optimize seconds,
/// total seconds)`.
pub fn run_cell(h: &HarnessConfig, input: PaperInput, density: f64) -> (f64, f64, f64) {
    let inst = h.instance(input);
    let cfg = h.aligner_config(density);
    let r = Aligner::new(cfg)
        .align(&inst.a, &inst.b)
        .expect("harness instances are non-degenerate");
    (r.scores.ncv_gs3, r.timings.optimize_s, r.timings.total_s())
}

/// One density-sweep cell's results.
#[derive(Clone, Copy, Debug)]
pub struct SweepCell {
    /// Density of this cell.
    pub density: f64,
    /// `None` = DNF by the projected-size rule (mirrors the paper's
    /// Synthetic_8000 @ 25% cell).
    pub result: Option<SweepMeasurement>,
}

/// Measurements of one completed sweep cell.
#[derive(Clone, Copy, Debug)]
pub struct SweepMeasurement {
    /// NCV-GS³ of the best alignment.
    pub quality: f64,
    /// Seconds in the optimization phase (BP ⇄ matching), including the
    /// overlap-matrix build for this density.
    pub optimize_s: f64,
    /// Edges of `L` at this density.
    pub l_edges: usize,
    /// Nonzeros of `S` at this density.
    pub s_nnz: usize,
    /// Pipeline stages served from the session cache for this cell
    /// (embedding + subspace after the first cell).
    pub cache_hits: usize,
}

/// Runs the density sweep for one input on one [`AlignmentSession`]: the
/// embedding and subspace alignment are computed **once** and every
/// density reuses them — exactly the experiment of Figures 4–5
/// (embedding/sparsification are the run-once initialization of the
/// framework, Fig. 2). Each cell's `cache_hits` records the reuse.
pub fn sweep_densities(h: &HarnessConfig, input: PaperInput, densities: &[f64]) -> Vec<SweepCell> {
    let inst = h.instance(input);
    let mut session = AlignmentSession::new(&inst.a, &inst.b, h.aligner_config(0.01))
        .expect("harness instances are non-degenerate");

    densities
        .iter()
        .map(|&density| {
            if projected_nnz(&inst.a, &inst.b, density) > DNF_NNZ_LIMIT {
                return SweepCell {
                    density,
                    result: None,
                };
            }
            session
                .update_config(|c| c.sparsity = SparsityChoice::Density(density))
                .expect("grid densities are in (0, 1]");
            let r = session.align().expect("grid densities yield non-empty L");
            SweepCell {
                density,
                result: Some(SweepMeasurement {
                    quality: r.scores.ncv_gs3,
                    optimize_s: r.timings.overlap_s + r.timings.optimize_s,
                    l_edges: r.l_edges,
                    s_nnz: r.s_nnz,
                    cache_hits: r.timings.cache_hits,
                }),
            }
        })
        .collect()
}

/// Activates the telemetry mode requested on the command line
/// (`--telemetry off|summary|json:PATH`, or the `CUALIGN_TELEMETRY`
/// environment variable) and returns the sink. Every bench binary calls
/// this at the top of `main` and [`emit_telemetry`] at the end, so any
/// figure run can be introspected without recompiling. A malformed mode
/// warns and falls back to `off` rather than killing the bench.
pub fn telemetry_sink() -> cualign_telemetry::TelemetrySink {
    match cualign_telemetry::TelemetryMode::from_env_args(std::env::args()) {
        Ok(mode) => mode.activate(),
        Err(e) => {
            eprintln!("warning: {e}; telemetry stays off");
            cualign_telemetry::TelemetryMode::Off.activate()
        }
    }
}

/// Emits the global registry through `sink`, downgrading I/O failures to
/// a warning (a bench run's tables should survive a bad telemetry path).
pub fn emit_telemetry(sink: &cualign_telemetry::TelemetrySink) {
    if let Err(e) = sink.emit(cualign_telemetry::global()) {
        eprintln!("warning: failed to emit telemetry: {e}");
    }
}

/// Minimal flat-record JSON emission for the figure binaries, so sweep
/// results are machine-readable alongside the human tables. Kept
/// dependency-free on purpose (records are flat key → scalar maps).
pub mod json {
    use std::fmt::Write;

    /// Builder for one JSON object, emitted as a single line.
    #[derive(Clone, Debug, Default)]
    pub struct JsonRecord {
        buf: String,
    }

    fn escape_into(buf: &mut String, s: &str) {
        for c in s.chars() {
            match c {
                '"' => buf.push_str("\\\""),
                '\\' => buf.push_str("\\\\"),
                '\n' => buf.push_str("\\n"),
                '\t' => buf.push_str("\\t"),
                '\r' => buf.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(buf, "\\u{:04x}", c as u32);
                }
                c => buf.push(c),
            }
        }
    }

    impl JsonRecord {
        /// Starts an empty record.
        pub fn new() -> Self {
            JsonRecord::default()
        }

        fn key(&mut self, k: &str) {
            if !self.buf.is_empty() {
                self.buf.push(',');
            }
            self.buf.push('"');
            escape_into(&mut self.buf, k);
            self.buf.push_str("\":");
        }

        /// Adds a string field.
        pub fn str(mut self, k: &str, v: &str) -> Self {
            self.key(k);
            self.buf.push('"');
            escape_into(&mut self.buf, v);
            self.buf.push('"');
            self
        }

        /// Adds a float field (`null` for non-finite values).
        pub fn num(mut self, k: &str, v: f64) -> Self {
            self.key(k);
            if v.is_finite() {
                let _ = write!(self.buf, "{v}");
            } else {
                self.buf.push_str("null");
            }
            self
        }

        /// Adds an integer field.
        pub fn int(mut self, k: &str, v: usize) -> Self {
            self.key(k);
            let _ = write!(self.buf, "{v}");
            self
        }

        /// Adds an explicit `null` field (e.g. a DNF cell).
        pub fn null(mut self, k: &str) -> Self {
            self.key(k);
            self.buf.push_str("null");
            self
        }

        /// Closes the record into one `{...}` line.
        pub fn finish(self) -> String {
            format!("{{{}}}", self.buf)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_records_are_well_formed() {
        let line = json::JsonRecord::new()
            .str("figure", "fig4")
            .str("input", "Fly \"Y2H\"")
            .num("density", 0.025)
            .num("dnf", f64::NAN)
            .int("cache_hits", 3)
            .null("skipped")
            .finish();
        assert_eq!(
            line,
            "{\"figure\":\"fig4\",\"input\":\"Fly \\\"Y2H\\\"\",\"density\":0.025,\
             \"dnf\":null,\"cache_hits\":3,\"skipped\":null}"
        );
    }

    #[test]
    fn scaled_inputs_keep_average_degree() {
        let h = HarnessConfig {
            scale: 0.25,
            bp_iters: 5,
            seed: 1,
        };
        for input in PaperInput::all() {
            let g = h.generate(input);
            let full_deg = 2.0 * input.edges() as f64 / input.vertices() as f64;
            let got_deg = g.average_degree();
            assert!(
                (got_deg - full_deg).abs() / full_deg < 0.05,
                "{input}: degree {got_deg} vs paper {full_deg}"
            );
        }
    }

    #[test]
    fn full_scale_matches_table1_exactly() {
        let h = HarnessConfig {
            scale: 1.0,
            bp_iters: 5,
            seed: 1,
        };
        let g = h.generate(PaperInput::Synthetic4000);
        assert_eq!(g.num_vertices(), 4000);
        assert_eq!(g.num_edges(), 11996);
    }

    #[test]
    fn prepared_instance_is_consistent() {
        let h = HarnessConfig {
            scale: 0.05,
            bp_iters: 3,
            seed: 2,
        };
        let p = prepare_instance(&h, PaperInput::Synthetic4000, 0.025);
        p.l.check_invariants().unwrap();
        p.s.check_invariants().unwrap();
        assert_eq!(p.s.num_rows(), p.l.num_edges());
        assert_eq!(p.a.num_vertices(), p.b.num_vertices());
    }

    #[test]
    fn projection_grows_with_density() {
        let h = HarnessConfig {
            scale: 0.1,
            bp_iters: 3,
            seed: 1,
        };
        let g = h.generate(PaperInput::FlyY2h1);
        let lo = projected_nnz(&g, &g, 0.01);
        let hi = projected_nnz(&g, &g, 0.10);
        assert!(hi > lo);
    }

    #[test]
    fn sweep_reuses_front_half_across_densities() {
        let h = HarnessConfig {
            scale: 0.03,
            bp_iters: 3,
            seed: 1,
        };
        let cells = sweep_densities(&h, PaperInput::Synthetic4000, &[0.01, 0.05, 0.10]);
        let measured: Vec<_> = cells.iter().filter_map(|c| c.result).collect();
        assert_eq!(measured.len(), 3);
        // The first cell builds every stage; later cells reuse the
        // embedding + subspace front half.
        assert_eq!(measured[0].cache_hits, 0);
        for m in &measured[1..] {
            assert!(m.cache_hits >= 2, "front half not reused: {m:?}");
        }
        // Larger density ⇒ larger L and S.
        assert!(measured[2].l_edges > measured[0].l_edges);
        assert!(measured[2].s_nnz > measured[0].s_nnz);
    }
}
