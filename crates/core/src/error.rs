//! Typed errors for the public alignment API.
//!
//! Every fallible entry point — [`crate::Aligner::align`], the
//! [`crate::AlignmentSession`] stage methods, [`crate::cone_align`], and
//! the configuration builder — reports degenerate inputs and invalid
//! parameters through [`AlignError`] instead of panicking, so callers
//! (the `cualign` binary in particular) can print a clean diagnostic.

use std::fmt;

/// Which input graph an error refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphSide {
    /// The first (`A`) input graph.
    A,
    /// The second (`B`) input graph.
    B,
}

impl fmt::Display for GraphSide {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphSide::A => write!(f, "A"),
            GraphSide::B => write!(f, "B"),
        }
    }
}

/// Error raised by the alignment pipeline's public entry points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AlignError {
    /// An input graph has no vertices; nothing can be aligned.
    EmptyGraph {
        /// Which input is empty.
        side: GraphSide,
    },
    /// The configured embedding dimension exceeds the vertex count of the
    /// smaller input, so the spectral subspace is over-determined.
    DimExceedsVertices {
        /// Configured embedding dimension.
        dim: usize,
        /// Vertex count of the smaller input graph.
        vertices: usize,
    },
    /// Sparsification produced a candidate graph `L` with zero edges
    /// (e.g. a similarity threshold no candidate pair clears), so there
    /// is nothing for belief propagation or matching to work on.
    EmptySparsification,
    /// A configuration field is out of its valid range. Produced by
    /// [`crate::AlignerConfig::validate`] and the builder's `build()`.
    InvalidConfig {
        /// Dotted path of the offending field (e.g. `sparsity.density`).
        field: &'static str,
        /// Human-readable constraint violation.
        reason: String,
    },
    /// An input file could not be read or parsed (CLI loaders).
    Io {
        /// Path of the offending file.
        path: String,
        /// Underlying error message.
        reason: String,
    },
    /// An untrusted request body failed structural validation before it
    /// reached the pipeline (the service-layer ingest path): an
    /// out-of-range vertex id, a zero-vertex graph, or a vertex count
    /// beyond the `VertexId` range. Unlike [`AlignError::Io`] (transport
    /// and filesystem failures) this always means the *content* of the
    /// request is wrong, so servers map it to a 4xx response.
    Protocol {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The subspace-alignment stage rejected its inputs (dimension or
    /// row-count mismatch between embeddings and graphs). Configuration
    /// errors are normalized to [`AlignError::InvalidConfig`] at build
    /// time; this variant carries the shape mismatches only a live
    /// embedding can exhibit.
    Subspace(cualign_embed::SubspaceError),
    /// A session-cache invariant broke: a stage artifact was absent
    /// immediately after its `ensure` step. This is a bug in
    /// [`crate::AlignmentSession`]'s bookkeeping, never a caller error;
    /// it exists so the library reports the impossible as a typed error
    /// instead of panicking mid-run (the no-panic contract).
    Internal {
        /// Name of the missing stage artifact.
        stage: &'static str,
    },
}

impl From<cualign_embed::SubspaceError> for AlignError {
    fn from(e: cualign_embed::SubspaceError) -> Self {
        match e {
            // Config errors keep their dotted-field shape so callers can
            // match on `InvalidConfig { field, .. }` uniformly.
            cualign_embed::SubspaceError::InvalidConfig { field, reason } => {
                AlignError::InvalidConfig { field, reason }
            }
            other => AlignError::Subspace(other),
        }
    }
}

impl fmt::Display for AlignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlignError::EmptyGraph { side } => {
                write!(f, "input graph {side} has no vertices")
            }
            AlignError::DimExceedsVertices { dim, vertices } => write!(
                f,
                "embedding dimension {dim} exceeds the {vertices} vertices of the smaller \
                 input graph; lower the dimension or supply larger graphs"
            ),
            AlignError::EmptySparsification => write!(
                f,
                "sparsification produced an alignment graph with zero edges; relax the \
                 sparsity rule (higher density / k, or a lower similarity threshold)"
            ),
            AlignError::InvalidConfig { field, reason } => {
                write!(f, "invalid config: {field}: {reason}")
            }
            AlignError::Io { path, reason } => write!(f, "{path}: {reason}"),
            AlignError::Protocol { reason } => write!(f, "protocol error: {reason}"),
            AlignError::Subspace(e) => write!(f, "subspace alignment: {e}"),
            AlignError::Internal { stage } => write!(
                f,
                "internal session-cache error: {stage} artifact missing after its ensure step \
                 (this is a bug in cualign, please report it)"
            ),
        }
    }
}

impl std::error::Error for AlignError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_clean_and_specific() {
        let e = AlignError::EmptyGraph { side: GraphSide::B };
        assert_eq!(e.to_string(), "input graph B has no vertices");
        let e = AlignError::InvalidConfig {
            field: "sparsity.density",
            reason: "must be in (0, 1], got 3".to_string(),
        };
        assert!(e.to_string().contains("sparsity.density"));
        let e = AlignError::DimExceedsVertices {
            dim: 64,
            vertices: 10,
        };
        assert!(e.to_string().contains("64"));
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn is_std_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(AlignError::EmptySparsification);
    }

    #[test]
    fn subspace_errors_convert_preserving_config_shape() {
        use cualign_embed::SubspaceError;
        let shape: AlignError = SubspaceError::DimensionMismatch { left: 8, right: 16 }.into();
        assert!(matches!(shape, AlignError::Subspace(_)));
        assert!(shape.to_string().contains("subspace alignment"));
        let cfg: AlignError = SubspaceError::InvalidConfig {
            field: "subspace.iterations",
            reason: "must be at least 1".into(),
        }
        .into();
        assert!(matches!(
            cfg,
            AlignError::InvalidConfig {
                field: "subspace.iterations",
                ..
            }
        ));
    }
}
