//! Fixture: telemetry registrations that drift from the manifest.

use cualign_telemetry::Registry;

/// Registers one name the manifest knows, one it does not, and one the
/// linter cannot resolve statically.
pub fn record(reg: &Registry, stage: &str, name: &str) {
    reg.counter("fixture.hits").inc();
    reg.gauge(format!("fixture.{stage}.depth")).set(1.0);
    reg.counter(name).inc();
}
