//! The end-to-end cuAlign pipeline (paper Fig. 2): embed → align subspaces
//! → sparsify → (belief propagation ⇄ matching)* → score.
//!
//! [`Aligner`] is the one-shot entry point; it opens a fresh
//! [`crate::AlignmentSession`] per call. Callers running the pipeline
//! repeatedly under varying configurations (sweeps, ablations) should
//! hold a session directly so the unchanged stages are reused.

use crate::config::AlignerConfig;
use crate::error::AlignError;
use crate::scoring::AlignmentScores;
use crate::session::AlignmentSession;
use cualign_bp::BpOutcome;
use cualign_graph::{CsrGraph, VertexId};
use cualign_matching::Matching;

/// Wall-clock seconds per pipeline stage for one `align` run.
///
/// When a stage's artifact was reused from a session cache it contributes
/// `0 s` here (the build cost was paid by an earlier run) and is counted
/// in [`StageTimings::cache_hits`] instead. A session's lifetime build
/// costs are available via
/// [`crate::AlignmentSession::cumulative_timings`].
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Proximity embedding of both graphs.
    pub embedding_s: f64,
    /// Subspace alignment (Eq. 2).
    pub subspace_s: f64,
    /// kNN sparsification (constructing `L`).
    pub sparsify_s: f64,
    /// Overlap matrix `S` construction (Algorithm 3).
    pub overlap_s: f64,
    /// BP + matching optimization loop.
    pub optimize_s: f64,
    /// Number of the five stages served from a session cache this run.
    pub cache_hits: usize,
}

impl StageTimings {
    /// Initialization time (the run-once part of Fig. 2).
    pub fn init_s(&self) -> f64 {
        self.embedding_s + self.subspace_s + self.sparsify_s + self.overlap_s
    }

    /// Total pipeline time.
    pub fn total_s(&self) -> f64 {
        self.init_s() + self.optimize_s
    }

    /// Derives cumulative timings from a telemetry snapshot: stage
    /// seconds from the root-level `session.<stage>` spans, `cache_hits`
    /// from the `session.<stage>.hits` counters. This is the thin-view
    /// reading of the span tree — the struct holds no timing state of its
    /// own; sessions record exclusively through telemetry spans.
    ///
    /// Spans only populate while telemetry is enabled
    /// ([`cualign_telemetry::set_enabled`]), while the `session.*.hits`
    /// counters are always-on atomics. A snapshot with no `session.*`
    /// spans (telemetry off, or no session ran) therefore derives
    /// [`StageTimings::default`] outright — counters alone must not
    /// produce a degenerate record of cache hits with all-zero timings.
    pub fn from_snapshot(snapshot: &cualign_telemetry::Snapshot) -> StageTimings {
        if !snapshot
            .spans
            .children
            .keys()
            .any(|name| name.starts_with("session."))
        {
            return StageTimings::default();
        }
        let span_s = |stage: &str| {
            snapshot
                .spans
                .children
                .get(&format!("session.{stage}"))
                .map_or(0.0, |s| s.total_s)
        };
        let hits: usize = snapshot
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with("session.") && name.ends_with(".hits"))
            .map(|(_, &v)| v as usize)
            .sum();
        StageTimings {
            embedding_s: span_s("embed"),
            subspace_s: span_s("subspace"),
            sparsify_s: span_s("sparsify"),
            overlap_s: span_s("overlap"),
            optimize_s: span_s("optimize"),
            cache_hits: hits,
        }
    }
}

/// Output of a full cuAlign run.
pub struct AlignmentResult {
    /// The best matching found (on `L`'s edge ids).
    pub matching: Matching,
    /// Vertex mapping `V_A → V_B` extracted from the matching.
    pub mapping: Vec<Option<VertexId>>,
    /// Quality metrics of the mapping.
    pub scores: AlignmentScores,
    /// The BP run's outcome (history, best iteration, objective).
    pub bp: BpOutcome,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
    /// Size of the sparsified graph `L`.
    pub l_edges: usize,
    /// Nonzeros of the overlap matrix `S`.
    pub s_nnz: usize,
}

/// The cuAlign aligner. Construct with a config, call
/// [`Aligner::align`].
pub struct Aligner {
    cfg: AlignerConfig,
}

impl Aligner {
    /// Creates an aligner with the given configuration.
    pub fn new(cfg: AlignerConfig) -> Self {
        Aligner { cfg }
    }

    /// Convenience constructor with [`AlignerConfig::default`].
    pub fn with_defaults() -> Self {
        Aligner {
            cfg: AlignerConfig::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &AlignerConfig {
        &self.cfg
    }

    /// Runs the full pipeline on graphs `a` and `b`.
    ///
    /// With [`crate::AlignerConfig::multilevel`] unset this is
    /// equivalent to opening an [`AlignmentSession`] and calling
    /// [`AlignmentSession::align`] once; with it set, the run dispatches
    /// through the multilevel coarsen–align–project–refine driver
    /// ([`crate::align_multilevel`]). Errors on degenerate input (empty
    /// graph, embedding dimension exceeding the smaller graph, a
    /// sparsification rule yielding zero candidates) or an invalid
    /// configuration.
    pub fn align(&self, a: &CsrGraph, b: &CsrGraph) -> Result<AlignmentResult, AlignError> {
        if self.cfg.multilevel.is_some() {
            return crate::multilevel::align_multilevel(a, b, &self.cfg);
        }
        AlignmentSession::new(a, b, self.cfg.clone())?.align()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SparsityChoice;
    use cualign_graph::generators::{duplication_divergence, erdos_renyi_gnm};
    use cualign_graph::permutation::AlignmentInstance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_cfg() -> AlignerConfig {
        use cualign_embed::{EmbeddingMethod, SpectralConfig};
        let mut cfg = AlignerConfig {
            embedding: EmbeddingMethod::Spectral(SpectralConfig {
                dim: 24,
                oversample: 12,
                ..Default::default()
            }),
            sparsity: SparsityChoice::K(6),
            ..AlignerConfig::default()
        };
        cfg.bp.max_iters = 10;
        cfg.subspace.anchors = 0;
        cfg
    }

    #[test]
    fn recovers_permuted_er_graph() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = erdos_renyi_gnm(150, 450, &mut rng);
        let inst = AlignmentInstance::permuted_pair(a, &mut rng);
        let result = Aligner::new(small_cfg()).align(&inst.a, &inst.b).unwrap();
        assert!(
            result.scores.ncv_gs3 > 0.6,
            "NCV-GS3 only {}",
            result.scores.ncv_gs3
        );
        assert!(result.matching.len() <= inst.a.num_vertices().min(inst.b.num_vertices()));
    }

    #[test]
    fn recovers_ppi_like_graph() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = duplication_divergence(200, 0.45, 0.35, &mut rng);
        let inst = AlignmentInstance::permuted_pair(a, &mut rng);
        let result = Aligner::new(small_cfg()).align(&inst.a, &inst.b).unwrap();
        assert!(
            result.scores.ncv_gs3 > 0.5,
            "NCV-GS3 only {}",
            result.scores.ncv_gs3
        );
        // Ground-truth recovery should be well above chance.
        let nc = inst.node_correctness(&result.mapping);
        assert!(nc > 0.3, "node correctness {nc}");
    }

    #[test]
    fn timings_and_sizes_populated() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = erdos_renyi_gnm(80, 200, &mut rng);
        let inst = AlignmentInstance::permuted_pair(a, &mut rng);
        let result = Aligner::new(small_cfg()).align(&inst.a, &inst.b).unwrap();
        assert!(result.timings.total_s() > 0.0);
        assert!(result.timings.init_s() > 0.0);
        // A one-shot align starts from a fresh session: nothing cached.
        assert_eq!(result.timings.cache_hits, 0);
        assert!(result.l_edges >= 80 * 6);
        // 10 BP iterations + the iteration-0 direct rounding.
        assert!(result.bp.history.len() == 11);
    }

    #[test]
    fn deterministic_given_config() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = erdos_renyi_gnm(60, 150, &mut rng);
        let inst = AlignmentInstance::permuted_pair(a, &mut rng);
        let r1 = Aligner::new(small_cfg()).align(&inst.a, &inst.b).unwrap();
        let r2 = Aligner::new(small_cfg()).align(&inst.a, &inst.b).unwrap();
        assert_eq!(r1.mapping, r2.mapping);
        assert_eq!(r1.scores, r2.scores);

        // The session path is bit-identical to the one-shot path, both on
        // a cold cache and on a warm one.
        use crate::session::AlignmentSession;
        let mut session = AlignmentSession::new(&inst.a, &inst.b, small_cfg()).unwrap();
        let s1 = session.align().unwrap();
        let s2 = session.align().unwrap();
        assert_eq!(r1.mapping, s1.mapping);
        assert_eq!(r1.scores, s1.scores);
        assert_eq!(r1.bp.best_score, s1.bp.best_score);
        assert_eq!(s1.mapping, s2.mapping);
        assert_eq!(s2.timings.cache_hits, 5);
    }

    #[test]
    fn from_snapshot_tolerates_an_empty_span_tree() {
        // With telemetry off, the span tree stays empty while the
        // always-on `session.*.hits` counters keep ticking. Deriving
        // timings from such a snapshot must yield the default record,
        // not a degenerate one claiming cache hits with zero seconds.
        let r = cualign_telemetry::Registry::new();
        r.counter("session.embed.hits").add(3);
        let t = StageTimings::from_snapshot(&r.snapshot());
        assert_eq!(t.cache_hits, 0);
        assert_eq!(t.total_s(), 0.0);
    }

    #[test]
    fn degenerate_inputs_error_cleanly() {
        use crate::error::AlignError;
        let empty = CsrGraph::from_edges(0, &[]);
        let mut rng = StdRng::seed_from_u64(5);
        let g = erdos_renyi_gnm(40, 90, &mut rng);
        let aligner = Aligner::new(small_cfg());
        assert!(matches!(
            aligner.align(&empty, &g),
            Err(AlignError::EmptyGraph { .. })
        ));
        assert!(matches!(
            aligner.align(&g, &empty),
            Err(AlignError::EmptyGraph { .. })
        ));
        // dim 24 > 10 vertices.
        let tiny = erdos_renyi_gnm(10, 20, &mut rng);
        assert!(matches!(
            aligner.align(&tiny, &g),
            Err(AlignError::DimExceedsVertices {
                dim: 24,
                vertices: 10
            })
        ));
    }
}
