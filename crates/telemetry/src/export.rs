//! The three serializations of a [`Snapshot`]: pretty tree, JSON line,
//! and Prometheus text exposition format.

use std::fmt::Write as _;

use crate::metrics::HistogramSnapshot;
use crate::registry::Snapshot;
use crate::span::SpanSnapshot;

impl Snapshot {
    /// Human-readable summary: span tree with total/self times and call
    /// counts, then counters, gauges, and histogram digests. This is the
    /// `--telemetry summary` output.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        out.push_str("telemetry summary\n");
        if !self.spans.children.is_empty() {
            out.push_str("spans (total / self, calls):\n");
            render_span_children(&self.spans, 1, &mut out);
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name} = {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name} = {v}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (count / mean / p50 / p99):\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name}: n={} mean={:.3e} p50={:.3e} p99={:.3e}",
                    h.count,
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.99),
                );
            }
        }
        out
    }

    /// One JSON line (no trailing newline) holding the whole snapshot:
    /// the `BENCH_*.json` contract. Keys are deterministically ordered;
    /// histograms serialize only their non-empty buckets as
    /// `[upper_bound, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_entries(&mut out, self.counters.iter(), |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str("},\"gauges\":{");
        push_entries(&mut out, self.gauges.iter(), |out, v| push_f64(out, *v));
        out.push_str("},\"histograms\":{");
        push_entries(&mut out, self.histograms.iter(), |out, h| {
            push_histogram_json(out, h);
        });
        out.push_str("},\"spans\":");
        push_span_json(&mut out, &self.spans);
        out.push('}');
        out
    }

    /// Prometheus text exposition format. Counters map to `counter`,
    /// gauges to `gauge`, histograms to cumulative `_bucket{le=...}` /
    /// `_sum` / `_count` series, and each span path to a
    /// `span_seconds_total` / `span_calls_total` pair labelled by path.
    /// Metric names are sanitized (`.` and `-` become `_`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {v}");
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cum = h.underflow;
            for (i, &c) in h.buckets.iter().enumerate() {
                cum += c;
                if c > 0 {
                    let ub = HistogramSnapshot::bucket_upper_bound(i);
                    let _ = writeln!(out, "{n}_bucket{{le=\"{ub:e}\"}} {cum}");
                }
            }
            cum += h.overflow;
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {cum}");
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        if !self.spans.children.is_empty() {
            out.push_str("# TYPE span_seconds_total counter\n");
            out.push_str("# TYPE span_calls_total counter\n");
            let mut path = Vec::new();
            prometheus_spans(&self.spans, &mut path, &mut out);
        }
        out
    }
}

fn render_span_children(node: &SpanSnapshot, depth: usize, out: &mut String) {
    for (name, child) in &node.children {
        let _ = writeln!(
            out,
            "{:indent$}{name}: {:.3}s / {:.3}s ({} calls)",
            "",
            child.total_s,
            child.self_s(),
            child.calls,
            indent = depth * 2,
        );
        render_span_children(child, depth + 1, out);
    }
}

/// Writes `"key":<value>` entries joined by commas, with escaped keys.
fn push_entries<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    mut push_value: impl FnMut(&mut String, &V),
) {
    let mut first = true;
    for (key, value) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        push_json_string(out, key);
        out.push(':');
        push_value(out, value);
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON has no NaN/Infinity literals; map them to null.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_histogram_json(out: &mut String, h: &HistogramSnapshot) {
    let _ = write!(out, "{{\"count\":{},\"sum\":", h.count,);
    push_f64(out, h.sum);
    let _ = write!(
        out,
        ",\"underflow\":{},\"overflow\":{},\"buckets\":[",
        h.underflow, h.overflow
    );
    let mut first = true;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "[{:e},{c}]", HistogramSnapshot::bucket_upper_bound(i));
    }
    out.push_str("]}");
}

fn push_span_json(out: &mut String, node: &SpanSnapshot) {
    let _ = write!(out, "{{\"calls\":{},\"total_s\":", node.calls);
    push_f64(out, node.total_s);
    out.push_str(",\"children\":{");
    let mut first = true;
    for (name, child) in &node.children {
        if !first {
            out.push(',');
        }
        first = false;
        push_json_string(out, name);
        out.push(':');
        push_span_json(out, child);
    }
    out.push_str("}}");
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn prometheus_spans(node: &SpanSnapshot, path: &mut Vec<String>, out: &mut String) {
    for (name, child) in &node.children {
        path.push(sanitize(name));
        let label = path.join("/");
        let _ = writeln!(
            out,
            "span_seconds_total{{path=\"{label}\"}} {}",
            child.total_s
        );
        let _ = writeln!(out, "span_calls_total{{path=\"{label}\"}} {}", child.calls);
        prometheus_spans(child, path, out);
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    /// Hand-built snapshot with one of everything, for golden outputs.
    fn fixture() -> Snapshot {
        let mut h = HistogramSnapshot::empty();
        h.count = 3;
        h.sum = 3.5;
        h.underflow = 1;
        // 1.5 and 2.0 → buckets [1,2) and [2,4): exponents 0 and 1.
        h.buckets[(0 - crate::metrics::MIN_EXP) as usize] = 1;
        h.buckets[(1 - crate::metrics::MIN_EXP) as usize] = 1;

        let mut spans = SpanSnapshot::default();
        let mut align = SpanSnapshot {
            calls: 1,
            total_s: 2.0,
            children: BTreeMap::new(),
        };
        align.children.insert(
            "bp".into(),
            SpanSnapshot {
                calls: 5,
                total_s: 1.5,
                children: BTreeMap::new(),
            },
        );
        spans.children.insert("align".into(), align);

        Snapshot {
            counters: [("bp.iterations".to_string(), 42u64)].into(),
            gauges: [("overlap.nnz".to_string(), 128.0)].into(),
            histograms: [("bp.residual".to_string(), h)].into(),
            spans,
        }
    }

    #[test]
    fn golden_json() {
        let json = fixture().to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"bp.iterations\":42},\
             \"gauges\":{\"overlap.nnz\":128},\
             \"histograms\":{\"bp.residual\":{\"count\":3,\"sum\":3.5,\
             \"underflow\":1,\"overflow\":0,\"buckets\":[[2e0,1],[4e0,1]]}},\
             \"spans\":{\"calls\":0,\"total_s\":0,\"children\":{\
             \"align\":{\"calls\":1,\"total_s\":2,\"children\":{\
             \"bp\":{\"calls\":5,\"total_s\":1.5,\"children\":{}}}}}}}"
        );
        assert!(!json.contains('\n'), "must be a single line");
    }

    #[test]
    fn golden_tree() {
        let tree = fixture().render_tree();
        assert_eq!(
            tree,
            "telemetry summary\n\
             spans (total / self, calls):\n\
             \x20\x20align: 2.000s / 0.500s (1 calls)\n\
             \x20\x20\x20\x20bp: 1.500s / 1.500s (5 calls)\n\
             counters:\n\
             \x20\x20bp.iterations = 42\n\
             gauges:\n\
             \x20\x20overlap.nnz = 128\n\
             histograms (count / mean / p50 / p99):\n\
             \x20\x20bp.residual: n=3 mean=1.167e0 p50=2.000e0 p99=4.000e0\n"
        );
    }

    #[test]
    fn golden_prometheus() {
        let prom = fixture().to_prometheus();
        assert_eq!(
            prom,
            "# TYPE bp_iterations counter\n\
             bp_iterations 42\n\
             # TYPE overlap_nnz gauge\n\
             overlap_nnz 128\n\
             # TYPE bp_residual histogram\n\
             bp_residual_bucket{le=\"2e0\"} 2\n\
             bp_residual_bucket{le=\"4e0\"} 3\n\
             bp_residual_bucket{le=\"+Inf\"} 3\n\
             bp_residual_sum 3.5\n\
             bp_residual_count 3\n\
             # TYPE span_seconds_total counter\n\
             # TYPE span_calls_total counter\n\
             span_seconds_total{path=\"align\"} 2\n\
             span_calls_total{path=\"align\"} 1\n\
             span_seconds_total{path=\"align/bp\"} 1.5\n\
             span_calls_total{path=\"align/bp\"} 5\n"
        );
    }

    #[test]
    fn json_escapes_hostile_keys() {
        let snap = Snapshot {
            counters: [("we\"ird\\key\n".to_string(), 1u64)].into(),
            ..Snapshot::default()
        };
        assert_eq!(
            snap.to_json(),
            "{\"counters\":{\"we\\\"ird\\\\key\\n\":1},\"gauges\":{},\
             \"histograms\":{},\
             \"spans\":{\"calls\":0,\"total_s\":0,\"children\":{}}}"
        );
    }

    #[test]
    fn non_finite_gauges_become_null() {
        let snap = Snapshot {
            gauges: [("bad".to_string(), f64::NAN)].into(),
            ..Snapshot::default()
        };
        assert!(snap.to_json().contains("\"bad\":null"));
    }
}
