//! IsoRank-style similarity-flow alignment (Singh, Xu, Berger — the
//! paper's reference \[27\]).
//!
//! The similarity of `(u ∈ A, v ∈ B)` is defined recursively: a pair is
//! similar if its neighbor pairs are similar,
//!
//! ```text
//! R(u, v) = (1 − α)·H(u, v) + α · Σ_{u'∈N(u)} Σ_{v'∈N(v)} R(u', v') / (deg u' · deg v')
//! ```
//!
//! where `H` is a prior (uniform here, or any external similarity). The
//! fixpoint is computed by power iteration on the Kronecker-product
//! operator — materialized lazily, never as an `n² × n²` matrix — and
//! rounded to a one-to-one alignment by the locally dominant matcher.
//!
//! Complexity per iteration is `O(Σ_{(u,v)} deg u · deg v)` over the kept
//! support; like the main pipeline, the support is truncated to the top
//! candidates per vertex to stay `O(n·k)`.

use crate::scoring::{score_alignment, AlignmentScores};
use cualign_graph::{BipartiteGraph, CsrGraph, VertexId};
use cualign_matching::{locally_dominant_parallel, Matching};
use rayon::prelude::*;

/// Configuration for [`isorank_align`].
#[derive(Clone, Copy, Debug)]
pub struct IsoRankConfig {
    /// Flow weight α ∈ [0, 1): how much similarity comes from neighbors
    /// vs. the prior.
    pub alpha: f64,
    /// Power iterations.
    pub iterations: usize,
    /// Candidates kept per A-vertex between iterations (support
    /// truncation; `0` keeps the dense `n × n` similarity — small inputs
    /// only).
    pub top_k: usize,
}

impl Default for IsoRankConfig {
    fn default() -> Self {
        IsoRankConfig {
            alpha: 0.85,
            iterations: 12,
            top_k: 20,
        }
    }
}

/// Result of an IsoRank run.
pub struct IsoRankResult {
    /// The rounded one-to-one alignment.
    pub matching: Matching,
    /// Vertex mapping extracted from the matching.
    pub mapping: Vec<Option<VertexId>>,
    /// Quality metrics.
    pub scores: AlignmentScores,
    /// The final candidate graph the similarities lived on.
    pub support_edges: usize,
}

/// Dense row-major similarity buffer; `sim[u * nb + v]`.
struct SimBuffer {
    nb: usize,
    data: Vec<f64>,
}

impl SimBuffer {
    #[inline]
    fn get(&self, u: usize, v: usize) -> f64 {
        self.data[u * self.nb + v]
    }
}

/// Runs IsoRank with a uniform prior and rounds to an alignment.
///
/// Note the documented degeneracy of prior-free IsoRank: similarities are
/// strongly degree-correlated, so on symmetric instances the rounding
/// pairs the high-degree halves of both graphs and strands the rest —
/// the reason the original system feeds sequence-similarity priors.
/// Use [`isorank_align_with_prior`] to supply one.
///
/// # Panics
/// Panics if `alpha ∉ [0, 1)` or either graph is empty.
pub fn isorank_align(a: &CsrGraph, b: &CsrGraph, cfg: &IsoRankConfig) -> IsoRankResult {
    isorank_align_with_prior(a, b, None, cfg)
}

/// Runs IsoRank with an optional prior `H` (row-major `na × nb`,
/// non-negative; normalized internally) and rounds to an alignment.
///
/// # Panics
/// Panics if `alpha ∉ [0, 1)`, either graph is empty, or the prior has
/// the wrong length.
pub fn isorank_align_with_prior(
    a: &CsrGraph,
    b: &CsrGraph,
    prior: Option<&[f64]>,
    cfg: &IsoRankConfig,
) -> IsoRankResult {
    assert!((0.0..1.0).contains(&cfg.alpha), "alpha must be in [0, 1)");
    let na = a.num_vertices();
    let nb = b.num_vertices();
    assert!(na > 0 && nb > 0, "empty input graph");

    // Normalized prior H (uniform if none supplied).
    let h: Vec<f64> = match prior {
        Some(p) => {
            assert_eq!(p.len(), na * nb, "prior must be na × nb");
            let total: f64 = p.iter().sum();
            assert!(total > 0.0, "prior must have positive mass");
            p.iter().map(|x| x / total).collect()
        }
        None => vec![1.0 / (na * nb) as f64; na * nb],
    };
    let mut sim = SimBuffer {
        nb,
        data: h.clone(),
    };

    for _ in 0..cfg.iterations {
        // R'(u, v) = (1-α)·prior + α · Σ R(u', v') / (deg u' · deg v').
        let next: Vec<f64> = (0..na)
            .into_par_iter()
            .flat_map_iter(|u| {
                let a_nbrs = a.neighbors(u as VertexId);
                let sim = &sim;
                let h = &h;
                (0..nb).map(move |v| {
                    let mut flow = 0.0;
                    for &u2 in a_nbrs {
                        let du2 = a.degree(u2).max(1) as f64;
                        for &v2 in b.neighbors(v as VertexId) {
                            let dv2 = b.degree(v2).max(1) as f64;
                            flow += sim.get(u2 as usize, v2 as usize) / (du2 * dv2);
                        }
                    }
                    (1.0 - cfg.alpha) * h[u * nb + v] + cfg.alpha * flow
                })
            })
            .collect();
        // Normalize to unit total mass so the iteration neither blows up
        // nor vanishes.
        let total: f64 = next.iter().sum();
        let scale = if total > 0.0 { 1.0 / total } else { 1.0 };
        sim.data = next.into_iter().map(|x| x * scale).collect();
    }

    // Round: keep the union of each side's top-k candidates (all if
    // top_k == 0), then run the locally dominant matcher. The union
    // matters: IsoRank similarities are strongly degree-correlated, so a
    // one-sided top-k would have every A-vertex shortlist the same few
    // hub B's and leave half of both sides uncoverable.
    let ka = if cfg.top_k == 0 {
        nb
    } else {
        cfg.top_k.min(nb)
    };
    let kb = if cfg.top_k == 0 {
        na
    } else {
        cfg.top_k.min(na)
    };
    let mut triples: Vec<(VertexId, VertexId, f64)> = (0..na)
        .into_par_iter()
        .flat_map_iter(|u| {
            let mut row: Vec<(f64, usize)> = (0..nb).map(|v| (sim.get(u, v), v)).collect();
            row.select_nth_unstable_by(ka - 1, |x, y| y.0.total_cmp(&x.0).then(x.1.cmp(&y.1)));
            row.truncate(ka);
            row.into_iter()
                .map(move |(w, v)| (u as VertexId, v as VertexId, w.max(f64::MIN_POSITIVE)))
        })
        .collect();
    let b_side: Vec<(VertexId, VertexId, f64)> = (0..nb)
        .into_par_iter()
        .flat_map_iter(|v| {
            let mut col: Vec<(f64, usize)> = (0..na).map(|u| (sim.get(u, v), u)).collect();
            col.select_nth_unstable_by(kb - 1, |x, y| y.0.total_cmp(&x.0).then(x.1.cmp(&y.1)));
            col.truncate(kb);
            col.into_iter()
                .map(move |(w, u)| (u as VertexId, v as VertexId, w.max(f64::MIN_POSITIVE)))
                .collect::<Vec<_>>()
        })
        .collect();
    triples.extend(b_side);
    let l = BipartiteGraph::from_weighted_edges(na, nb, &triples);
    let matching = locally_dominant_parallel(&l);
    let mapping: Vec<Option<VertexId>> =
        (0..na).map(|u| matching.mate_of_a(u as VertexId)).collect();
    let scores = score_alignment(a, b, &mapping);
    IsoRankResult {
        matching,
        mapping,
        scores,
        support_edges: l.num_edges(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cualign_graph::generators::erdos_renyi_gnm;
    use cualign_graph::Permutation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn prior_free_isorank_shows_documented_degeneracy() {
        // Without a prior, similarities are degree-dominated: the matcher
        // pairs the two graphs' high-degree halves and strands the rest.
        // This is the known behavior that motivates priors.
        let mut rng = StdRng::seed_from_u64(1);
        let a = erdos_renyi_gnm(40, 120, &mut rng);
        let r = isorank_align(&a, &a, &IsoRankConfig::default());
        assert!(
            r.scores.ncv >= 0.45,
            "ncv collapsed entirely: {}",
            r.scores.ncv
        );
        assert!(r.scores.ncv <= 0.95, "degeneracy unexpectedly absent");
    }

    #[test]
    fn identity_prior_fixes_self_alignment() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = erdos_renyi_gnm(40, 120, &mut rng);
        let n = a.num_vertices();
        let mut h = vec![1e-6; n * n];
        for i in 0..n {
            h[i * n + i] = 1.0;
        }
        let r = isorank_align_with_prior(&a, &a, Some(&h), &IsoRankConfig::default());
        assert!(r.scores.ncv > 0.9, "ncv {}", r.scores.ncv);
        assert!(r.scores.ec > 0.8, "ec {}", r.scores.ec);
    }

    #[test]
    fn degree_structure_guides_similarity() {
        // A path and its permuted copy: endpoint vertices (degree 1) must
        // be more similar to endpoints than to the middle.
        let a = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut rng = StdRng::seed_from_u64(2);
        let p = Permutation::random(3, &mut rng);
        let b = p.apply_to_graph(&a);
        let r = isorank_align(
            &a,
            &b,
            &IsoRankConfig {
                top_k: 0,
                ..Default::default()
            },
        );
        // The middle vertex (the only degree-2 one) must map to the middle.
        let mid_a = (0..3u32).find(|&u| a.degree(u) == 2).unwrap();
        let mid_b = (0..3u32).find(|&v| b.degree(v) == 2).unwrap();
        assert_eq!(r.mapping[mid_a as usize], Some(mid_b));
    }

    #[test]
    fn deterministic() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = erdos_renyi_gnm(25, 60, &mut rng);
        let b = erdos_renyi_gnm(25, 60, &mut rng);
        let r1 = isorank_align(&a, &b, &IsoRankConfig::default());
        let r2 = isorank_align(&a, &b, &IsoRankConfig::default());
        assert_eq!(r1.mapping, r2.mapping);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let a = CsrGraph::from_edges(2, &[(0, 1)]);
        let _ = isorank_align(
            &a,
            &a,
            &IsoRankConfig {
                alpha: 1.0,
                ..Default::default()
            },
        );
    }
}
