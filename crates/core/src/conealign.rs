//! The cone-align baseline (Chen et al., CIKM 2020) — the state of the art
//! the paper compares against (Figures 6 and 7).
//!
//! cuAlign and cone-align share the entire front half of the pipeline:
//! proximity embeddings and subspace alignment. They differ in the back
//! half — cone-align rounds the embedding similarities *directly* to an
//! alignment (kNN + matching), while cuAlign iterates belief propagation
//! against the overlap structure first. Implementing both ends on the
//! same embeddings isolates exactly the quality delta the paper reports
//! (up to 22%, Fig. 6).

use crate::config::AlignerConfig;
use crate::scoring::{score_alignment, AlignmentScores};
use cualign_embed::align_subspaces;
use cualign_graph::{CsrGraph, VertexId};
use cualign_matching::{locally_dominant_parallel, Matching};
use std::time::Instant;

/// Output of the cone-align baseline.
pub struct ConeAlignResult {
    /// The matching on the kNN similarity graph.
    pub matching: Matching,
    /// Vertex mapping extracted from the matching.
    pub mapping: Vec<Option<VertexId>>,
    /// Quality metrics.
    pub scores: AlignmentScores,
    /// Total wall-clock seconds.
    pub seconds: f64,
}

/// Runs cone-align: embeddings → subspace alignment → kNN graph →
/// maximum-similarity matching. Uses the same configuration object as the
/// full aligner so comparisons share every front-half parameter (the `bp`
/// section is ignored).
pub fn cone_align(a: &CsrGraph, b: &CsrGraph, cfg: &AlignerConfig) -> ConeAlignResult {
    let t = Instant::now();
    let y1 = cfg.embedding.embed(a);
    let y2 = cfg.embedding.with_seed_offset(0x9e3779b97f4a7c15).embed(b);
    let sub = align_subspaces(&y1, &y2, a, b, &cfg.subspace);
    let l = cfg.build_l(&sub.ya, &sub.yb);
    let matching = locally_dominant_parallel(&l);
    let mapping: Vec<Option<VertexId>> = (0..a.num_vertices())
        .map(|u| matching.mate_of_a(u as VertexId))
        .collect();
    let scores = score_alignment(a, b, &mapping);
    ConeAlignResult {
        matching,
        mapping,
        scores,
        seconds: t.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SparsityChoice;
    use crate::pipeline::Aligner;
    use cualign_graph::generators::duplication_divergence;
    use cualign_graph::permutation::AlignmentInstance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> AlignerConfig {
        use cualign_embed::{EmbeddingMethod, SpectralConfig};
        let mut cfg = AlignerConfig::default();
        cfg.embedding = EmbeddingMethod::Spectral(SpectralConfig {
            dim: 24,
            oversample: 12,
            ..Default::default()
        });
        cfg.bp.max_iters = 12;
        cfg.sparsity = SparsityChoice::K(6);
        cfg.subspace.anchors = 0;
        cfg
    }

    #[test]
    fn baseline_produces_valid_alignment() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = duplication_divergence(150, 0.45, 0.35, &mut rng);
        let inst = AlignmentInstance::permuted_pair(a, &mut rng);
        let r = cone_align(&inst.a, &inst.b, &cfg());
        assert!(r.scores.ncv > 0.5, "ncv {}", r.scores.ncv);
        assert!(r.seconds > 0.0);
        assert_eq!(r.mapping.len(), 150);
    }

    #[test]
    fn cualign_beats_or_ties_baseline() {
        // The paper's central quality claim (Fig. 6): BP refinement
        // conserves at least as many edges as direct rounding, typically
        // far more.
        let mut rng = StdRng::seed_from_u64(2);
        let a = duplication_divergence(180, 0.45, 0.35, &mut rng);
        let inst = AlignmentInstance::permuted_pair(a, &mut rng);
        let cone = cone_align(&inst.a, &inst.b, &cfg());
        let cu = Aligner::new(cfg()).align(&inst.a, &inst.b);
        assert!(
            cu.scores.ncv_gs3 >= cone.scores.ncv_gs3 - 1e-9,
            "cuAlign {} < cone-align {}",
            cu.scores.ncv_gs3,
            cone.scores.ncv_gs3
        );
    }
}
