//! Sparsification density sweep — a scaled-down interactive version of the
//! paper's Figures 4 and 5: quality and runtime as a function of how much
//! of the complete bipartite candidate graph is retained.
//!
//! The full-scale reproduction (paper-sized inputs, all five graphs) is
//! `cargo run -p cualign-bench --bin fig4` / `--bin fig5`; this example
//! demonstrates the same two trends in under a minute.
//!
//! Run with:
//! ```text
//! cargo run --release --example density_sweep
//! ```

use cualign::{Aligner, AlignerConfig, SparsityChoice};
use cualign_graph::generators::powerlaw_configuration;
use cualign_graph::permutation::AlignmentInstance;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let a = powerlaw_configuration(1000, 3000, 2.5, &mut rng);
    let inst = AlignmentInstance::permuted_pair(a, &mut rng);
    println!(
        "input: |V| = {}, |E| = {}",
        inst.a.num_vertices(),
        inst.a.num_edges()
    );

    println!(
        "\n{:>8} | {:>8} | {:>9} | {:>8} | {:>9}",
        "density", "|E_L|", "nnz(S)", "NCV-GS3", "time (s)"
    );
    println!("{}", "-".repeat(55));
    for density in [0.01, 0.025, 0.05, 0.10] {
        let mut cfg = AlignerConfig::default();
        cfg.sparsity = SparsityChoice::Density(density);
        cfg.bp.max_iters = 15;
        let t = Instant::now();
        let r = Aligner::new(cfg).align(&inst.a, &inst.b);
        let secs = t.elapsed().as_secs_f64();
        println!(
            "{:>7.1}% | {:>8} | {:>9} | {:>8.4} | {:>9.2}",
            density * 100.0,
            r.l_edges,
            r.s_nnz,
            r.scores.ncv_gs3,
            secs
        );
    }
    println!("\nThe paper's two findings reproduce: quality does not improve (often");
    println!("degrades) with density, while runtime grows sharply — sparsification");
    println!("helps both quality and cost (Figures 4 and 5).");
}
