//! Sequential locally-dominant matching (Preis' algorithm, pointer form).
//!
//! Every vertex points at its most-preferred eligible incident edge
//! (positive weight, opposite endpoint unmatched). A mutual pointer pair is
//! a locally dominant edge and is committed. Committing an edge can change
//! the candidates of the endpoints' neighbors, so those neighbors re-enter
//! the worklist. Because eligibility only shrinks over time, a stored
//! candidate is stale only if its opposite endpoint got matched — which
//! always pushes the neighbor back onto the worklist, so staleness is
//! always repaired before it can be acted on.

use crate::matching::Matching;
use crate::prefer;
use cualign_graph::{BipartiteGraph, EdgeId, VertexId};

/// Global vertex index: A-side `a` ↦ `a`, B-side `b` ↦ `na + b`.
#[inline]
fn gv_a(a: VertexId) -> usize {
    a as usize
}
#[inline]
fn gv_b(l: &BipartiteGraph, b: VertexId) -> usize {
    l.na() + b as usize
}

/// Best eligible edge of a global vertex, under the crate preference order.
fn candidate(l: &BipartiteGraph, matched: &[bool], gv: usize) -> Option<EdgeId> {
    let na = l.na();
    let mut best: Option<EdgeId> = None;
    let mut consider = |e: EdgeId, other_gv: usize| {
        // NaN-weighted edges are excluded along with non-positive ones.
        let w = l.weights()[e as usize];
        if w <= 0.0 || w.is_nan() || matched[other_gv] {
            return;
        }
        match best {
            None => best = Some(e),
            Some(cur) => {
                if prefer(l, e, cur) {
                    best = Some(e);
                }
            }
        }
    };
    if gv < na {
        for (b, e) in l.incident_a(gv as VertexId) {
            consider(e, na + b as usize);
        }
    } else {
        for (a, e) in l.incident_b((gv - na) as VertexId) {
            consider(e, a as usize);
        }
    }
    best
}

/// Computes the locally dominant matching of `l` sequentially.
///
/// Only strictly positive edge weights are eligible (a maximum-weight
/// matching never contains a non-positive edge). The result is the unique
/// matching determined by the total preference order, maximal over
/// positive edges, and ½-approximate w.r.t. the maximum weight matching.
pub fn locally_dominant_serial(l: &BipartiteGraph) -> Matching {
    let nv = l.na() + l.nb();
    let mut matched = vec![false; nv];
    let mut chosen: Vec<EdgeId> = Vec::new();
    // Worklist of vertices whose candidate may have changed. Seed with all.
    let mut work: Vec<usize> = (0..nv).collect();

    while let Some(u) = work.pop() {
        if matched[u] {
            continue;
        }
        let Some(e) = candidate(l, &matched, u) else {
            continue;
        };
        let le = l.edge(e);
        let (gu, gvv) = (gv_a(le.a), gv_b(l, le.b));
        let v = if u == gu { gvv } else { gu };
        // Mutual check with a fresh candidate on the other side.
        if candidate(l, &matched, v) != Some(e) {
            // v prefers someone else; u will be re-pushed when v (or the
            // preferred vertex) matches.
            continue;
        }
        // Locally dominant: commit.
        matched[gu] = true;
        matched[gvv] = true;
        chosen.push(e);
        // Neighbors of both endpoints may need new candidates.
        for (b, _) in l.incident_a(le.a) {
            let w = gv_b(l, b);
            if !matched[w] {
                work.push(w);
            }
        }
        for (a, _) in l.incident_b(le.b) {
            let w = gv_a(a);
            if !matched[w] {
                work.push(w);
            }
        }
    }
    Matching::from_edge_ids(l, chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_matching;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_l(na: usize, nb: usize, m: usize, seed: u64) -> BipartiteGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let triples: Vec<(VertexId, VertexId, f64)> = (0..m)
            .map(|_| {
                (
                    rng.gen_range(0..na as VertexId),
                    rng.gen_range(0..nb as VertexId),
                    rng.gen::<f64>(),
                )
            })
            .collect();
        BipartiteGraph::from_weighted_edges(na, nb, &triples)
    }

    #[test]
    fn single_edge() {
        let l = BipartiteGraph::from_weighted_edges(1, 1, &[(0, 0, 1.0)]);
        let m = locally_dominant_serial(&l);
        assert_eq!(m.len(), 1);
        m.check_valid(&l).unwrap();
    }

    #[test]
    fn picks_heaviest_in_conflict() {
        // A0 can match B0 (w=1) or B1 (w=5); A1 can match B1 (w=2).
        let l = BipartiteGraph::from_weighted_edges(2, 2, &[(0, 0, 1.0), (0, 1, 5.0), (1, 1, 2.0)]);
        let m = locally_dominant_serial(&l);
        assert_eq!(m.mate_of_a(0), Some(1));
        // Once A0–B1 is committed, A1's only option (B1) is taken and A0's
        // lighter edge is unusable, so A1 and B0 stay unmatched.
        assert_eq!(m.mate_of_a(1), None);
        assert!((m.weight(&l) - 5.0).abs() < 1e-12);
        assert!(m.is_maximal(&l));
    }

    #[test]
    fn chain_propagation() {
        // Weights force a cascade: (0,0,w=3) dominant, then (1,1,w=2), then (2,2,w=1).
        let l = BipartiteGraph::from_weighted_edges(
            3,
            3,
            &[
                (0, 0, 3.0),
                (1, 0, 2.5),
                (1, 1, 2.0),
                (2, 1, 1.5),
                (2, 2, 1.0),
            ],
        );
        let m = locally_dominant_serial(&l);
        assert_eq!(m.mate_of_a(0), Some(0));
        assert_eq!(m.mate_of_a(1), Some(1));
        assert_eq!(m.mate_of_a(2), Some(2));
        assert!((m.weight(&l) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn ignores_nonpositive_edges() {
        let l =
            BipartiteGraph::from_weighted_edges(2, 2, &[(0, 0, -1.0), (0, 1, 0.0), (1, 1, 4.0)]);
        let m = locally_dominant_serial(&l);
        assert_eq!(m.len(), 1);
        assert_eq!(m.mate_of_a(1), Some(1));
        assert!(m.is_maximal(&l));
    }

    #[test]
    fn always_valid_and_maximal_on_random_graphs() {
        for seed in 0..10 {
            let l = random_l(40, 40, 300, seed);
            let m = locally_dominant_serial(&l);
            m.check_valid(&l).unwrap();
            assert!(m.is_maximal(&l), "seed {seed} not maximal");
        }
    }

    #[test]
    fn comparable_to_greedy() {
        // Locally-dominant and sorted-greedy produce the same matching when
        // preferences are strict (both commit globally heaviest remaining).
        for seed in 0..5 {
            let l = random_l(30, 30, 200, 100 + seed);
            let ld = locally_dominant_serial(&l);
            let gr = greedy_matching(&l);
            assert_eq!(ld, gr, "seed {seed}");
        }
    }

    #[test]
    fn empty_graph() {
        let l = BipartiteGraph::from_weighted_edges(3, 3, &[]);
        let m = locally_dominant_serial(&l);
        assert!(m.is_empty());
        assert!(m.is_maximal(&l));
    }
}
