//! Blocked-kNN kernel benchmark: the tiled-GEMM similarity sweep
//! ([`cualign_sparsify::knn_candidates`]) against the seed per-pair
//! kernel ([`cualign_sparsify::knn_candidates_reference`]) on planted
//! noisy embeddings, verifying bit-identical triples wherever the
//! reference runs. The default sink is `BENCH_knn.json` — one JSONL
//! record per `(n, d)` grid cell:
//!
//! ```text
//! cargo run --release -p cualign-bench --bin bench_knn
//! ```
//!
//! Knobs: `CUALIGN_BENCH_KNN_NS` / `CUALIGN_BENCH_KNN_DS` (comma-separated
//! grids, defaults `2000,10000,20000` / `64,128`), `CUALIGN_BENCH_KNN_K`
//! (default `10`), `CUALIGN_KNN_NAIVE_MAX` (default `10000`): above this
//! `n`, the quadratic per-pair reference is skipped and the record carries
//! `reference_s: null` — the blocked timing is still measured and the
//! equality check is covered by the smaller cells.

use std::io::Write;
use std::time::Instant;

use cualign_bench::json::JsonRecord;
use cualign_graph::VertexId;
use cualign_linalg::DenseMatrix;
use cualign_sparsify::{knn_candidates, knn_candidates_reference, KnnDirection};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 42;

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(v) if !v.is_empty() => v
            .split(',')
            .map(|s| s.trim().parse().expect("grid entries are integers"))
            .collect(),
        _ => default.to_vec(),
    }
}

/// Planted noisy pair: row `i` of B is a perturbed copy of row `i` of A,
/// so the workload has realistic near-duplicate structure.
fn planted(n: usize, d: usize, seed: u64) -> (DenseMatrix, DenseMatrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ya = DenseMatrix::gaussian(n, d, &mut rng);
    let mut yb = ya.clone();
    for x in yb.data_mut() {
        *x += 0.3 * (rng.gen::<f64>() - 0.5);
    }
    (ya, yb)
}

fn canon(mut v: Vec<(VertexId, VertexId, f64)>) -> Vec<(VertexId, VertexId, u64)> {
    v.sort_unstable_by(|x, y| x.0.cmp(&y.0).then(x.1.cmp(&y.1)));
    v.into_iter().map(|(a, b, w)| (a, b, w.to_bits())).collect()
}

fn main() {
    let ns = env_list("CUALIGN_BENCH_KNN_NS", &[2000, 10_000, 20_000]);
    let ds = env_list("CUALIGN_BENCH_KNN_DS", &[64, 128]);
    let k = cualign_bench::env_u64("CUALIGN_BENCH_KNN_K", 10) as usize;
    let naive_max = cualign_bench::env_u64("CUALIGN_KNN_NAIVE_MAX", 10_000) as usize;
    let out_path = std::env::var("CUALIGN_BENCH_KNN_OUT").unwrap_or("BENCH_knn.json".into());
    let reg = cualign_telemetry::global();

    println!("bench_knn: n grid {ns:?}, d grid {ds:?}, k = {k} (records -> {out_path})");
    let mut lines = Vec::new();
    let mut verified = 0usize;
    let mut unverified = 0usize;
    for &n in &ns {
        for &d in &ds {
            let (ya, yb) = planted(n, d, SEED ^ ((n as u64) << 8) ^ d as u64);

            let flops0 = reg.counter("linalg.gemm.flops").get();
            let tiles0 = reg.counter("sparsify.knn.tiles").get();
            let t = Instant::now();
            let blocked = knn_candidates(&ya, &yb, k, KnnDirection::AtoB);
            let blocked_s = t.elapsed().as_secs_f64();
            let flops = reg.counter("linalg.gemm.flops").get() - flops0;
            let tiles = reg.counter("sparsify.knn.tiles").get() - tiles0;

            let reference_s = if n <= naive_max {
                let t = Instant::now();
                let reference = knn_candidates_reference(&ya, &yb, k, KnnDirection::AtoB);
                let reference_s = t.elapsed().as_secs_f64();
                assert_eq!(
                    canon(blocked.clone()),
                    canon(reference),
                    "blocked kNN diverged from reference at n = {n}, d = {d}"
                );
                Some(reference_s)
            } else {
                None
            };

            let gflops = flops as f64 / blocked_s / 1e9;
            let mut rec = JsonRecord::new()
                .str("bench", "knn")
                .int("n", n)
                .int("d", d)
                .int("k", k)
                .int("triples", blocked.len())
                .num("blocked_s", blocked_s)
                .int("gemm_flops", flops as usize)
                .int("knn_tiles", tiles as usize)
                .num("gflops", gflops);
            match reference_s {
                Some(r) => {
                    verified += 1;
                    rec = rec
                        .num("reference_s", r)
                        .num("speedup", r / blocked_s)
                        .str("bit_identical", "yes");
                    println!(
                        "  n {n:>6}, d {d:>4}: blocked {blocked_s:>8.3}s ({gflops:>5.1} GF/s), \
                         reference {r:>8.3}s, speedup {:>5.1}x, bit-identical",
                        r / blocked_s
                    );
                }
                None => {
                    unverified += 1;
                    rec = rec.null("reference_s").null("speedup").str(
                        "bit_identical",
                        "unchecked (reference skipped above CUALIGN_KNN_NAIVE_MAX)",
                    );
                    // No speedup column here on purpose: without the
                    // reference run there is nothing to compare against,
                    // and this row must read as unverified, not as fast.
                    println!(
                        "  n {n:>6}, d {d:>4}: blocked {blocked_s:>8.3}s ({gflops:>5.1} GF/s), \
                         reference skipped -> UNVERIFIED (n > {naive_max}; raise \
                         CUALIGN_KNN_NAIVE_MAX to check)"
                    );
                }
            }
            lines.push(rec.finish());
        }
    }
    println!(
        "verified {verified}/{} cells bit-identical against the per-pair reference; \
         {unverified} UNVERIFIED (reference skipped above n = {naive_max})",
        verified + unverified
    );

    let mut f = std::fs::File::create(&out_path).expect("record sink is writable");
    for line in &lines {
        writeln!(f, "{line}").expect("record sink is writable");
    }
    println!("wrote {} records to {out_path}", lines.len());
}
