//! GraphBLAST-style sparse kernels with merge-based row balancing.
//!
//! The BP inner loops and the overlap-matrix build are, structurally,
//! masked SpMV / SpMM compositions over a CSR whose *pattern* is fixed
//! and whose *values* change every sweep (the paper's Listing 1; see
//! also the GraphBLAST decomposition cited in PAPERS.md). This module
//! is that kernel layer:
//!
//! * [`CsrPattern`] — a borrowed structure-only CSR view (offsets +
//!   column indices, no values),
//! * [`MergePlan`] — merge-path work partitioning: the flat nonzero
//!   range is cut into equal-nnz chunks so a skewed degree distribution
//!   cannot serialize a sweep on one hot row,
//! * value kernels — [`spmv`], [`spmm`], [`masked_spmv`],
//!   [`mask_apply`], plus the functional forms the BP engine composes:
//!   [`row_map_reduce`] (fused map + row-sum, Listing 1's shape),
//!   [`map_values`] / [`reduce_rows`] (the unfused pair),
//!   [`row_scaled_map`] (rank-1 row update), [`exclusion_max`]
//!   (grouped othermax) and [`exclusion_max_apply`] (othermax fused
//!   with a two-output epilogue).
//!
//! # Exactness contract
//!
//! Every kernel here is **bitwise identical** to its `*_reference`
//! oracle (pinned in `docs/oracle_manifest.txt`, property-tested in
//! `tests/prop_sparse.rs`). f64 addition is not associative, so the
//! merge chunks are never allowed to combine partial sums: each output
//! row's value is always the one sequential left-to-right chain over
//! that row's nonzeros, starting from `0.0`, exactly as the naive loop
//! computes it.
//!
//! Two mechanisms keep that true under parallel execution:
//!
//! 1. **Row ownership.** A row is *owned* by the chunk containing its
//!    first nonzero's flat index. Kernels whose inputs are read-only
//!    (`spmv`, `spmm`, `masked_spmv`, [`reduce_rows`],
//!    [`exclusion_max`]) have the owner walk the whole row — reading
//!    past its chunk boundary is safe — so the sequential chain never
//!    splits.
//! 2. **Straddle fixup.** [`row_map_reduce`] also *writes* the mapped
//!    values, and a row straddling a chunk boundary has its segments
//!    written by different chunks. The parallel pass reduces only rows
//!    fully contained in their owner's chunk; the few straddle rows
//!    (at most one per interior boundary, recorded in the plan) are
//!    re-summed serially afterwards from the materialized values — the
//!    same left-to-right chain over the same bits.
//!
//! Load balance: per-chunk work is `chunk_nnz` plus at most one
//! partial row, so a single hot row costs its owner one row-length
//! reduction (inherent: the chain is sequential by contract) while all
//! other chunks stay busy on the rest of the matrix.

use rayon::prelude::*;

/// Default minimum nonzeros per merge chunk — below this, task
/// scheduling overhead beats any balancing win.
const MIN_CHUNK_NNZ: usize = 4096;

/// Chunks-per-rayon-thread target used by [`MergePlan::new`]; >1 so
/// chunks of unequal cost (partial rows, cache effects) still level out.
const CHUNKS_PER_THREAD: usize = 8;

/// A borrowed structure-only CSR view: row offsets plus column indices.
/// Values live in flat arrays owned by the caller (the BP messages
/// `f`/`sc`/`sp` are all parallel to one [`CsrPattern`]).
#[derive(Clone, Copy, Debug)]
pub struct CsrPattern<'a> {
    offsets: &'a [usize],
    cols: &'a [u32],
}

impl<'a> CsrPattern<'a> {
    /// Wraps `(offsets, cols)` as a CSR pattern.
    ///
    /// Requirements (asserted where O(rows), documented where O(nnz)):
    /// `offsets` is non-empty, starts at 0, is non-decreasing, and ends
    /// at `cols.len()`. The masked kernels ([`masked_spmv`],
    /// [`mask_apply`]) additionally require each row's columns to be
    /// strictly ascending (the overlap CSR guarantees this).
    ///
    /// # Panics
    /// Panics if the offsets are malformed.
    pub fn new(offsets: &'a [usize], cols: &'a [u32]) -> Self {
        assert!(!offsets.is_empty(), "offsets must have ≥ 1 entry");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        assert_eq!(
            *offsets.last().unwrap_or(&0),
            cols.len(),
            "offsets must end at nnz"
        );
        CsrPattern { offsets, cols }
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of structural nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// Row offsets (`num_rows + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &'a [usize] {
        self.offsets
    }

    /// Flat column indices.
    #[inline]
    pub fn cols(&self) -> &'a [u32] {
        self.cols
    }

    /// Column indices of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &'a [u32] {
        &self.cols[self.offsets[r]..self.offsets[r + 1]]
    }
}

/// One equal-nnz work chunk of a [`MergePlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MergeChunk {
    /// First flat nonzero index of the chunk.
    pub begin: usize,
    /// One past the last flat nonzero index.
    pub end: usize,
    /// The row containing flat index `begin` (the last row whose start
    /// offset is ≤ `begin`; empty rows at the boundary are skipped).
    pub head_row: usize,
    /// First row *owned* by this chunk (first row whose start offset
    /// falls in `[begin, end)`).
    pub first_owned: usize,
    /// Number of owned rows. The last chunk also owns any trailing
    /// empty rows. Ownership partitions the row set across chunks.
    pub owned_rows: usize,
}

impl MergeChunk {
    /// Length of the flat nonzero span covered by this chunk's owned
    /// rows (`[offsets[first_owned], offsets[first_owned + owned_rows])`).
    /// Owned spans tile `[0, nnz)` across the plan's chunks.
    #[inline]
    pub fn owned_span_len(&self, offsets: &[usize]) -> usize {
        offsets[self.first_owned + self.owned_rows] - offsets[self.first_owned]
    }
}

/// Merge-path partition of a CSR's flat nonzero range into equal-nnz
/// chunks, precomputed once per (pattern, sweep-loop) pairing so the
/// per-sweep kernels allocate nothing proportional to the problem.
#[derive(Clone, Debug)]
pub struct MergePlan {
    chunks: Vec<MergeChunk>,
    /// Rows split across a chunk boundary, ascending, deduplicated.
    straddle: Vec<usize>,
    num_rows: usize,
    nnz: usize,
}

impl MergePlan {
    /// Builds a plan with a chunk size derived from the rayon pool
    /// ([`CHUNKS_PER_THREAD`] chunks per thread, at least
    /// [`MIN_CHUNK_NNZ`] nonzeros per chunk).
    ///
    /// # Panics
    /// Panics if `offsets` is not a valid CSR offset array.
    pub fn new(offsets: &[usize]) -> Self {
        let nnz = offsets.last().copied().unwrap_or(0);
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        let target = (threads * CHUNKS_PER_THREAD).max(1);
        let chunk = nnz.div_ceil(target).max(MIN_CHUNK_NNZ);
        Self::with_chunk_nnz(offsets, chunk)
    }

    /// Builds a plan with an explicit chunk size (exposed for tests and
    /// for the GPU cost model, which charges per merge chunk).
    ///
    /// # Panics
    /// Panics if `offsets` is not a valid CSR offset array or
    /// `chunk_nnz == 0`.
    pub fn with_chunk_nnz(offsets: &[usize], chunk_nnz: usize) -> Self {
        assert!(!offsets.is_empty(), "offsets must have ≥ 1 entry");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        assert!(chunk_nnz > 0, "chunk_nnz must be positive");
        let num_rows = offsets.len() - 1;
        let nnz = offsets[num_rows];
        // Row start offsets — the ownership search domain.
        let starts = &offsets[..num_rows];

        if nnz == 0 {
            return MergePlan {
                chunks: vec![MergeChunk {
                    begin: 0,
                    end: 0,
                    head_row: 0,
                    first_owned: 0,
                    owned_rows: num_rows,
                }],
                straddle: Vec::new(),
                num_rows,
                nnz,
            };
        }

        let n_chunks = nnz.div_ceil(chunk_nnz);
        let mut chunks = Vec::with_capacity(n_chunks);
        let mut straddle = Vec::new();
        for ci in 0..n_chunks {
            let begin = ci * chunk_nnz;
            let end = ((ci + 1) * chunk_nnz).min(nnz);
            // Last row with start ≤ begin; offsets[0] = 0 ≤ begin keeps
            // the subtraction safe, and `partition_point` guarantees
            // offsets[head_row + 1] > begin.
            let head_row = offsets.partition_point(|&o| o <= begin) - 1;
            let first_owned = starts.partition_point(|&o| o < begin);
            let owned_end = if ci == n_chunks - 1 {
                // Trailing empty rows (start == nnz) go to the last chunk.
                num_rows
            } else {
                starts.partition_point(|&o| o < end)
            };
            chunks.push(MergeChunk {
                begin,
                end,
                head_row,
                first_owned,
                owned_rows: owned_end - first_owned,
            });
            if ci > 0 && offsets[head_row] < begin {
                // `begin` falls strictly inside head_row: that row is
                // split across the boundary. A hot row spanning many
                // chunks shows up once (dedup by the ascending walk).
                if straddle.last() != Some(&head_row) {
                    straddle.push(head_row);
                }
            }
        }
        MergePlan {
            chunks,
            straddle,
            num_rows,
            nnz,
        }
    }

    /// The work chunks, in flat-index order.
    #[inline]
    pub fn chunks(&self) -> &[MergeChunk] {
        &self.chunks
    }

    /// Rows split across chunk boundaries (ascending, deduplicated) —
    /// the rows [`row_map_reduce`] re-sums serially after its parallel
    /// pass.
    #[inline]
    pub fn straddle_rows(&self) -> &[usize] {
        &self.straddle
    }

    /// Number of rows of the planned pattern.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of nonzeros of the planned pattern.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Asserts the plan was built for a pattern with these offsets.
    #[inline]
    fn check_shape(&self, offsets: &[usize]) {
        assert_eq!(self.num_rows, offsets.len() - 1, "plan/pattern row mismatch");
        assert_eq!(self.nnz, offsets[offsets.len() - 1], "plan/pattern nnz mismatch");
    }
}

/// Splits `data` into consecutive mutable parts of the given lengths.
/// The lengths must sum to `data.len()`.
fn split_by_lens<'v, T>(
    mut data: &'v mut [T],
    lens: impl Iterator<Item = usize>,
) -> Vec<&'v mut [T]> {
    let out: Vec<&'v mut [T]> = lens
        .map(|len| {
            let (head, tail) = std::mem::take(&mut data).split_at_mut(len);
            data = tail;
            head
        })
        .collect();
    assert!(data.is_empty(), "split lengths must cover the slice");
    out
}

/// Per-owned-row mutable output parts: chunk `i` gets
/// `y[first_owned_i .. first_owned_i + owned_rows_i]`.
fn split_owned_rows<'v, T>(plan: &MergePlan, y: &'v mut [T]) -> Vec<&'v mut [T]> {
    split_by_lens(y, plan.chunks.iter().map(|c| c.owned_rows))
}

/// Per-chunk flat mutable output parts: chunk `i` gets
/// `vals[begin_i .. end_i]`.
fn split_chunk_flat<'v, T>(plan: &MergePlan, vals: &'v mut [T]) -> Vec<&'v mut [T]> {
    split_by_lens(vals, plan.chunks.iter().map(|c| c.end - c.begin))
}

/// Per-owned-span flat mutable output parts: chunk `i` gets the flat
/// span covered by its owned rows (row-aligned, tiles `[0, nnz)`).
fn split_owned_spans<'v, T>(plan: &MergePlan, offsets: &[usize], vals: &'v mut [T]) -> Vec<&'v mut [T]> {
    split_by_lens(vals, plan.chunks.iter().map(|c| c.owned_span_len(offsets)))
}

/// `y = S·x`: CSR sparse-matrix × dense-vector product, merge-balanced.
/// Bitwise identical to [`spmv_reference`] (each row is one sequential
/// left-to-right chain computed by its owner chunk).
///
/// # Panics
/// Panics on dimension mismatches between pattern, plan, `x` and `y`.
pub fn spmv(pattern: &CsrPattern, plan: &MergePlan, vals: &[f64], x: &[f64], y: &mut [f64]) {
    plan.check_shape(pattern.offsets());
    assert_eq!(vals.len(), pattern.nnz(), "vals length mismatch");
    assert_eq!(y.len(), pattern.num_rows(), "output length mismatch");
    let offsets = pattern.offsets();
    let cols = pattern.cols();
    let parts = split_owned_rows(plan, y);
    plan.chunks()
        .par_iter()
        .zip(parts)
        .for_each(|(c, yc)| {
            for (i, yv) in yc.iter_mut().enumerate() {
                let r = c.first_owned + i;
                let mut sum = 0.0;
                for j in offsets[r]..offsets[r + 1] {
                    sum += vals[j] * x[cols[j] as usize];
                }
                *yv = sum;
            }
        });
}

/// Serial oracle for [`spmv`]: the naive row loop.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn spmv_reference(pattern: &CsrPattern, vals: &[f64], x: &[f64], y: &mut [f64]) {
    assert_eq!(vals.len(), pattern.nnz(), "vals length mismatch");
    assert_eq!(y.len(), pattern.num_rows(), "output length mismatch");
    let offsets = pattern.offsets();
    let cols = pattern.cols();
    for (r, yv) in y.iter_mut().enumerate() {
        let mut sum = 0.0;
        for j in offsets[r]..offsets[r + 1] {
            sum += vals[j] * x[cols[j] as usize];
        }
        *yv = sum;
    }
}

/// `Y = S·X`: CSR sparse × dense (row-major `num_cols × k`) product into
/// row-major `num_rows × k`. Merge-balanced, bitwise identical to
/// [`spmm_reference`].
///
/// # Panics
/// Panics on dimension mismatches or `k == 0` with non-empty outputs.
pub fn spmm(pattern: &CsrPattern, plan: &MergePlan, vals: &[f64], x: &[f64], k: usize, y: &mut [f64]) {
    plan.check_shape(pattern.offsets());
    assert_eq!(vals.len(), pattern.nnz(), "vals length mismatch");
    assert_eq!(y.len(), pattern.num_rows() * k, "output shape mismatch");
    assert_eq!(x.len() % k.max(1), 0, "dense operand shape mismatch");
    let offsets = pattern.offsets();
    let cols = pattern.cols();
    let parts = split_by_lens(y, plan.chunks().iter().map(|c| c.owned_rows * k));
    plan.chunks()
        .par_iter()
        .zip(parts)
        .for_each(|(c, yc)| {
            for i in 0..c.owned_rows {
                let r = c.first_owned + i;
                let yrow = &mut yc[i * k..(i + 1) * k];
                yrow.fill(0.0);
                for j in offsets[r]..offsets[r + 1] {
                    let v = vals[j];
                    let xrow = &x[cols[j] as usize * k..(cols[j] as usize + 1) * k];
                    for (yv, xv) in yrow.iter_mut().zip(xrow) {
                        *yv += v * xv;
                    }
                }
            }
        });
}

/// Serial oracle for [`spmm`]: same accumulation order, one row at a
/// time.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn spmm_reference(pattern: &CsrPattern, vals: &[f64], x: &[f64], k: usize, y: &mut [f64]) {
    assert_eq!(vals.len(), pattern.nnz(), "vals length mismatch");
    assert_eq!(y.len(), pattern.num_rows() * k, "output shape mismatch");
    let offsets = pattern.offsets();
    let cols = pattern.cols();
    for r in 0..pattern.num_rows() {
        let yrow = &mut y[r * k..(r + 1) * k];
        yrow.fill(0.0);
        for j in offsets[r]..offsets[r + 1] {
            let v = vals[j];
            let xrow = &x[cols[j] as usize * k..(cols[j] as usize + 1) * k];
            for (yv, xv) in yrow.iter_mut().zip(xrow) {
                *yv += v * xv;
            }
        }
    }
}

/// Masked SpMV: `y[r] = Σ vals[j]·x[cols[j]]` over the nonzeros of row
/// `r` whose column also appears in row `r` of `mask` ("accumulate only
/// where the mask has a nonzero"). Both patterns must share the row
/// count and have strictly ascending rows; the survivors keep CSR
/// order, so the chain matches [`masked_spmv_reference`] bitwise.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn masked_spmv(
    pattern: &CsrPattern,
    mask: &CsrPattern,
    plan: &MergePlan,
    vals: &[f64],
    x: &[f64],
    y: &mut [f64],
) {
    plan.check_shape(pattern.offsets());
    assert_eq!(mask.num_rows(), pattern.num_rows(), "mask row mismatch");
    assert_eq!(vals.len(), pattern.nnz(), "vals length mismatch");
    assert_eq!(y.len(), pattern.num_rows(), "output length mismatch");
    let offsets = pattern.offsets();
    let cols = pattern.cols();
    let parts = split_owned_rows(plan, y);
    plan.chunks()
        .par_iter()
        .zip(parts)
        .for_each(|(c, yc)| {
            for (i, yv) in yc.iter_mut().enumerate() {
                let r = c.first_owned + i;
                let mrow = mask.row(r);
                let mut mi = 0usize;
                let mut sum = 0.0;
                for j in offsets[r]..offsets[r + 1] {
                    let col = cols[j];
                    // Two-pointer merge: both rows ascend.
                    while mi < mrow.len() && mrow[mi] < col {
                        mi += 1;
                    }
                    if mi < mrow.len() && mrow[mi] == col {
                        sum += vals[j] * x[col as usize];
                    }
                }
                *yv = sum;
            }
        });
}

/// Serial oracle for [`masked_spmv`]: per-entry binary search into the
/// mask row — same surviving entries in the same order.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn masked_spmv_reference(
    pattern: &CsrPattern,
    mask: &CsrPattern,
    vals: &[f64],
    x: &[f64],
    y: &mut [f64],
) {
    assert_eq!(mask.num_rows(), pattern.num_rows(), "mask row mismatch");
    assert_eq!(vals.len(), pattern.nnz(), "vals length mismatch");
    assert_eq!(y.len(), pattern.num_rows(), "output length mismatch");
    let offsets = pattern.offsets();
    let cols = pattern.cols();
    for (r, yv) in y.iter_mut().enumerate() {
        let mrow = mask.row(r);
        let mut sum = 0.0;
        for j in offsets[r]..offsets[r + 1] {
            if mrow.binary_search(&cols[j]).is_ok() {
                sum += vals[j] * x[cols[j] as usize];
            }
        }
        *yv = sum;
    }
}

/// Structural-mask apply: `out[j] = vals[j]` where `cols[j]` appears in
/// the mask row, else `0.0`. No arithmetic — the parallel and reference
/// versions are trivially identical.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn mask_apply(
    pattern: &CsrPattern,
    mask: &CsrPattern,
    plan: &MergePlan,
    vals: &[f64],
    out: &mut [f64],
) {
    plan.check_shape(pattern.offsets());
    assert_eq!(mask.num_rows(), pattern.num_rows(), "mask row mismatch");
    assert_eq!(vals.len(), pattern.nnz(), "vals length mismatch");
    assert_eq!(out.len(), pattern.nnz(), "output length mismatch");
    let offsets = pattern.offsets();
    let cols = pattern.cols();
    let parts = split_owned_spans(plan, offsets, out);
    plan.chunks()
        .par_iter()
        .zip(parts)
        .for_each(|(c, oc)| {
            let base = offsets[c.first_owned];
            for i in 0..c.owned_rows {
                let r = c.first_owned + i;
                let mrow = mask.row(r);
                let mut mi = 0usize;
                for j in offsets[r]..offsets[r + 1] {
                    let col = cols[j];
                    while mi < mrow.len() && mrow[mi] < col {
                        mi += 1;
                    }
                    oc[j - base] = if mi < mrow.len() && mrow[mi] == col {
                        vals[j]
                    } else {
                        0.0
                    };
                }
            }
        });
}

/// Serial oracle for [`mask_apply`].
///
/// # Panics
/// Panics on dimension mismatches.
pub fn mask_apply_reference(
    pattern: &CsrPattern,
    mask: &CsrPattern,
    vals: &[f64],
    out: &mut [f64],
) {
    assert_eq!(mask.num_rows(), pattern.num_rows(), "mask row mismatch");
    assert_eq!(vals.len(), pattern.nnz(), "vals length mismatch");
    assert_eq!(out.len(), pattern.nnz(), "output length mismatch");
    let offsets = pattern.offsets();
    let cols = pattern.cols();
    for r in 0..pattern.num_rows() {
        let mrow = mask.row(r);
        for j in offsets[r]..offsets[r + 1] {
            out[j] = if mrow.binary_search(&cols[j]).is_ok() {
                vals[j]
            } else {
                0.0
            };
        }
    }
}

/// Fused map + row-reduce (the shape of the paper's Listing 1): writes
/// `vals_out[j] = map(j)` for every flat nonzero index and
/// `y[r] = init(r) + Σ_j map(j)` (sequential chain) for every row.
///
/// Parallel pass: each chunk writes its flat `[begin, end)` segment and
/// reduces the rows fully contained in it; rows straddling a boundary
/// are re-summed serially afterwards from the materialized values —
/// same values, same order, so the result matches
/// [`row_map_reduce_reference`] bitwise.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn row_map_reduce(
    offsets: &[usize],
    plan: &MergePlan,
    map: impl Fn(usize) -> f64 + Sync,
    init: impl Fn(usize) -> f64 + Sync,
    vals_out: &mut [f64],
    y: &mut [f64],
) {
    plan.check_shape(offsets);
    assert_eq!(vals_out.len(), plan.nnz(), "vals_out length mismatch");
    assert_eq!(y.len(), plan.num_rows(), "output length mismatch");
    let val_parts = split_chunk_flat(plan, vals_out);
    let y_parts = split_owned_rows(plan, y);
    plan.chunks()
        .par_iter()
        .zip(val_parts)
        .zip(y_parts)
        .for_each(|((c, vc), yc)| {
            // Head segment: flat indices belonging to a row owned by an
            // earlier chunk (or to a row this chunk merely passes
            // through). Values only; the owner or the fixup reduces.
            let own_start = if c.owned_rows == 0 {
                c.end
            } else {
                offsets[c.first_owned]
            };
            let head_len = own_start.min(c.end) - c.begin;
            for (slot, j) in vc[..head_len].iter_mut().zip(c.begin..) {
                *slot = map(j);
            }
            for (i, yv) in yc.iter_mut().enumerate() {
                let r = c.first_owned + i;
                let rs = offsets[r];
                let re = offsets[r + 1];
                if re <= c.end {
                    // Fully contained: fuse the write with the reduce.
                    let mut sum = 0.0;
                    for (slot, j) in vc[rs - c.begin..re - c.begin].iter_mut().zip(rs..) {
                        let v = map(j);
                        *slot = v;
                        sum += v;
                    }
                    *yv = init(r) + sum;
                } else {
                    // Owner of a straddle row: write our segment, leave
                    // the reduction to the serial fixup below.
                    for (slot, j) in vc[rs - c.begin..].iter_mut().zip(rs..) {
                        *slot = map(j);
                    }
                }
            }
        });
    // Straddle fixup: the sequential chain over the materialized values.
    for &r in plan.straddle_rows() {
        let mut sum = 0.0;
        for &v in &vals_out[offsets[r]..offsets[r + 1]] {
            sum += v;
        }
        y[r] = init(r) + sum;
    }
}

/// Serial oracle for [`row_map_reduce`].
///
/// # Panics
/// Panics on dimension mismatches.
pub fn row_map_reduce_reference(
    offsets: &[usize],
    map: impl Fn(usize) -> f64,
    init: impl Fn(usize) -> f64,
    vals_out: &mut [f64],
    y: &mut [f64],
) {
    assert_eq!(y.len(), offsets.len() - 1, "output length mismatch");
    assert_eq!(
        vals_out.len(),
        offsets[offsets.len() - 1],
        "vals_out length mismatch"
    );
    for (r, yv) in y.iter_mut().enumerate() {
        let mut sum = 0.0;
        for j in offsets[r]..offsets[r + 1] {
            let v = map(j);
            vals_out[j] = v;
            sum += v;
        }
        *yv = init(r) + sum;
    }
}

/// Elementwise map over the flat nonzero range: `vals_out[j] = map(j)`.
/// The unfused first pass.
///
/// # Panics
/// Panics on a plan/output mismatch.
pub fn map_values(plan: &MergePlan, map: impl Fn(usize) -> f64 + Sync, vals_out: &mut [f64]) {
    assert_eq!(vals_out.len(), plan.nnz(), "vals_out length mismatch");
    let parts = split_chunk_flat(plan, vals_out);
    plan.chunks().par_iter().zip(parts).for_each(|(c, vc)| {
        for (slot, j) in vc.iter_mut().zip(c.begin..) {
            *slot = map(j);
        }
    });
}

/// Row reduction over materialized values: `y[r] = init(r) + Σ vals[j]`
/// (sequential chain). The unfused second pass; owners read whole rows,
/// so no fixup is needed. Bitwise identical to
/// [`reduce_rows_reference`].
///
/// # Panics
/// Panics on dimension mismatches.
pub fn reduce_rows(
    offsets: &[usize],
    plan: &MergePlan,
    vals: &[f64],
    init: impl Fn(usize) -> f64 + Sync,
    y: &mut [f64],
) {
    plan.check_shape(offsets);
    assert_eq!(vals.len(), plan.nnz(), "vals length mismatch");
    assert_eq!(y.len(), plan.num_rows(), "output length mismatch");
    let parts = split_owned_rows(plan, y);
    plan.chunks()
        .par_iter()
        .zip(parts)
        .for_each(|(c, yc)| {
            for (i, yv) in yc.iter_mut().enumerate() {
                let r = c.first_owned + i;
                let mut sum = 0.0;
                for &v in &vals[offsets[r]..offsets[r + 1]] {
                    sum += v;
                }
                *yv = init(r) + sum;
            }
        });
}

/// Serial oracle for [`reduce_rows`].
///
/// # Panics
/// Panics on dimension mismatches.
pub fn reduce_rows_reference(
    offsets: &[usize],
    vals: &[f64],
    init: impl Fn(usize) -> f64,
    y: &mut [f64],
) {
    assert_eq!(y.len(), offsets.len() - 1, "output length mismatch");
    for (r, yv) in y.iter_mut().enumerate() {
        let mut sum = 0.0;
        for &v in &vals[offsets[r]..offsets[r + 1]] {
            sum += v;
        }
        *yv = init(r) + sum;
    }
}

/// Row-scaled elementwise map: `out[j] = map(scalar(r), j)` for every
/// nonzero `j` of row `r` — the shape of BP's `Sᶜ` update, where the
/// per-row scalar `yᶜ+zᶜ−dᶜ` is broadcast down the row. `scalar` must
/// be pure: chunks sharing a straddle row each recompute it (identical
/// bits, no cross-chunk traffic).
///
/// # Panics
/// Panics on dimension mismatches.
pub fn row_scaled_map(
    offsets: &[usize],
    plan: &MergePlan,
    scalar: impl Fn(usize) -> f64 + Sync,
    map: impl Fn(f64, usize) -> f64 + Sync,
    out: &mut [f64],
) {
    plan.check_shape(offsets);
    assert_eq!(out.len(), plan.nnz(), "output length mismatch");
    let parts = split_chunk_flat(plan, out);
    plan.chunks()
        .par_iter()
        .zip(parts)
        .for_each(|(c, oc)| {
            let mut r = c.head_row;
            let mut j = c.begin;
            while j < c.end {
                while offsets[r + 1] <= j {
                    r += 1;
                }
                let seg_end = offsets[r + 1].min(c.end);
                let v = scalar(r);
                for (slot, jj) in oc[j - c.begin..seg_end - c.begin].iter_mut().zip(j..) {
                    *slot = map(v, jj);
                }
                j = seg_end;
            }
        });
}

/// Serial oracle for [`row_scaled_map`].
///
/// # Panics
/// Panics on dimension mismatches.
pub fn row_scaled_map_reference(
    offsets: &[usize],
    scalar: impl Fn(usize) -> f64,
    map: impl Fn(f64, usize) -> f64,
    out: &mut [f64],
) {
    assert_eq!(
        out.len(),
        offsets[offsets.len() - 1],
        "output length mismatch"
    );
    for r in 0..offsets.len() - 1 {
        let v = scalar(r);
        for j in offsets[r]..offsets[r + 1] {
            out[j] = map(v, j);
        }
    }
}

/// Grouped exclusion-max (BP's `othermax`): positions are grouped by
/// `offsets` (a side-CSR of the bipartite graph), each position `p`
/// carries value `values[ids[p]]`, and `out[p]` becomes the maximum
/// over the *other* positions of its group — the runner-up for the
/// first argmax, `0.0` for singleton groups. Pure max selection, no FP
/// arithmetic, so parallel and reference agree bitwise by construction;
/// groups are owned whole by the chunk owning their start.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn exclusion_max(
    offsets: &[usize],
    plan: &MergePlan,
    ids: &[u32],
    values: &[f64],
    out: &mut [f64],
) {
    plan.check_shape(offsets);
    assert_eq!(ids.len(), plan.nnz(), "ids length mismatch");
    assert_eq!(out.len(), plan.nnz(), "output length mismatch");
    let parts = split_owned_spans(plan, offsets, out);
    plan.chunks()
        .par_iter()
        .zip(parts)
        .for_each(|(c, oc)| {
            let base = offsets[c.first_owned];
            for i in 0..c.owned_rows {
                let g = c.first_owned + i;
                let gs = offsets[g];
                let ge = offsets[g + 1];
                exclusion_max_group(&ids[gs..ge], values, &mut oc[gs - base..ge - base]);
            }
        });
}

/// Fused exclusion-max + positional epilogue: like [`exclusion_max`],
/// but instead of materializing the exclusion values it hands each one
/// to `apply` together with mutable references to the same position of
/// two output arrays — the shape of BP's A-side sweep tail, where
/// `zᶜ = dᶜ − om` and the damped `zᵖ` update consume the exclusion
/// value in place, skipping the scratch round-trip entirely.
///
/// `apply(p, om, o1, o2)` runs once per position `p` (left-to-right
/// within each group; groups are owned whole by their chunk), with `om`
/// carrying the identical bits [`exclusion_max`] would have written at
/// `p` — including the `0.0` of singleton groups. Bitwise identical to
/// [`exclusion_max_apply_reference`]: the max selection does no FP
/// arithmetic, and `apply` sees the same `(p, om)` pairs in both.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn exclusion_max_apply(
    offsets: &[usize],
    plan: &MergePlan,
    ids: &[u32],
    values: &[f64],
    apply: impl Fn(usize, f64, &mut f64, &mut f64) + Sync,
    out1: &mut [f64],
    out2: &mut [f64],
) {
    plan.check_shape(offsets);
    assert_eq!(ids.len(), plan.nnz(), "ids length mismatch");
    assert_eq!(out1.len(), plan.nnz(), "out1 length mismatch");
    assert_eq!(out2.len(), plan.nnz(), "out2 length mismatch");
    let parts1 = split_owned_spans(plan, offsets, out1);
    let parts2 = split_owned_spans(plan, offsets, out2);
    plan.chunks()
        .par_iter()
        .zip(parts1.into_iter().zip(parts2))
        .for_each(|(c, (oc1, oc2))| {
            let base = offsets[c.first_owned];
            for i in 0..c.owned_rows {
                let g = c.first_owned + i;
                let (gs, ge) = (offsets[g], offsets[g + 1]);
                exclusion_apply_group(
                    &ids[gs..ge],
                    values,
                    gs,
                    &apply,
                    &mut oc1[gs - base..ge - base],
                    &mut oc2[gs - base..ge - base],
                );
            }
        });
}

/// Serial oracle for [`exclusion_max_apply`].
///
/// # Panics
/// Panics on dimension mismatches.
pub fn exclusion_max_apply_reference(
    offsets: &[usize],
    ids: &[u32],
    values: &[f64],
    apply: impl Fn(usize, f64, &mut f64, &mut f64),
    out1: &mut [f64],
    out2: &mut [f64],
) {
    assert_eq!(
        out1.len(),
        offsets[offsets.len() - 1],
        "out1 length mismatch"
    );
    assert_eq!(out2.len(), out1.len(), "out2 length mismatch");
    assert_eq!(ids.len(), out1.len(), "ids length mismatch");
    for g in 0..offsets.len() - 1 {
        let (gs, ge) = (offsets[g], offsets[g + 1]);
        exclusion_apply_group(
            &ids[gs..ge],
            values,
            gs,
            &apply,
            &mut out1[gs..ge],
            &mut out2[gs..ge],
        );
    }
}

/// One group of the fused exclusion max: the same first-argmax /
/// runner-up selection as [`exclusion_max_group`], fed position by
/// position into `apply` instead of materialized.
#[inline]
fn exclusion_apply_group(
    ids: &[u32],
    values: &[f64],
    group_start: usize,
    apply: &impl Fn(usize, f64, &mut f64, &mut f64),
    out1: &mut [f64],
    out2: &mut [f64],
) {
    match ids.len() {
        0 => {}
        1 => apply(group_start, 0.0, &mut out1[0], &mut out2[0]),
        _ => {
            let mut max1 = f64::NEG_INFINITY;
            let mut pos1 = 0usize;
            let mut max2 = f64::NEG_INFINITY;
            for (i, &e) in ids.iter().enumerate() {
                let v = values[e as usize];
                if v > max1 {
                    max2 = max1;
                    max1 = v;
                    pos1 = i;
                } else if v > max2 {
                    max2 = v;
                }
            }
            for (i, (o1, o2)) in out1.iter_mut().zip(out2.iter_mut()).enumerate() {
                let om = if i == pos1 { max2 } else { max1 };
                apply(group_start + i, om, o1, o2);
            }
        }
    }
}

/// Serial oracle for [`exclusion_max`].
///
/// # Panics
/// Panics on dimension mismatches.
pub fn exclusion_max_reference(offsets: &[usize], ids: &[u32], values: &[f64], out: &mut [f64]) {
    assert_eq!(
        out.len(),
        offsets[offsets.len() - 1],
        "output length mismatch"
    );
    assert_eq!(ids.len(), out.len(), "ids length mismatch");
    for g in 0..offsets.len() - 1 {
        let (gs, ge) = (offsets[g], offsets[g + 1]);
        exclusion_max_group(&ids[gs..ge], values, &mut out[gs..ge]);
    }
}

/// One group of the exclusion max: positional output, first-argmax /
/// runner-up semantics matching the BP reference implementation.
#[inline]
fn exclusion_max_group(ids: &[u32], values: &[f64], out: &mut [f64]) {
    match ids.len() {
        0 => {}
        1 => out[0] = 0.0,
        _ => {
            let mut max1 = f64::NEG_INFINITY;
            let mut pos1 = 0usize;
            let mut max2 = f64::NEG_INFINITY;
            for (i, &e) in ids.iter().enumerate() {
                let v = values[e as usize];
                if v > max1 {
                    max2 = max1;
                    max1 = v;
                    pos1 = i;
                } else if v > max2 {
                    max2 = v;
                }
            }
            for (i, o) in out.iter_mut().enumerate() {
                *o = if i == pos1 { max2 } else { max1 };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr(rows: &[&[u32]]) -> (Vec<usize>, Vec<u32>) {
        let mut offsets = vec![0usize];
        let mut cols = Vec::new();
        for r in rows {
            cols.extend_from_slice(r);
            offsets.push(cols.len());
        }
        (offsets, cols)
    }

    fn ownership_is_a_partition(plan: &MergePlan) {
        let mut next = 0usize;
        for c in plan.chunks() {
            assert_eq!(c.first_owned, next, "ownership gap");
            next += c.owned_rows;
        }
        assert_eq!(next, plan.num_rows(), "ownership must cover all rows");
        let covered: usize = plan.chunks().iter().map(|c| c.end - c.begin).sum();
        assert_eq!(covered, plan.nnz(), "chunks must tile the nnz range");
    }

    #[test]
    fn plan_handles_empty_matrix() {
        let plan = MergePlan::with_chunk_nnz(&[0], 4);
        assert_eq!(plan.chunks().len(), 1);
        assert_eq!(plan.num_rows(), 0);
        ownership_is_a_partition(&plan);
    }

    #[test]
    fn plan_handles_all_empty_rows() {
        let plan = MergePlan::with_chunk_nnz(&[0, 0, 0, 0], 4);
        assert_eq!(plan.chunks().len(), 1);
        assert_eq!(plan.chunks()[0].owned_rows, 3);
        assert!(plan.straddle_rows().is_empty());
        ownership_is_a_partition(&plan);
    }

    #[test]
    fn plan_assigns_trailing_empty_rows_to_last_chunk() {
        // 2 nonzeros in row 0, then three empty rows.
        let plan = MergePlan::with_chunk_nnz(&[0, 2, 2, 2, 2], 1);
        ownership_is_a_partition(&plan);
        let last = plan.chunks().last().unwrap();
        assert!(last.owned_rows >= 3, "trailing empties must be owned");
    }

    #[test]
    fn plan_splits_hot_row_and_records_straddle() {
        // One hot row of 10 nonzeros between small rows.
        let (offsets, _) = csr(&[&[0], &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9], &[0]]);
        let plan = MergePlan::with_chunk_nnz(&offsets, 3);
        ownership_is_a_partition(&plan);
        assert_eq!(plan.straddle_rows(), &[1], "hot row recorded once");
        // The hot row is owned by exactly one chunk.
        let owners: Vec<_> = plan
            .chunks()
            .iter()
            .filter(|c| (c.first_owned..c.first_owned + c.owned_rows).contains(&1))
            .collect();
        assert_eq!(owners.len(), 1);
    }

    #[test]
    fn plan_chunk_nnz_one_is_valid() {
        let (offsets, _) = csr(&[&[0, 1], &[], &[2]]);
        let plan = MergePlan::with_chunk_nnz(&offsets, 1);
        ownership_is_a_partition(&plan);
        assert_eq!(plan.chunks().len(), 3);
    }

    #[test]
    fn head_row_contains_begin() {
        let (offsets, _) = csr(&[&[], &[0, 1, 2, 3, 4], &[], &[5], &[]]);
        for chunk_nnz in 1..=7 {
            let plan = MergePlan::with_chunk_nnz(&offsets, chunk_nnz);
            ownership_is_a_partition(&plan);
            for c in plan.chunks() {
                if c.begin < c.end {
                    assert!(offsets[c.head_row] <= c.begin);
                    assert!(offsets[c.head_row + 1] > c.begin);
                }
            }
        }
    }

    #[test]
    fn spmv_matches_reference_on_small() {
        let (offsets, cols) = csr(&[&[0, 2], &[], &[1, 2, 3], &[0]]);
        let pattern = CsrPattern::new(&offsets, &cols);
        let vals: Vec<f64> = (0..cols.len()).map(|j| 0.1 + j as f64).collect();
        let x = [1.5, -2.0, 0.25, 3.0];
        let mut fast = vec![0.0; 4];
        let mut slow = vec![0.0; 4];
        for chunk_nnz in [1, 2, 100] {
            let plan = MergePlan::with_chunk_nnz(&offsets, chunk_nnz);
            spmv(&pattern, &plan, &vals, &x, &mut fast);
            spmv_reference(&pattern, &vals, &x, &mut slow);
            assert_eq!(
                fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn row_map_reduce_fixes_up_straddle_rows() {
        let (offsets, _) = csr(&[&[0], &[0, 1, 2, 3, 4, 5, 6, 7], &[0]]);
        for chunk_nnz in [1, 2, 3, 64] {
            let plan = MergePlan::with_chunk_nnz(&offsets, chunk_nnz);
            let map = |j: usize| (j as f64 * 0.37).sin();
            let init = |r: usize| r as f64 * 0.5;
            let nnz = plan.nnz();
            let (mut vf, mut yf) = (vec![0.0; nnz], vec![0.0; 3]);
            let (mut vs, mut ys) = (vec![0.0; nnz], vec![0.0; 3]);
            row_map_reduce(&offsets, &plan, map, init, &mut vf, &mut yf);
            row_map_reduce_reference(&offsets, map, init, &mut vs, &mut ys);
            assert_eq!(
                yf.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                ys.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            assert_eq!(
                vf.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                vs.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn exclusion_max_matches_group_semantics() {
        // Groups: {0,1,2}, {3}, {}.
        let offsets = [0usize, 3, 4, 4];
        let ids = [0u32, 1, 2, 3];
        let values = [5.0, 3.0, 4.0, 7.0];
        let mut fast = vec![0.0; 4];
        let mut slow = vec![0.0; 4];
        let plan = MergePlan::with_chunk_nnz(&offsets, 2);
        exclusion_max(&offsets, &plan, &ids, &values, &mut fast);
        exclusion_max_reference(&offsets, &ids, &values, &mut slow);
        assert_eq!(fast, slow);
        assert_eq!(fast, vec![4.0, 5.0, 5.0, 0.0]);
    }
}
