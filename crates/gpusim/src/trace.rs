//! Address-trace validation of the footprint model.
//!
//! The launch simulator (`exec.rs`) *estimates* memory transactions from
//! per-item footprints. This module computes the ground truth for the
//! flagship kernel: it walks the fused `F`+`dᶜ` update (Listing 1) lane
//! by lane, strip by strip, generating the actual byte addresses each
//! virtual warp touches, and coalesces them into transactions exactly the
//! way a GPU memory controller segments a warp's requests. The test suite
//! checks the footprint estimates against these traced counts, so the
//! cost model's inputs are anchored to real access patterns rather than
//! to guesses.

use crate::device::DeviceSpec;
use cualign_graph::BipartiteGraph;
use cualign_overlap::OverlapMatrix;

/// Coalescing counter: segments each warp-wide access into
/// `transaction_bytes`-sized memory transactions.
#[derive(Debug)]
pub struct TraceCounter {
    transaction_bytes: u64,
    transactions: u64,
    scratch: Vec<u64>,
}

impl TraceCounter {
    /// Creates a counter for the device's transaction granularity.
    pub fn new(device: &DeviceSpec) -> Self {
        TraceCounter {
            transaction_bytes: device.transaction_bytes as u64,
            transactions: 0,
            scratch: Vec::new(),
        }
    }

    /// Registers one warp-wide access: every lane's byte address issued in
    /// the same cycle. Distinct `transaction_bytes` segments each cost one
    /// transaction.
    pub fn access_warp(&mut self, byte_addresses: &[u64]) {
        self.scratch.clear();
        self.scratch
            .extend(byte_addresses.iter().map(|a| a / self.transaction_bytes));
        self.scratch.sort_unstable();
        self.scratch.dedup();
        self.transactions += self.scratch.len() as u64;
    }

    /// Total transactions observed.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }
}

/// Disjoint base addresses for the arrays the fused kernel touches, so
/// traces never alias across arrays.
struct ArrayMap {
    w: u64,
    sp: u64,
    f: u64,
    dc: u64,
}

impl ArrayMap {
    fn for_instance(l: &BipartiteGraph, s: &OverlapMatrix) -> Self {
        let m = l.num_edges() as u64;
        let nnz = s.nnz() as u64;
        // Generous gaps keep segments distinct across arrays.
        let w = 0;
        let sp = w + 8 * m + 4096;
        let f = sp + 8 * nnz + 4096;
        let dc = f + 8 * nnz + 4096;
        ArrayMap { w, sp, f, dc }
    }
}

/// Traces the fused `F`+`dᶜ` kernel (Listing 1) over the real overlap
/// structure with `vw` lanes per row, returning the exact coalesced
/// transaction count.
///
/// Per row `i` of `S`, the virtual warp iterates strips of `vw` nonzeros:
/// lane `j` reads `Sᵖ[perm[start+j]]` (an indirection — the scattered
/// access of the model), writes `F[start+j]` (contiguous), and the warp
/// finally reads `w[i]` and writes `dᶜ[i]` once.
pub fn trace_fused_f_dc(
    l: &BipartiteGraph,
    s: &OverlapMatrix,
    device: &DeviceSpec,
    vw: usize,
) -> u64 {
    assert!(vw >= 1, "need at least one lane");
    let map = ArrayMap::for_instance(l, s);
    let mut counter = TraceCounter::new(device);
    let offsets = s.row_offsets();
    let perm = s.transpose_perm();

    let mut addrs: Vec<u64> = Vec::with_capacity(vw);
    for row in 0..s.num_rows() {
        let (start, end) = (offsets[row], offsets[row + 1]);
        let mut pos = start;
        while pos < end {
            let strip_end = (pos + vw).min(end);
            // Scattered read: sp[perm[j]] per lane.
            addrs.clear();
            addrs.extend((pos..strip_end).map(|j| map.sp + 8 * perm[j] as u64));
            counter.access_warp(&addrs);
            // Contiguous write: F[j] per lane.
            addrs.clear();
            addrs.extend((pos..strip_end).map(|j| map.f + 8 * j as u64));
            counter.access_warp(&addrs);
            pos = strip_end;
        }
        // Row epilogue: read w[row], write dc[row] (lane 0).
        counter.access_warp(&[map.w + 8 * row as u64]);
        counter.access_warp(&[map.dc + 8 * row as u64]);
    }
    counter.transactions()
}

/// The footprint model's transaction estimate for the same kernel (the
/// counts `exec.rs` derives from the fused footprint: scattered = one per
/// nonzero; contiguous = ⌈bytes/tb⌉ per row for `F`, plus the `w`/`dᶜ`
/// row scalars).
pub fn modeled_fused_f_dc(s: &OverlapMatrix, device: &DeviceSpec) -> u64 {
    let tb = device.transaction_bytes as u64;
    let mut total = 0u64;
    for row in 0..s.num_rows() {
        let sz = s.row_degree(row as u32) as u64;
        total += sz; // scattered sp reads
        total += (8 * sz).div_ceil(tb).max(if sz > 0 { 1 } else { 0 }); // F writes
        total += 2; // w read + dc write
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecConfig;
    use cualign_graph::generators::erdos_renyi_gnm;
    use cualign_graph::{Permutation, VertexId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn instance(n: usize, seed: u64) -> (BipartiteGraph, OverlapMatrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = erdos_renyi_gnm(n, n * 3, &mut rng);
        let p = Permutation::random(n, &mut rng);
        let b = p.apply_to_graph(&a);
        let mut triples = Vec::new();
        for i in 0..n as VertexId {
            triples.push((i, p.apply(i), 0.5));
            for _ in 0..5 {
                triples.push((i, rng.gen_range(0..n as VertexId), 0.5));
            }
        }
        let l = BipartiteGraph::from_weighted_edges(n, n, &triples);
        let s = OverlapMatrix::build(&a, &b, &l);
        (l, s)
    }

    #[test]
    fn counter_coalesces_contiguous() {
        let gpu = DeviceSpec::a100(); // 32-byte transactions = 4 f64
        let mut c = TraceCounter::new(&gpu);
        // 8 contiguous f64 from an aligned base = 2 transactions.
        let addrs: Vec<u64> = (0..8).map(|i| 1024 + 8 * i).collect();
        c.access_warp(&addrs);
        assert_eq!(c.transactions(), 2);
        // 8 scattered f64 (4 KiB apart) = 8 transactions.
        let addrs: Vec<u64> = (0..8u64).map(|i| 1 << (12 + i)).collect();
        c.access_warp(&addrs);
        assert_eq!(c.transactions(), 10);
    }

    #[test]
    fn trace_close_to_model_on_real_structure() {
        let (l, s) = instance(400, 1);
        let gpu = DeviceSpec::a100();
        let traced = trace_fused_f_dc(&l, &s, &gpu, 32);
        let modeled = modeled_fused_f_dc(&s, &gpu);
        let ratio = traced as f64 / modeled as f64;
        // The model over-counts scattered slightly (perm targets can
        // coalesce by accident) and under-counts strip-boundary splits;
        // the two must agree within ±35%.
        assert!(
            (0.65..=1.35).contains(&ratio),
            "trace {traced} vs model {modeled} (ratio {ratio})"
        );
    }

    #[test]
    fn exec_model_consistent_with_trace() {
        // The launch simulator's transaction count for the fused kernel
        // must also sit near the trace.
        use crate::exec::simulate_launch;
        use crate::footprint::Footprint;
        let (l, s) = instance(300, 2);
        let gpu = DeviceSpec::a100();
        let sizes: Vec<usize> = (0..s.num_rows()).map(|e| s.row_degree(e as u32)).collect();
        let stats = simulate_launch(&gpu, &ExecConfig::optimized(), &sizes, |sz| Footprint {
            contiguous_reads: 1,
            scattered_reads: sz,
            contiguous_writes: sz + 1,
            flops: 3 * sz + 2,
            ..Default::default()
        });
        let traced = trace_fused_f_dc(&l, &s, &gpu, 32);
        let ratio = stats.transactions() as f64 / traced as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "exec model {} vs trace {} (ratio {ratio})",
            stats.transactions(),
            traced
        );
    }

    #[test]
    fn narrower_virtual_warps_trace_more_row_transactions() {
        // With vw = 8 the F writes split into more strips than vw = 32 —
        // but each strip is smaller, so total contiguous segments are
        // similar; the scattered side is unchanged. Sanity: both traces
        // are positive and within 2× of each other.
        let (l, s) = instance(200, 3);
        let gpu = DeviceSpec::a100();
        let t8 = trace_fused_f_dc(&l, &s, &gpu, 8);
        let t32 = trace_fused_f_dc(&l, &s, &gpu, 32);
        assert!(t8 > 0 && t32 > 0);
        let ratio = t8 as f64 / t32 as f64;
        assert!((0.5..=2.0).contains(&ratio), "ratio {ratio}");
    }
}
