//! Heavy-edge-matching (HEM) graph coarsening — the contraction half of
//! the multilevel (coarsen–align–project–refine) pipeline.
//!
//! CAPER-style multilevel alignment wraps a base aligner: both input
//! graphs are repeatedly contracted, the expensive aligner runs only on
//! the coarsest pair, and the coarse matching is projected back down and
//! refined level by level (the driver lives in the core crate's
//! `multilevel` module). This module provides the contraction:
//!
//! * [`CoarseningHierarchy::build`] runs up to `L` HEM passes. Each pass
//!   computes a maximal matching that greedily prefers *heavy* edges
//!   (edge weights accumulate the multiplicity of collapsed fine edges,
//!   so later passes keep tightly-connected clusters together — the
//!   classic METIS heuristic) and contracts every matched pair into one
//!   coarse vertex.
//! * [`CoarseLevel`] records one contraction: the coarser graph, the
//!   fine→coarse [`CoarseLevel::merge_map`], its inverse
//!   ([`CoarseLevel::children_of`], at most two children per coarse
//!   vertex), and the accumulated edge/vertex weights the next pass and
//!   the refinement stage consume.
//!
//! Everything here is deterministic *and label-free*: the visit order
//! is `(degree, structural key)` and tie-breaks use
//! Weisfeiler–Lehman-style structural hashes rather than vertex ids, so
//! HEM makes the same decisions on isomorphic graphs regardless of how
//! their vertices are numbered (up to genuinely symmetric vertices).
//! This permutation-equivariance is what makes the multilevel wrapper
//! sound on the paper's self-alignment protocol (`B = P(A)`): both
//! hierarchies contract corresponding vertex pairs, so the coarsest
//! graphs are again a permuted pair. Coarsening stops early when a pass
//! stalls (shrink factor worse than [`CoarsenConfig::min_shrink`]) or
//! the graph falls below [`CoarsenConfig::min_vertices`], so the
//! returned depth can be less than the requested `L`.

use std::collections::HashMap;

use crate::csr::CsrGraph;
use crate::VertexId;

/// Sentinel for "not matched" in a HEM pass.
const UNMATCHED: VertexId = VertexId::MAX;

/// Parameters of a coarsening run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoarsenConfig {
    /// Stop coarsening once a graph has at most this many vertices.
    pub min_vertices: usize,
    /// Stop when a pass shrinks the vertex count by less than this
    /// factor (`coarse_n > min_shrink * fine_n` means the pass stalled —
    /// e.g. on a graph that is mostly isolated vertices).
    pub min_shrink: f64,
    /// Seed for the deterministic visit-order shuffle and tie-breaks.
    pub seed: u64,
}

impl Default for CoarsenConfig {
    fn default() -> Self {
        CoarsenConfig {
            min_vertices: 32,
            min_shrink: 0.95,
            seed: 0x5eed_c0a2,
        }
    }
}

/// One contraction step: the coarser graph plus the maps and weights
/// linking it to the finer graph it was built from.
#[derive(Clone, Debug)]
pub struct CoarseLevel {
    /// The contracted graph.
    pub graph: CsrGraph,
    /// For every fine vertex, the coarse vertex it was merged into.
    pub merge_map: Vec<VertexId>,
    /// Accumulated edge weights, aligned with `graph`'s CSR target
    /// array: a coarse edge's weight is the number of (weighted) fine
    /// edges collapsed onto it. Each undirected edge appears twice, once
    /// per direction, with the same weight.
    pub edge_weights: Vec<f64>,
    /// Number of *original* (level-0) vertices inside each coarse vertex.
    pub vertex_weights: Vec<u32>,
    /// CSR offsets of the inverse merge map.
    child_offsets: Vec<usize>,
    /// Fine children of each coarse vertex, grouped by `child_offsets`.
    children: Vec<VertexId>,
}

impl CoarseLevel {
    /// Fine vertices merged into coarse vertex `c` (one or two; sorted).
    pub fn children_of(&self, c: VertexId) -> &[VertexId] {
        &self.children[self.child_offsets[c as usize]..self.child_offsets[c as usize + 1]]
    }
}

/// A stack of [`CoarseLevel`]s: `levels()[0]` contracts the original
/// graph, `levels()[d-1].graph` is the coarsest graph.
#[derive(Clone, Debug)]
pub struct CoarseningHierarchy {
    levels: Vec<CoarseLevel>,
}

impl CoarseningHierarchy {
    /// Coarsens `g` up to `max_levels` times. May stop early (see the
    /// module docs); [`CoarseningHierarchy::depth`] reports how many
    /// contractions actually happened.
    pub fn build(g: &CsrGraph, max_levels: usize, cfg: &CoarsenConfig) -> Self {
        let mut levels: Vec<CoarseLevel> = Vec::new();
        let mut cur = g.clone();
        let mut edge_w: Vec<f64> = vec![1.0; cur.targets().len()];
        let mut vert_w: Vec<u32> = vec![1; cur.num_vertices()];
        for pass in 0..max_levels {
            let n = cur.num_vertices();
            if n <= cfg.min_vertices {
                break;
            }
            let pass_seed = cfg.seed ^ (pass as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mate = hem_match(&cur, &edge_w, pass_seed);
            let level = contract(&cur, &edge_w, &vert_w, &mate);
            if level.graph.num_vertices() as f64 > cfg.min_shrink * n as f64 {
                break;
            }
            cur = level.graph.clone();
            edge_w = level.edge_weights.clone();
            vert_w = level.vertex_weights.clone();
            levels.push(level);
        }
        CoarseningHierarchy { levels }
    }

    /// Number of contractions performed (0 = the graph was never
    /// coarsened).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// All levels, finest contraction first.
    pub fn levels(&self) -> &[CoarseLevel] {
        &self.levels
    }

    /// The `i`-th contraction (0-based, finest first).
    pub fn level(&self, i: usize) -> &CoarseLevel {
        &self.levels[i]
    }

    /// The coarsest graph, if any contraction happened.
    pub fn coarsest(&self) -> Option<&CsrGraph> {
        self.levels.last().map(|l| &l.graph)
    }
}


/// One HEM pass: returns `mate[v]` (or [`UNMATCHED`]). Vertices are
/// visited in `(degree, structural key)` order — low-degree fringe
/// first — and each unmatched vertex grabs its heaviest unmatched
/// neighbor (ties: smaller structural key, then smaller id).
fn hem_match(g: &CsrGraph, edge_weights: &[f64], seed: u64) -> Vec<VertexId> {
    let n = g.num_vertices();
    let keys = crate::wl::weighted_keys(g, edge_weights, 2, seed);
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_unstable_by_key(|&v| (g.degree(v), keys[v as usize], v));
    let mut mate = vec![UNMATCHED; n];
    let offsets = g.offsets();
    for &u in &order {
        if mate[u as usize] != UNMATCHED {
            continue;
        }
        let mut best: Option<(f64, u64, VertexId)> = None;
        for (i, &v) in g.neighbors(u).iter().enumerate() {
            if mate[v as usize] != UNMATCHED {
                continue;
            }
            let w = edge_weights[offsets[u as usize] + i];
            let h = keys[v as usize];
            let better = match best {
                None => true,
                Some((bw, bh, bv)) => w > bw || (w == bw && (h < bh || (h == bh && v < bv))),
            };
            if better {
                best = Some((w, h, v));
            }
        }
        if let Some((_, _, v)) = best {
            mate[u as usize] = v;
            mate[v as usize] = u;
        }
    }
    mate
}

/// Contracts `g` along `mate`, summing edge and vertex weights. Coarse
/// ids are assigned in ascending order of the smaller fine endpoint, so
/// the result is independent of the HEM visit order given the same
/// matching.
fn contract(
    g: &CsrGraph,
    edge_weights: &[f64],
    vertex_weights: &[u32],
    mate: &[VertexId],
) -> CoarseLevel {
    let n = g.num_vertices();
    let mut merge_map = vec![UNMATCHED; n];
    let mut coarse_n = 0usize;
    for u in 0..n {
        if merge_map[u] != UNMATCHED {
            continue;
        }
        let c = coarse_n as VertexId;
        coarse_n += 1;
        merge_map[u] = c;
        let m = mate[u];
        if m != UNMATCHED {
            merge_map[m as usize] = c;
        }
    }

    // Accumulate coarse edges (each undirected fine edge once, via u < v).
    let offsets = g.offsets();
    let mut acc: HashMap<(VertexId, VertexId), f64> = HashMap::new();
    for u in 0..n {
        for (i, &v) in g.neighbors(u as VertexId).iter().enumerate() {
            if (u as VertexId) >= v {
                continue;
            }
            let (cu, cv) = (merge_map[u], merge_map[v as usize]);
            if cu == cv {
                continue; // collapsed internal edge
            }
            let key = (cu.min(cv), cu.max(cv));
            *acc.entry(key).or_insert(0.0) += edge_weights[offsets[u] + i];
        }
    }
    let pairs: Vec<(VertexId, VertexId)> = acc.keys().copied().collect();
    let graph = CsrGraph::from_edges(coarse_n, &pairs);

    // Weights aligned to the coarse CSR (both directions).
    let mut cw = Vec::with_capacity(graph.targets().len());
    for cu in 0..coarse_n as VertexId {
        for &cv in graph.neighbors(cu) {
            let key = (cu.min(cv), cu.max(cv));
            cw.push(acc[&key]);
        }
    }

    let mut vw = vec![0u32; coarse_n];
    for u in 0..n {
        vw[merge_map[u] as usize] += vertex_weights[u];
    }

    // Inverse map as CSR (counting sort; children come out sorted).
    let mut child_offsets = vec![0usize; coarse_n + 1];
    for &c in &merge_map {
        child_offsets[c as usize + 1] += 1;
    }
    for i in 0..coarse_n {
        child_offsets[i + 1] += child_offsets[i];
    }
    let mut cursor = child_offsets.clone();
    let mut children = vec![0 as VertexId; n];
    for (u, &c) in merge_map.iter().enumerate() {
        children[cursor[c as usize]] = u as VertexId;
        cursor[c as usize] += 1;
    }

    CoarseLevel {
        graph,
        merge_map,
        edge_weights: cw,
        vertex_weights: vw,
        child_offsets,
        children,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi_gnm;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn er(n: usize, m: usize, seed: u64) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        erdos_renyi_gnm(n, m, &mut rng)
    }

    fn check_level(fine: &CsrGraph, level: &CoarseLevel) {
        let cn = level.graph.num_vertices();
        assert!(level.graph.check_invariants().is_ok());
        assert_eq!(level.merge_map.len(), fine.num_vertices());
        // merge_map is onto [0, cn) and consistent with children_of.
        for (u, &c) in level.merge_map.iter().enumerate() {
            assert!((c as usize) < cn);
            assert!(level.children_of(c).contains(&(u as VertexId)));
        }
        let mut total_children = 0usize;
        for c in 0..cn as VertexId {
            let kids = level.children_of(c);
            assert!(
                !kids.is_empty() && kids.len() <= 2,
                "HEM merges at most pairs"
            );
            total_children += kids.len();
        }
        assert_eq!(total_children, fine.num_vertices());
        // Edge weights align with the CSR and conserve total weight:
        // every fine edge is either internal or contributes to exactly
        // one coarse edge.
        assert_eq!(level.edge_weights.len(), level.graph.targets().len());
        assert!(level.edge_weights.iter().all(|&w| w >= 1.0));
    }

    #[test]
    fn er_graph_roughly_halves_per_level() {
        let g = er(600, 1800, 1);
        let h = CoarseningHierarchy::build(&g, 3, &CoarsenConfig::default());
        assert_eq!(h.depth(), 3);
        let mut prev = g.num_vertices();
        for level in h.levels() {
            let cn = level.graph.num_vertices();
            assert!(cn >= prev / 2, "HEM can at best halve: {cn} < {prev}/2");
            assert!(
                (cn as f64) < 0.75 * prev as f64,
                "poor shrink: {cn} of {prev}"
            );
            prev = cn;
        }
        check_level(&g, h.level(0));
        for i in 1..h.depth() {
            let fine = &h.level(i - 1).graph;
            check_level(fine, h.level(i));
        }
    }

    #[test]
    fn weight_totals_are_conserved_or_collapsed() {
        let g = er(200, 600, 2);
        let h = CoarseningHierarchy::build(&g, 2, &CoarsenConfig::default());
        // Level 0: fine edge weight total is |E|; the coarse total plus
        // the collapsed (internal) weight must equal it.
        let level = h.level(0);
        let coarse_total: f64 = level.edge_weights.iter().sum::<f64>() / 2.0;
        let internal: usize = g
            .edges()
            .filter(|&(u, v)| level.merge_map[u as usize] == level.merge_map[v as usize])
            .count();
        assert_eq!(coarse_total + internal as f64, g.num_edges() as f64);
        // Vertex weights always sum to the original vertex count.
        for level in h.levels() {
            let vsum: u32 = level.vertex_weights.iter().sum();
            assert_eq!(vsum as usize, g.num_vertices());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = er(300, 900, 3);
        let cfg = CoarsenConfig::default();
        let h1 = CoarseningHierarchy::build(&g, 3, &cfg);
        let h2 = CoarseningHierarchy::build(&g, 3, &cfg);
        assert_eq!(h1.depth(), h2.depth());
        for (a, b) in h1.levels().iter().zip(h2.levels()) {
            assert_eq!(a.merge_map, b.merge_map);
            assert_eq!(a.edge_weights, b.edge_weights);
            assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        }
        // A different seed picks a different matching on a graph this size.
        let other = CoarseningHierarchy::build(&g, 3, &CoarsenConfig { seed: 7, ..cfg });
        assert!(other
            .levels()
            .iter()
            .zip(h1.levels())
            .any(|(x, y)| x.merge_map != y.merge_map));
    }

    #[test]
    fn respects_min_vertices_floor() {
        let g = er(100, 300, 4);
        let cfg = CoarsenConfig {
            min_vertices: 40,
            ..CoarsenConfig::default()
        };
        let h = CoarseningHierarchy::build(&g, 10, &cfg);
        for level in h.levels().iter().rev().skip(1) {
            assert!(level.graph.num_vertices() > 40);
        }
        // The coarsest level is the first to dip to (or below) the floor.
        let coarsest = h.coarsest().expect("at least one level");
        assert!(coarsest.num_vertices() >= 20, "HEM at most halves");
    }

    #[test]
    fn tiny_graph_does_not_coarsen() {
        let g = er(20, 40, 5);
        let h = CoarseningHierarchy::build(&g, 3, &CoarsenConfig::default());
        assert_eq!(h.depth(), 0);
        assert!(h.coarsest().is_none());
    }

    #[test]
    fn path_graph_contracts_to_matched_pairs() {
        // 0-1-2-3: all edge weights 1, so HEM matches disjoint pairs and
        // the coarse graph is a single edge between two 2-vertex blobs.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let cfg = CoarsenConfig {
            min_vertices: 1,
            ..CoarsenConfig::default()
        };
        let h = CoarseningHierarchy::build(&g, 1, &cfg);
        assert_eq!(h.depth(), 1);
        let level = h.level(0);
        assert_eq!(level.graph.num_vertices(), 2);
        assert_eq!(level.graph.num_edges(), 1);
        assert_eq!(level.vertex_weights, vec![2, 2]);
        // The surviving coarse edge carries the one uncollapsed fine edge.
        assert_eq!(level.edge_weights, vec![1.0, 1.0]);
    }

    #[test]
    fn heavy_edges_are_preferred() {
        // Triangle 0-1-2 plus pendant 3 on vertex 2. After one level the
        // pair containing the triangle edge with accumulated weight gets
        // kept together on the next pass.
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (0, 2), (2, 3), (4, 5)]);
        let cfg = CoarsenConfig {
            min_vertices: 1,
            ..CoarsenConfig::default()
        };
        let h = CoarseningHierarchy::build(&g, 2, &cfg);
        assert!(h.depth() >= 1);
        // Whatever the matching, weights must accumulate: some coarse
        // edge at level 0 has weight >= 1 and totals are conserved.
        let level = h.level(0);
        let total: f64 = level.edge_weights.iter().sum::<f64>() / 2.0;
        assert!((1.0..=5.0).contains(&total));
    }
}
