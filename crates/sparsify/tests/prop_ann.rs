//! Property tests for the approximate sparsifier, pinning it to the
//! exact kernel as recall oracle (see `docs/oracle_manifest.txt`):
//! `ann_candidates` must (a) assign every pair it emits the exact
//! kernel's bit-identical weight, (b) reach a recall floor against
//! `knn_candidates` on clustered seeded inputs, (c) be deterministic
//! under a fixed seed, and (d) behave exactly on the degenerate
//! extremes — all-identical rows (one bucket ⇒ ANN ≡ exact) and
//! orthogonal rows (no false merges).
//!
//! All inputs come from a self-contained splitmix64 generator, so the
//! suite is bit-identical under the offline stub harness and real deps.

use std::collections::HashMap;

use cualign_graph::VertexId;
use cualign_linalg::DenseMatrix;
use cualign_sparsify::{ann_candidates, ann_recall, knn_candidates, AnnConfig, KnnDirection};

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn gauss(state: &mut u64) -> f64 {
    let mut acc = 0.0;
    for _ in 0..12 {
        acc += (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    }
    acc - 6.0
}

/// `clusters · per_cluster` rows around `clusters` gaussian centers with
/// per-coordinate noise `sigma` — the regime ANN is built for: exact
/// top-`k` neighbors live in the query's own cluster, and recall against
/// them is a meaningful target. (On fully isotropic data the exact
/// top-`k` includes essentially arbitrary far-away rows, which *no*
/// sublinear method recovers; `docs/APPROXIMATION.md` spells this out.)
fn clustered(
    clusters: usize,
    per_cluster: usize,
    d: usize,
    sigma: f64,
    center_seed: u64,
    member_seed: u64,
) -> DenseMatrix {
    let mut cstate = center_seed ^ 0xc1u64;
    let centers: Vec<f64> = (0..clusters * d).map(|_| gauss(&mut cstate)).collect();
    let mut mstate = member_seed ^ 0x3fu64;
    let mut data = Vec::with_capacity(clusters * per_cluster * d);
    for c in 0..clusters {
        for _ in 0..per_cluster {
            for j in 0..d {
                data.push(centers[c * d + j] + sigma * gauss(&mut mstate));
            }
        }
    }
    DenseMatrix::from_vec(clusters * per_cluster, d, data)
}

#[test]
fn recall_meets_threshold_on_clustered_inputs() {
    for seed in [1u64, 2, 3] {
        // Shared centers, independent per-member noise: each query's exact
        // top-k lives in its own planted cluster, so recall is meaningful.
        let ya = clustered(40, 16, 32, 0.05, seed, seed ^ 0xaaaa);
        let yb = clustered(40, 16, 32, 0.05, seed, seed ^ 0xb0b);
        let cfg = AnnConfig {
            k: 8,
            bands: 16,
            bits: 8,
            probes: 2,
            ..AnnConfig::default()
        };
        for direction in [KnnDirection::AtoB, KnnDirection::BtoA] {
            let ann = ann_candidates(&ya, &yb, &cfg, direction);
            let exact = knn_candidates(&ya, &yb, cfg.k, direction);
            let recall = ann_recall(&ann, &exact);
            assert!(
                recall >= 0.9,
                "recall {recall:.4} below floor (seed {seed}, {direction:?})"
            );
        }
    }
}

#[test]
fn ann_weights_are_bitwise_exact_for_every_emitted_pair() {
    let ya = clustered(10, 6, 16, 0.1, 7, 70);
    let yb = clustered(10, 6, 16, 0.1, 7, 80);
    let nb = yb.rows();
    // k = nb makes the exact kernel score *every* pair, giving a full
    // oracle table for the subset ANN emits.
    let all: HashMap<(VertexId, VertexId), u64> = knn_candidates(&ya, &yb, nb, KnnDirection::AtoB)
        .into_iter()
        .map(|(a, b, w)| ((a, b), w.to_bits()))
        .collect();
    let cfg = AnnConfig {
        k: 5,
        bands: 8,
        bits: 6,
        probes: 2,
        ..AnnConfig::default()
    };
    let ann = ann_candidates(&ya, &yb, &cfg, KnnDirection::AtoB);
    assert!(!ann.is_empty());
    for (a, b, w) in ann {
        assert_eq!(
            Some(&w.to_bits()),
            all.get(&(a, b)),
            "pair ({a}, {b}) weight differs from the exact kernel"
        );
    }
}

#[test]
fn deterministic_under_fixed_seed() {
    let ya = clustered(8, 8, 12, 0.2, 11, 110);
    let yb = clustered(8, 8, 12, 0.2, 11, 120);
    let cfg = AnnConfig::default();
    for direction in [KnnDirection::AtoB, KnnDirection::BtoA] {
        let first = ann_candidates(&ya, &yb, &cfg, direction);
        let second = ann_candidates(&ya, &yb, &cfg, direction);
        assert_eq!(first, second);
    }
}

#[test]
fn all_identical_rows_collapse_to_one_bucket_and_match_exact() {
    // Every row identical ⇒ identical signatures in every band ⇒ one
    // bucket holding everything ⇒ the candidate set is complete and the
    // ANN result equals the exact kernel's bit for bit, ties included.
    let row: Vec<f64> = (0..12).map(|j| (j as f64) * 0.25 - 1.0).collect();
    let data: Vec<f64> = (0..30).flat_map(|_| row.clone()).collect();
    let ya = DenseMatrix::from_vec(30, 12, data.clone());
    let yb = DenseMatrix::from_vec(30, 12, data);
    let cfg = AnnConfig {
        k: 4,
        ..AnnConfig::default()
    };
    let ann = ann_candidates(&ya, &yb, &cfg, KnnDirection::AtoB);
    let exact = knn_candidates(&ya, &yb, cfg.k, KnnDirection::AtoB);
    assert_eq!(ann, exact);
    assert_eq!(ann_recall(&ann, &exact), 1.0);
}

#[test]
fn orthogonal_rows_produce_no_false_merges() {
    // ya = yb = I₃₂: all cross pairs are exactly orthogonal (cos 0,
    // weight 0.5); each self pair has cos 1 (weight 1). Identical
    // embeddings hash identically, so every self pair collides with
    // itself in every band and must be present and ranked first; no
    // returned weight may exceed the orthogonal baseline otherwise.
    let n = 32;
    let mut data = vec![0.0f64; n * n];
    for i in 0..n {
        data[i * n + i] = 1.0;
    }
    let ya = DenseMatrix::from_vec(n, n, data.clone());
    let yb = DenseMatrix::from_vec(n, n, data);
    let cfg = AnnConfig {
        k: 3,
        ..AnnConfig::default()
    };
    let ann = ann_candidates(&ya, &yb, &cfg, KnnDirection::AtoB);
    for q in 0..n as VertexId {
        let first = ann
            .iter()
            .find(|t| t.0 == q)
            .expect("every row collides with its own copy");
        assert_eq!(first.1, q, "row {q}: a false merge outranked the true pair");
        assert_eq!(first.2, 1.0);
    }
    for &(a, b, w) in &ann {
        let expected = if a == b { 1.0 } else { 0.5 };
        assert_eq!(w, expected, "pair ({a}, {b}) scored {w}");
    }
}
