//! Configuration for the end-to-end aligner: the [`AlignerConfig`]
//! struct, a validating [`AlignerConfigBuilder`], and the shared
//! `build_l` sparsification contract.

use crate::error::AlignError;
use crate::multilevel::MultilevelConfig;
use cualign_bp::{BpConfig, MatcherKind};
use cualign_embed::{EmbeddingMethod, SubspaceAlignConfig};
use cualign_graph::{wl, BipartiteGraph, CsrGraph};
use cualign_linalg::DenseMatrix;
use cualign_sparsify::{AnnConfig, Sparsifier};

/// WL refinement rounds for the ANN variant's structural candidates.
const WL_ROUNDS: usize = 2;
/// Seed of the WL label hash (fixed: labels must agree across sessions
/// for the stage cache to be meaningful).
const WL_SEED: u64 = 0x5eed_1abe;
/// Per-label bucket cap on each side; larger buckets are structurally
/// uninformative and would add quadratically many candidates.
const WL_MAX_BUCKET: usize = 4;

/// How to size the sparsified bipartite graph `L`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SparsityChoice {
    /// Keep `k` nearest neighbors per vertex (union over both sides).
    K(usize),
    /// Keep a fraction of the complete bipartite graph — the paper's
    /// density knob (Figures 4–6); converted to a per-vertex `k`.
    Density(f64),
    /// Mutual (intersection) k-nearest neighbors — stricter than the
    /// paper's union rule; a "new approach to sparsification" per the
    /// paper's future work.
    MutualK(usize),
    /// Similarity threshold with a per-vertex cap.
    Threshold {
        /// Minimum edge weight `(1+cos)/2` retained.
        min_weight: f64,
        /// Maximum candidates per A-side vertex.
        cap_per_vertex: usize,
    },
    /// Approximate `k`-nearest neighbors: banded multi-probe LSH
    /// rescored exactly, unioned with Weisfeiler–Lehman label-bucket
    /// candidates when the input graphs are available (see
    /// `docs/APPROXIMATION.md` for the recall contract). The only
    /// sub-quadratic rule — the one that scales to million-vertex pairs.
    Ann {
        /// Neighbors kept per query row.
        k: usize,
        /// Number of independent LSH bands (hash tables).
        bands: usize,
        /// Signature bits per band, in `1..=32`.
        bits: usize,
        /// Low-margin bit-flip probes per band, at most `bits`.
        probes: usize,
    },
}

/// The configured sparsification rule — `SparsifyMethod::Ann` et al.
/// (Alias of [`SparsityChoice`]: the builder/docs name for the same
/// enum.)
pub type SparsifyMethod = SparsityChoice;

/// Full pipeline configuration. The defaults mirror the paper's preferred
/// operating point: 2.5% density (quality plateaus at ≤10%, Fig. 4) and a
/// fixed BP iteration budget.
#[derive(Clone, Debug)]
pub struct AlignerConfig {
    /// Proximity-embedding method for both graphs.
    pub embedding: EmbeddingMethod,
    /// Subspace-alignment (Eq. 2) parameters.
    pub subspace: SubspaceAlignConfig,
    /// Sparsification level for `L`.
    pub sparsity: SparsityChoice,
    /// Belief-propagation parameters (Algorithm 2).
    pub bp: BpConfig,
    /// Multilevel coarsen–align–project–refine wrapper. `None` (the
    /// default) runs the flat pipeline; `Some` makes
    /// [`crate::Aligner::align`] dispatch through
    /// [`crate::align_multilevel`]. Sessions always run flat — the
    /// multilevel driver *uses* a session at the coarsest level.
    pub multilevel: Option<MultilevelConfig>,
}

impl Default for AlignerConfig {
    fn default() -> Self {
        AlignerConfig {
            embedding: EmbeddingMethod::default(),
            subspace: SubspaceAlignConfig::default(),
            sparsity: SparsityChoice::Density(0.025),
            bp: BpConfig::default(),
            multilevel: None,
        }
    }
}

impl AlignerConfig {
    /// Starts a validating builder from the default (paper operating
    /// point) configuration:
    ///
    /// ```
    /// use cualign::AlignerConfig;
    /// let cfg = AlignerConfig::builder().density(0.025).bp_iters(25).build().unwrap();
    /// assert!(AlignerConfig::builder().density(3.0).build().is_err());
    /// ```
    pub fn builder() -> AlignerConfigBuilder {
        AlignerConfigBuilder {
            cfg: AlignerConfig::default(),
        }
    }

    /// Checks every field against its valid range, so errors surface at
    /// construction instead of deep inside a pipeline stage.
    pub fn validate(&self) -> Result<(), AlignError> {
        fn bad(field: &'static str, reason: String) -> Result<(), AlignError> {
            Err(AlignError::InvalidConfig { field, reason })
        }
        if self.embedding.dim() == 0 {
            return bad("embedding.dim", "must be at least 1".into());
        }
        match self.sparsity {
            SparsityChoice::Density(d) => {
                if !(d > 0.0 && d <= 1.0) {
                    return bad("sparsity.density", format!("must be in (0, 1], got {d}"));
                }
            }
            SparsityChoice::K(k) => {
                if k == 0 {
                    return bad("sparsity.k", "must be at least 1".into());
                }
            }
            SparsityChoice::MutualK(k) => {
                if k == 0 {
                    return bad("sparsity.mutual_k", "must be at least 1".into());
                }
            }
            SparsityChoice::Threshold {
                min_weight,
                cap_per_vertex,
            } => {
                if cap_per_vertex == 0 {
                    return bad("sparsity.cap_per_vertex", "must be at least 1".into());
                }
                if !(0.0..=1.0).contains(&min_weight) {
                    return bad(
                        "sparsity.min_weight",
                        format!("must be in [0, 1] (weights are (1+cos)/2), got {min_weight}"),
                    );
                }
            }
            SparsityChoice::Ann {
                k,
                bands,
                bits,
                probes,
            } => {
                if k == 0 {
                    return bad("sparsity.ann.k", "must be at least 1".into());
                }
                if bands == 0 {
                    return bad("sparsity.ann.bands", "must be at least 1".into());
                }
                if !(1..=32).contains(&bits) {
                    return bad("sparsity.ann.bits", format!("must be in 1..=32, got {bits}"));
                }
                if probes > bits {
                    return bad(
                        "sparsity.ann.probes",
                        format!("must be <= bits ({bits}), got {probes}"),
                    );
                }
            }
        }
        if !(self.bp.gamma > 0.0 && self.bp.gamma <= 1.0) {
            return bad(
                "bp.gamma",
                format!("must be in (0, 1], got {}", self.bp.gamma),
            );
        }
        if !self.bp.alpha.is_finite() || self.bp.alpha < 0.0 {
            return bad(
                "bp.alpha",
                format!("must be finite and >= 0, got {}", self.bp.alpha),
            );
        }
        if !self.bp.beta.is_finite() || self.bp.beta < 0.0 {
            return bad(
                "bp.beta",
                format!("must be finite and >= 0, got {}", self.bp.beta),
            );
        }
        // Subspace range checks live with the config they guard
        // (`SubspaceAlignConfig::validate` in cualign-embed); the `From`
        // impl maps its `InvalidConfig` onto ours, dotted field intact.
        self.subspace.validate().map_err(AlignError::from)?;
        if let Some(ml) = self.multilevel {
            if ml.levels == 0 {
                return bad("multilevel.levels", "must be at least 1".into());
            }
            if ml.band_k == 0 {
                return bad("multilevel.band_k", "must be at least 1".into());
            }
            if ml.refine_bp_iters == 0 {
                return bad("multilevel.refine_bp_iters", "must be at least 1".into());
            }
            if ml.min_coarse_vertices < 2 {
                return bad(
                    "multilevel.min_coarse_vertices",
                    "must be at least 2 (a 1-vertex graph cannot align)".into(),
                );
            }
        }
        Ok(())
    }

    /// Resolves the sparsity choice to a per-vertex `k` for graphs of the
    /// given sizes (the cap for the threshold rule).
    pub fn resolve_k(&self, na: usize, nb: usize) -> usize {
        match self.sparsity {
            SparsityChoice::K(k) | SparsityChoice::MutualK(k) | SparsityChoice::Ann { k, .. } => {
                k.max(1)
            }
            SparsityChoice::Density(d) => cualign_sparsify::density_to_k(na, nb, d),
            SparsityChoice::Threshold { cap_per_vertex, .. } => cap_per_vertex.max(1),
        }
    }

    /// The ANN knobs as a sparsify-crate config, if the ANN rule is
    /// active. The multilevel driver uses this to route its projection
    /// bands' orphan fallback through the approximate kernel.
    pub(crate) fn ann_config(&self) -> Option<AnnConfig> {
        match self.sparsity {
            SparsityChoice::Ann {
                k,
                bands,
                bits,
                probes,
            } => Some(AnnConfig {
                k: k.max(1),
                bands,
                bits,
                probes,
                ..AnnConfig::default()
            }),
            _ => None,
        }
    }

    /// Builds the sparsified alignment graph from aligned embeddings under
    /// the configured rule. Shared by the cuAlign pipeline and the
    /// cone-align baseline so both always compare on the same `L`.
    ///
    /// Embedding-only entry point: for the ANN rule this skips the
    /// Weisfeiler–Lehman structural candidates (they need the graphs) —
    /// callers that hold the graph pair should use
    /// [`AlignerConfig::build_l_with_graphs`], which the session does.
    pub fn build_l(&self, ya: &DenseMatrix, yb: &DenseMatrix) -> BipartiteGraph {
        self.build_l_with_graphs(ya, yb, None)
    }

    /// [`AlignerConfig::build_l`] plus the input graphs: under the ANN
    /// rule, same-label Weisfeiler–Lehman pairs
    /// ([`cualign_graph::wl::wl_candidates`]) are unioned into `L` with
    /// exactly-scored weights, so structurally pinned pairs survive even
    /// when their embeddings hash apart. Graphs whose vertex counts
    /// disagree with the embedding rows are ignored (defensive: some
    /// baselines re-embed subsets). Exact rules ignore `graphs` entirely.
    pub fn build_l_with_graphs(
        &self,
        ya: &DenseMatrix,
        yb: &DenseMatrix,
        graphs: Option<(&CsrGraph, &CsrGraph)>,
    ) -> BipartiteGraph {
        let rule = match self.sparsity {
            SparsityChoice::K(_) | SparsityChoice::Density(_) => Sparsifier::UnionKnn {
                k: self.resolve_k(ya.rows(), yb.rows()),
            },
            SparsityChoice::MutualK(k) => Sparsifier::MutualKnn { k: k.max(1) },
            SparsityChoice::Threshold {
                min_weight,
                cap_per_vertex,
            } => Sparsifier::Threshold {
                min_weight,
                cap_per_vertex: cap_per_vertex.max(1),
            },
            SparsityChoice::Ann {
                k,
                bands,
                bits,
                probes,
            } => {
                let ann = AnnConfig {
                    k: k.max(1),
                    bands,
                    bits,
                    probes,
                    ..AnnConfig::default()
                };
                let wl_pairs = match graphs {
                    Some((ga, gb))
                        if ga.num_vertices() == ya.rows() && gb.num_vertices() == yb.rows() =>
                    {
                        wl::wl_candidates(ga, gb, WL_ROUNDS, WL_SEED, WL_MAX_BUCKET)
                    }
                    _ => Vec::new(),
                };
                return cualign_sparsify::build_alignment_graph_ann(ya, yb, &ann, &wl_pairs);
            }
        };
        cualign_sparsify::build_with(ya, yb, &rule)
    }
}

/// Returns `cfg` with the embedding dimension of the active method
/// replaced — the multilevel driver uses this to clamp the dimension to
/// the coarsest graph's size.
pub(crate) fn with_embedding_dim(mut cfg: AlignerConfig, dim: usize) -> AlignerConfig {
    match &mut cfg.embedding {
        EmbeddingMethod::Spectral(c) => c.dim = dim,
        EmbeddingMethod::FastRp(c) => c.dim = dim,
        EmbeddingMethod::NetMf(c) => c.dim = dim,
    }
    cfg
}

/// Validating builder for [`AlignerConfig`]. Setters are chainable;
/// [`AlignerConfigBuilder::build`] runs [`AlignerConfig::validate`] so an
/// out-of-range value is rejected at construction, not deep inside a
/// stage. Obtain one via [`AlignerConfig::builder`].
#[derive(Clone, Debug)]
pub struct AlignerConfigBuilder {
    cfg: AlignerConfig,
}

impl AlignerConfigBuilder {
    /// Replaces the embedding method wholesale.
    pub fn embedding(mut self, embedding: EmbeddingMethod) -> Self {
        self.cfg.embedding = embedding;
        self
    }

    /// Sets the embedding dimension of the current method.
    pub fn embedding_dim(mut self, dim: usize) -> Self {
        match &mut self.cfg.embedding {
            EmbeddingMethod::Spectral(c) => c.dim = dim,
            EmbeddingMethod::FastRp(c) => c.dim = dim,
            EmbeddingMethod::NetMf(c) => c.dim = dim,
        }
        self
    }

    /// Sets the RNG seed of the current embedding method.
    pub fn embedding_seed(mut self, seed: u64) -> Self {
        match &mut self.cfg.embedding {
            EmbeddingMethod::Spectral(c) => c.seed = seed,
            EmbeddingMethod::FastRp(c) => c.seed = seed,
            EmbeddingMethod::NetMf(c) => c.seed = seed,
        }
        self
    }

    /// Sets the anchor count for subspace alignment (0 = every vertex).
    pub fn subspace_anchors(mut self, anchors: usize) -> Self {
        self.cfg.subspace.anchors = anchors;
        self
    }

    /// Sets the number of Sinkhorn ⇄ Procrustes alternation rounds
    /// (must be ≥ 1; `build()` rejects 0).
    pub fn subspace_iterations(mut self, iterations: usize) -> Self {
        self.cfg.subspace.iterations = iterations;
        self
    }

    /// Sets the **final** entropic regularization of the annealed
    /// Sinkhorn schedule (must be > 0; `build()` rejects otherwise).
    pub fn sinkhorn_epsilon(mut self, epsilon: f64) -> Self {
        self.cfg.subspace.sinkhorn.epsilon = epsilon;
        self
    }

    /// Sets the **initial** entropic regularization the annealing starts
    /// from (must be > 0; `build()` rejects otherwise).
    pub fn epsilon_start(mut self, epsilon: f64) -> Self {
        self.cfg.subspace.epsilon_start = epsilon;
        self
    }

    /// Sets an explicit sparsity rule.
    pub fn sparsity(mut self, sparsity: SparsityChoice) -> Self {
        self.cfg.sparsity = sparsity;
        self
    }

    /// Sparsifies to a fraction of the complete bipartite graph — the
    /// paper's density knob. Must be in `(0, 1]`.
    pub fn density(mut self, density: f64) -> Self {
        self.cfg.sparsity = SparsityChoice::Density(density);
        self
    }

    /// Sparsifies to `k` nearest neighbors per vertex (union rule).
    pub fn k(mut self, k: usize) -> Self {
        self.cfg.sparsity = SparsityChoice::K(k);
        self
    }

    /// Sparsifies to mutual `k` nearest neighbors (intersection rule).
    pub fn mutual_k(mut self, k: usize) -> Self {
        self.cfg.sparsity = SparsityChoice::MutualK(k);
        self
    }

    /// Sparsifies approximately: banded multi-probe LSH candidates
    /// rescored exactly, unioned with WL structural candidates — the
    /// rule for graph pairs too large for exact kNN. `bits` must be in
    /// `1..=32` and `probes <= bits` (`build()` rejects otherwise):
    ///
    /// ```
    /// use cualign::{AlignerConfig, SparsifyMethod};
    /// let cfg = AlignerConfig::builder().ann(10, 8, 12, 2).build().unwrap();
    /// assert!(matches!(
    ///     cfg.sparsity,
    ///     SparsifyMethod::Ann { k: 10, bands: 8, bits: 12, probes: 2 }
    /// ));
    /// assert!(AlignerConfig::builder().ann(10, 8, 0, 0).build().is_err());
    /// assert!(AlignerConfig::builder().ann(10, 8, 4, 5).build().is_err());
    /// ```
    pub fn ann(mut self, k: usize, bands: usize, bits: usize, probes: usize) -> Self {
        self.cfg.sparsity = SparsityChoice::Ann {
            k,
            bands,
            bits,
            probes,
        };
        self
    }

    /// Sparsifies by similarity threshold with a per-vertex cap.
    pub fn threshold(mut self, min_weight: f64, cap_per_vertex: usize) -> Self {
        self.cfg.sparsity = SparsityChoice::Threshold {
            min_weight,
            cap_per_vertex,
        };
        self
    }

    /// Replaces the BP parameters wholesale.
    pub fn bp(mut self, bp: BpConfig) -> Self {
        self.cfg.bp = bp;
        self
    }

    /// Sets the BP iteration budget.
    pub fn bp_iters(mut self, iters: usize) -> Self {
        self.cfg.bp.max_iters = iters;
        self
    }

    /// Sets the objective weights `α` (matching weight) and `β` (overlap).
    pub fn objective(mut self, alpha: f64, beta: f64) -> Self {
        self.cfg.bp.alpha = alpha;
        self.cfg.bp.beta = beta;
        self
    }

    /// Sets the rounding matcher used inside the BP loop.
    pub fn matcher(mut self, matcher: MatcherKind) -> Self {
        self.cfg.bp.matcher = matcher;
        self
    }

    /// Enables the multilevel coarsen–align–project–refine wrapper with
    /// `levels` coarsening levels and default refinement knobs:
    ///
    /// ```
    /// use cualign::AlignerConfig;
    /// let cfg = AlignerConfig::builder().multilevel(3).build().unwrap();
    /// assert_eq!(cfg.multilevel.unwrap().levels, 3);
    /// assert!(AlignerConfig::builder().multilevel(0).build().is_err());
    /// ```
    pub fn multilevel(mut self, levels: usize) -> Self {
        self.cfg.multilevel = Some(MultilevelConfig {
            levels,
            ..MultilevelConfig::default()
        });
        self
    }

    /// Replaces the multilevel configuration wholesale (all knobs).
    pub fn multilevel_config(mut self, ml: MultilevelConfig) -> Self {
        self.cfg.multilevel = Some(ml);
        self
    }

    /// Validates and returns the finished configuration.
    pub fn build(self) -> Result<AlignerConfig, AlignError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_operating_point() {
        let cfg = AlignerConfig::default();
        assert_eq!(cfg.sparsity, SparsityChoice::Density(0.025));
        assert_eq!(cfg.resolve_k(1000, 1000), 25);
    }

    #[test]
    fn explicit_k_wins() {
        let cfg = AlignerConfig {
            sparsity: SparsityChoice::K(7),
            ..Default::default()
        };
        assert_eq!(cfg.resolve_k(10_000, 10_000), 7);
        let zero = AlignerConfig {
            sparsity: SparsityChoice::K(0),
            ..Default::default()
        };
        assert_eq!(zero.resolve_k(10, 10), 1, "k floors at 1");
    }

    #[test]
    fn variant_rules_resolve() {
        let m = AlignerConfig {
            sparsity: SparsityChoice::MutualK(9),
            ..Default::default()
        };
        assert_eq!(m.resolve_k(100, 100), 9);
        let t = AlignerConfig {
            sparsity: SparsityChoice::Threshold {
                min_weight: 0.9,
                cap_per_vertex: 12,
            },
            ..Default::default()
        };
        assert_eq!(t.resolve_k(100, 100), 12);
    }

    #[test]
    fn builder_accepts_valid_configs() {
        let cfg = AlignerConfig::builder()
            .density(0.025)
            .bp_iters(25)
            .embedding_dim(32)
            .subspace_anchors(256)
            .subspace_iterations(6)
            .sinkhorn_epsilon(0.04)
            .epsilon_start(0.25)
            .build()
            .unwrap();
        assert_eq!(cfg.sparsity, SparsityChoice::Density(0.025));
        assert_eq!(cfg.bp.max_iters, 25);
        assert_eq!(cfg.embedding.dim(), 32);
        assert_eq!(cfg.subspace.anchors, 256);
        assert_eq!(cfg.subspace.iterations, 6);
        assert_eq!(cfg.subspace.sinkhorn.epsilon, 0.04);
        assert_eq!(cfg.subspace.epsilon_start, 0.25);
    }

    #[test]
    fn builder_rejects_bad_subspace_knobs() {
        for bad in [0.0, -0.1, f64::NAN] {
            let err = AlignerConfig::builder()
                .sinkhorn_epsilon(bad)
                .build()
                .unwrap_err();
            assert!(matches!(
                err,
                AlignError::InvalidConfig {
                    field: "subspace.sinkhorn.epsilon",
                    ..
                }
            ));
            let err = AlignerConfig::builder()
                .epsilon_start(bad)
                .build()
                .unwrap_err();
            assert!(matches!(
                err,
                AlignError::InvalidConfig {
                    field: "subspace.epsilon_start",
                    ..
                }
            ));
        }
        let err = AlignerConfig::builder()
            .subspace_iterations(0)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            AlignError::InvalidConfig {
                field: "subspace.iterations",
                ..
            }
        ));
    }

    #[test]
    fn builder_rejects_out_of_range_values() {
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            let err = AlignerConfig::builder().density(bad).build().unwrap_err();
            match err {
                crate::AlignError::InvalidConfig { field, .. } => {
                    assert_eq!(field, "sparsity.density")
                }
                other => panic!("unexpected error {other:?}"),
            }
        }
        assert!(AlignerConfig::builder().k(0).build().is_err());
        assert!(AlignerConfig::builder().mutual_k(0).build().is_err());
        assert!(AlignerConfig::builder().ann(0, 8, 12, 2).build().is_err());
        assert!(AlignerConfig::builder().ann(10, 0, 12, 2).build().is_err());
        assert!(AlignerConfig::builder().ann(10, 8, 33, 2).build().is_err());
        assert!(AlignerConfig::builder().ann(10, 8, 12, 13).build().is_err());
        assert!(AlignerConfig::builder().threshold(0.5, 0).build().is_err());
        assert!(AlignerConfig::builder().threshold(1.5, 8).build().is_err());
        assert!(AlignerConfig::builder().embedding_dim(0).build().is_err());
        assert!(AlignerConfig::builder()
            .objective(-1.0, 2.0)
            .build()
            .is_err());
        assert!(AlignerConfig::builder()
            .objective(1.0, f64::INFINITY)
            .build()
            .is_err());
    }

    #[test]
    fn multilevel_knobs_are_validated() {
        let cfg = AlignerConfig::builder().multilevel(3).build().unwrap();
        let ml = cfg.multilevel.unwrap();
        assert_eq!(ml.levels, 3);
        assert!(ml.band_k >= 1 && ml.refine_bp_iters >= 1);
        assert!(AlignerConfig::default().multilevel.is_none());
        for bad in [
            MultilevelConfig {
                levels: 0,
                ..Default::default()
            },
            MultilevelConfig {
                band_k: 0,
                ..Default::default()
            },
            MultilevelConfig {
                refine_bp_iters: 0,
                ..Default::default()
            },
            MultilevelConfig {
                min_coarse_vertices: 1,
                ..Default::default()
            },
        ] {
            let err = AlignerConfig::builder()
                .multilevel_config(bad)
                .build()
                .unwrap_err();
            assert!(matches!(err, AlignError::InvalidConfig { field, .. }
                if field.starts_with("multilevel.")));
        }
    }

    #[test]
    fn validate_catches_direct_mutation() {
        let mut cfg = AlignerConfig::default();
        assert!(cfg.validate().is_ok());
        cfg.bp.gamma = 0.0;
        assert!(cfg.validate().is_err());
        cfg.bp.gamma = 1.0;
        cfg.sparsity = SparsityChoice::Density(2.0);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn build_l_dispatches_rules() {
        use cualign_linalg::DenseMatrix;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let ya = DenseMatrix::gaussian(30, 8, &mut rng);
        let yb = ya.clone();
        let union = AlignerConfig {
            sparsity: SparsityChoice::K(4),
            ..Default::default()
        }
        .build_l(&ya, &yb);
        let mutual = AlignerConfig {
            sparsity: SparsityChoice::MutualK(4),
            ..Default::default()
        }
        .build_l(&ya, &yb);
        assert!(mutual.num_edges() <= union.num_edges());
        let thresh = AlignerConfig {
            sparsity: SparsityChoice::Threshold {
                min_weight: 0.999,
                cap_per_vertex: 4,
            },
            ..Default::default()
        }
        .build_l(&ya, &yb);
        // Identical embeddings: the diagonal (w = 1) must survive any rule.
        for i in 0..30u32 {
            assert!(union.edge_id(i, i).is_some());
            assert!(mutual.edge_id(i, i).is_some());
            assert!(thresh.edge_id(i, i).is_some());
        }
    }

    #[test]
    fn ann_rule_builds_l_with_and_without_graphs() {
        use cualign_linalg::DenseMatrix;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(8);
        let ya = DenseMatrix::gaussian(40, 8, &mut rng);
        let yb = ya.clone();
        let cfg = AlignerConfig::builder().ann(4, 8, 6, 2).build().unwrap();
        assert_eq!(cfg.resolve_k(40, 40), 4);
        // Identical embeddings hash identically, so every self pair
        // collides in every band and the diagonal survives.
        let l = cfg.build_l(&ya, &yb);
        for i in 0..40u32 {
            assert!(l.edge_id(i, i).is_some(), "diagonal ({i},{i}) pruned");
        }
        // A path graph has small WL buckets near its endpoints; handing
        // the graphs over can only add (structural) candidates.
        let edges: Vec<(u32, u32)> = (0..39u32).map(|i| (i, i + 1)).collect();
        let g = CsrGraph::from_edges(40, &edges);
        let l2 = cfg.build_l_with_graphs(&ya, &yb, Some((&g, &g)));
        assert!(l2.num_edges() >= l.num_edges());
        // Mismatched graph sizes are ignored, not a panic.
        let small = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let l3 = cfg.build_l_with_graphs(&ya, &yb, Some((&small, &small)));
        assert_eq!(l3.num_edges(), l.num_edges());
    }
}
