//! GPU cost model of the overlap-matrix construction (Algorithm 3).
//!
//! The paper singles this kernel out for its **shared-memory**
//! optimization: "in Algorithm 3 each neighbor of a given vertex is
//! accessed multiple times. Hence we keep them in shared memory." The
//! model exposes that choice:
//!
//! * without shared memory, the inner loop re-reads `v`'s B-neighborhood
//!   once per A-neighbor: `deg_A(u) · deg_B(v)` scattered loads per edge
//!   of `L`;
//! * with shared memory, each neighborhood is staged once
//!   (`deg_A(u) + deg_B(v)` loads) and the quadratic pass runs from
//!   on-chip storage.
//!
//! Work items are the edges of `L`, sized by their candidate-pair count —
//! the same binning/virtual-warp machinery as the BP kernels.

use crate::device::DeviceSpec;
use crate::exec::{simulate_launch, ExecConfig, LaunchStats};
use crate::footprint::Footprint;
use cualign_graph::{BipartiteGraph, CsrGraph};
use cualign_overlap::OverlapMatrix;

/// Modeled cost of building `S` on `device`.
#[derive(Clone, Debug)]
pub struct OverlapBuildReport {
    /// Modeled seconds.
    pub seconds: f64,
    /// Launch statistics.
    pub stats: LaunchStats,
    /// Whether the shared-memory staging was modeled.
    pub shared_memory: bool,
}

/// Per-edge work sizes: `deg_A(u) · deg_B(v)` candidate pairs.
fn pair_counts(a: &CsrGraph, b: &CsrGraph, l: &BipartiteGraph) -> Vec<usize> {
    l.edges()
        .iter()
        .map(|le| a.degree(le.a) * b.degree(le.b))
        .collect()
}

/// Models the Algorithm-3 kernel. The per-item footprint depends on
/// `shared_memory`; the lookup of `(u', v') ∈ E_L` is charged as one
/// scattered read per candidate pair either way (a hashed/binary probe of
/// global memory).
pub fn model_overlap_build(
    a: &CsrGraph,
    b: &CsrGraph,
    l: &BipartiteGraph,
    device: &DeviceSpec,
    exec: &ExecConfig,
    shared_memory: bool,
) -> OverlapBuildReport {
    let sizes = pair_counts(a, b, l);
    // Average neighborhood split per item: size = dA·dB; staging cost is
    // dA + dB ≈ 2·√size for the model (exact split is irrelevant at the
    // fidelity of a footprint model).
    let stats = simulate_launch(device, exec, &sizes, move |sz| {
        let staged = (2.0 * (sz.max(1) as f64).sqrt()).ceil() as usize;
        if shared_memory {
            Footprint {
                contiguous_reads: staged,  // one pass over each adjacency list
                scattered_reads: sz,       // the E_L membership probes
                contiguous_writes: sz / 8, // hit ratio: only present pairs write
                flops: 2 * sz,
                ..Default::default()
            }
        } else {
            Footprint {
                contiguous_reads: 0,
                // Re-read the B adjacency per A-neighbor, plus the probes.
                scattered_reads: 2 * sz,
                contiguous_writes: sz / 8,
                flops: 2 * sz,
                ..Default::default()
            }
        }
    });
    OverlapBuildReport {
        seconds: stats.seconds,
        stats,
        shared_memory,
    }
}

/// Builds `S` functionally (reference implementation) and models the
/// kernel on `device` with shared memory on.
pub fn simulate_overlap_build(
    a: &CsrGraph,
    b: &CsrGraph,
    l: &BipartiteGraph,
    device: &DeviceSpec,
    exec: &ExecConfig,
) -> (OverlapMatrix, OverlapBuildReport) {
    let s = OverlapMatrix::build(a, b, l);
    let report = model_overlap_build(a, b, l, device, exec, true);
    (s, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cualign_graph::generators::barabasi_albert;
    use cualign_graph::{Permutation, VertexId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn instance(n: usize, seed: u64) -> (CsrGraph, CsrGraph, BipartiteGraph) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = barabasi_albert(n, 3, &mut rng);
        let p = Permutation::random(n, &mut rng);
        let b = p.apply_to_graph(&a);
        let mut triples = Vec::new();
        for i in 0..n as VertexId {
            triples.push((i, p.apply(i), 0.5));
            for _ in 0..5 {
                triples.push((i, rng.gen_range(0..n as VertexId), 0.5));
            }
        }
        let l = BipartiteGraph::from_weighted_edges(n, n, &triples);
        (a, b, l)
    }

    #[test]
    fn shared_memory_reduces_modeled_time() {
        let (a, b, l) = instance(800, 1);
        let gpu = DeviceSpec::a100();
        let with = model_overlap_build(&a, &b, &l, &gpu, &ExecConfig::optimized(), true);
        let without = model_overlap_build(&a, &b, &l, &gpu, &ExecConfig::optimized(), false);
        assert!(
            with.seconds < without.seconds,
            "shared memory did not help: {} vs {}",
            with.seconds,
            without.seconds
        );
        assert!(with.stats.transactions() < without.stats.transactions());
    }

    #[test]
    fn functional_result_is_reference() {
        let (a, b, l) = instance(100, 2);
        let (s, report) =
            simulate_overlap_build(&a, &b, &l, &DeviceSpec::a100(), &ExecConfig::optimized());
        let reference = OverlapMatrix::build(&a, &b, &l);
        assert_eq!(s.nnz(), reference.nnz());
        assert_eq!(s.row_offsets(), reference.row_offsets());
        assert!(report.seconds > 0.0);
        assert!(report.shared_memory);
    }

    #[test]
    fn gpu_outruns_cpu_on_large_builds() {
        let (a, b, l) = instance(3000, 3);
        let g = model_overlap_build(
            &a,
            &b,
            &l,
            &DeviceSpec::a100(),
            &ExecConfig::optimized(),
            true,
        );
        let c = model_overlap_build(
            &a,
            &b,
            &l,
            &DeviceSpec::epyc7702p(),
            &ExecConfig::naive(),
            true,
        );
        assert!(
            c.seconds > g.seconds,
            "cpu {} ≤ gpu {}",
            c.seconds,
            g.seconds
        );
    }
}
