//! # cualign-linalg
//!
//! Self-contained dense linear algebra for the cuAlign embedding and
//! subspace-alignment stages. No external BLAS/LAPACK: everything the
//! pipeline needs is implemented here —
//!
//! * [`DenseMatrix`] — row-major dense matrices whose products run on the
//!   tiled kernel below,
//! * [`gemm`] — the register-blocked, cache-tiled GEMM micro-kernel shared
//!   by every dense multiply and by the kNN block-similarity sweep
//!   (packed [`NR`](gemm::NR)-lane panels, 4×4 accumulator tiles, rayon
//!   over row blocks; bit-identical to the naive loops),
//! * [`qr`] — Householder QR and orthonormalization (used by the randomized
//!   range finder and the FastRP-style embedding),
//! * [`svd`] — one-sided Jacobi SVD (the paper's Eq. 2 solver takes SVDs of
//!   small `d × d` cross-covariance matrices),
//! * [`procrustes`] — the orthogonal-Procrustes rotation solver,
//! * [`sinkhorn`](mod@sinkhorn) — entropic optimal transport (the "Sinkhorn optimization"
//!   of §4.1) for soft correspondences between embeddings,
//! * [`sparse`] — GraphBLAST-style CSR kernels (SpMV/SpMM, masked
//!   variants, structural-mask apply) with merge-based row balancing;
//!   the layer the BP sweeps and the overlap build execute on,
//!   bitwise-pinned to naive reference loops,
//! * [`vecops`] — embedding-vector kernels (dot, cosine similarity, row
//!   normalization).
//!
//! Accuracy targets are those of the alignment pipeline: embeddings are
//! `d ≤ 256` dimensional, so `d × d` factorizations dominated by Jacobi
//! sweeps are both fast and accurate to near machine precision.
//!
//! **Place in the pipeline** (paper Fig. 2): a leaf utility crate under
//! stage 1 — `cualign-embed` calls into it for every factorization and
//! transport solve of §4.1 (Eq. 2), and nothing downstream of the
//! embeddings touches it.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod dense;
pub mod eig;
pub mod fastexp;
pub mod gemm;
pub mod procrustes;
pub mod qr;
pub mod sinkhorn;
pub mod sparse;
pub mod svd;
pub mod vecops;

pub use dense::DenseMatrix;
pub use fastexp::{exp_fast, EXP_UNDERFLOW};
pub use procrustes::orthogonal_procrustes;
pub use sinkhorn::{
    sinkhorn, sinkhorn_reference, sinkhorn_warm_with, sinkhorn_with, SinkhornOptions,
    SinkhornWorkspace, TransportPlan,
};
pub use sparse::{CsrPattern, MergeChunk, MergePlan};
pub use svd::{jacobi_svd, Svd};
