//! The alignment service: acceptor thread → bounded queue → worker pool
//! → session LRU.
//!
//! Concurrency model, in one paragraph: a single acceptor thread owns
//! the listener and pushes accepted connections onto a bounded
//! [`VecDeque`]; when the queue is full it answers `503` +
//! `Retry-After` inline instead of queueing unbounded work. A fixed pool
//! of worker threads pops connections, reads one HTTP request each, and
//! runs it to completion — alignment work happens only on workers, so
//! the acceptor can never be wedged by a slow Sinkhorn. Requests that
//! sat queued past the configured deadline are answered `504` without
//! running. Shutdown is cooperative and std-only: a flag checked between
//! accepts (a self-connect wakes a blocked `accept`), then workers drain
//! whatever the queue still holds before exiting, so in-flight clients
//! get answers and `Server::shutdown` joins cleanly.

use crate::http::{self, HttpError, Request};
use crate::lru::{OwnedSession, SessionLru};
use crate::protocol;
use cualign::{graph_pair_fingerprint, AlignError, AlignmentResult, AlignmentSession};
use cualign_graph::CsrGraph;
use cualign_telemetry::{global, Counter, Gauge, Histogram, Registry};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; port 0 picks an ephemeral port.
    pub addr: SocketAddr,
    /// Worker threads running alignments.
    pub workers: usize,
    /// Connections allowed to wait for a worker before the acceptor
    /// starts answering 503.
    pub queue_capacity: usize,
    /// Resident [`AlignmentSession`]s (one per distinct graph pair).
    pub sessions: usize,
    /// Requests still queued after this long are answered 504.
    pub deadline: Duration,
    /// Request body cap in bytes.
    pub max_body: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            workers: 2,
            queue_capacity: 32,
            sessions: 4,
            deadline: Duration::from_secs(60),
            max_body: 16 * 1024 * 1024,
        }
    }
}

/// Limit on `configs` entries per sweep request, so one request cannot
/// monopolize a worker indefinitely.
const MAX_SWEEP_CONFIGS: usize = 32;

/// How long a worker waits on a single socket read/write before giving
/// up on the client.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);

struct Metrics {
    requests: Arc<Counter>,
    rejected: Arc<Counter>,
    timeouts: Arc<Counter>,
    errors: Arc<Counter>,
    session_hits: Arc<Counter>,
    session_misses: Arc<Counter>,
    session_evictions: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    sessions_resident: Arc<Gauge>,
    request_seconds: Arc<Histogram>,
}

impl Metrics {
    fn new(registry: &Registry) -> Metrics {
        Metrics {
            requests: registry.counter("serve.requests"),
            rejected: registry.counter("serve.rejected"),
            timeouts: registry.counter("serve.timeouts"),
            errors: registry.counter("serve.errors"),
            session_hits: registry.counter("serve.session_hits"),
            session_misses: registry.counter("serve.session_misses"),
            session_evictions: registry.counter("serve.session_evictions"),
            queue_depth: registry.gauge("serve.queue_depth"),
            sessions_resident: registry.gauge("serve.sessions_resident"),
            request_seconds: registry.histogram("serve.request_seconds"),
        }
    }
}

struct Job {
    stream: TcpStream,
    enqueued: Instant,
}

struct Shared {
    cfg: ServerConfig,
    addr: SocketAddr,
    registry: &'static Registry,
    shutdown: AtomicBool,
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    lru: Mutex<SessionLru>,
    metrics: Metrics,
}

/// A clonable handle that asks a running [`Server`] to stop accepting
/// and drain. Safe to call from any thread, including a worker mid-
/// request (`POST /shutdown` does exactly that).
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Raises the shutdown flag and wakes every blocked thread.
    pub fn trigger(&self) {
        trigger_shutdown(&self.shared);
    }
}

fn trigger_shutdown(shared: &Shared) {
    shared.shutdown.store(true, Ordering::Release);
    // `accept` has no timeout in std; a throwaway connection to
    // ourselves is the portable way to unblock it so it can observe the
    // flag. Errors are fine — the listener may already be gone.
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_millis(250));
    shared.job_ready.notify_all();
}

/// A running alignment service. Dropping the server shuts it down and
/// joins its threads; [`Server::shutdown`] does the same explicitly.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the service on the process-global telemetry registry.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        Server::start_with_registry(cfg, global())
    }

    /// Starts the service with an explicit registry — tests use an
    /// isolated leaked registry so concurrent servers do not share
    /// counters.
    pub fn start_with_registry(
        cfg: ServerConfig,
        registry: &'static Registry,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            lru: Mutex::new(SessionLru::new(cfg.sessions)),
            metrics: Metrics::new(registry),
            cfg,
            addr,
            registry,
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
        });

        let worker_count = shared.cfg.workers.max(1);
        let workers = (0..worker_count)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, &listener))
        };

        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The registry this server's metrics live in.
    pub fn registry(&self) -> &'static Registry {
        self.shared.registry
    }

    /// A handle for triggering shutdown from elsewhere.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stops accepting, drains queued requests, and joins all threads.
    pub fn shutdown(mut self) {
        self.finish();
    }

    /// Blocks until the server shuts down by some *other* path — a
    /// `POST /shutdown`, or a [`ShutdownHandle::trigger`] from another
    /// thread. This is the binary's main-thread parking spot.
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    fn finish(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        trigger_shutdown(&self.shared);
        let _ = acceptor.join();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.finish();
    }
}

fn accept_loop(shared: &Shared, listener: &TcpListener) {
    for stream in listener.incoming() {
        // Checked between accepts: the trigger's self-connect lands here
        // and is dropped unanswered.
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
        let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));

        enqueue(shared, stream);
    }
    shared.job_ready.notify_all();
}

fn enqueue(shared: &Shared, stream: TcpStream) {
    let rejected = {
        let mut queue = shared.queue.lock().expect("queue lock");
        if queue.len() >= shared.cfg.queue_capacity {
            Some(stream)
        } else {
            queue.push_back(Job {
                stream,
                enqueued: Instant::now(),
            });
            shared.metrics.queue_depth.set(queue.len() as f64);
            None
        }
    };
    match rejected {
        None => shared.job_ready.notify_one(),
        Some(mut stream) => {
            shared.metrics.rejected.inc();
            // Answered off-thread: the drain below can wait on the
            // client for up to its socket timeout, and the acceptor must
            // never block on a client.
            std::thread::spawn(move || respond_busy(&mut stream));
        }
    }
}

/// Answers 503 on a connection whose request was never read. The
/// response goes out first, then the unread request is drained (bounded)
/// before closing — closing a socket with unread data would RST the
/// connection and many clients would drop the response on the floor.
fn respond_busy(stream: &mut TcpStream) {
    let body = protocol::error_body("busy", "request queue is full; retry shortly");
    let _ = http::write_response(
        stream,
        503,
        "application/json",
        body.as_bytes(),
        &[("Retry-After", "1")],
    );
    drain_unread(stream);
}

/// Bounded best-effort read-to-quiet on a connection whose request was
/// never consumed, so the close that follows is a FIN rather than an
/// RST discarding the response in flight.
fn drain_unread(stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut sink = [0u8; 8192];
    for _ in 0..128 {
        match std::io::Read::read(stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.pop_front() {
                    shared.metrics.queue_depth.set(queue.len() as f64);
                    break Some(job);
                }
                // Drain-then-exit: the pop above runs first, so jobs
                // enqueued before the flag flipped still get served.
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared.job_ready.wait(queue).expect("queue lock");
            }
        };
        let Some(job) = job else { return };
        handle_job(shared, job);
    }
}

fn handle_job(shared: &Shared, mut job: Job) {
    shared.metrics.requests.inc();
    if job.enqueued.elapsed() > shared.cfg.deadline {
        shared.metrics.timeouts.inc();
        respond_error(
            &mut job.stream,
            504,
            "deadline",
            "request spent longer than the deadline waiting for a worker",
        );
        // Like the 503 path, the request was never read; drain it so the
        // close delivers the response instead of an RST.
        drain_unread(&mut job.stream);
        return;
    }

    let request = match http::read_request(&mut job.stream, shared.cfg.max_body) {
        Ok(request) => request,
        Err(HttpError::Malformed(msg)) => {
            shared.metrics.errors.inc();
            let body = protocol::error_body("http", &msg);
            let _ = http::write_response(
                &mut job.stream,
                400,
                "application/json",
                body.as_bytes(),
                &[],
            );
            return;
        }
        Err(HttpError::BodyTooLarge { limit }) => {
            shared.metrics.errors.inc();
            let msg = format!("request body exceeds the {limit}-byte limit");
            let body = protocol::error_body("too_large", &msg);
            let _ = http::write_response(
                &mut job.stream,
                413,
                "application/json",
                body.as_bytes(),
                &[],
            );
            return;
        }
        Err(HttpError::Io(_)) => {
            shared.metrics.errors.inc();
            return;
        }
    };

    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/healthz") => {
            let _ = http::write_response(
                &mut job.stream,
                200,
                "application/json",
                b"{\"status\":\"ok\"}",
                &[],
            );
        }
        ("GET", "/metrics") => {
            let text = shared.registry.snapshot().to_prometheus();
            let _ = http::write_response(
                &mut job.stream,
                200,
                "text/plain; version=0.0.4",
                text.as_bytes(),
                &[],
            );
        }
        ("POST", "/align") => run_work(shared, job, &request, handle_align),
        ("POST", "/sweep") => run_work(shared, job, &request, handle_sweep),
        ("POST", "/shutdown") => {
            let _ = http::write_response(
                &mut job.stream,
                200,
                "application/json",
                b"{\"status\":\"shutting down\"}",
                &[],
            );
            trigger_shutdown(shared);
        }
        (_, "/healthz" | "/metrics" | "/align" | "/sweep" | "/shutdown") => {
            shared.metrics.errors.inc();
            let body = protocol::error_body("method", "method not allowed for this path");
            let _ = http::write_response(
                &mut job.stream,
                405,
                "application/json",
                body.as_bytes(),
                &[],
            );
        }
        (_, target) => {
            shared.metrics.errors.inc();
            let body = protocol::error_body("not_found", &format!("no such endpoint {target:?}"));
            let _ = http::write_response(
                &mut job.stream,
                404,
                "application/json",
                body.as_bytes(),
                &[],
            );
        }
    }
}

/// Runs an alignment endpoint and records its end-to-end latency
/// (accept → response) in `serve.request_seconds`. Only the two work
/// endpoints are timed; health and metrics scrapes would drown the
/// histogram in microsecond samples.
fn run_work(
    shared: &Shared,
    mut job: Job,
    request: &Request,
    endpoint: fn(&Shared, &Request) -> Result<String, AlignError>,
) {
    // Session validation makes algorithm-crate contract panics
    // unreachable from request input, but a panic reaching here must
    // cost one 500, not a worker thread — the pool is fixed-size and a
    // dead worker would shrink it for the life of the process.
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| endpoint(shared, request)));
    match outcome {
        Ok(Ok(body)) => {
            let _ = http::write_response(
                &mut job.stream,
                200,
                "application/json",
                body.as_bytes(),
                &[],
            );
        }
        Ok(Err(error)) => {
            shared.metrics.errors.inc();
            let (status, kind) = protocol::status_for(&error);
            respond_error(&mut job.stream, status, kind, &error.to_string());
        }
        Err(payload) => {
            shared.metrics.errors.inc();
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "alignment panicked".to_string());
            respond_error(&mut job.stream, 500, "panic", &message);
        }
    }
    shared
        .metrics
        .request_seconds
        .record(job.enqueued.elapsed().as_secs_f64());
}

fn respond_error(stream: &mut TcpStream, status: u16, kind: &str, message: &str) {
    let body = protocol::error_body(kind, message);
    let retry: &[(&str, &str)] = if status == 503 || status == 504 {
        &[("Retry-After", "1")]
    } else {
        &[]
    };
    let _ = http::write_response(stream, status, "application/json", body.as_bytes(), retry);
}

fn handle_align(shared: &Shared, request: &Request) -> Result<String, AlignError> {
    let body = protocol::parse_body(&request.body)?;
    let (a, b) = protocol::parse_pair(&body)?;
    let cfg = protocol::parse_config(body.get("config"))?;
    let fp = graph_pair_fingerprint(&a, &b);
    let (mut session, reused) = checkout(shared, fp, a, b, cfg)?;
    let result = session.align();
    give_back(shared, fp, session);
    Ok(protocol::align_response(fp, reused, &result?))
}

fn handle_sweep(shared: &Shared, request: &Request) -> Result<String, AlignError> {
    let body = protocol::parse_body(&request.body)?;
    let (a, b) = protocol::parse_pair(&body)?;
    let patches = body
        .get("configs")
        .and_then(|v| v.as_array())
        .ok_or_else(|| AlignError::Protocol {
            reason: "\"configs\" must be an array of config objects".to_string(),
        })?;
    if patches.is_empty() || patches.len() > MAX_SWEEP_CONFIGS {
        return Err(AlignError::Protocol {
            reason: format!(
                "\"configs\" must hold between 1 and {MAX_SWEEP_CONFIGS} entries, got {}",
                patches.len()
            ),
        });
    }
    // Parse every config before running any: a sweep is atomic —
    // either the whole request is well-formed or nothing runs.
    let configs = patches
        .iter()
        .map(|p| protocol::parse_config(Some(p)))
        .collect::<Result<Vec<_>, _>>()?;

    let fp = graph_pair_fingerprint(&a, &b);
    let first = configs[0].clone();
    let (mut session, reused) = checkout(shared, fp, a, b, first)?;
    let mut results: Vec<AlignmentResult> = Vec::with_capacity(configs.len());
    let mut failure = None;
    for cfg in configs {
        if let Err(e) = session.set_config(cfg) {
            failure = Some(e);
            break;
        }
        match session.align() {
            Ok(r) => results.push(r),
            Err(e) => {
                failure = Some(e);
                break;
            }
        }
    }
    give_back(shared, fp, session);
    match failure {
        Some(e) => Err(e),
        None => Ok(protocol::sweep_response(fp, reused, &results)),
    }
}

/// Fetches the session for `fp` from the LRU (hit) or builds a fresh one
/// from the parsed graphs (miss). Runs outside any lock except the brief
/// LRU probe, so concurrent requests for different pairs overlap fully.
fn checkout(
    shared: &Shared,
    fp: u64,
    a: CsrGraph,
    b: CsrGraph,
    cfg: cualign::AlignerConfig,
) -> Result<(OwnedSession, bool), AlignError> {
    let cached = shared.lru.lock().expect("lru lock").take(fp);
    match cached {
        Some(mut session) => {
            shared.metrics.session_hits.inc();
            match session.set_config(cfg) {
                Ok(()) => Ok((session, true)),
                Err(e) => {
                    // The session itself is fine; put it back before
                    // reporting the config problem.
                    give_back(shared, fp, session);
                    Err(e)
                }
            }
        }
        None => {
            shared.metrics.session_misses.inc();
            let session =
                AlignmentSession::with_registry(Arc::new(a), Arc::new(b), cfg, shared.registry)?;
            Ok((session, false))
        }
    }
}

fn give_back(shared: &Shared, fp: u64, session: OwnedSession) {
    let (evicted, resident) = {
        let mut lru = shared.lru.lock().expect("lru lock");
        let outcome = lru.insert(fp, session);
        (outcome.evicted, lru.len())
    };
    if evicted > 0 {
        shared.metrics.session_evictions.add(evicted as u64);
    }
    shared.metrics.sessions_resident.set(resident as f64);
}
