//! Fixture property test that references both the kernel and its
//! oracle, satisfying the manifest row for `gemm::matmul`.

#[test]
fn matmul_matches_naive() {
    let fast = matmul();
    let slow = matmul_naive();
    assert_eq!(fast, slow);
}

fn matmul() -> u32 {
    6
}

fn matmul_naive() -> u32 {
    6
}
