//! Multilevel vs. flat pipeline head-to-head: one seeded permuted-pair
//! instance, the flat pipeline timed against `--multilevel L`, and the
//! speedup / quality deltas written as a single JSON record to
//! `BENCH_multilevel.json` — running this binary with no flags refreshes
//! the checked-in record:
//!
//! ```text
//! cargo run --release -p cualign-bench --bin bench_multilevel
//! ```
//!
//! Knobs (environment): `CUALIGN_ML_VERTICES` (default 20000),
//! `CUALIGN_ML_EDGES` (default 3·n), `CUALIGN_ML_LEVELS` (default 3),
//! `CUALIGN_BP_ITERS` (default 10), `CUALIGN_SEED` (default 1). The
//! record carries both wall-clocks, node correctness and NCV-GS³ for
//! both runs, the realized coarsening depth, and the per-level
//! `multilevel.level<k>.*` counters (band size, BP matches, repairs)
//! harvested from the global registry. `--telemetry summary|json:PATH`
//! additionally emits the full span-tree snapshot.

use std::time::Instant;

use cualign::{Aligner, AlignerConfig};
use cualign_bench::{env_u64, json::JsonRecord};
use cualign_graph::generators::erdos_renyi_gnm;
use cualign_graph::permutation::AlignmentInstance;
use rand::rngs::StdRng;
use rand::SeedableRng;

const RECORD_PATH: &str = "BENCH_multilevel.json";

fn main() {
    let telemetry = cualign_bench::telemetry_sink();
    let n = env_u64("CUALIGN_ML_VERTICES", 20_000) as usize;
    let m = env_u64("CUALIGN_ML_EDGES", 3 * n as u64) as usize;
    let levels = env_u64("CUALIGN_ML_LEVELS", 3) as usize;
    let bp_iters = env_u64("CUALIGN_BP_ITERS", 10) as usize;
    let seed = env_u64("CUALIGN_SEED", 1);

    let mut rng = StdRng::seed_from_u64(seed);
    let a = erdos_renyi_gnm(n, m, &mut rng);
    let inst = AlignmentInstance::permuted_pair(a, &mut rng);
    println!("bench_multilevel: ER n = {n}, m = {m}, seed = {seed}, levels = {levels}");

    let flat_cfg = AlignerConfig::builder()
        .k(8)
        .bp_iters(bp_iters)
        .build()
        .expect("fixed flat config is valid");
    let ml_cfg = AlignerConfig::builder()
        .k(8)
        .bp_iters(bp_iters)
        .multilevel(levels)
        .build()
        .expect("fixed multilevel config is valid");

    let start = Instant::now();
    let flat = Aligner::new(flat_cfg)
        .align(&inst.a, &inst.b)
        .expect("the seeded instance aligns flat");
    let flat_s = start.elapsed().as_secs_f64();
    let flat_nc = inst.node_correctness(&flat.mapping);
    println!(
        "  flat:           {flat_s:>8.2}s  nc = {flat_nc:.4}  NCV-GS3 = {:.4}",
        flat.scores.ncv_gs3
    );

    let start = Instant::now();
    let ml = Aligner::new(ml_cfg)
        .align(&inst.a, &inst.b)
        .expect("the seeded instance aligns multilevel");
    let ml_s = start.elapsed().as_secs_f64();
    let ml_nc = inst.node_correctness(&ml.mapping);
    println!(
        "  multilevel({levels}):  {ml_s:>8.2}s  nc = {ml_nc:.4}  NCV-GS3 = {:.4}",
        ml.scores.ncv_gs3
    );

    let speedup = flat_s / ml_s.max(1e-12);
    let quality_ratio = if flat_nc > 0.0 { ml_nc / flat_nc } else { 1.0 };
    println!("  speedup = {speedup:.2}x, quality ratio (nc) = {quality_ratio:.3}");

    // Counters and gauges are always-on atomics, so the realized depth
    // and per-level refinement sizes are available even with spans off.
    let snapshot = cualign_telemetry::global().snapshot();
    let depth = snapshot
        .gauges
        .get("multilevel.depth")
        .copied()
        .unwrap_or(0.0) as usize;
    let mut record = JsonRecord::new()
        .str("bench", "multilevel")
        .int("vertices", n)
        .int("edges", m)
        .int("seed", seed as usize)
        .int("levels_requested", levels)
        .int("depth", depth)
        .int("bp_iters", bp_iters)
        .num("flat_s", flat_s)
        .num("multilevel_s", ml_s)
        .num("speedup", speedup)
        .num("flat_node_correctness", flat_nc)
        .num("multilevel_node_correctness", ml_nc)
        .num("quality_ratio", quality_ratio)
        .num("flat_ncv_gs3", flat.scores.ncv_gs3)
        .num("multilevel_ncv_gs3", ml.scores.ncv_gs3)
        .int("flat_l_edges", flat.l_edges)
        .int("multilevel_l_edges", ml.l_edges);
    for (name, value) in &snapshot.counters {
        if name.starts_with("multilevel.level") {
            record = record.int(name, *value as usize);
        }
    }
    let line = record.finish();
    match std::fs::write(RECORD_PATH, format!("{line}\n")) {
        Ok(()) => println!("  wrote {RECORD_PATH}"),
        Err(e) => eprintln!("warning: failed to write {RECORD_PATH}: {e}"),
    }
    cualign_bench::emit_telemetry(&telemetry);
}
