//! # cualign-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation (§6). Each `src/bin/` target prints one artifact:
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table 1 — input graphs |
//! | `fig4`   | Fig. 4 — quality vs. density |
//! | `fig5`   | Fig. 5 — compute time vs. density |
//! | `fig6`   | Fig. 6 — quality: cuAlign vs cone-align |
//! | `fig7`   | Fig. 7 — run time: cuAlign-GPU vs cone-align |
//! | `table2` | Table 2 — BP / matching / total GPU speedups |
//! | `ablation_gpu` | §5 design-choice ablations under the GPU model |
//!
//! Criterion microbenches (`benches/`) cover the component kernels and
//! the CPU-side ablations.
//!
//! ## Scaling
//!
//! The paper's testbed was a 64-core EPYC + A100; reproduction
//! environments are often much smaller. `CUALIGN_SCALE` (default `0.25`)
//! scales every input's vertex/edge counts; `CUALIGN_BP_ITERS` (default
//! `10`) sets the BP budget; `CUALIGN_SEED` (default `1`) the instance
//! seed. Shapes — who wins, by what factor, where the knees are — are
//! scale-stable; EXPERIMENTS.md records the scale used for the checked-in
//! numbers. Set `CUALIGN_SCALE=1.0` for paper-size runs.

#![warn(missing_docs)]

use cualign::{Aligner, AlignerConfig, PaperInput, SparsityChoice};
use cualign_embed::align_subspaces;
use cualign_graph::generators::with_edge_budget;
use cualign_graph::permutation::AlignmentInstance;
use cualign_graph::{BipartiteGraph, CsrGraph};
use cualign_overlap::OverlapMatrix;
use cualign_sparsify::build_alignment_graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Reads an `f64` environment knob with a default.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads a `u64` environment knob with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The harness-wide configuration resolved from the environment.
#[derive(Clone, Copy, Debug)]
pub struct HarnessConfig {
    /// Input size multiplier relative to Table 1.
    pub scale: f64,
    /// BP iterations per run.
    pub bp_iters: usize,
    /// Instance seed.
    pub seed: u64,
}

impl HarnessConfig {
    /// Resolves `CUALIGN_SCALE`, `CUALIGN_BP_ITERS`, `CUALIGN_SEED`.
    pub fn from_env() -> Self {
        HarnessConfig {
            scale: env_f64("CUALIGN_SCALE", 0.25).clamp(0.01, 1.0),
            bp_iters: env_u64("CUALIGN_BP_ITERS", 10) as usize,
            seed: env_u64("CUALIGN_SEED", 1),
        }
    }

    /// Scaled vertex count for an input.
    pub fn vertices(&self, input: PaperInput) -> usize {
        ((input.vertices() as f64 * self.scale).round() as usize).max(64)
    }

    /// Scaled edge count for an input (edges scale with vertices to keep
    /// the average degree of Table 1).
    pub fn edges(&self, input: PaperInput) -> usize {
        let n_ratio = self.vertices(input) as f64 / input.vertices() as f64;
        ((input.edges() as f64 * n_ratio).round() as usize).max(96)
    }

    /// Generates the (possibly scaled) stand-in for a Table 1 input.
    pub fn generate(&self, input: PaperInput) -> CsrGraph {
        if (self.scale - 1.0).abs() < 1e-9 {
            return input.generate(self.seed);
        }
        let full = input.generate(self.seed);
        // Subsample: keep the first `n` vertices of a degree-ordered
        // relabeling... simpler and unbiased: regenerate at the scaled
        // size with the same model parameters via the edge-budget trick on
        // a fresh generation seeded per input.
        let n = self.vertices(input);
        let m = self.edges(input);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xabcd);
        let base = match input {
            PaperInput::Synthetic4000 | PaperInput::Synthetic8000 => {
                cualign_graph::generators::powerlaw_configuration(n, m, 2.5, &mut rng)
            }
            _ => {
                // Match the duplication–divergence density to the target.
                let retain = (2.0 * m as f64 / (n as f64 * full.average_degree().max(1.0)))
                    .clamp(0.3, 0.5);
                cualign_graph::generators::duplication_divergence(n, retain, 0.28, &mut rng)
            }
        };
        with_edge_budget(&base, m, &mut rng)
    }

    /// The aligner configuration for a given density.
    pub fn aligner_config(&self, density: f64) -> AlignerConfig {
        let mut cfg = AlignerConfig::default();
        cfg.sparsity = SparsityChoice::Density(density);
        cfg.bp.max_iters = self.bp_iters;
        cfg
    }
}

/// A fully prepared alignment instance with its pipeline front half.
pub struct PreparedInstance {
    /// First input graph.
    pub a: CsrGraph,
    /// Second input graph (permuted copy).
    pub b: CsrGraph,
    /// Ground-truthed instance (owns clones of `a`/`b`).
    pub inst: AlignmentInstance,
    /// Sparsified alignment graph.
    pub l: BipartiteGraph,
    /// Overlap matrix.
    pub s: OverlapMatrix,
}

/// Builds `B = P(A)` and runs the pipeline front half at `density`.
pub fn prepare_instance(h: &HarnessConfig, input: PaperInput, density: f64) -> PreparedInstance {
    let a = h.generate(input);
    let mut rng = StdRng::seed_from_u64(h.seed.wrapping_mul(0x9e37).wrapping_add(17));
    let inst = AlignmentInstance::permuted_pair(a.clone(), &mut rng);
    let cfg = h.aligner_config(density);
    let y1 = cfg.embedding.embed(&inst.a);
    let y2 = cfg.embedding.with_seed_offset(1).embed(&inst.b);
    let sub = align_subspaces(&y1, &y2, &inst.a, &inst.b, &cfg.subspace);
    let k = cfg.resolve_k(inst.a.num_vertices(), inst.b.num_vertices());
    let l = build_alignment_graph(&sub.ya, &sub.yb, k);
    let s = OverlapMatrix::build(&inst.a, &inst.b, &l);
    PreparedInstance {
        a: inst.a.clone(),
        b: inst.b.clone(),
        inst,
        l,
        s,
    }
}

/// The paper's density sweep grid (Figures 4–5): {1, 2.5, 5, 10, 25}%.
pub const DENSITY_GRID: [f64; 5] = [0.01, 0.025, 0.05, 0.10, 0.25];

/// DNF rule: a sweep cell is skipped (reported as the paper reports its
/// Synthetic_8000 @ 25% cell — "did not finish") when the projected
/// overlap-matrix size exceeds this many nonzeros.
pub const DNF_NNZ_LIMIT: usize = 120_000_000;

/// Projects the overlap-matrix nonzero count for an input at a density
/// without building anything: `|E_L| · d̄_A · d̄_B · density`-ish upper
/// estimate from the degree distribution.
pub fn projected_nnz(a: &CsrGraph, b: &CsrGraph, density: f64) -> usize {
    let k = cualign_sparsify::density_to_k(a.num_vertices(), b.num_vertices(), density);
    let edges_l = 2 * k * a.num_vertices().max(b.num_vertices());
    let da = a.average_degree();
    let db = b.average_degree();
    // Probability a candidate pair is itself an L edge ≈ density·2.
    (edges_l as f64 * da * db * (2.0 * density).min(1.0)) as usize
}

/// One full cuAlign run at a density; returns `(NCV-GS3, optimize seconds,
/// total seconds)`.
pub fn run_cell(h: &HarnessConfig, input: PaperInput, density: f64) -> (f64, f64, f64) {
    let a = h.generate(input);
    let mut rng = StdRng::seed_from_u64(h.seed.wrapping_mul(0x9e37).wrapping_add(17));
    let inst = AlignmentInstance::permuted_pair(a, &mut rng);
    let cfg = h.aligner_config(density);
    let r = Aligner::new(cfg).align(&inst.a, &inst.b);
    (
        r.scores.ncv_gs3,
        r.timings.optimize_s,
        r.timings.total_s(),
    )
}

/// One density-sweep cell's results.
#[derive(Clone, Copy, Debug)]
pub struct SweepCell {
    /// Density of this cell.
    pub density: f64,
    /// `None` = DNF by the projected-size rule (mirrors the paper's
    /// Synthetic_8000 @ 25% cell).
    pub result: Option<SweepMeasurement>,
}

/// Measurements of one completed sweep cell.
#[derive(Clone, Copy, Debug)]
pub struct SweepMeasurement {
    /// NCV-GS³ of the best alignment.
    pub quality: f64,
    /// Seconds in the optimization phase (BP ⇄ matching), including the
    /// overlap-matrix build for this density.
    pub optimize_s: f64,
    /// Edges of `L` at this density.
    pub l_edges: usize,
    /// Nonzeros of `S` at this density.
    pub s_nnz: usize,
}

/// Runs the density sweep for one input, computing the embedding and
/// subspace alignment **once** and re-sparsifying per density — exactly
/// the experiment of Figures 4–5 (embedding/sparsification are the
/// run-once initialization of the framework, Fig. 2).
pub fn sweep_densities(h: &HarnessConfig, input: PaperInput, densities: &[f64]) -> Vec<SweepCell> {
    use cualign_bp::{BpConfig, BpEngine};
    use std::time::Instant;

    let a = h.generate(input);
    let mut rng = StdRng::seed_from_u64(h.seed.wrapping_mul(0x9e37).wrapping_add(17));
    let inst = AlignmentInstance::permuted_pair(a, &mut rng);
    let cfg = h.aligner_config(0.01);
    let y1 = cfg.embedding.embed(&inst.a);
    let y2 = cfg.embedding.with_seed_offset(0x9e3779b97f4a7c15).embed(&inst.b);
    let sub = align_subspaces(&y1, &y2, &inst.a, &inst.b, &cfg.subspace);

    densities
        .iter()
        .map(|&density| {
            if projected_nnz(&inst.a, &inst.b, density) > DNF_NNZ_LIMIT {
                return SweepCell { density, result: None };
            }
            let k = cualign_sparsify::density_to_k(
                inst.a.num_vertices(),
                inst.b.num_vertices(),
                density,
            );
            let l = build_alignment_graph(&sub.ya, &sub.yb, k);
            let t = Instant::now();
            let s = OverlapMatrix::build(&inst.a, &inst.b, &l);
            let bp_cfg = BpConfig { max_iters: h.bp_iters, ..Default::default() };
            let out = BpEngine::new(&l, &s, &bp_cfg).run();
            let optimize_s = t.elapsed().as_secs_f64();
            let mapping: Vec<Option<cualign_graph::VertexId>> = (0..inst.a.num_vertices())
                .map(|u| out.best_matching.mate_of_a(u as cualign_graph::VertexId))
                .collect();
            let scores = cualign::score_alignment(&inst.a, &inst.b, &mapping);
            SweepCell {
                density,
                result: Some(SweepMeasurement {
                    quality: scores.ncv_gs3,
                    optimize_s,
                    l_edges: l.num_edges(),
                    s_nnz: s.nnz(),
                }),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_inputs_keep_average_degree() {
        let h = HarnessConfig { scale: 0.25, bp_iters: 5, seed: 1 };
        for input in PaperInput::all() {
            let g = h.generate(input);
            let full_deg = 2.0 * input.edges() as f64 / input.vertices() as f64;
            let got_deg = g.average_degree();
            assert!(
                (got_deg - full_deg).abs() / full_deg < 0.05,
                "{input}: degree {got_deg} vs paper {full_deg}"
            );
        }
    }

    #[test]
    fn full_scale_matches_table1_exactly() {
        let h = HarnessConfig { scale: 1.0, bp_iters: 5, seed: 1 };
        let g = h.generate(PaperInput::Synthetic4000);
        assert_eq!(g.num_vertices(), 4000);
        assert_eq!(g.num_edges(), 11996);
    }

    #[test]
    fn prepared_instance_is_consistent() {
        let h = HarnessConfig { scale: 0.05, bp_iters: 3, seed: 2 };
        let p = prepare_instance(&h, PaperInput::Synthetic4000, 0.025);
        p.l.check_invariants().unwrap();
        p.s.check_invariants().unwrap();
        assert_eq!(p.s.num_rows(), p.l.num_edges());
        assert_eq!(p.a.num_vertices(), p.b.num_vertices());
    }

    #[test]
    fn projection_grows_with_density() {
        let h = HarnessConfig { scale: 0.1, bp_iters: 3, seed: 1 };
        let g = h.generate(PaperInput::FlyY2h1);
        let lo = projected_nnz(&g, &g, 0.01);
        let hi = projected_nnz(&g, &g, 0.10);
        assert!(hi > lo);
    }
}
