//! Configuration for the end-to-end aligner.

use cualign_bp::BpConfig;
use cualign_embed::{EmbeddingMethod, SubspaceAlignConfig};
use cualign_graph::BipartiteGraph;
use cualign_linalg::DenseMatrix;
use cualign_sparsify::Sparsifier;

/// How to size the sparsified bipartite graph `L`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SparsityChoice {
    /// Keep `k` nearest neighbors per vertex (union over both sides).
    K(usize),
    /// Keep a fraction of the complete bipartite graph — the paper's
    /// density knob (Figures 4–6); converted to a per-vertex `k`.
    Density(f64),
    /// Mutual (intersection) k-nearest neighbors — stricter than the
    /// paper's union rule; a "new approach to sparsification" per the
    /// paper's future work.
    MutualK(usize),
    /// Similarity threshold with a per-vertex cap.
    Threshold {
        /// Minimum edge weight `(1+cos)/2` retained.
        min_weight: f64,
        /// Maximum candidates per A-side vertex.
        cap_per_vertex: usize,
    },
}

/// Full pipeline configuration. The defaults mirror the paper's preferred
/// operating point: 2.5% density (quality plateaus at ≤10%, Fig. 4) and a
/// fixed BP iteration budget.
#[derive(Clone, Debug)]
pub struct AlignerConfig {
    /// Proximity-embedding method for both graphs.
    pub embedding: EmbeddingMethod,
    /// Subspace-alignment (Eq. 2) parameters.
    pub subspace: SubspaceAlignConfig,
    /// Sparsification level for `L`.
    pub sparsity: SparsityChoice,
    /// Belief-propagation parameters (Algorithm 2).
    pub bp: BpConfig,
}

impl Default for AlignerConfig {
    fn default() -> Self {
        AlignerConfig {
            embedding: EmbeddingMethod::default(),
            subspace: SubspaceAlignConfig::default(),
            sparsity: SparsityChoice::Density(0.025),
            bp: BpConfig::default(),
        }
    }
}

impl AlignerConfig {
    /// Resolves the sparsity choice to a per-vertex `k` for graphs of the
    /// given sizes (the cap for the threshold rule).
    pub fn resolve_k(&self, na: usize, nb: usize) -> usize {
        match self.sparsity {
            SparsityChoice::K(k) | SparsityChoice::MutualK(k) => k.max(1),
            SparsityChoice::Density(d) => cualign_sparsify::density_to_k(na, nb, d),
            SparsityChoice::Threshold { cap_per_vertex, .. } => cap_per_vertex.max(1),
        }
    }

    /// Builds the sparsified alignment graph from aligned embeddings under
    /// the configured rule. Shared by the cuAlign pipeline and the
    /// cone-align baseline so both always compare on the same `L`.
    pub fn build_l(&self, ya: &DenseMatrix, yb: &DenseMatrix) -> BipartiteGraph {
        let rule = match self.sparsity {
            SparsityChoice::K(_) | SparsityChoice::Density(_) => Sparsifier::UnionKnn {
                k: self.resolve_k(ya.rows(), yb.rows()),
            },
            SparsityChoice::MutualK(k) => Sparsifier::MutualKnn { k: k.max(1) },
            SparsityChoice::Threshold { min_weight, cap_per_vertex } => Sparsifier::Threshold {
                min_weight,
                cap_per_vertex: cap_per_vertex.max(1),
            },
        };
        cualign_sparsify::build_with(ya, yb, &rule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_operating_point() {
        let cfg = AlignerConfig::default();
        assert_eq!(cfg.sparsity, SparsityChoice::Density(0.025));
        assert_eq!(cfg.resolve_k(1000, 1000), 25);
    }

    #[test]
    fn explicit_k_wins() {
        let cfg = AlignerConfig { sparsity: SparsityChoice::K(7), ..Default::default() };
        assert_eq!(cfg.resolve_k(10_000, 10_000), 7);
        let zero = AlignerConfig { sparsity: SparsityChoice::K(0), ..Default::default() };
        assert_eq!(zero.resolve_k(10, 10), 1, "k floors at 1");
    }

    #[test]
    fn variant_rules_resolve() {
        let m = AlignerConfig { sparsity: SparsityChoice::MutualK(9), ..Default::default() };
        assert_eq!(m.resolve_k(100, 100), 9);
        let t = AlignerConfig {
            sparsity: SparsityChoice::Threshold { min_weight: 0.9, cap_per_vertex: 12 },
            ..Default::default()
        };
        assert_eq!(t.resolve_k(100, 100), 12);
    }

    #[test]
    fn build_l_dispatches_rules() {
        use cualign_linalg::DenseMatrix;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        let ya = DenseMatrix::gaussian(30, 8, &mut rng);
        let yb = ya.clone();
        let union = AlignerConfig { sparsity: SparsityChoice::K(4), ..Default::default() }
            .build_l(&ya, &yb);
        let mutual = AlignerConfig { sparsity: SparsityChoice::MutualK(4), ..Default::default() }
            .build_l(&ya, &yb);
        assert!(mutual.num_edges() <= union.num_edges());
        let thresh = AlignerConfig {
            sparsity: SparsityChoice::Threshold { min_weight: 0.999, cap_per_vertex: 4 },
            ..Default::default()
        }
        .build_l(&ya, &yb);
        // Identical embeddings: the diagonal (w = 1) must survive any rule.
        for i in 0..30u32 {
            assert!(union.edge_id(i, i).is_some());
            assert!(mutual.edge_id(i, i).is_some());
            assert!(thresh.edge_id(i, i).is_some());
        }
    }
}
