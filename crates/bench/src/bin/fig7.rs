//! Regenerates **Figure 7**: end-to-end run time of cuAlign (with its
//! optimization phase on the GPU model) vs. cone-align, per input.
//!
//! The paper's finding: with GPU acceleration, cuAlign's extra BP +
//! matching work no longer costs noticeable wall-clock relative to
//! cone-align — the quality gains of Fig. 6 come almost for free.
//!
//! Both methods draw their shared front half (`L` and `S`) from one
//! [`AlignmentSession`], so the initialization is computed and timed
//! exactly once per input.
//!
//! ```text
//! cargo run --release -p cualign-bench --bin fig7
//! ```

use cualign::{cone_align_session, AlignmentSession, PaperInput};
use cualign_bench::json::JsonRecord;
use cualign_bench::HarnessConfig;
use cualign_bp::BpConfig;
use cualign_gpusim::report::table2_row;
use cualign_gpusim::ExecConfig;

fn main() {
    let telemetry = cualign_bench::telemetry_sink();
    let h = HarnessConfig::from_env();
    let density = 0.025;
    println!(
        "Figure 7: run time, cuAlign-GPU vs cone-align (scale = {}, density = {}%, seed = {})\n",
        h.scale,
        density * 100.0,
        h.seed
    );
    println!(
        "{:<16} {:>12} {:>14} {:>14} {:>12}",
        "Network", "init (s)", "optimize-GPU(s)", "cuAlign total", "cone-align"
    );
    println!("{}", "-".repeat(74));
    let mut records = Vec::new();
    for input in PaperInput::all() {
        let inst = h.instance(input);
        let mut session = AlignmentSession::new(&inst.a, &inst.b, h.aligner_config(density))
            .expect("harness instances are non-degenerate");

        // Shared front half (both methods pay it), built once in the
        // session and timed there.
        let row = {
            let (l, s) = session
                .artifacts()
                .expect("front half builds at grid densities");
            let cfg = BpConfig {
                max_iters: h.bp_iters,
                ..Default::default()
            };
            table2_row(l, s, &cfg, &ExecConfig::optimized())
        };
        let init_s = session.cumulative_timings().init_s();
        let cualign_total = init_s + row.gpu.total_s();

        // cone-align rounds the cached L — its extra work beyond the
        // shared init is one matching pass.
        let cone = cone_align_session(&mut session).expect("L is cached and non-empty");
        let cone_total = init_s + cone.seconds;

        println!(
            "{:<16} {:>12.3} {:>14.4} {:>14.3} {:>12.3}",
            input.name(),
            init_s,
            row.gpu.total_s(),
            cualign_total,
            cone_total
        );
        records.push(
            JsonRecord::new()
                .str("figure", "fig7")
                .str("input", input.name())
                .num("density", density)
                .num("init_s", init_s)
                .num("gpu_optimize_s", row.gpu.total_s())
                .num("cualign_total_s", cualign_total)
                .num("cone_total_s", cone_total)
                .int("cache_hits", 0)
                .finish(),
        );
    }
    println!("\nExpected shape (paper): cuAlign-GPU totals track cone-align — the optimization");
    println!("phase is no longer a noticeable overhead once accelerated.");
    println!();
    for r in records {
        println!("{r}");
    }
    cualign_bench::emit_telemetry(&telemetry);
}
