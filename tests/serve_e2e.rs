//! End-to-end tests for `cualign-serve`: real sockets on ephemeral
//! ports, concurrent clients, and assertions on the `/metrics`
//! exposition rather than on internals.
//!
//! The saturation and deadline tests avoid timing-dependent "hope the
//! alignment is slow enough" setups: they wedge the single worker with a
//! *stalled client* (a connection that sends half a request and goes
//! quiet), which pins the pool deterministically until the test releases
//! it.

use cualign_serve::json::Json;
use cualign_serve::{client, Server, ServerConfig};
use cualign_telemetry::Registry;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn isolated() -> &'static Registry {
    Box::leak(Box::new(Registry::new_enabled()))
}

fn start(cfg: ServerConfig) -> Server {
    Server::start_with_registry(cfg, isolated()).expect("bind ephemeral port")
}

/// A ring + chords graph as request JSON; `seed` varies the chord
/// stride so different seeds give different fingerprints.
fn graph_json(n: usize, seed: usize) -> String {
    let mut edges = String::new();
    for i in 0..n {
        if i > 0 {
            edges.push(',');
        }
        let chord = (i + 2 + seed % 5) % n;
        edges.push_str(&format!("[{i},{}],[{i},{chord}]", (i + 1) % n));
    }
    format!("{{\"n\":{n},\"edges\":[{edges}]}}")
}

fn align_body(n: usize, seed: usize) -> String {
    format!(
        "{{\"a\":{},\"b\":{},\"config\":{{\"dim\":6,\"k\":4,\"bp_iters\":5,\"subspace_anchors\":0}}}}",
        graph_json(n, seed),
        graph_json(n, seed + 1),
    )
}

/// Scrapes one metric value off `/metrics` (0.0 when absent).
fn metric(addr: SocketAddr, name: &str) -> f64 {
    let resp = client::get(addr, "/metrics").expect("metrics scrape");
    assert_eq!(resp.status, 200, "{}", resp.body);
    resp.body
        .lines()
        .find(|line| line.split_whitespace().next() == Some(name))
        .and_then(|line| line.split_whitespace().nth(1))
        .map(|v| v.parse().expect("numeric metric"))
        .unwrap_or(0.0)
}

/// Opens a connection that claims a body it never sends, pinning one
/// worker in its read loop until dropped (or the socket timeout).
fn stall_worker(addr: SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"POST /align HTTP/1.1\r\nContent-Length: 64\r\n\r\n")
        .unwrap();
    stream.flush().unwrap();
    stream
}

#[test]
fn repeat_pair_hits_session_cache_across_concurrent_clients() {
    let server = start(ServerConfig {
        workers: 3,
        ..ServerConfig::default()
    });
    let addr = server.addr();

    let health = client::get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert!(health.body.contains("ok"), "{}", health.body);

    // Four concurrent clients, all posting the SAME pair.
    let body = align_body(48, 0);
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let body = body.clone();
            std::thread::spawn(move || client::post(addr, "/align", &body).unwrap())
        })
        .collect();
    for c in clients {
        let resp = c.join().unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
    }

    // A fifth request for the pair must reuse a cached session.
    let resp = client::post(addr, "/align", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let parsed = Json::parse(&resp.body).unwrap();
    assert_eq!(parsed.get("session_reused"), Some(&Json::Bool(true)));
    assert!(parsed.get("fingerprint").unwrap().as_str().unwrap().len() == 16);
    let cache_hits = parsed
        .get("result")
        .and_then(|r| r.get("timings"))
        .and_then(|t| t.get("cache_hits"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(cache_hits > 0, "repeat request must hit stage caches");

    assert!(metric(addr, "serve_session_hits") >= 1.0);
    assert!(metric(addr, "serve_session_misses") >= 1.0);
    assert!(metric(addr, "serve_requests") >= 5.0);
    assert!(metric(addr, "serve_request_seconds_count") >= 5.0);
    assert!(metric(addr, "serve_sessions_resident") >= 1.0);
    server.shutdown();
}

#[test]
fn malformed_and_invalid_requests_get_typed_error_bodies() {
    let server = start(ServerConfig::default());
    let addr = server.addr();

    // Broken JSON → 400 with the protocol error kind.
    let resp = client::post(addr, "/align", "{not json").unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    let parsed = Json::parse(&resp.body).unwrap();
    let kind = parsed.get("error").unwrap().get("kind").unwrap();
    assert_eq!(kind, &Json::Str("protocol".to_string()));

    // Out-of-bounds edge → 400; unknown config field → 400.
    let resp = client::post(
        addr,
        "/align",
        r#"{"a":{"n":3,"edges":[[0,9]]},"b":{"n":3,"edges":[[0,1]]}}"#,
    )
    .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("out of bounds"), "{}", resp.body);
    let resp = client::post(
        addr,
        "/align",
        &format!(
            "{{\"a\":{g},\"b\":{g},\"config\":{{\"knn\":4}}}}",
            g = graph_json(12, 0)
        ),
    )
    .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);

    // A graph too small for the spectral oversampling block must be a
    // typed 422, not a worker-killing panic in the embed kernel
    // (regression: the kernel asserts dim + oversample <= n).
    let resp = client::post(
        addr,
        "/align",
        r#"{"a":{"n":3,"edges":[[0,1],[1,2]]},"b":{"n":3,"edges":[[0,2],[1,2]]},"config":{"k":2,"bp_iters":5,"dim":2,"subspace_anchors":0}}"#,
    )
    .unwrap();
    assert_eq!(resp.status, 422, "{}", resp.body);
    // ...and the worker pool survives to serve the next request.
    assert_eq!(client::get(addr, "/healthz").unwrap().status, 200);

    // Structurally valid but unalignable (dim > n) → 422.
    let resp = client::post(
        addr,
        "/align",
        &format!(
            "{{\"a\":{g},\"b\":{g},\"config\":{{\"dim\":64,\"subspace_anchors\":0}}}}",
            g = graph_json(10, 0)
        ),
    )
    .unwrap();
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert!(Json::parse(&resp.body).unwrap().get("error").is_some());

    // Routing errors.
    assert_eq!(client::get(addr, "/nope").unwrap().status, 404);
    assert_eq!(client::get(addr, "/align").unwrap().status, 405);
    assert!(metric(addr, "serve_errors") >= 5.0);
    server.shutdown();
}

#[test]
fn saturated_queue_answers_503_busy() {
    let server = start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    });
    let addr = server.addr();

    let staller = stall_worker(addr);
    std::thread::sleep(Duration::from_millis(200));

    // One request fits the queue; the rest must be rejected inline.
    let waiters: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(move || client::get(addr, "/healthz").unwrap().status))
        .collect();
    std::thread::sleep(Duration::from_millis(300));
    drop(staller);

    let statuses: Vec<u16> = waiters.into_iter().map(|w| w.join().unwrap()).collect();
    let ok = statuses.iter().filter(|&&s| s == 200).count();
    let busy = statuses.iter().filter(|&&s| s == 503).count();
    assert_eq!(ok + busy, 4, "unexpected statuses {statuses:?}");
    assert_eq!(ok, 1, "exactly the queued request succeeds: {statuses:?}");
    assert!(busy >= 3, "{statuses:?}");
    assert!(metric(addr, "serve_rejected") >= 3.0);
    server.shutdown();
}

#[test]
fn requests_queued_past_deadline_answer_504() {
    let server = start(ServerConfig {
        workers: 1,
        queue_capacity: 8,
        deadline: Duration::from_millis(250),
        ..ServerConfig::default()
    });
    let addr = server.addr();

    let staller = stall_worker(addr);
    std::thread::sleep(Duration::from_millis(150));
    let waiter = std::thread::spawn(move || client::get(addr, "/healthz").unwrap());
    // Hold the worker well past the queued request's deadline.
    std::thread::sleep(Duration::from_millis(700));
    drop(staller);

    let resp = waiter.join().unwrap();
    assert_eq!(resp.status, 504, "{}", resp.body);
    assert!(resp.body.contains("deadline"), "{}", resp.body);
    assert!(metric(addr, "serve_timeouts") >= 1.0);
    server.shutdown();
}

#[test]
fn sweep_runs_configs_in_order_on_one_session() {
    let server = start(ServerConfig::default());
    let addr = server.addr();

    let body = format!(
        "{{\"a\":{},\"b\":{},\"configs\":[{{\"dim\":6,\"k\":4,\"bp_iters\":4,\"subspace_anchors\":0}},{{\"dim\":6,\"k\":4,\"bp_iters\":8,\"subspace_anchors\":0}},{{\"dim\":6,\"k\":6,\"bp_iters\":8,\"subspace_anchors\":0}}]}}",
        graph_json(40, 2),
        graph_json(40, 3),
    );
    let resp = client::post(addr, "/sweep", &body).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let parsed = Json::parse(&resp.body).unwrap();
    let results = parsed.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 3);
    // Later sweep entries reuse cached stages (only bp/k changed).
    for r in &results[1..] {
        let hits = r
            .get("timings")
            .and_then(|t| t.get("cache_hits"))
            .and_then(Json::as_u64)
            .unwrap();
        assert!(hits > 0, "sweep entries after the first must reuse stages");
    }

    // An empty sweep is a protocol error.
    let resp = client::post(
        addr,
        "/sweep",
        &format!(
            "{{\"a\":{g},\"b\":{g},\"configs\":[]}}",
            g = graph_json(12, 0)
        ),
    )
    .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.body);
    server.shutdown();
}

#[test]
fn shutdown_drains_queued_requests_before_exit() {
    let server = start(ServerConfig {
        workers: 1,
        queue_capacity: 8,
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let handle = server.shutdown_handle();

    // Wedge the worker, then queue two real requests behind it.
    let staller = stall_worker(addr);
    std::thread::sleep(Duration::from_millis(150));
    let queued: Vec<_> = (0..2)
        .map(|i| {
            std::thread::spawn(move || client::post(addr, "/align", &align_body(32, i)).unwrap())
        })
        .collect();
    std::thread::sleep(Duration::from_millis(250));

    // Shutdown with work still queued: drain semantics say those
    // clients are answered, not dropped.
    handle.trigger();
    drop(staller);
    for q in queued {
        let resp = q.join().unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains("fingerprint"), "{}", resp.body);
    }
    // All threads exit; joins complete.
    server.shutdown();
}

#[test]
fn post_shutdown_endpoint_stops_the_server() {
    let server = start(ServerConfig::default());
    let addr = server.addr();
    let resp = client::post(addr, "/shutdown", "").unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    server.wait();
    // The port is released; new connections fail.
    assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err());
}
