//! Using cuAlign on your own data: read edge lists from disk, align,
//! write the mapping — the library counterpart of the `cualign` CLI.
//!
//! This example fabricates the two input files in a temp directory first
//! (in real use you'd bring your own), then runs the full round trip.
//!
//! Run with:
//! ```text
//! cargo run --release --example custom_dataset
//! ```

use cualign::{Aligner, AlignerConfig};
use cualign_graph::generators::duplication_divergence;
use cualign_graph::{io, Permutation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write;

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join("cualign_custom_dataset");
    std::fs::create_dir_all(&dir)?;
    let path_a = dir.join("species_a.txt");
    let path_b = dir.join("species_b.txt");
    let path_map = dir.join("mapping.tsv");

    // Fabricate "two species' interactomes" (a permuted pair) on disk.
    let mut rng = StdRng::seed_from_u64(99);
    let a = duplication_divergence(800, 0.42, 0.3, &mut rng);
    let p = Permutation::random(a.num_vertices(), &mut rng);
    let b = p.apply_to_graph(&a);
    io::save_edge_list(&a, &path_a)?;
    io::save_edge_list(&b, &path_b)?;
    println!("wrote {} and {}", path_a.display(), path_b.display());

    // The real workflow starts here: load, align, persist the mapping.
    let ga = io::load_edge_list(&path_a)?;
    let gb = io::load_edge_list(&path_b)?;
    let cfg = AlignerConfig::builder()
        .density(0.02)
        .bp_iters(15)
        .build()
        .expect("example parameters are in range");
    let result = Aligner::new(cfg)
        .align(&ga, &gb)
        .expect("loaded graphs are non-degenerate");

    let mut out = std::fs::File::create(&path_map)?;
    writeln!(out, "# cuAlign mapping: vertex_of_A <TAB> vertex_of_B")?;
    let mut written = 0usize;
    for (u, v) in result
        .mapping
        .iter()
        .enumerate()
        .filter_map(|(u, m)| m.map(|v| (u, v)))
    {
        writeln!(out, "{u}\t{v}")?;
        written += 1;
    }
    println!(
        "aligned {} of {} vertices → {} (NCV-GS3 = {:.4}, {} conserved edges)",
        written,
        ga.num_vertices(),
        path_map.display(),
        result.scores.ncv_gs3,
        result.scores.conserved_edges
    );

    // Since we fabricated the data, we can also check against the truth.
    let correct = result
        .mapping
        .iter()
        .enumerate()
        .filter(|&(u, m)| *m == Some(p.apply(u as u32)))
        .count();
    println!(
        "(secret ground truth: {correct} / {} pairs exactly right)",
        ga.num_vertices()
    );
    Ok(())
}
