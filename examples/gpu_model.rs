//! Explore the GPU execution model: per-kernel roofline components, the
//! effect of each §5 optimization (binning, virtual warps, fusion,
//! streams), and the resulting CPU-vs-GPU speedups — the machinery behind
//! the Table 2 reproduction.
//!
//! Run with:
//! ```text
//! cargo run --release --example gpu_model
//! ```

use cualign::{Aligner, AlignerConfig, SparsityChoice};
use cualign_bp::BpConfig;
use cualign_embed::align_subspaces;
use cualign_gpusim::bp_gpu::model_bp_iteration;
use cualign_gpusim::report::table2_row;
use cualign_gpusim::{DeviceSpec, ExecConfig};
use cualign_graph::generators::duplication_divergence;
use cualign_graph::permutation::AlignmentInstance;
use cualign_overlap::OverlapMatrix;
use cualign_sparsify::build_alignment_graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Build a mid-size instance's L and S through the real pipeline
    // front half, so the model is charged with genuine sparsity structure.
    let mut rng = StdRng::seed_from_u64(3);
    let a = duplication_divergence(2000, 0.40, 0.28, &mut rng);
    let inst = AlignmentInstance::permuted_pair(a, &mut rng);
    let cfg = AlignerConfig {
        sparsity: SparsityChoice::Density(0.01),
        ..Default::default()
    };
    let y1 = cfg.embedding.embed(&inst.a);
    let y2 = cfg.embedding.with_seed_offset(1).embed(&inst.b);
    let sub = align_subspaces(&y1, &y2, &inst.a, &inst.b, &cfg.subspace)
        .expect("pipeline-produced embeddings always match their graphs");
    let k = cfg.resolve_k(inst.a.num_vertices(), inst.b.num_vertices());
    let l = build_alignment_graph(&sub.ya, &sub.yb, k);
    let s = OverlapMatrix::build(&inst.a, &inst.b, &l);
    println!(
        "instance: |V| = {}, |E_L| = {}, nnz(S) = {}",
        inst.a.num_vertices(),
        l.num_edges(),
        s.nnz()
    );

    let gpu = DeviceSpec::a100();
    let cpu = DeviceSpec::epyc7702p();

    // Per-kernel modeled microseconds for one BP iteration on the A100.
    println!("\nBP iteration kernels on {} (µs, fused):", gpu.name);
    let (kernels, total) = model_bp_iteration(&l, &s, true, &gpu, &ExecConfig::optimized());
    for (name, st) in &kernels {
        println!(
            "  {:>16}: {:>8.2} µs  ({} launches, {:.1}% idle lanes)",
            name,
            st.seconds * 1e6,
            st.launches,
            st.idle_fraction() * 100.0
        );
    }
    println!("  {:>16}: {:>8.2} µs", "TOTAL", total * 1e6);

    // Ablate each §5 optimization.
    println!("\nablation of the paper's §5 optimizations (one BP iteration, µs):");
    let configs = [
        ("all optimizations", ExecConfig::optimized(), true),
        ("no fusion", ExecConfig::optimized(), false),
        (
            "no streams",
            ExecConfig {
                streams: false,
                ..ExecConfig::optimized()
            },
            true,
        ),
        (
            "no virtual warps",
            ExecConfig {
                virtual_warps: false,
                ..ExecConfig::optimized()
            },
            true,
        ),
        ("naive (none)", ExecConfig::naive(), false),
    ];
    for (label, exec, fused) in configs {
        let (_, secs) = model_bp_iteration(&l, &s, fused, &gpu, &exec);
        println!("  {:>18}: {:>8.2}", label, secs * 1e6);
    }

    // The Table 2 comparison for this instance.
    let row = table2_row(&l, &s, &BpConfig::default(), &ExecConfig::optimized());
    println!("\nmodeled phase times ({} vs {}):", cpu.name, gpu.name);
    println!(
        "  BP   : {:>9.2} ms vs {:>9.2} ms  → {:>5.2}×",
        row.cpu.bp_s * 1e3,
        row.gpu.bp_s * 1e3,
        row.bp_speedup()
    );
    println!(
        "  match: {:>9.2} ms vs {:>9.2} ms  → {:>5.2}×",
        row.cpu.match_s * 1e3,
        row.gpu.match_s * 1e3,
        row.match_speedup()
    );
    println!(
        "  total: {:>9.2} ms vs {:>9.2} ms  → {:>5.2}×",
        row.cpu.total_s() * 1e3,
        row.gpu.total_s() * 1e3,
        row.total_speedup()
    );

    // Sanity: the simulated numerics are the reference numerics.
    let result = Aligner::new(cfg)
        .align(&inst.a, &inst.b)
        .expect("generated inputs are non-degenerate");
    println!(
        "\nfunctional result unchanged by the model: NCV-GS3 = {:.4} (best BP iter {})",
        result.scores.ncv_gs3, result.bp.best_iteration
    );
}
