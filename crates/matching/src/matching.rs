//! The [`Matching`] result type shared by every matcher, with validity and
//! quality accessors.

use cualign_graph::{BipartiteGraph, EdgeId, VertexId};

/// A matching on a [`BipartiteGraph`]: a set of edges, no two sharing an
/// endpoint, together with mate lookup tables for both sides.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    mate_a: Vec<Option<VertexId>>,
    mate_b: Vec<Option<VertexId>>,
    edges: Vec<EdgeId>,
}

impl Matching {
    /// Builds a matching from a set of edge ids of `l`.
    ///
    /// # Panics
    /// Panics if two edges share an endpoint (not a matching).
    pub fn from_edge_ids(l: &BipartiteGraph, mut ids: Vec<EdgeId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        let mut mate_a = vec![None; l.na()];
        let mut mate_b = vec![None; l.nb()];
        for &e in &ids {
            let le = l.edge(e);
            assert!(
                mate_a[le.a as usize].is_none(),
                "vertex A{} matched twice",
                le.a
            );
            assert!(
                mate_b[le.b as usize].is_none(),
                "vertex B{} matched twice",
                le.b
            );
            mate_a[le.a as usize] = Some(le.b);
            mate_b[le.b as usize] = Some(le.a);
        }
        Matching {
            mate_a,
            mate_b,
            edges: ids,
        }
    }

    /// The empty matching on `l`'s vertex sets.
    pub fn empty(l: &BipartiteGraph) -> Self {
        Matching {
            mate_a: vec![None; l.na()],
            mate_b: vec![None; l.nb()],
            edges: Vec::new(),
        }
    }

    /// Number of matched edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges are matched.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Matched edge ids, ascending.
    #[inline]
    pub fn edge_ids(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Mate of A-side vertex `a`, if matched.
    #[inline]
    pub fn mate_of_a(&self, a: VertexId) -> Option<VertexId> {
        self.mate_a[a as usize]
    }

    /// Mate of B-side vertex `b`, if matched.
    #[inline]
    pub fn mate_of_b(&self, b: VertexId) -> Option<VertexId> {
        self.mate_b[b as usize]
    }

    /// The full A-side mate table (`mate[a] = Some(b)` if matched).
    #[inline]
    pub fn mates_a(&self) -> &[Option<VertexId>] {
        &self.mate_a
    }

    /// The full B-side mate table.
    #[inline]
    pub fn mates_b(&self) -> &[Option<VertexId>] {
        &self.mate_b
    }

    /// Total weight under `l`'s current weights.
    pub fn weight(&self, l: &BipartiteGraph) -> f64 {
        self.edges.iter().map(|&e| l.weights()[e as usize]).sum()
    }

    /// Checks that this is a valid matching of `l` and that the mate tables
    /// agree with the edge set.
    pub fn check_valid(&self, l: &BipartiteGraph) -> Result<(), String> {
        if self.mate_a.len() != l.na() || self.mate_b.len() != l.nb() {
            return Err("mate table sizes wrong".into());
        }
        let mut seen_a = vec![false; l.na()];
        let mut seen_b = vec![false; l.nb()];
        for &e in &self.edges {
            if (e as usize) >= l.num_edges() {
                return Err(format!("edge id {e} out of range"));
            }
            let le = l.edge(e);
            if seen_a[le.a as usize] || seen_b[le.b as usize] {
                return Err(format!("edge {e} shares an endpoint"));
            }
            seen_a[le.a as usize] = true;
            seen_b[le.b as usize] = true;
            if self.mate_a[le.a as usize] != Some(le.b) || self.mate_b[le.b as usize] != Some(le.a)
            {
                return Err(format!("mate tables disagree with edge {e}"));
            }
        }
        let table_count = self.mate_a.iter().filter(|m| m.is_some()).count();
        if table_count != self.edges.len() {
            return Err("mate table has entries not in the edge set".into());
        }
        Ok(())
    }

    /// Whether the matching is maximal w.r.t. positive-weight edges: no
    /// edge of positive weight joins two unmatched vertices. Every
    /// locally-dominant or greedy result must satisfy this.
    pub fn is_maximal(&self, l: &BipartiteGraph) -> bool {
        for (eid, le) in l.edges().iter().enumerate() {
            if l.weights()[eid] > 0.0
                && self.mate_a[le.a as usize].is_none()
                && self.mate_b[le.b as usize].is_none()
            {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_l() -> BipartiteGraph {
        BipartiteGraph::from_weighted_edges(
            2,
            2,
            &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 0.5)],
        )
    }

    #[test]
    fn from_ids_builds_tables() {
        let l = sample_l();
        // Match (0,1) and (1,0): ids are sorted by (a,b): 0:(0,0) 1:(0,1) 2:(1,0) 3:(1,1)
        let m = Matching::from_edge_ids(&l, vec![1, 2]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.mate_of_a(0), Some(1));
        assert_eq!(m.mate_of_a(1), Some(0));
        assert_eq!(m.mate_of_b(1), Some(0));
        assert!((m.weight(&l) - 5.0).abs() < 1e-12);
        m.check_valid(&l).unwrap();
    }

    #[test]
    fn empty_matching_is_valid_not_maximal() {
        let l = sample_l();
        let m = Matching::empty(&l);
        m.check_valid(&l).unwrap();
        assert!(!m.is_maximal(&l), "positive edges remain");
    }

    #[test]
    fn maximality_detection() {
        let l = sample_l();
        let m = Matching::from_edge_ids(&l, vec![1, 2]);
        assert!(m.is_maximal(&l));
        // Matching only (0,0) leaves (1,1) free with positive weight.
        let m2 = Matching::from_edge_ids(&l, vec![0]);
        assert!(!m2.is_maximal(&l));
    }

    #[test]
    #[should_panic(expected = "matched twice")]
    fn rejects_conflicting_edges() {
        let l = sample_l();
        // ids 0:(0,0) and 1:(0,1) share A-vertex 0.
        let _ = Matching::from_edge_ids(&l, vec![0, 1]);
    }

    #[test]
    fn dedups_edge_ids() {
        let l = sample_l();
        let m = Matching::from_edge_ids(&l, vec![2, 2, 2]);
        assert_eq!(m.len(), 1);
        m.check_valid(&l).unwrap();
    }
}
