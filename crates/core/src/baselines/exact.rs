//! Exact network alignment by branch and bound, for tiny instances.
//!
//! Maximizes the paper's Eq. (1) objective restricted to the overlap term
//! (`α = 0, β = 1`, i.e. conserved-edge count) over **all** injective
//! mappings `V_A → V_B`. Exponential, pruned by a simple admissible
//! bound; usable to `n ≈ 12`. Exists so the test suite can measure how
//! close the heuristics get to the true optimum — the kind of oracle an
//! NP-hard problem's evaluation should carry.

use cualign_graph::{CsrGraph, VertexId};

/// Result of exact alignment.
pub struct ExactResult {
    /// An optimal mapping (every A-vertex mapped when `|V_A| ≤ |V_B|`).
    pub mapping: Vec<Option<VertexId>>,
    /// The maximum number of conserved edges.
    pub conserved: usize,
}

/// Computes an optimal alignment of `a` into `b` maximizing conserved
/// edges.
///
/// # Panics
/// Panics if `|V_A| > 12` (the search is exponential) or `|V_A| > |V_B|`.
pub fn exact_alignment(a: &CsrGraph, b: &CsrGraph) -> ExactResult {
    let na = a.num_vertices();
    let nb = b.num_vertices();
    assert!(na <= 12, "exact alignment capped at 12 vertices (got {na})");
    assert!(na <= nb, "need |V_A| ≤ |V_B| for an injective mapping");

    // Order A-vertices by descending degree: high-degree first maximizes
    // early pruning.
    let mut order: Vec<VertexId> = (0..na as VertexId).collect();
    order.sort_by_key(|&u| std::cmp::Reverse(a.degree(u)));

    // Remaining-edge upper bound: edges of A with at least one endpoint
    // not yet placed can each contribute at most 1.
    let mut best = vec![None; na];
    let mut best_score = 0usize;
    let mut current: Vec<Option<VertexId>> = vec![None; na];
    let mut used = vec![false; nb];

    // Precompute, for each prefix depth, how many A-edges have both
    // endpoints inside the prefix (these are decided) — the rest bound
    // the future gain.
    let mut undecided_after = vec![0usize; na + 1];
    for depth in 0..=na {
        let placed: Vec<bool> = {
            let mut p = vec![false; na];
            for &u in &order[..depth] {
                p[u as usize] = true;
            }
            p
        };
        undecided_after[depth] = a
            .edges()
            .filter(|&(x, y)| !placed[x as usize] || !placed[y as usize])
            .count();
    }

    fn conserved_gain(
        a: &CsrGraph,
        b: &CsrGraph,
        current: &[Option<VertexId>],
        u: VertexId,
        v: VertexId,
    ) -> usize {
        // New conserved edges created by placing u ↦ v: neighbors of u
        // already placed whose images neighbor v.
        a.neighbors(u)
            .iter()
            .filter(|&&u2| {
                current[u2 as usize]
                    .map(|v2| b.has_edge(v, v2))
                    .unwrap_or(false)
            })
            .count()
    }

    #[allow(clippy::too_many_arguments)]
    fn rec(
        a: &CsrGraph,
        b: &CsrGraph,
        order: &[VertexId],
        undecided_after: &[usize],
        depth: usize,
        score: usize,
        current: &mut Vec<Option<VertexId>>,
        used: &mut Vec<bool>,
        best: &mut Vec<Option<VertexId>>,
        best_score: &mut usize,
    ) {
        if depth == order.len() {
            if score > *best_score || best.iter().all(|m| m.is_none()) {
                *best_score = score;
                best.clone_from(current);
            }
            return;
        }
        // Admissible bound: every undecided A-edge could still conserve.
        if score + undecided_after[depth] < *best_score {
            return;
        }
        let u = order[depth];
        for v in 0..b.num_vertices() as VertexId {
            if used[v as usize] {
                continue;
            }
            let gain = conserved_gain(a, b, current, u, v);
            current[u as usize] = Some(v);
            used[v as usize] = true;
            rec(
                a,
                b,
                order,
                undecided_after,
                depth + 1,
                score + gain,
                current,
                used,
                best,
                best_score,
            );
            current[u as usize] = None;
            used[v as usize] = false;
        }
    }

    rec(
        a,
        b,
        &order,
        &undecided_after,
        0,
        0,
        &mut current,
        &mut used,
        &mut best,
        &mut best_score,
    );
    // A full search always finds some complete mapping; record it.
    ExactResult {
        mapping: best,
        conserved: best_score,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::score_alignment;
    use cualign_graph::generators::erdos_renyi_gnm;
    use cualign_graph::Permutation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_on_self_alignment() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let r = exact_alignment(&g, &g);
        assert_eq!(r.conserved, 6, "a 6-cycle self-aligns perfectly");
        let scores = score_alignment(&g, &g, &r.mapping);
        assert_eq!(scores.conserved_edges, 6);
    }

    #[test]
    fn permuted_instance_recovers_all_edges() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = erdos_renyi_gnm(8, 12, &mut rng);
        let p = Permutation::random(8, &mut rng);
        let b = p.apply_to_graph(&a);
        let r = exact_alignment(&a, &b);
        assert_eq!(r.conserved, 12, "isomorphic pair must conserve everything");
    }

    #[test]
    fn dominates_any_specific_mapping() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = erdos_renyi_gnm(7, 10, &mut rng);
        let b = erdos_renyi_gnm(9, 14, &mut rng);
        let r = exact_alignment(&a, &b);
        // Compare against the identity-prefix mapping.
        let naive: Vec<Option<VertexId>> = (0..7).map(Some).collect();
        let naive_score = score_alignment(&a, &b, &naive).conserved_edges;
        assert!(r.conserved >= naive_score);
    }

    #[test]
    fn star_into_larger_star() {
        // A 4-star embeds into a 6-star conserving all 3 edges.
        let a = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let b = CsrGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let r = exact_alignment(&a, &b);
        assert_eq!(r.conserved, 3);
        assert_eq!(r.mapping[0], Some(0), "hub must map to hub");
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn rejects_large_inputs() {
        let g = CsrGraph::empty(13);
        let _ = exact_alignment(&g, &g);
    }
}
