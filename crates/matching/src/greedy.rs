//! Globally-sorted greedy matching — the classical ½-approximation.
//!
//! Sort all positive edges by the crate preference order and sweep,
//! committing every edge whose endpoints are still free. With a strict
//! total preference order this produces exactly the same matching as the
//! locally dominant algorithm (both always commit the heaviest remaining
//! eligible edge), which makes it a useful differential-testing partner for
//! the worklist and parallel implementations.

use crate::matching::Matching;
use cualign_graph::{BipartiteGraph, EdgeId};

/// Computes the greedy matching of `l` over strictly positive edges.
pub fn greedy_matching(l: &BipartiteGraph) -> Matching {
    let mut order: Vec<EdgeId> = (0..l.num_edges() as EdgeId)
        .filter(|&e| l.weights()[e as usize] > 0.0)
        .collect();
    // Preference order: weight descending, id ascending. total_cmp keeps
    // the sort robust to any non-finite weights produced upstream.
    order.sort_unstable_by(|&e1, &e2| {
        let w1 = l.weights()[e1 as usize];
        let w2 = l.weights()[e2 as usize];
        w2.total_cmp(&w1).then(e1.cmp(&e2))
    });
    let mut used_a = vec![false; l.na()];
    let mut used_b = vec![false; l.nb()];
    let mut chosen = Vec::new();
    for e in order {
        let le = l.edge(e);
        if !used_a[le.a as usize] && !used_b[le.b as usize] {
            used_a[le.a as usize] = true;
            used_b[le.b as usize] = true;
            chosen.push(e);
        }
    }
    Matching::from_edge_ids(l, chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cualign_graph::VertexId;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn commits_in_weight_order() {
        let l = BipartiteGraph::from_weighted_edges(
            2,
            2,
            &[(0, 0, 1.0), (0, 1, 5.0), (1, 0, 4.0), (1, 1, 3.0)],
        );
        let m = greedy_matching(&l);
        // Heaviest (0,1,5.0) first, then (1,0,4.0).
        assert_eq!(m.mate_of_a(0), Some(1));
        assert_eq!(m.mate_of_a(1), Some(0));
        assert!((m.weight(&l) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn skips_nonpositive() {
        let l = BipartiteGraph::from_weighted_edges(1, 2, &[(0, 0, 0.0), (0, 1, -2.0)]);
        let m = greedy_matching(&l);
        assert!(m.is_empty());
    }

    #[test]
    fn tie_break_is_deterministic() {
        // Two equal-weight edges fight for A0; the smaller edge id wins.
        let l = BipartiteGraph::from_weighted_edges(1, 2, &[(0, 0, 2.0), (0, 1, 2.0)]);
        let m = greedy_matching(&l);
        assert_eq!(m.mate_of_a(0), Some(0));
    }

    #[test]
    fn greedy_is_half_approximate_on_random() {
        // Against brute force on tiny instances.
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let triples: Vec<(VertexId, VertexId, f64)> = (0..12)
                .map(|_| (rng.gen_range(0..4), rng.gen_range(0..4), rng.gen::<f64>()))
                .collect();
            let l = BipartiteGraph::from_weighted_edges(4, 4, &triples);
            let m = greedy_matching(&l);
            let best = brute_force_max_weight(&l);
            assert!(
                m.weight(&l) >= 0.5 * best - 1e-9,
                "greedy {} < half of {}",
                m.weight(&l),
                best
            );
        }
    }

    /// Exhaustive maximum-weight matching for tiny graphs.
    fn brute_force_max_weight(l: &BipartiteGraph) -> f64 {
        fn rec(
            l: &BipartiteGraph,
            e: usize,
            used_a: &mut Vec<bool>,
            used_b: &mut Vec<bool>,
        ) -> f64 {
            if e == l.num_edges() {
                return 0.0;
            }
            // Skip edge e.
            let mut best = rec(l, e + 1, used_a, used_b);
            let le = l.edge(e as u32);
            let w = l.weights()[e];
            if w > 0.0 && !used_a[le.a as usize] && !used_b[le.b as usize] {
                used_a[le.a as usize] = true;
                used_b[le.b as usize] = true;
                best = best.max(w + rec(l, e + 1, used_a, used_b));
                used_a[le.a as usize] = false;
                used_b[le.b as usize] = false;
            }
            best
        }
        let mut ua = vec![false; l.na()];
        let mut ub = vec![false; l.nb()];
        rec(l, 0, &mut ua, &mut ub)
    }
}
