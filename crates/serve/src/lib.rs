//! # cualign-serve
//!
//! A long-running alignment service over the `cualign` engine: a
//! std-only HTTP/1.1 server whose whole job is to keep
//! [`cualign::AlignmentSession`]s warm between requests. The first
//! request for a graph pair pays the full pipeline; every later request
//! for the same pair — different config or not — reuses whatever stage
//! artifacts its config keys still fingerprint-match, which is the
//! session cache doing over the network what it already did in-process.
//!
//! ## Shape
//!
//! * [`server`] — acceptor thread, bounded queue, fixed worker pool,
//!   graceful drain-on-shutdown ([`Server`], [`ServerConfig`]).
//! * [`lru`] — the session store keyed by
//!   [`cualign::graph_pair_fingerprint`].
//! * [`protocol`] — request/response JSON and the error → status map.
//! * [`http`] / [`json`] — hand-rolled framing and parsing; the crate
//!   has no external dependencies by design.
//! * [`client`] — the blocking client the e2e tests, bench load
//!   generator, and CI smoke checks share.
//!
//! ## Quickstart
//!
//! ```
//! use cualign_serve::{client, Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default()).unwrap();
//! let health = client::get(server.addr(), "/healthz").unwrap();
//! assert_eq!(health.status, 200);
//! server.shutdown();
//! ```
//!
//! Endpoints: `POST /align`, `POST /sweep`, `GET /metrics` (Prometheus
//! text), `GET /healthz`, `POST /shutdown`. Saturation answers `503` +
//! `Retry-After`; requests queued past the deadline answer `504`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod json;
pub mod lru;
pub mod protocol;
pub mod server;

pub use lru::{OwnedSession, SessionLru};
pub use server::{Server, ServerConfig, ShutdownHandle};
