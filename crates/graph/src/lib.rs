//! # cualign-graph
//!
//! Graph substrate for the cuAlign network-alignment framework.
//!
//! This crate provides the data structures and input machinery every other
//! layer of the stack builds on:
//!
//! * [`CsrGraph`] — an undirected graph in compressed sparse row form, the
//!   representation the paper uses for the input networks `A` and `B`.
//! * [`BipartiteGraph`] — the weighted bipartite graph `L` between the
//!   vertex sets of `A` and `B` whose matchings are candidate alignments.
//!   Both orientations (A-side and B-side CSR) are materialized with stable
//!   edge identifiers so belief propagation and matching can traverse either
//!   side without translation tables.
//! * [`generators`] — synthetic graph models used by the evaluation:
//!   Erdős–Rényi, Barabási–Albert, power-law configuration model,
//!   Watts–Strogatz, and duplication–divergence ("PPI-like") graphs.
//! * [`Permutation`] — ground-truth vertex relabelings used by the paper's
//!   self-alignment protocol (`B = P(A)`).
//! * [`coarsen`] — heavy-edge-matching graph coarsening
//!   ([`CoarseningHierarchy`]), the contraction half of the multilevel
//!   coarsen–align–project–refine wrapper driven from the core crate.
//! * [`wl`] — Weisfeiler–Lehman label refinement shared by coarsening's
//!   structural tie-breaks and the approximate sparsifier's cross-graph
//!   label-bucket candidate generator ([`wl::wl_candidates`]).
//! * [`noise`] — edge perturbation for robustness experiments.
//! * [`binning`] — degree-based binning of vertices/work-items, the load
//!   balancing strategy of the paper's §5 (shared with the GPU simulator).
//! * [`graphlets`] — graphlet degree vectors (GRAAL-style structural
//!   signatures) via exact ESU enumeration.
//! * [`io`] — plain edge-list serialization.
//!
//! In the pipeline (paper Fig. 2) this crate is the substrate layer: it
//! holds the inputs `A`/`B` (§3.1), the bipartite candidate graph `L`
//! that sparsification (§4.1) produces and BP/matching (§4.2–4.3)
//! consume, and the synthetic instances of the evaluation (§6).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod binning;
pub mod bipartite;
pub mod coarsen;
pub mod csr;
pub mod generators;
pub mod graphlets;
pub mod io;
pub mod noise;
pub mod permutation;
pub mod stats;
pub mod wl;

pub use bipartite::{BipartiteGraph, LEdge, Side};
pub use coarsen::{CoarseLevel, CoarsenConfig, CoarseningHierarchy};
pub use csr::CsrGraph;
pub use permutation::Permutation;

/// Vertex identifier. `u32` keeps adjacency arrays compact (see the type-size
/// guidance in the Rust performance handbook); graphs beyond 4B vertices are
/// far outside this system's scope.
pub type VertexId = u32;

/// Identifier of an edge of the bipartite graph `L`. Edge ids index the
/// weight vector and the rows/columns of the overlap matrix `S`.
pub type EdgeId = u32;
