//! `float-ordering`: NaN-hazardous float comparisons.
//!
//! `partial_cmp` on floats returns `None` for NaN. Chaining it into
//! `unwrap`/`expect` turns one poisoned kernel output into a panic in
//! the middle of an alignment run (the Sinkhorn hot path did exactly
//! this), and feeding it to a sort comparator makes the sort order —
//! and with `sort_unstable`, potentially the whole run — undefined.
//! The fix is almost always `f64::total_cmp`, which is a total order,
//! or an explicit fold with a stated NaN policy.

use super::{ident, is_punct, matching_paren};
use crate::source::{FileKind, SourceFile};
use crate::Diagnostic;
use std::collections::HashSet;

/// Rule name as written in diagnostics and allow directives.
pub const RULE: &str = "float-ordering";

/// Comparator-taking methods whose closure must not rely on
/// `partial_cmp`.
const SORTERS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "select_nth_unstable_by",
    "max_by",
    "min_by",
    "binary_search_by",
];

/// Runs the rule over one file. Scope matches `no-panic`: library code
/// of the algorithmic crates.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if file.kind != FileKind::Lib || !super::no_panic::CRATES.contains(&file.crate_name.as_str()) {
        return Vec::new();
    }
    let toks = &file.lexed.tokens;
    let mut out = Vec::new();
    let mut flagged: HashSet<usize> = HashSet::new();

    for i in 0..toks.len() {
        let Some(name) = ident(toks.get(i)) else {
            continue;
        };
        if !is_punct(toks.get(i.wrapping_sub(1)), '.') || !is_punct(toks.get(i + 1), '(') {
            continue;
        }
        if SORTERS.contains(&name) {
            // Scan the comparator argument for partial_cmp.
            let close = matching_paren(toks, i + 1);
            for j in (i + 2)..close {
                if ident(toks.get(j)) == Some("partial_cmp") && flagged.insert(j) {
                    if handles_none(toks, j) {
                        continue;
                    }
                    let line = toks[j].line;
                    if file.is_test_line(line) || file.allowed(RULE, line) {
                        continue;
                    }
                    out.push(Diagnostic {
                        file: file.rel.clone(),
                        line,
                        rule: RULE,
                        message: format!(
                            "partial_cmp inside {name} comparator is a NaN hazard; \
                             use f64::total_cmp or a comparator with an explicit NaN policy"
                        ),
                    });
                }
            }
        } else if name == "partial_cmp" && !flagged.contains(&i) {
            // .partial_cmp(x).unwrap() / .expect(...).
            let close = matching_paren(toks, i + 1);
            if is_punct(toks.get(close + 1), '.')
                && matches!(ident(toks.get(close + 2)), Some("unwrap" | "expect"))
            {
                let line = toks[i].line;
                if file.is_test_line(line) || file.allowed(RULE, line) {
                    continue;
                }
                flagged.insert(i);
                out.push(Diagnostic {
                    file: file.rel.clone(),
                    line,
                    rule: RULE,
                    message: "partial_cmp chained into unwrap/expect panics on NaN; \
                              use f64::total_cmp or fold with an explicit NaN policy"
                        .to_string(),
                });
            }
        }
    }
    out
}

/// True when the `partial_cmp` call starting at token `i` is chained
/// into a method that states a policy for the `None` case —
/// `unwrap_or(Ordering::Less)` and friends are exactly the "comparator
/// with an explicit NaN policy" the diagnostic asks for.
fn handles_none(toks: &[crate::lexer::Token], i: usize) -> bool {
    if !is_punct(toks.get(i + 1), '(') {
        return false;
    }
    let close = matching_paren(toks, i + 1);
    is_punct(toks.get(close + 1), '.')
        && matches!(
            ident(toks.get(close + 2)),
            Some("unwrap_or" | "unwrap_or_else" | "unwrap_or_default" | "map_or" | "map_or_else")
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<Diagnostic> {
        check(&SourceFile::parse("crates/linalg/src/x.rs", src))
    }

    #[test]
    fn flags_partial_cmp_unwrap_chain() {
        let src = "fn f() { let o = a.partial_cmp(&b).unwrap(); }";
        assert_eq!(diags(src).len(), 1);
        let src = "fn f() { let o = a.partial_cmp(&b).expect(\"finite\"); }";
        assert_eq!(diags(src).len(), 1);
    }

    #[test]
    fn flags_partial_cmp_in_sort_comparators() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        // One finding: the comparator hit subsumes the chain hit.
        assert_eq!(diags(src).len(), 1);
        let src = "fn f() { let m = xs.iter().max_by(|a, b| a.partial_cmp(b).unwrap()); }";
        assert_eq!(diags(src).len(), 1);
    }

    #[test]
    fn total_cmp_and_bare_partial_cmp_are_fine() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }";
        assert!(diags(src).is_empty());
        // Un-chained partial_cmp handled with match is the correct form.
        let src = "fn f() { match a.partial_cmp(&b) { Some(o) => o, None => Ordering::Less } }";
        assert!(diags(src).is_empty());
        // A PartialOrd impl defines partial_cmp; it does not call it.
        let src =
            "impl PartialOrd for X { fn partial_cmp(&self, o: &X) -> Option<Ordering> { None } }";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn explicit_none_policy_in_sorter_is_fine() {
        let src = "fn f() { let m = xs.iter()\
                   .max_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Less)); }";
        assert!(diags(src).is_empty());
        // ...but a bare partial_cmp in a comparator still fires.
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        assert_eq!(diags(src).len(), 1);
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "fn f() {\n// lint: allow(float-ordering): inputs pre-filtered finite\n\
                   let o = a.partial_cmp(&b).unwrap();\n}";
        assert!(diags(src).is_empty());
    }
}
