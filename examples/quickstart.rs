//! Quickstart: align a graph with a permuted copy of itself and inspect
//! the result — the paper's evaluation protocol in miniature.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use cualign::{Aligner, AlignerConfig, SparsityChoice};
use cualign_graph::generators::erdos_renyi_gnm;
use cualign_graph::permutation::AlignmentInstance;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. Build an input graph A and its ground-truthed partner B = P(A).
    let mut rng = StdRng::seed_from_u64(42);
    let a = erdos_renyi_gnm(500, 1500, &mut rng);
    let inst = AlignmentInstance::permuted_pair(a, &mut rng);
    println!(
        "input: |V| = {}, |E| = {} (B is a secretly permuted copy of A)",
        inst.a.num_vertices(),
        inst.a.num_edges()
    );

    // 2. Configure the aligner through the validating builder. The
    //    default is the paper's operating point (2.5% density); we pin an
    //    explicit k here for illustration.
    let cfg = AlignerConfig::builder()
        .sparsity(SparsityChoice::K(10))
        .bp_iters(15)
        .build()
        .expect("k = 10 and 15 iterations are in range");

    // 3. Align.
    let result = Aligner::new(cfg)
        .align(&inst.a, &inst.b)
        .expect("generated inputs are non-degenerate");

    // 4. Inspect quality.
    println!("\nalignment quality:");
    println!(
        "  conserved edges   : {} / {}",
        result.scores.conserved_edges,
        inst.a.num_edges()
    );
    println!("  EC  (edge correctness)       : {:.4}", result.scores.ec);
    println!("  ICS (induced conserved)      : {:.4}", result.scores.ics);
    println!("  S3  (symmetric substructure) : {:.4}", result.scores.s3);
    println!("  NCV (node coverage)          : {:.4}", result.scores.ncv);
    println!(
        "  NCV-GS3 (paper's metric)     : {:.4}",
        result.scores.ncv_gs3
    );

    // 5. Against the hidden ground truth.
    let correct = inst.node_correctness(&result.mapping);
    println!("  node correctness vs. ground truth: {:.4}", correct);

    // 6. Where the time went.
    let t = &result.timings;
    println!("\ntimings (s): embed {:.3} | subspace {:.3} | sparsify {:.3} | overlap {:.3} | optimize {:.3}",
        t.embedding_s, t.subspace_s, t.sparsify_s, t.overlap_s, t.optimize_s);
    println!(
        "structures: |E_L| = {}, nnz(S) = {}, best BP iteration = {}",
        result.l_edges, result.s_nnz, result.bp.best_iteration
    );
}
