//! Descriptive statistics over graphs — degree distributions, clustering,
//! connectivity. Used to sanity-check that generated stand-ins for the
//! paper's inputs have the right shape, and by examples to describe their
//! inputs.

use crate::{CsrGraph, VertexId};

/// Summary statistics of a graph's degree distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Sample standard deviation of the degrees.
    pub std_dev: f64,
}

/// Computes [`DegreeStats`]. Returns zeros for the empty graph.
pub fn degree_stats(g: &CsrGraph) -> DegreeStats {
    let n = g.num_vertices();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            std_dev: 0.0,
        };
    }
    let degrees: Vec<usize> = (0..n as VertexId).map(|u| g.degree(u)).collect();
    let min = degrees.iter().copied().min().unwrap_or(0);
    let max = degrees.iter().copied().max().unwrap_or(0);
    let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
    let var = degrees
        .iter()
        .map(|&d| (d as f64 - mean).powi(2))
        .sum::<f64>()
        / n as f64;
    DegreeStats {
        min,
        max,
        mean,
        std_dev: var.sqrt(),
    }
}

/// Degree histogram: `hist[d]` = number of vertices of degree `d`.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for u in 0..g.num_vertices() as VertexId {
        hist[g.degree(u)] += 1;
    }
    hist
}

/// Global clustering coefficient: `3 · #triangles / #wedges`.
/// Returns 0 when the graph has no wedges.
pub fn global_clustering(g: &CsrGraph) -> f64 {
    let mut triangles = 0usize;
    let mut wedges = 0usize;
    for u in 0..g.num_vertices() as VertexId {
        let d = g.degree(u);
        wedges += d * d.saturating_sub(1) / 2;
        let adj = g.neighbors(u);
        for (i, &v) in adj.iter().enumerate() {
            if v <= u {
                continue;
            }
            for &w in &adj[i + 1..] {
                if w > v && g.has_edge(v, w) {
                    triangles += 1;
                }
            }
        }
    }
    if wedges == 0 {
        0.0
    } else {
        3.0 * triangles as f64 / wedges as f64
    }
}

/// Number of connected components (BFS).
pub fn connected_components(g: &CsrGraph) -> usize {
    let n = g.num_vertices();
    let mut visited = vec![false; n];
    let mut components = 0;
    let mut queue: Vec<VertexId> = Vec::new();
    for s in 0..n {
        if visited[s] {
            continue;
        }
        components += 1;
        visited[s] = true;
        queue.push(s as VertexId);
        while let Some(u) = queue.pop() {
            for &v in g.neighbors(u) {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    queue.push(v);
                }
            }
        }
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{duplication_divergence, erdos_renyi_gnm, watts_strogatz};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stats_of_triangle() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let s = degree_stats(&g);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!(s.std_dev < 1e-12);
        assert!((global_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_star_is_zero() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(global_clustering(&g), 0.0);
    }

    #[test]
    fn histogram_sums_to_n() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi_gnm(200, 500, &mut rng);
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), 200);
        // Sum of d * hist[d] = 2|E|.
        let stubs: usize = hist.iter().enumerate().map(|(d, &c)| d * c).sum();
        assert_eq!(stubs, 1000);
    }

    #[test]
    fn components_counts() {
        // Two triangles, disjoint.
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        assert_eq!(connected_components(&g), 2);
        let e = CsrGraph::empty(4);
        assert_eq!(connected_components(&e), 4);
    }

    #[test]
    fn small_world_clusters_more_than_random() {
        let mut rng = StdRng::seed_from_u64(2);
        let ws = watts_strogatz(300, 6, 0.05, &mut rng);
        let er = erdos_renyi_gnm(300, ws.num_edges(), &mut rng);
        assert!(global_clustering(&ws) > 2.0 * global_clustering(&er));
    }

    #[test]
    fn ppi_model_clusters() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = duplication_divergence(500, 0.45, 0.3, &mut rng);
        // Duplication creates shared neighborhoods, hence triangles.
        assert!(global_clustering(&g) > 0.01);
    }

    #[test]
    fn empty_graph_stats() {
        let g = CsrGraph::empty(0);
        let s = degree_stats(&g);
        assert_eq!(s.max, 0);
        assert_eq!(connected_components(&g), 0);
    }
}
