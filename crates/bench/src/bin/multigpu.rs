//! Extension experiment: the paper's future work — distributed multi-GPU
//! belief propagation (§7) — under the strong-scaling model of
//! `cualign_gpusim::multi_gpu`.
//!
//! ```text
//! cargo run --release -p cualign-bench --bin multigpu
//! ```

use cualign::PaperInput;
use cualign_bench::{prepare_instance, HarnessConfig};
use cualign_gpusim::multi_gpu::{strong_scaling_sweep, Interconnect};
use cualign_gpusim::{DeviceSpec, ExecConfig};

fn main() {
    let telemetry = cualign_bench::telemetry_sink();
    let h = HarnessConfig::from_env();
    let density = 0.025;
    let counts = [1usize, 2, 4, 8];
    println!(
        "Multi-GPU strong scaling (extension): BP iteration on 1–8 modeled A100s over NVLink3\n(scale = {}, density = {}%, seed = {})\n",
        h.scale,
        density * 100.0,
        h.seed
    );
    print!("{:<16}", "Network");
    for g in counts {
        print!(" {:>16}", format!("{g} GPU(s)"));
    }
    println!();
    println!("{}", "-".repeat(16 + 17 * counts.len()));
    for input in PaperInput::all() {
        let p = prepare_instance(&h, input, density);
        let sweep = strong_scaling_sweep(
            &p.l,
            &p.s,
            &DeviceSpec::a100(),
            &Interconnect::nvlink3(),
            &ExecConfig::optimized(),
            &counts,
        );
        print!("{:<16}", input.name());
        for point in &sweep {
            print!(
                " {:>8.2}x ({:>3.0}%)",
                point.speedup,
                point.efficiency * 100.0
            );
        }
        println!();
    }
    println!("\n(cells: speedup over 1 GPU and parallel efficiency; efficiency decays as");
    println!("the all-gather of messages and Sᵖ halos stops shrinking with the shards)");
    cualign_bench::emit_telemetry(&telemetry);
}
