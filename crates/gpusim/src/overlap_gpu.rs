//! GPU cost model of the overlap-matrix construction (Algorithm 3).
//!
//! The paper singles this kernel out for its **shared-memory**
//! optimization: "in Algorithm 3 each neighbor of a given vertex is
//! accessed multiple times. Hence we keep them in shared memory." The
//! model exposes that choice:
//!
//! * without shared memory, the inner loop re-reads `v`'s B-neighborhood
//!   once per A-neighbor: `deg_A(u) · deg_B(v)` scattered loads per edge
//!   of `L`;
//! * with shared memory, each neighborhood is staged once
//!   (`deg_A(u) + deg_B(v)` loads) and the quadratic pass runs from
//!   on-chip storage.
//!
//! The build is modeled as the same **two-phase** pass the CPU
//! implementation now runs: a *count* launch over the edges of `L`
//! (sized by candidate-pair count), a prefix-scan over the row counts,
//! and a *fill* launch charged per **merge chunk** of the output CSR
//! (equal-nnz work items, [`MERGE_CHUNK_NNZ`] apiece), so lane-slot and
//! transaction accounting reflects the balanced fill distribution even
//! when a hub edge owns most of a row.

use crate::bp_gpu::MERGE_CHUNK_NNZ;
use crate::device::DeviceSpec;
use crate::exec::{simulate_launch, ExecConfig, LaunchStats};
use crate::footprint::Footprint;
use cualign_graph::{BipartiteGraph, CsrGraph};
use cualign_linalg::sparse::MergePlan;
use cualign_overlap::OverlapMatrix;

/// Modeled cost of building `S` on `device`.
#[derive(Clone, Debug)]
pub struct OverlapBuildReport {
    /// Modeled seconds (all phases).
    pub seconds: f64,
    /// Per-phase launch statistics: `overlap_count`, `overlap_offsets`,
    /// `overlap_fill`.
    pub phases: Vec<(&'static str, LaunchStats)>,
    /// Whether the shared-memory staging was modeled.
    pub shared_memory: bool,
}

impl OverlapBuildReport {
    /// Total modeled memory transactions across phases.
    pub fn transactions(&self) -> u64 {
        self.phases.iter().map(|(_, st)| st.transactions()).sum()
    }

    /// Total idle-lane fraction across phases.
    pub fn idle_fraction(&self) -> f64 {
        let a: u64 = self.phases.iter().map(|(_, s)| s.active_lane_slots()).sum();
        let i: u64 = self.phases.iter().map(|(_, s)| s.idle_lane_slots()).sum();
        if a + i == 0 {
            0.0
        } else {
            i as f64 / (a + i) as f64
        }
    }
}

/// Per-edge work sizes: `deg_A(u) · deg_B(v)` candidate pairs.
fn pair_counts(a: &CsrGraph, b: &CsrGraph, l: &BipartiteGraph) -> Vec<usize> {
    l.edges()
        .iter()
        .map(|le| a.degree(le.a) * b.degree(le.b))
        .collect()
}

/// Inverse hit ratio assumed by the model: one in `HIT_RATIO` candidate
/// pairs is an actual square (a surviving nonzero of `S`).
const HIT_RATIO: usize = 8;

/// Models the two-phase Algorithm-3 build. The per-item footprint depends
/// on `shared_memory`; the lookup of `(u', v') ∈ E_L` is charged as one
/// scattered read per candidate pair either way (a hashed/binary probe of
/// global memory).
pub fn model_overlap_build(
    a: &CsrGraph,
    b: &CsrGraph,
    l: &BipartiteGraph,
    device: &DeviceSpec,
    exec: &ExecConfig,
    shared_memory: bool,
) -> OverlapBuildReport {
    let sizes = pair_counts(a, b, l);
    // Average neighborhood split per item: size = dA·dB; staging cost is
    // dA + dB ≈ 2·√size for the model (exact split is irrelevant at the
    // fidelity of a footprint model).
    let staged = |sz: usize| (2.0 * (sz.max(1) as f64).sqrt()).ceil() as usize;

    // Phase 1 — count: traverse the candidate pairs, write one row count
    // per edge, no column output.
    let count = simulate_launch(device, exec, &sizes, move |sz| {
        if shared_memory {
            Footprint {
                contiguous_reads: staged(sz), // one pass over each adjacency list
                scattered_reads: sz,          // the E_L membership probes
                contiguous_writes: 1,         // row_counts[e]
                flops: 2 * sz,
                ..Default::default()
            }
        } else {
            Footprint {
                // Re-read the B adjacency per A-neighbor, plus the probes.
                scattered_reads: 2 * sz,
                contiguous_writes: 1,
                flops: 2 * sz,
                ..Default::default()
            }
        }
    });

    // Prefix scan of the m row counts into row offsets.
    let scan_sizes = vec![1usize; l.num_edges()];
    let offsets_scan = simulate_launch(device, exec, &scan_sizes, |_| Footprint {
        contiguous_reads: 1,
        contiguous_writes: 1,
        flops: 1,
        ..Default::default()
    });

    // Phase 2 — fill: charged per merge chunk of the (estimated) output
    // CSR. Each chunk re-traverses the pairs that produced its nonzeros
    // and writes its column span plus the transpose permutation.
    let mut est_offsets = Vec::with_capacity(sizes.len() + 1);
    est_offsets.push(0usize);
    for &sz in &sizes {
        est_offsets.push(est_offsets.last().copied().unwrap_or(0) + sz / HIT_RATIO);
    }
    let plan = MergePlan::with_chunk_nnz(&est_offsets, MERGE_CHUNK_NNZ);
    let fill_sizes: Vec<usize> = plan.chunks().iter().map(|c| c.end - c.begin).collect();
    let fill = simulate_launch(device, exec, &fill_sizes, move |nnz| {
        let pairs = nnz * HIT_RATIO;
        if shared_memory {
            Footprint {
                contiguous_reads: staged(pairs),
                scattered_reads: pairs + nnz, // probes + transpose binary search
                contiguous_writes: 2 * nnz,   // col_idx span + transpose_perm
                flops: 2 * pairs,
                ..Default::default()
            }
        } else {
            Footprint {
                scattered_reads: 2 * pairs + nnz,
                contiguous_writes: 2 * nnz,
                flops: 2 * pairs,
                ..Default::default()
            }
        }
    });

    let phases = vec![
        ("overlap_count", count),
        ("overlap_offsets", offsets_scan),
        ("overlap_fill", fill),
    ];
    OverlapBuildReport {
        seconds: phases.iter().map(|(_, st)| st.seconds).sum(),
        phases,
        shared_memory,
    }
}

/// Builds `S` functionally (reference implementation) and models the
/// kernel on `device` with shared memory on.
pub fn simulate_overlap_build(
    a: &CsrGraph,
    b: &CsrGraph,
    l: &BipartiteGraph,
    device: &DeviceSpec,
    exec: &ExecConfig,
) -> (OverlapMatrix, OverlapBuildReport) {
    let s = OverlapMatrix::build(a, b, l);
    let report = model_overlap_build(a, b, l, device, exec, true);
    (s, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cualign_graph::generators::barabasi_albert;
    use cualign_graph::{Permutation, VertexId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn instance(n: usize, seed: u64) -> (CsrGraph, CsrGraph, BipartiteGraph) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = barabasi_albert(n, 3, &mut rng);
        let p = Permutation::random(n, &mut rng);
        let b = p.apply_to_graph(&a);
        let mut triples = Vec::new();
        for i in 0..n as VertexId {
            triples.push((i, p.apply(i), 0.5));
            for _ in 0..5 {
                triples.push((i, rng.gen_range(0..n as VertexId), 0.5));
            }
        }
        let l = BipartiteGraph::from_weighted_edges(n, n, &triples);
        (a, b, l)
    }

    #[test]
    fn shared_memory_reduces_modeled_time() {
        let (a, b, l) = instance(800, 1);
        let gpu = DeviceSpec::a100();
        let with = model_overlap_build(&a, &b, &l, &gpu, &ExecConfig::optimized(), true);
        let without = model_overlap_build(&a, &b, &l, &gpu, &ExecConfig::optimized(), false);
        assert!(
            with.seconds < without.seconds,
            "shared memory did not help: {} vs {}",
            with.seconds,
            without.seconds
        );
        assert!(with.transactions() < without.transactions());
    }

    /// The fill phase's merge chunks are equal-nnz work items: on a
    /// hub-skewed candidate set they must waste fewer lane slots than the
    /// per-edge count phase, and the phase set must cover count → scan →
    /// fill.
    #[test]
    fn fill_phase_is_merge_balanced() {
        let (a, b, mut l) = instance(600, 5);
        // Skew: pair vertex 0 with everything, creating a hub edge whose
        // candidate-pair count dwarfs the rest.
        let n = 600;
        let mut triples: Vec<(VertexId, VertexId, f64)> = l
            .edges()
            .iter()
            .map(|e| (e.a, e.b, 0.5))
            .collect();
        for j in 0..n as VertexId {
            triples.push((0, j, 0.5));
        }
        l = BipartiteGraph::from_weighted_edges(n, n, &triples);
        let report =
            model_overlap_build(&a, &b, &l, &DeviceSpec::a100(), &ExecConfig::optimized(), true);
        let names: Vec<&str> = report.phases.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["overlap_count", "overlap_offsets", "overlap_fill"]);
        let count = &report.phases[0].1;
        let fill = &report.phases[2].1;
        assert!(
            fill.idle_fraction() <= count.idle_fraction() + 1e-12,
            "fill idle {} > count idle {}",
            fill.idle_fraction(),
            count.idle_fraction()
        );
        assert!(report.transactions() > 0);
    }

    #[test]
    fn functional_result_is_reference() {
        let (a, b, l) = instance(100, 2);
        let (s, report) =
            simulate_overlap_build(&a, &b, &l, &DeviceSpec::a100(), &ExecConfig::optimized());
        let reference = OverlapMatrix::build(&a, &b, &l);
        assert_eq!(s.nnz(), reference.nnz());
        assert_eq!(s.row_offsets(), reference.row_offsets());
        assert!(report.seconds > 0.0);
        assert!(report.shared_memory);
    }

    #[test]
    fn gpu_outruns_cpu_on_large_builds() {
        let (a, b, l) = instance(3000, 3);
        let g = model_overlap_build(
            &a,
            &b,
            &l,
            &DeviceSpec::a100(),
            &ExecConfig::optimized(),
            true,
        );
        let c = model_overlap_build(
            &a,
            &b,
            &l,
            &DeviceSpec::epyc7702p(),
            &ExecConfig::naive(),
            true,
        );
        assert!(
            c.seconds > g.seconds,
            "cpu {} ≤ gpu {}",
            c.seconds,
            g.seconds
        );
    }
}
