//! Hand-rolled JSON for the wire protocol.
//!
//! The serving layer is std-only by design (ROADMAP: no external deps in
//! the request path), so this module supplies the minimal JSON kernel the
//! protocol needs: a strict recursive-descent parser with a depth cap and
//! a writer whose escaping mirrors the telemetry exporter's conventions
//! (non-finite numbers serialize as `null`). It is deliberately small —
//! no incremental parsing, no borrowed strings — because request bodies
//! are bounded by the HTTP layer before they reach it.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted by [`Json::parse`]. Deep enough for any
/// legitimate request (the protocol nests four levels), shallow enough
/// that a `[[[[…]]]]` bomb cannot overflow the stack.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
///
/// Objects use a [`BTreeMap`] so serialization is deterministic — the
/// e2e tests and the bench compare response bodies textually.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers round-trip exactly up to 2^53.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with deterministic (sorted) key order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Num(x) if x >= 0.0 && x.fract() == 0.0 && x <= 2f64.powi(53) => Some(x as u64),
            _ => None,
        }
    }

    /// The value as a finite float.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(x) => Some(x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Convenience constructor for object literals.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // Integers print without a trailing ".0" so ids and
                    // counts look like JSON integers on the wire.
                    if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) {
                        out.push_str(&format!("{}", *x as i64));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_into(&mut s);
        f.write_str(&s)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected byte '{}' at {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        // The scanner only admits [-+.0-9eE], so `inf`/`nan` spellings can
        // never reach from_str; non-finite values are unrepresentable.
        let x: f64 = text
            .parse()
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))?;
        if !x.is_finite() {
            return Err(format!("number {text:?} overflows f64 at byte {start}"));
        }
        Ok(Json::Num(x))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out)
                        .map_err(|_| "invalid UTF-8 inside string escape".to_string());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'n' => out.push(b'\n'),
                        b't' => out.push(b'\t'),
                        b'r' => out.push(b'\r'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired:
                            // the protocol never emits them.
                            let c = char::from_u32(code)
                                .ok_or(format!("escape \\u{code:04x} is not a scalar value"))?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        }
                        other => {
                            return Err(format!("unknown escape '\\{}'", other as char));
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte 0x{b:02x} inside string"));
                }
                Some(b) => {
                    out.push(b);
                    self.pos += 1;
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            if fields.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate key {key:?}"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let text =
            r#"{"a":{"n":3,"edges":[[0,1],[1,2]]},"config":{"k":5,"eps":0.25},"tag":"x\n\"y\""}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().get("n").unwrap().as_u64(), Some(3));
        let edges = v
            .get("a")
            .unwrap()
            .get("edges")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(edges[1].as_array().unwrap()[1].as_u64(), Some(2));
        assert_eq!(
            v.get("config").unwrap().get("eps").unwrap().as_f64(),
            Some(0.25)
        );
        assert_eq!(v.get("tag").unwrap().as_str(), Some("x\n\"y\""));
        // Serialize → reparse is identity.
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":1,}",
            "{\"a\":1} x",
            "\"unterminated",
            "{\"dup\":1,\"dup\":2}",
            "nul",
            "1e999",
            "--3",
            "[\u{1}]",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
        // Depth bomb hits the cap, not the stack.
        let bomb = "[".repeat(500) + &"]".repeat(500);
        assert!(Json::parse(&bomb).unwrap_err().contains("nesting"));
    }

    #[test]
    fn integers_print_without_fraction() {
        let v = Json::obj(vec![
            ("count", Json::Num(42.0)),
            ("ratio", Json::Num(0.5)),
            ("nan", Json::Num(f64::NAN)),
        ]);
        assert_eq!(v.to_string(), r#"{"count":42,"nan":null,"ratio":0.5}"#);
    }
}
