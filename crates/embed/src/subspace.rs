//! Subspace alignment across graphs — the paper's Eq. (2):
//!
//! ```text
//! min_{Q ∈ O(d)}  min_{P ∈ Perm(n)}  ‖ Y₁ Q − P Y₂ ‖²
//! ```
//!
//! solved, per Chen et al. (cone-align), by alternating
//!
//! 1. **soft correspondence** — entropic Sinkhorn OT between the current
//!    `Y₁Q` rows and the `Y₂` rows gives a doubly-stochastic relaxation of
//!    `P`, and
//! 2. **rotation** — orthogonal Procrustes against the barycentric
//!    projection of that plan gives the optimal `Q`.
//!
//! For scalability the OT step runs on **anchor subsets**: the top-degree
//! vertices of each graph. Degree sequences are isomorphism-invariant, so
//! the two anchor sets approximately correspond, and `Q` has only `d²`
//! degrees of freedom — a few hundred anchors pin it down (substitution
//! recorded in DESIGN.md §2; `anchors = 0` requests the exact full-matrix
//! procedure).
//!
//! ## Kernel structure (DESIGN.md "Subspace kernels")
//!
//! The alternation's inner loops are expressed as dense-kernel
//! compositions rather than per-pair scalar loops:
//!
//! * the pairwise squared-Euclidean cost matrix is built from the
//!   expansion `‖x − z‖² = ‖x‖² + ‖z‖² − 2·x·z` — one tiled
//!   [`gemm::dot_block`] Gram sweep plus two row-norm vectors — in
//!   [`pairwise_cost`]; the seed scalar loop survives as
//!   [`pairwise_cost_reference`],
//! * the Sinkhorn solve runs the blocked
//!   [`sinkhorn_with`] through one reused
//!   [`SinkhornWorkspace`] for the whole alternation (the annealed
//!   schedule solves `iterations + 1` same-shape problems),
//! * [`structural_features`] walks the CSR's **sorted** adjacency — merge
//!   dedup for two-hop counts, two-pointer intersection for triangles —
//!   instead of per-vertex hash sets.
//!
//! [`align_subspaces_reference`] chains the two reference kernels through
//! the same alternation; `tests/prop_subspace.rs` pins the fast path
//! against it and against the kernel oracles element-wise.
//!
//! Telemetry (global registry): child spans `subspace.features`,
//! `subspace.cost`, `subspace.sinkhorn`, `subspace.procrustes` attribute
//! the alternation's time, and the `subspace.round_cost` histogram records
//! the per-round transport cost ⟨T, C⟩.

use cualign_graph::{CsrGraph, VertexId};
use cualign_linalg::procrustes::orthogonal_procrustes;
use cualign_linalg::sinkhorn::{
    sinkhorn_reference, sinkhorn_warm_with, sinkhorn_with, SinkhornOptions, SinkhornWorkspace,
    TransportPlan,
};
use cualign_linalg::{gemm, vecops, DenseMatrix};
use rayon::prelude::*;

/// Error type for the fallible subspace API.
///
/// `cualign-core` wraps this as `AlignError::Subspace`, so session-level
/// callers see one error enum; direct `cualign-embed` users match on this.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubspaceError {
    /// The two embeddings have different column counts.
    DimensionMismatch {
        /// `Y₁`'s embedding dimension.
        left: usize,
        /// `Y₂`'s embedding dimension.
        right: usize,
    },
    /// An embedding's row count does not match its graph's vertex count.
    RowCountMismatch {
        /// Which input pair disagrees (`"A"` or `"B"`).
        side: &'static str,
        /// Embedding rows.
        rows: usize,
        /// Graph vertices.
        vertices: usize,
    },
    /// A [`SubspaceAlignConfig`] field is out of range.
    InvalidConfig {
        /// Dotted config path (e.g. `subspace.sinkhorn.epsilon`).
        field: &'static str,
        /// Human-readable constraint violation.
        reason: String,
    },
}

impl std::fmt::Display for SubspaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubspaceError::DimensionMismatch { left, right } => {
                write!(f, "embedding dimension mismatch: Y1 has {left} columns, Y2 has {right}")
            }
            SubspaceError::RowCountMismatch {
                side,
                rows,
                vertices,
            } => write!(
                f,
                "embedding/graph size mismatch on side {side}: {rows} embedding rows for {vertices} vertices"
            ),
            SubspaceError::InvalidConfig { field, reason } => {
                write!(f, "invalid config {field}: {reason}")
            }
        }
    }
}

impl std::error::Error for SubspaceError {}

/// Configuration for [`align_subspaces`].
///
/// Construct through `AlignerConfig::builder()` in `cualign-core` (which
/// validates via [`SubspaceAlignConfig::validate`]) or fill the fields
/// directly for standalone use; `align_subspaces` re-validates either way.
#[derive(Clone, Copy, Debug)]
pub struct SubspaceAlignConfig {
    /// Anchor count per side; `0` uses every vertex (exact but `O(n²)` per
    /// Sinkhorn iteration).
    pub anchors: usize,
    /// Alternation rounds of (Sinkhorn ⇄ Procrustes); must be ≥ 1.
    pub iterations: usize,
    /// Entropic OT solver options; `sinkhorn.epsilon` is the **final**
    /// regularization and must be positive.
    pub sinkhorn: SinkhornOptions,
    /// Initial entropic regularization (positive). Rounds anneal
    /// geometrically from here down to `sinkhorn.epsilon` — the
    /// coarse-to-fine schedule that keeps early rounds from committing to
    /// a bad correspondence (the role of cone-align's convex
    /// initialization).
    pub epsilon_start: f64,
}

impl Default for SubspaceAlignConfig {
    fn default() -> Self {
        SubspaceAlignConfig {
            anchors: 768,
            iterations: 8,
            sinkhorn: SinkhornOptions {
                epsilon: 0.05,
                max_iters: 150,
                tolerance: 1e-5,
            },
            epsilon_start: 0.3,
        }
    }
}

impl SubspaceAlignConfig {
    /// Checks every field's range constraint. Field names are the dotted
    /// paths the `AlignerConfig` builder reports (`subspace.*`).
    // The negated comparisons are deliberate: NaN fails `x > 0.0`, so
    // `!(x > 0.0)` rejects it along with every non-positive value.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), SubspaceError> {
        // `!(x > 0.0)` rather than `x <= 0.0`: the former also rejects NaN.
        if !(self.sinkhorn.epsilon > 0.0) {
            return Err(SubspaceError::InvalidConfig {
                field: "subspace.sinkhorn.epsilon",
                reason: format!("must be > 0, got {}", self.sinkhorn.epsilon),
            });
        }
        if !(self.epsilon_start > 0.0) {
            return Err(SubspaceError::InvalidConfig {
                field: "subspace.epsilon_start",
                reason: format!("must be > 0, got {}", self.epsilon_start),
            });
        }
        if self.iterations == 0 {
            return Err(SubspaceError::InvalidConfig {
                field: "subspace.iterations",
                reason: "must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

/// Result of subspace alignment.
#[derive(Clone, Debug)]
pub struct SubspaceAlignment {
    /// `Y₁ · Q` — graph A's embedding rotated into B's frame.
    pub ya: DenseMatrix,
    /// `Y₂` unchanged (the paper's Algorithm 1 line 6).
    pub yb: DenseMatrix,
    /// The learned orthogonal rotation `Q` (`d × d`).
    pub rotation: DenseMatrix,
    /// Anchor-set transport cost per round (diagnostic; non-increasing in
    /// well-conditioned instances). Also exported as the
    /// `subspace.round_cost` telemetry histogram.
    pub round_costs: Vec<f64>,
}

/// Indices of the `k` highest-degree vertices in **degree-rank order**
/// (descending degree, ties broken by id); all vertices when `k == 0` or
/// `k ≥ n`.
///
/// The rank ordering matters: because degree sequences are
/// isomorphism-invariant, pairing rank `i` of graph A with rank `i` of
/// graph B gives a serviceable initial correspondence for Eq. (2) — the
/// rotation is then refined by the Sinkhorn/Procrustes alternation.
pub fn top_degree_anchors(g: &CsrGraph, k: usize) -> Vec<usize> {
    let n = g.num_vertices();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by_key(|&u| (std::cmp::Reverse(g.degree(u as VertexId)), u));
    if k != 0 && k < n {
        idx.truncate(k);
    }
    idx
}

/// Count of elements common to two strictly-sorted slices (two-pointer
/// merge; CSR adjacency is sorted and deduplicated by construction).
fn sorted_intersection_count(a: &[VertexId], b: &[VertexId]) -> usize {
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Raw (un-standardized) feature row for vertex `u`: log-degree,
/// mean/max neighbor degree (log), 2-hop size (log), clustering
/// coefficient. `scratch` is a reusable buffer for the two-hop merge.
fn feature_row(g: &CsrGraph, u: usize, scratch: &mut Vec<VertexId>, row: &mut [f64]) {
    let nbrs = g.neighbors(u as VertexId);
    let deg = nbrs.len();
    let (mut sum_nd, mut max_nd) = (0usize, 0usize);
    let mut tri = 0usize;
    scratch.clear();
    for (idx, &v) in nbrs.iter().enumerate() {
        let vn = g.neighbors(v);
        sum_nd += vn.len();
        max_nd = max_nd.max(vn.len());
        // Two-hop candidates: concatenate now, dedup once after the loop
        // (the adjacency lists are sorted, but their union is not).
        scratch.extend_from_slice(vn);
        // Triangles at u: each unordered neighbor pair (v, w) with v < w
        // in CSR position; sorted intersection replaces the seed's
        // per-pair `has_edge` binary searches.
        tri += sorted_intersection_count(&nbrs[idx + 1..], vn);
    }
    scratch.sort_unstable();
    scratch.dedup();
    let self_hit = scratch.binary_search(&(u as VertexId)).is_ok() as usize;
    let two_hop = scratch.len() - self_hit;
    row[0] = (1.0 + deg as f64).ln();
    row[1] = if deg == 0 {
        0.0
    } else {
        (1.0 + sum_nd as f64 / deg as f64).ln()
    };
    row[2] = (1.0 + max_nd as f64).ln();
    row[3] = (1.0 + two_hop as f64).ln();
    row[4] = if deg >= 2 {
        2.0 * tri as f64 / (deg * (deg - 1)) as f64
    } else {
        0.0
    };
}

/// Output rows per rayon task in the feature and cost sweeps (mirrors the
/// GEMM row blocking).
const ROW_BLOCK: usize = 32;

/// Standardizes each column of `f` in place over all its rows (the
/// feature distributions of isomorphic graphs coincide exactly, so
/// per-graph standardization preserves correspondence).
fn standardize_columns(f: &mut DenseMatrix) {
    let (n, c) = (f.rows(), f.cols());
    for j in 0..c {
        let mean: f64 = (0..n).map(|i| f[(i, j)]).sum::<f64>() / n.max(1) as f64;
        let var: f64 = (0..n).map(|i| (f[(i, j)] - mean).powi(2)).sum::<f64>() / n.max(1) as f64;
        let std = var.sqrt().max(1e-12);
        for i in 0..n {
            f[(i, j)] = (f[(i, j)] - mean) / std;
        }
    }
}

/// Rotation-invariant structural node features used to seed the
/// correspondence: log-degree, mean/max neighbor degree (log), 2-hop
/// neighborhood size (log), and local clustering coefficient — all
/// isomorphism-invariant, so corresponding vertices of `A` and `B = P(A)`
/// get identical feature rows. Columns are standardized per graph.
pub fn structural_features(g: &CsrGraph) -> DenseMatrix {
    let rows: Vec<usize> = (0..g.num_vertices()).collect();
    structural_features_for(g, &rows)
}

/// [`structural_features`] restricted to `rows` (in the given order),
/// standardized **over that subset**. The anchor-initialized alignment
/// only ever consumes anchor rows, so it computes exactly those — on the
/// subset the standardization basis shifts from all vertices to the
/// anchor set, which preserves isomorphism-invariance (anchor sets of
/// isomorphic graphs correspond) and is what the Sinkhorn seeding
/// actually conditions on.
pub fn structural_features_for(g: &CsrGraph, rows: &[usize]) -> DenseMatrix {
    let mut f = DenseMatrix::zeros(rows.len(), 5);
    if rows.is_empty() {
        return f;
    }
    f.data_mut()
        .par_chunks_mut(5 * ROW_BLOCK)
        .enumerate()
        .for_each(|(ci, chunk)| {
            let mut scratch: Vec<VertexId> = Vec::new();
            for (r, row) in chunk.chunks_exact_mut(5).enumerate() {
                feature_row(g, rows[ci * ROW_BLOCK + r], &mut scratch, row);
            }
        });
    standardize_columns(&mut f);
    f
}

/// Pairwise squared-Euclidean cost between the rows of `x` and `z`, via
/// the expansion `‖x − z‖² = ‖x‖² + ‖z‖² − 2·x·z`: one tiled Gram sweep
/// ([`gemm::dot_block`] over packed `z` rows) plus two row-norm vectors.
/// Entries are clamped at zero (the expansion can go fractionally
/// negative for near-identical rows). Agrees with
/// [`pairwise_cost_reference`] to ~1e-12 absolute on unit-scale
/// embeddings (different floating-point association; pinned in
/// `tests/prop_subspace.rs`).
pub fn pairwise_cost(x: &DenseMatrix, z: &DenseMatrix) -> DenseMatrix {
    assert_eq!(x.cols(), z.cols(), "cost operands disagree in dimension");
    let (n, m) = (x.rows(), z.rows());
    if n == 0 || m == 0 {
        return DenseMatrix::zeros(n, m);
    }
    let sq_norms = |mat: &DenseMatrix| -> Vec<f64> {
        (0..mat.rows())
            .map(|i| {
                let r = mat.row(i);
                vecops::dot(r, r)
            })
            .collect()
    };
    let xn = sq_norms(x);
    let zn = sq_norms(z);
    let packed = gemm::pack_rows(z);
    let mut out = vec![0.0; n * m];
    out.par_chunks_mut(m * ROW_BLOCK)
        .enumerate()
        .for_each(|(ci, chunk)| {
            let i0 = ci * ROW_BLOCK;
            let rows = chunk.len() / m;
            gemm::dot_block(x, i0, i0 + rows, &packed, 0, m, chunk);
            for (r, orow) in chunk.chunks_exact_mut(m).enumerate() {
                let xi = xn[i0 + r];
                for (o, &zj) in orow.iter_mut().zip(&zn) {
                    *o = (xi + zj - 2.0 * *o).max(0.0);
                }
            }
        });
    DenseMatrix::from_vec(n, m, out)
}

/// The seed cost kernel — scalar `‖x_i − z_j‖²` per pair — kept as the
/// exactness oracle for [`pairwise_cost`] and the `bench_subspace`
/// baseline.
pub fn pairwise_cost_reference(x: &DenseMatrix, z: &DenseMatrix) -> DenseMatrix {
    DenseMatrix::from_fn(x.rows(), z.rows(), |i, j| {
        let d = vecops::euclidean_distance(x.row(i), z.row(j));
        d * d
    })
}

fn gather_rows(y: &DenseMatrix, rows: &[usize]) -> DenseMatrix {
    let d = y.cols();
    let mut out = DenseMatrix::zeros(rows.len(), d);
    for (i, &r) in rows.iter().enumerate() {
        out.row_mut(i).copy_from_slice(y.row(r));
    }
    out
}

/// Which kernel implementations an alignment runs; the reference variant
/// exists so the fast path has an in-tree end-to-end oracle.
#[derive(Clone, Copy)]
enum KernelPath {
    Fast,
    Reference,
}

impl KernelPath {
    fn cost(self, x: &DenseMatrix, z: &DenseMatrix) -> DenseMatrix {
        match self {
            KernelPath::Fast => pairwise_cost(x, z),
            KernelPath::Reference => pairwise_cost_reference(x, z),
        }
    }

    /// Cold-started solve (the init pass, where no useful potentials
    /// exist yet).
    fn sinkhorn(
        self,
        cost: &DenseMatrix,
        opts: &SinkhornOptions,
        ws: &mut SinkhornWorkspace,
    ) -> TransportPlan {
        match self {
            KernelPath::Fast => sinkhorn_with(cost, opts, ws),
            KernelPath::Reference => sinkhorn_reference(cost, opts),
        }
    }

    /// Annealed-round solve. The fast path continues from the previous
    /// solve's rescaled potentials (ε-scaling warm start): consecutive
    /// rounds shrink ε geometrically over a slowly-moving cost matrix,
    /// so each solve starts a few corrective sweeps from its fixed point
    /// instead of paying the full cold-start transient — the dominant
    /// cost of the alternation at small ε. The fixed point is unique, so
    /// the converged plan matches a cold solve; only the trajectory
    /// differs. The reference path stays cold-started (seed behavior).
    fn sinkhorn_round(
        self,
        cost: &DenseMatrix,
        opts: &SinkhornOptions,
        ws: &mut SinkhornWorkspace,
    ) -> TransportPlan {
        match self {
            KernelPath::Fast => sinkhorn_warm_with(cost, opts, ws),
            KernelPath::Reference => sinkhorn_reference(cost, opts),
        }
    }

    /// Barycentric projection `T · Z` of the anchor embedding through a
    /// transport plan. The fast path exploits that an annealed plan is a
    /// near-permutation: the blocked solver materializes sub-underflow
    /// entries as exact zeros, so skipping them turns the `k × k × d`
    /// product into roughly `k × d` work — and skipping an exact zero
    /// term never changes a sum. The reference path keeps the seed's
    /// dense GEMM.
    fn project(self, plan: &DenseMatrix, z: &DenseMatrix) -> DenseMatrix {
        match self {
            KernelPath::Fast => {
                let d = z.cols();
                let mut target = DenseMatrix::zeros(plan.rows(), d);
                target
                    .data_mut()
                    .par_chunks_mut(d)
                    .enumerate()
                    .for_each(|(i, out)| {
                        for (j, &t) in plan.row(i).iter().enumerate() {
                            if t != 0.0 {
                                for (o, &zv) in out.iter_mut().zip(z.row(j)) {
                                    *o += t * zv;
                                }
                            }
                        }
                    });
                target
            }
            KernelPath::Reference => plan.matmul(z),
        }
    }
}

/// Solves Eq. (2): finds the orthogonal `Q` aligning `y1`'s subspace to
/// `y2`'s, guided by anchor correspondences from graphs `ga`, `gb`.
///
/// Returns [`SubspaceError`] when the embeddings disagree in dimension,
/// don't match their graphs' vertex counts, or `cfg` fails
/// [`SubspaceAlignConfig::validate`].
pub fn align_subspaces(
    y1: &DenseMatrix,
    y2: &DenseMatrix,
    ga: &CsrGraph,
    gb: &CsrGraph,
    cfg: &SubspaceAlignConfig,
) -> Result<SubspaceAlignment, SubspaceError> {
    align_impl(y1, y2, ga, gb, cfg, KernelPath::Fast)
}

/// As [`align_subspaces`], but running the seed implementation end to
/// end: the pinned reference kernels ([`pairwise_cost_reference`] and
/// [`sinkhorn_reference`]), the
/// seed's dense Procrustes projection, and the seed's full sweep budget
/// for the feature-seeded init solve. This is the end-to-end oracle for
/// `tests/prop_subspace.rs` (pinned on planted instances, where both
/// alternations converge to the same fixed point) and the
/// `bench_subspace` speedup baseline.
pub fn align_subspaces_reference(
    y1: &DenseMatrix,
    y2: &DenseMatrix,
    ga: &CsrGraph,
    gb: &CsrGraph,
    cfg: &SubspaceAlignConfig,
) -> Result<SubspaceAlignment, SubspaceError> {
    align_impl(y1, y2, ga, gb, cfg, KernelPath::Reference)
}

fn align_impl(
    y1: &DenseMatrix,
    y2: &DenseMatrix,
    ga: &CsrGraph,
    gb: &CsrGraph,
    cfg: &SubspaceAlignConfig,
    path: KernelPath,
) -> Result<SubspaceAlignment, SubspaceError> {
    if y1.cols() != y2.cols() {
        return Err(SubspaceError::DimensionMismatch {
            left: y1.cols(),
            right: y2.cols(),
        });
    }
    if y1.rows() != ga.num_vertices() {
        return Err(SubspaceError::RowCountMismatch {
            side: "A",
            rows: y1.rows(),
            vertices: ga.num_vertices(),
        });
    }
    if y2.rows() != gb.num_vertices() {
        return Err(SubspaceError::RowCountMismatch {
            side: "B",
            rows: y2.rows(),
            vertices: gb.num_vertices(),
        });
    }
    cfg.validate()?;
    let d = y1.cols();
    let reg = cualign_telemetry::global();
    let round_cost_hist = reg.histogram("subspace.round_cost");

    let anchors_a = top_degree_anchors(ga, cfg.anchors);
    let anchors_b = top_degree_anchors(gb, cfg.anchors);
    let x0 = gather_rows(y1, &anchors_a); // unrotated anchor embedding of A
    let z = gather_rows(y2, &anchors_b);

    // One workspace for every Sinkhorn solve of the alternation: the
    // annealed schedule runs `iterations + 1` problems of identical shape,
    // so the n·m kernel buffer and potential vectors allocate once.
    let mut ws = SinkhornWorkspace::new();

    // Initial rotation from a structural-feature correspondence: vertex
    // features that are rotation-invariant and isomorphism-invariant
    // (degree statistics, 2-hop size, clustering) give a meaningful anchor
    // correspondence before any rotation is known. One Sinkhorn pass over
    // the feature cost seeds the Procrustes. Starting from Q = I instead
    // would have Sinkhorn matching unrotated frames — a near-random
    // correspondence the alternation rarely recovers from. Features are
    // computed lazily: only when this branch runs, and only anchor rows.
    let k = anchors_a.len().min(anchors_b.len());
    let mut q = if k >= d {
        let (fa, fb) = {
            let _span = reg.span("subspace.features");
            (
                structural_features_for(ga, &anchors_a),
                structural_features_for(gb, &anchors_b),
            )
        };
        let feat_cost = {
            let _span = reg.span("subspace.cost");
            path.cost(&fa, &fb)
        };
        // The seed solve only needs a coarse correspondence — and on the
        // feature cost it cannot do better than coarse: vertices with
        // identical degree statistics produce duplicate cost rows, whose
        // flat transport directions stall Sinkhorn well above any tight
        // tolerance (measured: the marginal error plateaus within a few
        // dozen sweeps and then stays put). The fast path caps the sweep
        // count instead of burning the full budget against the plateau;
        // the reference path keeps the seed's full budget, which is why
        // end-to-end fast-vs-reference agreement is pinned on *planted*
        // instances — there the alternation's fixed point absorbs the
        // difference between a coarse and an over-polished seed.
        let init_opts = SinkhornOptions {
            epsilon: 0.5,
            max_iters: match path {
                KernelPath::Fast => cfg.sinkhorn.max_iters.min(32),
                KernelPath::Reference => cfg.sinkhorn.max_iters,
            },
            tolerance: cfg.sinkhorn.tolerance,
        };
        let tp = {
            let _span = reg.span("subspace.sinkhorn");
            path.sinkhorn(&feat_cost, &init_opts, &mut ws)
        };
        // The feature cost lives on a different scale than the embedding
        // costs of the rounds: its potentials are no continuation anchor.
        ws.forget_potentials();
        let _span = reg.span("subspace.procrustes");
        let mut target = path.project(&tp.plan, &z);
        target.scale(anchors_a.len() as f64);
        orthogonal_procrustes(&x0, &target)
    } else {
        DenseMatrix::identity(d)
    };
    let mut round_costs = Vec::with_capacity(cfg.iterations);
    for round in 0..cfg.iterations {
        let x = x0.matmul(&q);
        let cost = {
            let _span = reg.span("subspace.cost");
            path.cost(&x, &z)
        };
        // Geometric annealing of the entropic regularization.
        let eps = if cfg.iterations <= 1 {
            cfg.sinkhorn.epsilon
        } else {
            let t = round as f64 / (cfg.iterations - 1) as f64;
            cfg.epsilon_start.powf(1.0 - t) * cfg.sinkhorn.epsilon.powf(t)
        };
        // ε-scaling discipline on the fast path: intermediate levels run
        // a bounded number of corrective sweeps — their plans only seed
        // the next rotation, and the warm-started continuation keeps
        // them near the fixed point — while the final ε gets the full
        // budget, so the plan the caller sees is fully converged. The
        // reference path keeps the seed's full budget at every level.
        let last_round = round + 1 == cfg.iterations;
        let opts = SinkhornOptions {
            epsilon: eps,
            max_iters: match path {
                KernelPath::Fast if !last_round => cfg.sinkhorn.max_iters.min(16),
                _ => cfg.sinkhorn.max_iters,
            },
            ..cfg.sinkhorn
        };
        let tp = {
            let _span = reg.span("subspace.sinkhorn");
            path.sinkhorn_round(&cost, &opts, &mut ws)
        };
        // Transport cost ⟨T, C⟩ as the round diagnostic.
        let tc: f64 = tp
            .plan
            .data()
            .iter()
            .zip(cost.data())
            .map(|(t, c)| t * c)
            .sum();
        round_costs.push(tc);
        round_cost_hist.record(tc);
        // Barycentric projection: row i of target = Σ_j T(i,j)·z_j / row-mass.
        // With uniform marginals the row mass is 1/k, so scale by k.
        let _span = reg.span("subspace.procrustes");
        let mut target = path.project(&tp.plan, &z);
        target.scale(anchors_a.len() as f64);
        q = orthogonal_procrustes(&x0, &target);
    }

    Ok(SubspaceAlignment {
        ya: y1.matmul(&q),
        yb: y2.clone(),
        rotation: q,
        round_costs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proximity::{fastrp_embedding, FastRpConfig};
    use cualign_graph::generators::barabasi_albert;
    use cualign_graph::Permutation;
    use cualign_linalg::qr::orthonormalize;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a planted instance: B = P(A); Y₂ = rows of (Y₁ Q₀) permuted
    /// by P. align_subspaces must recover a rotation close to Q₀.
    #[test]
    fn recovers_planted_rotation() {
        let mut rng = StdRng::seed_from_u64(1);
        let ga = barabasi_albert(150, 3, &mut rng);
        let p = Permutation::random(150, &mut rng);
        let gb = p.apply_to_graph(&ga);

        let y1 = fastrp_embedding(
            &ga,
            &FastRpConfig {
                dim: 16,
                ..Default::default()
            },
        );
        let q0 = orthonormalize(&DenseMatrix::gaussian(16, 16, &mut rng));
        let rotated = y1.matmul(&q0);
        let mut y2 = DenseMatrix::zeros(150, 16);
        for i in 0..150 {
            y2.row_mut(p.apply(i as u32) as usize)
                .copy_from_slice(rotated.row(i));
        }

        let cfg = SubspaceAlignConfig {
            anchors: 0,
            iterations: 8,
            ..Default::default()
        };
        let out = align_subspaces(&y1, &y2, &ga, &gb, &cfg).expect("valid inputs");

        // After alignment, vertex i of A should be near its true image.
        let mut mean_sim = 0.0;
        for i in 0..150 {
            let j = p.apply(i as u32) as usize;
            mean_sim += vecops::cosine_similarity(out.ya.row(i), out.yb.row(j));
        }
        mean_sim /= 150.0;
        assert!(mean_sim > 0.9, "mean true-pair similarity {mean_sim}");
    }

    #[test]
    fn rotation_is_orthogonal() {
        let mut rng = StdRng::seed_from_u64(2);
        let ga = barabasi_albert(80, 3, &mut rng);
        let gb = barabasi_albert(80, 3, &mut rng);
        let y1 = fastrp_embedding(
            &ga,
            &FastRpConfig {
                dim: 8,
                ..Default::default()
            },
        );
        let y2 = fastrp_embedding(
            &gb,
            &FastRpConfig {
                dim: 8,
                seed: 99,
                ..Default::default()
            },
        );
        let out = align_subspaces(&y1, &y2, &ga, &gb, &SubspaceAlignConfig::default())
            .expect("valid inputs");
        assert!(out.rotation.is_orthonormal(1e-8));
    }

    #[test]
    fn anchor_selection_prefers_hubs() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = barabasi_albert(200, 2, &mut rng);
        let anchors = top_degree_anchors(&g, 20);
        assert_eq!(anchors.len(), 20);
        let min_anchor_deg = anchors.iter().map(|&u| g.degree(u as u32)).min().unwrap();
        // Every non-anchor has degree ≤ the smallest anchor degree.
        for u in 0..200usize {
            if !anchors.contains(&u) {
                assert!(g.degree(u as u32) <= min_anchor_deg);
            }
        }
    }

    #[test]
    fn zero_anchors_means_all_vertices() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2)]);
        // Degree-rank order: vertex 1 (deg 2), then 0 and 2 (deg 1), then
        // the isolated 3 and 4.
        assert_eq!(top_degree_anchors(&g, 0), vec![1, 0, 2, 3, 4]);
        assert_eq!(top_degree_anchors(&g, 10), vec![1, 0, 2, 3, 4]);
    }

    #[test]
    fn alignment_reduces_transport_cost() {
        let mut rng = StdRng::seed_from_u64(4);
        let ga = barabasi_albert(120, 3, &mut rng);
        let p = Permutation::random(120, &mut rng);
        let gb = p.apply_to_graph(&ga);
        let y1 = fastrp_embedding(
            &ga,
            &FastRpConfig {
                dim: 12,
                ..Default::default()
            },
        );
        let q0 = orthonormalize(&DenseMatrix::gaussian(12, 12, &mut rng));
        let rotated = y1.matmul(&q0);
        let mut y2 = DenseMatrix::zeros(120, 12);
        for i in 0..120 {
            y2.row_mut(p.apply(i as u32) as usize)
                .copy_from_slice(rotated.row(i));
        }
        let cfg = SubspaceAlignConfig {
            anchors: 0,
            iterations: 6,
            ..Default::default()
        };
        let out = align_subspaces(&y1, &y2, &ga, &gb, &cfg).expect("valid inputs");
        let first = out.round_costs.first().copied().unwrap();
        let last = out.round_costs.last().copied().unwrap();
        assert!(last < first, "cost went {first} → {last}");
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let y1 = DenseMatrix::zeros(3, 4);
        let y2 = DenseMatrix::zeros(3, 5);
        let err = align_subspaces(&y1, &y2, &g, &g, &SubspaceAlignConfig::default())
            .expect_err("dimension mismatch");
        assert_eq!(err, SubspaceError::DimensionMismatch { left: 4, right: 5 });
    }

    #[test]
    fn row_count_mismatch_names_the_side() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let good = DenseMatrix::zeros(3, 2);
        let bad = DenseMatrix::zeros(4, 2);
        let err = align_subspaces(&bad, &good, &g, &g, &SubspaceAlignConfig::default())
            .expect_err("row mismatch on A");
        assert_eq!(
            err,
            SubspaceError::RowCountMismatch {
                side: "A",
                rows: 4,
                vertices: 3
            }
        );
        let err = align_subspaces(&good, &bad, &g, &g, &SubspaceAlignConfig::default())
            .expect_err("row mismatch on B");
        assert_eq!(
            err,
            SubspaceError::RowCountMismatch {
                side: "B",
                rows: 4,
                vertices: 3
            }
        );
    }

    #[test]
    fn invalid_config_is_rejected_before_any_work() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let y = DenseMatrix::zeros(2, 2);
        let mut cfg = SubspaceAlignConfig::default();
        cfg.sinkhorn.epsilon = 0.0;
        let err = align_subspaces(&y, &y, &g, &g, &cfg).expect_err("epsilon = 0");
        assert!(matches!(
            err,
            SubspaceError::InvalidConfig {
                field: "subspace.sinkhorn.epsilon",
                ..
            }
        ));
        let cfg = SubspaceAlignConfig {
            iterations: 0,
            ..Default::default()
        };
        let err = align_subspaces(&y, &y, &g, &g, &cfg).expect_err("iterations = 0");
        assert!(matches!(
            err,
            SubspaceError::InvalidConfig {
                field: "subspace.iterations",
                ..
            }
        ));
        let cfg = SubspaceAlignConfig {
            epsilon_start: -0.5,
            ..Default::default()
        };
        let err = align_subspaces(&y, &y, &g, &g, &cfg).expect_err("epsilon_start < 0");
        assert!(matches!(
            err,
            SubspaceError::InvalidConfig {
                field: "subspace.epsilon_start",
                ..
            }
        ));
    }

    #[test]
    fn gemm_cost_matches_reference_closely() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = DenseMatrix::gaussian(17, 9, &mut rng);
        let z = DenseMatrix::gaussian(23, 9, &mut rng);
        let fast = pairwise_cost(&x, &z);
        let oracle = pairwise_cost_reference(&x, &z);
        let worst = fast
            .data()
            .iter()
            .zip(oracle.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < 1e-10, "cost kernels diverge by {worst:e}");
    }

    #[test]
    fn merged_features_match_hashset_semantics() {
        // Hand-checkable graph: triangle 0-1-2 plus pendant 3 on vertex 2
        // and isolated vertex 4.
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3)]);
        let f = structural_features(&g);
        assert_eq!((f.rows(), f.cols()), (5, 5));
        // Raw (pre-standardization) invariants are easiest to verify via
        // ordering: vertex 2 has the largest degree and two-hop count...
        let raw_deg = |u: usize| g.neighbors(u as u32).len();
        assert!(raw_deg(2) > raw_deg(3));
        // ...so after per-column standardization its log-degree feature
        // must be the column maximum, and the isolated vertex the minimum.
        let col0: Vec<f64> = (0..5).map(|i| f[(i, 0)]).collect();
        let max_i = (0..5).max_by(|&a, &b| col0[a].total_cmp(&col0[b])).unwrap();
        let min_i = (0..5).min_by(|&a, &b| col0[a].total_cmp(&col0[b])).unwrap();
        assert_eq!(max_i, 2);
        assert_eq!(min_i, 4);
        // Clustering: vertices 0 and 1 close one triangle over deg-2
        // neighborhoods (coefficient 1.0 raw); vertex 2 closes 1 of 3
        // possible pairs. Standardized column preserves the ordering.
        assert!(f[(0, 4)] > f[(2, 4)]);
        assert_eq!(f[(0, 4)], f[(1, 4)]);
        // Subset variant over all vertices in 0..n order matches the full
        // computation bitwise.
        let rows: Vec<usize> = (0..5).collect();
        assert_eq!(structural_features_for(&g, &rows).data(), f.data());
    }

    #[test]
    fn reference_alignment_agrees_on_planted_instance() {
        let mut rng = StdRng::seed_from_u64(6);
        let ga = barabasi_albert(60, 3, &mut rng);
        let p = Permutation::random(60, &mut rng);
        let gb = p.apply_to_graph(&ga);
        let y1 = fastrp_embedding(
            &ga,
            &FastRpConfig {
                dim: 8,
                ..Default::default()
            },
        );
        let q0 = orthonormalize(&DenseMatrix::gaussian(8, 8, &mut rng));
        let rotated = y1.matmul(&q0);
        let mut y2 = DenseMatrix::zeros(60, 8);
        for i in 0..60 {
            y2.row_mut(p.apply(i as u32) as usize)
                .copy_from_slice(rotated.row(i));
        }
        let cfg = SubspaceAlignConfig {
            anchors: 0,
            iterations: 4,
            ..Default::default()
        };
        let fast = align_subspaces(&y1, &y2, &ga, &gb, &cfg).unwrap();
        let oracle = align_subspaces_reference(&y1, &y2, &ga, &gb, &cfg).unwrap();
        let dq = fast
            .rotation
            .data()
            .iter()
            .zip(oracle.rotation.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        // The paths seed and warm-start the alternation differently, so
        // the pin is the shared fixed point: residual convergence slack
        // sits below 1e-4 here, a different matching at O(0.1)–O(1).
        assert!(dq < 1e-3, "rotations diverge by {dq:e}");
    }
}
