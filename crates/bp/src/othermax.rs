//! The `othermaxrow` / `othermaxcol` operators of Algorithm 2.
//!
//! Viewing a message vector over `E_L` as a sparse `n_A × n_B` matrix
//! (entry at `(a, b)` for edge `(a, b)`), `othermaxrow` replaces every
//! entry by the maximum of the *other* entries in its row: the maximum for
//! all non-argmax entries, the second maximum for the argmax itself.
//! `othermaxcol` does the same per column. An entry with no siblings gets
//! `0` (the message of an empty competitor set), matching the reference
//! multithreaded implementation.
//!
//! These are the exclusivity messages: for edge `(a, b)`, "the best the
//! rest of `a`'s (resp. `b`'s) candidates could do without me".
//!
//! The sweeps execute on [`cualign_linalg::sparse::exclusion_max`]: one
//! merge-balanced grouped pass over the side-CSR writing *positional*
//! outputs (entry `p` of the side's incidence array), plus a precomputed
//! inverse position map to read the result back per edge id. All
//! buffers live in an [`OthermaxWorkspace`] so repeated sweeps allocate
//! nothing. The original collect-and-apply implementation is kept as
//! [`othermax_rows_reference`] / [`othermax_cols_reference`] — the
//! pinned oracles of `docs/oracle_manifest.txt`; the selection order is
//! identical, so agreement is bitwise.

use cualign_graph::{BipartiteGraph, Side, VertexId};
use cualign_linalg::sparse::{exclusion_max, exclusion_max_apply, MergePlan};
use rayon::prelude::*;

/// Computes othermax over one group (slice of edge ids) of `values`,
/// writing results into `out` at the same ids.
#[inline]
fn othermax_group(edge_ids: &[u32], values: &[f64], out: &mut [f64]) {
    match edge_ids.len() {
        0 => {}
        1 => out[edge_ids[0] as usize] = 0.0,
        _ => {
            // One pass for max and second max (ties: two entries equal to
            // the max mean everyone's "othermax" is the max itself, which
            // falls out of tracking first-argmax + runner-up).
            let mut max1 = f64::NEG_INFINITY;
            let mut pos1 = 0usize;
            let mut max2 = f64::NEG_INFINITY;
            for (i, &e) in edge_ids.iter().enumerate() {
                let v = values[e as usize];
                if v > max1 {
                    max2 = max1;
                    max1 = v;
                    pos1 = i;
                } else if v > max2 {
                    max2 = v;
                }
            }
            for (i, &e) in edge_ids.iter().enumerate() {
                out[e as usize] = if i == pos1 { max2 } else { max1 };
            }
        }
    }
}

/// Reusable buffers and merge plans for the othermax sweeps: one
/// positional scratch per side (sized `|E_L|`, so both sides can hold
/// their exclusion results at once — the engine runs both exclusions
/// before the fused gather+damp passes consume them), the per-side
/// inverse position maps, and one [`MergePlan`] per side-CSR. Build
/// once per `L`, reuse every sweep.
pub struct OthermaxWorkspace {
    scratch_a: Vec<f64>,
    scratch_b: Vec<f64>,
    pos_a: Vec<u32>,
    pos_b: Vec<u32>,
    plan_a: MergePlan,
    plan_b: MergePlan,
}

impl OthermaxWorkspace {
    /// Builds the workspace for `l`: inverse position maps (`pos[e]` =
    /// position of edge `e` in the side's incidence array) and the
    /// merge plans over both side-CSRs.
    pub fn new(l: &BipartiteGraph) -> Self {
        let m = l.num_edges();
        let mut pos_a = vec![0u32; m];
        for (p, &e) in l.eids(Side::A).iter().enumerate() {
            pos_a[e as usize] = p as u32;
        }
        let mut pos_b = vec![0u32; m];
        for (p, &e) in l.eids(Side::B).iter().enumerate() {
            pos_b[e as usize] = p as u32;
        }
        OthermaxWorkspace {
            scratch_a: vec![0.0; m],
            scratch_b: vec![0.0; m],
            pos_a,
            pos_b,
            plan_a: MergePlan::new(l.offsets(Side::A)),
            plan_b: MergePlan::new(l.offsets(Side::B)),
        }
    }

    /// Runs the A-side (per-row) exclusion max of `values` into the
    /// A-side positional scratch. Returns `(scratch, pos_a)`: the
    /// othermax of edge `e` is `scratch[pos_a[e]]` — callers fuse the
    /// gather into their consuming pass. The B-side scratch is left
    /// untouched, so both sides' results can coexist.
    pub fn rows_positional(&mut self, l: &BipartiteGraph, values: &[f64]) -> (&[f64], &[u32]) {
        exclusion_max(
            l.offsets(Side::A),
            &self.plan_a,
            l.eids(Side::A),
            values,
            &mut self.scratch_a,
        );
        (&self.scratch_a, &self.pos_a)
    }

    /// B-side (per-column) counterpart of
    /// [`OthermaxWorkspace::rows_positional`], writing the B-side
    /// scratch.
    pub fn cols_positional(&mut self, l: &BipartiteGraph, values: &[f64]) -> (&[f64], &[u32]) {
        exclusion_max(
            l.offsets(Side::B),
            &self.plan_b,
            l.eids(Side::B),
            values,
            &mut self.scratch_b,
        );
        (&self.scratch_b, &self.pos_b)
    }

    /// The A-side scratch and position map as last written by
    /// [`OthermaxWorkspace::rows_positional`] — for callers that run
    /// both sides' exclusions first and fuse both gathers afterwards.
    pub fn rows_result(&self) -> (&[f64], &[u32]) {
        (&self.scratch_a, &self.pos_a)
    }

    /// A-side exclusion max fused with a caller epilogue
    /// ([`exclusion_max_apply`]): for each position `p` of the A-side
    /// incidence array, calls `apply(p, om, &mut out1[p], &mut
    /// out2[p])` where `om` is the exclusion max of `values` over the
    /// other edges of `p`'s A-vertex. Skips the positional scratch
    /// entirely — the BP engine uses this for its `zᶜ`/`zᵖ` tail,
    /// where side-A positions coincide with edge ids, so the
    /// positional outputs *are* the edge-indexed message arrays.
    pub fn rows_apply(
        &self,
        l: &BipartiteGraph,
        values: &[f64],
        apply: impl Fn(usize, f64, &mut f64, &mut f64) + Sync,
        out1: &mut [f64],
        out2: &mut [f64],
    ) {
        exclusion_max_apply(
            l.offsets(Side::A),
            &self.plan_a,
            l.eids(Side::A),
            values,
            apply,
            out1,
            out2,
        );
    }

    /// The B-side counterpart of [`OthermaxWorkspace::rows_result`].
    pub fn cols_result(&self) -> (&[f64], &[u32]) {
        (&self.scratch_b, &self.pos_b)
    }
}

/// `othermaxrow`: groups are the A-side rows (edges sharing an A vertex).
/// Allocation-free variant over a caller-held [`OthermaxWorkspace`].
pub fn othermax_rows_with(
    l: &BipartiteGraph,
    ws: &mut OthermaxWorkspace,
    values: &[f64],
    out: &mut [f64],
) {
    assert_eq!(values.len(), l.num_edges(), "message length mismatch");
    assert_eq!(out.len(), l.num_edges(), "output length mismatch");
    let (scratch, pos) = ws.rows_positional(l, values);
    out.par_iter_mut()
        .zip(pos)
        .for_each(|(o, &p)| *o = scratch[p as usize]);
}

/// `othermaxcol`: groups are the B-side rows (edges sharing a B vertex).
/// Allocation-free variant over a caller-held [`OthermaxWorkspace`].
pub fn othermax_cols_with(
    l: &BipartiteGraph,
    ws: &mut OthermaxWorkspace,
    values: &[f64],
    out: &mut [f64],
) {
    assert_eq!(values.len(), l.num_edges(), "message length mismatch");
    assert_eq!(out.len(), l.num_edges(), "output length mismatch");
    let (scratch, pos) = ws.cols_positional(l, values);
    out.par_iter_mut()
        .zip(pos)
        .for_each(|(o, &p)| *o = scratch[p as usize]);
}

/// `othermaxrow` with a throwaway workspace (convenience / benches; the
/// BP engine holds a persistent [`OthermaxWorkspace`] instead).
pub fn othermax_rows(l: &BipartiteGraph, values: &[f64], out: &mut [f64]) {
    let mut ws = OthermaxWorkspace::new(l);
    othermax_rows_with(l, &mut ws, values, out)
}

/// `othermaxcol` with a throwaway workspace.
pub fn othermax_cols(l: &BipartiteGraph, values: &[f64], out: &mut [f64]) {
    let mut ws = OthermaxWorkspace::new(l);
    othermax_cols_with(l, &mut ws, values, out)
}

/// Pinned oracle for [`othermax_rows`]: the original collect-and-apply
/// implementation (per-group scratch allocation + serial write-back).
pub fn othermax_rows_reference(l: &BipartiteGraph, values: &[f64], out: &mut [f64]) {
    othermax_side_reference(l, Side::A, values, out)
}

/// Pinned oracle for [`othermax_cols`].
pub fn othermax_cols_reference(l: &BipartiteGraph, values: &[f64], out: &mut [f64]) {
    othermax_side_reference(l, Side::B, values, out)
}

fn othermax_side_reference(l: &BipartiteGraph, side: Side, values: &[f64], out: &mut [f64]) {
    assert_eq!(values.len(), l.num_edges(), "message length mismatch");
    assert_eq!(out.len(), l.num_edges(), "output length mismatch");
    let n = match side {
        Side::A => l.na(),
        Side::B => l.nb(),
    };
    // Every edge id appears in exactly one group per side, so the groups
    // write disjoint `out` entries. Collect per-group writes, then apply —
    // the simple safe formulation; groups are tiny (k ≈ 10–100 edges).
    let updates: Vec<(u32, f64)> = (0..n)
        .into_par_iter()
        .flat_map_iter(|v| {
            let ids = match side {
                Side::A => l.row_a(v as VertexId),
                Side::B => l.row_b(v as VertexId),
            };
            let mut local = vec![0.0f64; ids.len()];
            // Compute into a scratch indexed like `ids`.
            match ids.len() {
                0 => {}
                1 => local[0] = 0.0,
                _ => {
                    let mut max1 = f64::NEG_INFINITY;
                    let mut pos1 = 0usize;
                    let mut max2 = f64::NEG_INFINITY;
                    for (i, &e) in ids.iter().enumerate() {
                        let x = values[e as usize];
                        if x > max1 {
                            max2 = max1;
                            max1 = x;
                            pos1 = i;
                        } else if x > max2 {
                            max2 = x;
                        }
                    }
                    for (i, item) in local.iter_mut().enumerate() {
                        *item = if i == pos1 { max2 } else { max1 };
                    }
                }
            }
            ids.iter().copied().zip(local).collect::<Vec<_>>()
        })
        .collect();
    for (e, v) in updates {
        out[e as usize] = v;
    }
}

/// Single-group reference used by tests (exposed for the GPU-simulator
/// kernels, which process one virtual-warp group at a time).
pub fn othermax_single_group(edge_ids: &[u32], values: &[f64], out: &mut [f64]) {
    othermax_group(edge_ids, values, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_l() -> BipartiteGraph {
        // A0-{B0,B1,B2}, A1-{B0}: edge ids by (a,b): 0:(0,0) 1:(0,1) 2:(0,2) 3:(1,0)
        BipartiteGraph::from_weighted_edges(
            2,
            3,
            &[(0, 0, 1.0), (0, 1, 1.0), (0, 2, 1.0), (1, 0, 1.0)],
        )
    }

    #[test]
    fn rows_exclude_self_max() {
        let l = sample_l();
        let vals = vec![5.0, 3.0, 4.0, 7.0];
        let mut out = vec![0.0; 4];
        othermax_rows(&l, &vals, &mut out);
        // A0's row = {e0:5, e1:3, e2:4}: argmax e0 → second max 4; others → 5.
        assert_eq!(out[0], 4.0);
        assert_eq!(out[1], 5.0);
        assert_eq!(out[2], 5.0);
        // A1's row = {e3} alone → 0.
        assert_eq!(out[3], 0.0);
    }

    #[test]
    fn cols_group_by_b() {
        let l = sample_l();
        let vals = vec![5.0, 3.0, 4.0, 7.0];
        let mut out = vec![0.0; 4];
        othermax_cols(&l, &vals, &mut out);
        // B0's column = {e0:5, e3:7}: e0 → 7, e3 → 5.
        assert_eq!(out[0], 7.0);
        assert_eq!(out[3], 5.0);
        // B1, B2 singletons → 0.
        assert_eq!(out[1], 0.0);
        assert_eq!(out[2], 0.0);
    }

    #[test]
    fn ties_give_max_to_both() {
        let ids = [0u32, 1, 2];
        let vals = [9.0, 9.0, 1.0];
        let mut out = vec![0.0; 3];
        othermax_single_group(&ids, &vals, &mut out);
        assert_eq!(out, vec![9.0, 9.0, 9.0]);
    }

    #[test]
    fn negative_values_keep_semantics() {
        let ids = [0u32, 1];
        let vals = [-2.0, -5.0];
        let mut out = vec![0.0; 2];
        othermax_single_group(&ids, &vals, &mut out);
        assert_eq!(out[0], -5.0);
        assert_eq!(out[1], -2.0);
    }

    #[test]
    fn fast_paths_match_references_bitwise() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let triples: Vec<(u32, u32, f64)> = (0..200)
            .map(|_| (rng.gen_range(0..20), rng.gen_range(0..20), 1.0))
            .collect();
        let l = BipartiteGraph::from_weighted_edges(20, 20, &triples);
        let vals: Vec<f64> = (0..l.num_edges())
            .map(|_| rng.gen::<f64>() * 4.0 - 2.0)
            .collect();
        let mut ws = OthermaxWorkspace::new(&l);
        let m = l.num_edges();
        let (mut fast, mut slow) = (vec![0.0; m], vec![0.0; m]);
        othermax_rows_with(&l, &mut ws, &vals, &mut fast);
        othermax_rows_reference(&l, &vals, &mut slow);
        assert_eq!(
            fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        othermax_cols_with(&l, &mut ws, &vals, &mut fast);
        othermax_cols_reference(&l, &vals, &mut slow);
        assert_eq!(
            fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn matches_naive_on_random() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let triples: Vec<(u32, u32, f64)> = (0..120)
            .map(|_| (rng.gen_range(0..15), rng.gen_range(0..15), 1.0))
            .collect();
        let l = BipartiteGraph::from_weighted_edges(15, 15, &triples);
        let vals: Vec<f64> = (0..l.num_edges())
            .map(|_| rng.gen::<f64>() * 4.0 - 2.0)
            .collect();
        let mut fast = vec![0.0; vals.len()];
        othermax_rows(&l, &vals, &mut fast);
        // Naive recomputation.
        for a in 0..15u32 {
            let ids = l.row_a(a);
            for &e in ids {
                let other: Vec<f64> = ids
                    .iter()
                    .filter(|&&e2| e2 != e)
                    .map(|&e2| vals[e2 as usize])
                    .collect();
                let want = other.iter().fold(f64::NEG_INFINITY, |m, &x| m.max(x));
                let want = if other.is_empty() { 0.0 } else { want };
                assert!((fast[e as usize] - want).abs() < 1e-12);
            }
        }
    }
}
