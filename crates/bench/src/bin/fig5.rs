//! Regenerates **Figure 5**: compute time (log₂ seconds in the paper) of
//! the optimization phase for each input at each density.
//!
//! The paper's finding: runtime grows steeply (super-linearly) with
//! density — sparsification buys time as well as quality. The sweep runs
//! on one [`cualign::AlignmentSession`] per input, so the reported times
//! isolate the per-density work (overlap + BP) exactly: the shared
//! embedding + subspace build is cached, not re-timed into every cell.
//!
//! ```text
//! cargo run --release -p cualign-bench --bin fig5
//! ```

use cualign::PaperInput;
use cualign_bench::json::JsonRecord;
use cualign_bench::{sweep_densities, HarnessConfig, DENSITY_GRID};

fn main() {
    let telemetry = cualign_bench::telemetry_sink();
    let h = HarnessConfig::from_env();
    println!(
        "Figure 5: optimization time (s) vs density (scale = {}, bp_iters = {}, seed = {})\n",
        h.scale, h.bp_iters, h.seed
    );
    print!("{:<16}", "Network");
    for d in DENSITY_GRID {
        print!(" {:>9}", format!("{}%", d * 100.0));
    }
    println!();
    println!("{}", "-".repeat(16 + 10 * DENSITY_GRID.len()));
    let mut records = Vec::new();
    for input in PaperInput::all() {
        print!("{:<16}", input.name());
        for cell in sweep_densities(&h, input, &DENSITY_GRID) {
            let rec = JsonRecord::new()
                .str("figure", "fig5")
                .str("input", input.name())
                .num("density", cell.density);
            match cell.result {
                Some(m) => {
                    print!(" {:>9.3}", m.optimize_s);
                    records.push(
                        rec.num("optimize_s", m.optimize_s)
                            .int("l_edges", m.l_edges)
                            .int("s_nnz", m.s_nnz)
                            .int("cache_hits", m.cache_hits)
                            .finish(),
                    );
                }
                None => {
                    print!(" {:>9}", "DNF");
                    records.push(rec.null("optimize_s").str("status", "dnf").finish());
                }
            }
        }
        println!();
    }
    println!("\nExpected shape (paper, log2 y-axis): time rises steeply with density.");
    println!();
    for r in records {
        println!("{r}");
    }
    cualign_bench::emit_telemetry(&telemetry);
}
