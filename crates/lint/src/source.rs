//! Per-file source model: classification, `#[cfg(test)]` regions, and
//! `// lint: allow(...)` directives.
//!
//! Rules never see raw text. They see a [`SourceFile`]: the token
//! stream from [`crate::lexer`], the file's [`FileKind`] (library code
//! vs. binaries/tests, where the panic rules relax), the set of lines
//! covered by test-only items, and the parsed allow directives.

use crate::lexer::{lex, Comment, Lexed, Tok};

/// What kind of target a file belongs to. Decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code (`src/` of a crate): all rules apply.
    Lib,
    /// Binary-like code (`src/bin/`, `src/main.rs`, `benches/`,
    /// `examples/`, the whole `bench` crate): panicking is allowed.
    BinLike,
    /// Test code (`tests/` directories): panicking is allowed.
    TestLike,
}

/// One `// lint: allow(<rule>): <reason>` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Line the directive comment starts on.
    pub line: usize,
    /// Rule name inside the parentheses.
    pub rule: String,
    /// Reason after the trailing colon. Empty = malformed (the
    /// directive then suppresses nothing and is itself reported).
    pub reason: String,
}

/// A lexed, classified workspace file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel: String,
    /// Crate directory name under `crates/` (empty for root-level
    /// `tests/` / `examples/`).
    pub crate_name: String,
    /// Target classification.
    pub kind: FileKind,
    /// Token stream and captured comments.
    pub lexed: Lexed,
    /// Parsed allow directives.
    pub allows: Vec<Allow>,
    /// Line ranges (inclusive) covered by `#[test]` / `#[cfg(test)]`
    /// items.
    test_ranges: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lexes and classifies `src` as the file at `rel` (workspace-root
    /// relative, `/`-separated).
    pub fn parse(rel: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let allows = parse_allows(&lexed.comments);
        let test_ranges = find_test_ranges(&lexed);
        SourceFile {
            rel: rel.to_string(),
            crate_name: crate_of(rel),
            kind: kind_of(rel),
            lexed,
            allows,
            test_ranges,
        }
    }

    /// Is `line` inside a `#[test]` / `#[cfg(test)]` item?
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// Does an allow directive for `rule` cover a violation on `line`?
    /// A directive covers its own line (trailing comment) and the line
    /// after it (comment-above style). Directives without a reason
    /// never suppress.
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allows.iter().any(|a| {
            a.rule == rule && !a.reason.is_empty() && (a.line == line || a.line + 1 == line)
        })
    }
}

fn crate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    if parts.next() == Some("crates") {
        parts.next().unwrap_or("").to_string()
    } else {
        String::new()
    }
}

fn kind_of(rel: &str) -> FileKind {
    let parts: Vec<&str> = rel.split('/').collect();
    let in_crate = parts.first() == Some(&"crates");
    // The bench crate is wall-to-wall benchmark drivers.
    if in_crate && parts.get(1) == Some(&"bench") {
        return FileKind::BinLike;
    }
    if parts.contains(&"tests") {
        return FileKind::TestLike;
    }
    if parts.contains(&"benches") || parts.contains(&"examples") || parts.contains(&"bin") {
        return FileKind::BinLike;
    }
    if parts.last() == Some(&"main.rs") {
        return FileKind::BinLike;
    }
    FileKind::Lib
}

/// Parses `lint: allow(<rule>)[: reason]` out of comment bodies.
fn parse_allows(comments: &[Comment]) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in comments {
        let t = c.text.trim();
        let Some(rest) = t.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let tail = rest[close + 1..].trim_start();
        let reason = tail
            .strip_prefix(':')
            .map(|r| r.trim().to_string())
            .unwrap_or_default();
        out.push(Allow {
            line: c.line,
            rule,
            reason,
        });
    }
    out
}

/// Finds line ranges of items annotated `#[test]`, `#[cfg(test)]`, or
/// any other attribute mentioning `test` (e.g. `#[cfg(any(test, ...))]`)
/// — except negations like `#[cfg(not(test))]`, which are live code.
///
/// The extent of an item is approximated as: from the attribute to the
/// close of the first top-level brace block that follows it, or to the
/// first top-level `;`, whichever comes first. That covers `mod tests {
/// ... }`, `#[test] fn ... { ... }`, and attribute-gated `use` items,
/// which is everything this workspace writes.
fn find_test_ranges(lexed: &Lexed) -> Vec<(usize, usize)> {
    let toks = &lexed.tokens;
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].tok != Tok::Punct('#')
            || toks.get(i + 1).map(|t| &t.tok) != Some(&Tok::Punct('['))
        {
            i += 1;
            continue;
        }
        let (attr_end, is_test) = scan_attribute(lexed, i + 1);
        if !is_test {
            i = attr_end;
            continue;
        }
        // Skip any further attributes stacked on the same item.
        let mut j = attr_end;
        while toks.get(j).map(|t| &t.tok) == Some(&Tok::Punct('#'))
            && toks.get(j + 1).map(|t| &t.tok) == Some(&Tok::Punct('['))
        {
            let (next, _) = scan_attribute(lexed, j + 1);
            j = next;
        }
        // Find the end of the item.
        let mut depth = 0usize;
        let mut end = j;
        while let Some(t) = toks.get(end) {
            match t.tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Punct(';') if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        let end_line = toks
            .get(end)
            .or_else(|| toks.last())
            .map(|t| t.line)
            .unwrap_or(0);
        ranges.push((toks[i].line, end_line));
        i = end + 1;
    }
    ranges
}

/// Scans the attribute starting at the `[` token index `open`. Returns
/// `(index past the closing ']', attribute mentions test)`.
fn scan_attribute(lexed: &Lexed, open: usize) -> (usize, bool) {
    let toks = &lexed.tokens;
    let mut depth = 0usize;
    let mut saw_test = false;
    let mut saw_not = false;
    let mut j = open;
    while let Some(t) = toks.get(j) {
        match &t.tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (j + 1, saw_test && !saw_not);
                }
            }
            Tok::Ident(s) if s == "test" => saw_test = true,
            Tok::Ident(s) if s == "not" => saw_not = true,
            _ => {}
        }
        j += 1;
    }
    (toks.len(), saw_test && !saw_not)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path() {
        assert_eq!(kind_of("crates/core/src/session.rs"), FileKind::Lib);
        assert_eq!(kind_of("crates/core/src/bin/cualign.rs"), FileKind::BinLike);
        assert_eq!(kind_of("crates/core/src/main.rs"), FileKind::BinLike);
        assert_eq!(
            kind_of("crates/linalg/tests/prop_gemm.rs"),
            FileKind::TestLike
        );
        assert_eq!(kind_of("crates/bench/src/lib.rs"), FileKind::BinLike);
        assert_eq!(kind_of("tests/pipeline_integration.rs"), FileKind::TestLike);
        assert_eq!(kind_of("examples/quickstart.rs"), FileKind::BinLike);
        assert_eq!(crate_of("crates/embed/src/subspace.rs"), "embed");
        assert_eq!(crate_of("tests/session_cache.rs"), "");
    }

    #[test]
    fn cfg_test_module_lines_are_marked() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn t() { y.unwrap(); }\n\
                   }\n\
                   fn live2() {}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(!f.is_test_line(2));
    }

    #[test]
    fn test_attribute_with_stacked_attrs() {
        let src = "#[test]\n#[ignore]\nfn t() {\n  boom();\n}\nfn live() {}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn allow_directive_parsing() {
        let src = "// lint: allow(no-panic): checked above\n\
                   x.unwrap();\n\
                   // lint: allow(no-panic)\n\
                   y.unwrap();\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert_eq!(f.allows.len(), 2);
        assert!(f.allowed("no-panic", 2));
        assert!(
            !f.allowed("no-panic", 4),
            "reasonless allow must not suppress"
        );
        assert!(!f.allowed("float-ordering", 2));
    }
}
