//! Subspace-alignment hot-path benchmark: the GEMM/blocked-Sinkhorn
//! alternation ([`cualign_embed::align_subspaces`]) against the pinned
//! all-reference path ([`cualign_embed::align_subspaces_reference`]) on
//! planted rotated pairs, sweeping anchors × d. Before timing, each cell
//! asserts kernel-level agreement on the live operands: the GEMM cost
//! matrix against [`cualign_embed::pairwise_cost_reference`] and one
//! blocked Sinkhorn plan against the seed sweep (the end-to-end glue is
//! pinned by `embed/tests/prop_subspace.rs`). The default sink is
//! `BENCH_subspace.json` — one JSONL record per `(anchors, d)` cell:
//!
//! ```text
//! cargo run --release -p cualign-bench --bin bench_subspace
//! ```
//!
//! Knobs: `CUALIGN_BENCH_SUBSPACE_ANCHORS` / `CUALIGN_BENCH_SUBSPACE_DS`
//! (comma-separated grids, defaults `256,768` / `64,128`),
//! `CUALIGN_BENCH_SUBSPACE_ITERS` (alternation rounds, default `8`),
//! `CUALIGN_SUBSPACE_REFERENCE_MAX` (default `768`): above this anchor
//! count the quadratic reference alignment is skipped and the record
//! carries `reference_s: null`. `CUALIGN_BENCH_SUBSPACE_OUT` overrides
//! the sink path.

use std::io::Write;
use std::time::Instant;

use cualign_bench::json::JsonRecord;
use cualign_embed::{
    align_subspaces, align_subspaces_reference, pairwise_cost, pairwise_cost_reference,
    SubspaceAlignConfig,
};
use cualign_graph::generators::barabasi_albert;
use cualign_graph::{CsrGraph, Permutation};
use cualign_linalg::{sinkhorn, sinkhorn_reference, DenseMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 42;

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(v) if !v.is_empty() => v
            .split(',')
            .map(|s| s.trim().parse().expect("grid entries are integers"))
            .collect(),
        _ => default.to_vec(),
    }
}

/// Planted instance: `B = P(A)`, `Y₂` the rows of `Y₁ Q₀` permuted by
/// `P` plus 0.3 σ Gaussian noise — the workload where the alternation
/// has a true rotation to find but the transport plans stay diffuse
/// enough that its Sinkhorn solves see realistic annealing trajectories.
struct Instance {
    ga: CsrGraph,
    gb: CsrGraph,
    y1: DenseMatrix,
    y2: DenseMatrix,
}

fn planted(n: usize, d: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let ga = barabasi_albert(n, 4, &mut rng);
    let p = Permutation::random(n, &mut rng);
    let gb = p.apply_to_graph(&ga);
    let y1 = DenseMatrix::gaussian(n, d, &mut rng);
    let q0 = cualign_linalg::qr::orthonormalize(&DenseMatrix::gaussian(d, d, &mut rng));
    let rotated = y1.matmul(&q0);
    let noise = DenseMatrix::gaussian(n, d, &mut rng);
    let mut y2 = DenseMatrix::zeros(n, d);
    for i in 0..n {
        let dst = y2.row_mut(p.apply(i as u32) as usize);
        dst.copy_from_slice(rotated.row(i));
        for (v, &e) in dst.iter_mut().zip(noise.row(i)) {
            *v += 0.3 * e;
        }
    }
    Instance { ga, gb, y1, y2 }
}

fn max_abs_diff(a: &DenseMatrix, b: &DenseMatrix) -> f64 {
    a.data()
        .iter()
        .zip(b.data())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max)
}

/// Kernel-level agreement on the cell's live operands: cost matrices to
/// 1e-9 absolute, one Sinkhorn plan (final ε of the anneal) to 1e-9.
fn assert_kernels_agree(inst: &Instance, cfg: &SubspaceAlignConfig, anchors: usize, d: usize) {
    let cost = pairwise_cost(&inst.y1, &inst.y2);
    let cost_ref = pairwise_cost_reference(&inst.y1, &inst.y2);
    let dc = max_abs_diff(&cost, &cost_ref);
    assert!(
        dc < 1e-9,
        "cost kernels diverged by {dc:e} at anchors = {anchors}, d = {d}"
    );
    let fast = sinkhorn(&cost, &cfg.sinkhorn);
    let oracle = sinkhorn_reference(&cost_ref, &cfg.sinkhorn);
    let dp = max_abs_diff(&fast.plan, &oracle.plan);
    assert!(
        dp < 1e-9,
        "Sinkhorn plans diverged by {dp:e} at anchors = {anchors}, d = {d}"
    );
}

fn main() {
    let anchor_grid = env_list("CUALIGN_BENCH_SUBSPACE_ANCHORS", &[256, 768]);
    let ds = env_list("CUALIGN_BENCH_SUBSPACE_DS", &[64, 128]);
    let iters = cualign_bench::env_u64("CUALIGN_BENCH_SUBSPACE_ITERS", 8) as usize;
    let reference_max = cualign_bench::env_u64("CUALIGN_SUBSPACE_REFERENCE_MAX", 768) as usize;
    let out_path =
        std::env::var("CUALIGN_BENCH_SUBSPACE_OUT").unwrap_or("BENCH_subspace.json".into());

    println!(
        "bench_subspace: anchors grid {anchor_grid:?}, d grid {ds:?}, {iters} rounds \
         (records -> {out_path})"
    );
    let mut lines = Vec::new();
    for &anchors in &anchor_grid {
        for &d in &ds {
            // n = anchors: every vertex is an anchor, so the Sinkhorn
            // problems are exactly anchors × anchors.
            let inst = planted(anchors, d, SEED ^ ((anchors as u64) << 8) ^ d as u64);
            let cfg = SubspaceAlignConfig {
                anchors,
                iterations: iters,
                ..Default::default()
            };
            assert_kernels_agree(&inst, &cfg, anchors, d);

            let t = Instant::now();
            let fast = align_subspaces(&inst.y1, &inst.y2, &inst.ga, &inst.gb, &cfg)
                .expect("planted instance is valid");
            let fast_s = t.elapsed().as_secs_f64();

            let mut rec = JsonRecord::new()
                .str("bench", "subspace")
                .int("anchors", anchors)
                .int("d", d)
                .int("iterations", iters)
                .num("fast_s", fast_s)
                .num(
                    "final_round_cost",
                    fast.round_costs.last().copied().unwrap_or(f64::NAN),
                );
            if anchors <= reference_max {
                let t = Instant::now();
                let oracle =
                    align_subspaces_reference(&inst.y1, &inst.y2, &inst.ga, &inst.gb, &cfg)
                        .expect("planted instance is valid");
                let reference_s = t.elapsed().as_secs_f64();
                let dq = max_abs_diff(&fast.rotation, &oracle.rotation);
                rec = rec
                    .num("reference_s", reference_s)
                    .num("speedup", reference_s / fast_s)
                    .num("rotation_dmax", dq)
                    .str("kernels_agree", "yes");
                println!(
                    "  anchors {anchors:>5}, d {d:>4}: fast {fast_s:>8.3}s, reference \
                     {reference_s:>8.3}s, speedup {:>5.1}x, |ΔQ|∞ = {dq:.2e}",
                    reference_s / fast_s
                );
            } else {
                rec = rec
                    .null("reference_s")
                    .null("speedup")
                    .null("rotation_dmax")
                    .str(
                        "kernels_agree",
                        "yes (end-to-end reference skipped above CUALIGN_SUBSPACE_REFERENCE_MAX)",
                    );
                println!(
                    "  anchors {anchors:>5}, d {d:>4}: fast {fast_s:>8.3}s, reference skipped \
                     (anchors > {reference_max})"
                );
            }
            lines.push(rec.finish());
        }
    }

    let mut f = std::fs::File::create(&out_path).expect("record sink is writable");
    for line in &lines {
        writeln!(f, "{line}").expect("record sink is writable");
    }
    println!("wrote {} records to {out_path}", lines.len());
}
