//! Regenerates **Figure 6**: quality of cuAlign vs. cone-align at the
//! paper's two preferred sparsification levels (1% and 2.5% density).
//!
//! The paper's finding: cuAlign's BP + matching refinement improves on
//! cone-align by up to 22% in alignment score.
//!
//! One [`AlignmentSession`] per input serves both densities *and* both
//! methods: cone-align rounds the session's cached candidate graph `L`,
//! so the head-to-head comparison computes every shared stage exactly
//! once.
//!
//! ```text
//! cargo run --release -p cualign-bench --bin fig6
//! ```

use cualign::{cone_align_session, AlignmentSession, PaperInput, SparsityChoice};
use cualign_bench::json::JsonRecord;
use cualign_bench::HarnessConfig;

fn main() {
    let telemetry = cualign_bench::telemetry_sink();
    let h = HarnessConfig::from_env();
    println!(
        "Figure 6: NCV-GS3, cuAlign vs cone-align (scale = {}, bp_iters = {}, seed = {})\n",
        h.scale, h.bp_iters, h.seed
    );
    println!(
        "{:<16} {:>8} | {:>9} {:>9} {:>8}",
        "Network", "density", "cuAlign", "cone", "delta"
    );
    println!("{}", "-".repeat(58));
    let mut records = Vec::new();
    for input in PaperInput::all() {
        let inst = h.instance(input);
        let mut session = AlignmentSession::new(&inst.a, &inst.b, h.aligner_config(0.01))
            .expect("harness instances are non-degenerate");
        for density in [0.01, 0.025] {
            session
                .update_config(|c| c.sparsity = SparsityChoice::Density(density))
                .expect("density grid is in (0, 1]");
            let cu = session.align().expect("grid densities yield non-empty L");
            let cone = cone_align_session(&mut session).expect("L is cached and non-empty");
            let delta = if cone.scores.ncv_gs3 > 0.0 {
                100.0 * (cu.scores.ncv_gs3 - cone.scores.ncv_gs3) / cone.scores.ncv_gs3
            } else {
                0.0
            };
            println!(
                "{:<16} {:>7.1}% | {:>9.4} {:>9.4} {:>+7.1}%",
                input.name(),
                density * 100.0,
                cu.scores.ncv_gs3,
                cone.scores.ncv_gs3,
                delta
            );
            records.push(
                JsonRecord::new()
                    .str("figure", "fig6")
                    .str("input", input.name())
                    .num("density", density)
                    .num("cualign", cu.scores.ncv_gs3)
                    .num("cone", cone.scores.ncv_gs3)
                    .num("delta_pct", delta)
                    .int("cache_hits", cu.timings.cache_hits)
                    .finish(),
            );
        }
    }
    println!("\nExpected shape (paper): cuAlign ≥ cone-align on every input, up to +22%.");
    println!();
    for r in records {
        println!("{r}");
    }
    cualign_bench::emit_telemetry(&telemetry);
}
