//! Stage-cached alignment sessions — the engine behind [`crate::Aligner`].
//!
//! The pipeline of paper Fig. 2 splits into a run-once initialization
//! (embed → subspace → sparsify → overlap) and an iterated optimization
//! (BP ⇄ matching). A one-shot [`crate::Aligner::align`] pays for the
//! whole chain every call, which is wasteful for the sweeps the
//! evaluation runs: a density sweep only changes the sparsifier, a BP
//! budget sweep only changes the last stage.
//!
//! [`AlignmentSession`] materializes the pipeline as five explicit,
//! reusable artifacts —
//!
//! ```text
//! Embeddings → AlignedSubspace → SparseL → Overlap → Optimized
//! ```
//!
//! — each stamped with a fingerprint of the configuration slice it was
//! built under (chained with its upstream fingerprint). A stage is
//! recomputed only when its fingerprint changes: changing `sparsity`
//! reuses embeddings and subspace; changing `bp.max_iters` reuses
//! everything through the overlap matrix `S`; changing the embedding
//! seed invalidates the whole chain. [`StageCounters`] exposes exactly
//! what was rebuilt, and the per-run [`StageTimings`] report `0 s` plus
//! a `cache_hits` tick for reused artifacts.
//!
//! All stage timing flows through the telemetry subsystem: each build
//! runs inside a `session.<stage>` span ([`Registry::timed`]), so with
//! telemetry enabled the span tree carries the same numbers `StageTimings`
//! reports, and the registry's `session.<stage>.hits`/`.misses` counters
//! are the canonical per-stage cache statistics (the per-run `cache_hits`
//! rollup cannot say *which* stage was reused; the counters can).

use crate::config::AlignerConfig;
use crate::error::{AlignError, GraphSide};
use crate::pipeline::{AlignmentResult, StageTimings};
use crate::scoring::{score_alignment, AlignmentScores};
use cualign_bp::{BpConfig, BpEngine, BpOutcome, DampingSchedule, MatcherKind};
use cualign_embed::{align_subspaces, EmbeddingMethod, SubspaceAlignConfig, SubspaceAlignment};
use cualign_graph::{BipartiteGraph, CsrGraph, VertexId};
use cualign_linalg::DenseMatrix;
use cualign_overlap::OverlapMatrix;
use cualign_telemetry::{Counter, Registry};
use std::borrow::Borrow;
use std::sync::Arc;

use crate::config::SparsityChoice;

/// Seed offset separating graph B's embedding randomness from graph A's
/// (the subspace stage must not rely on shared randomness).
pub(crate) const B_SIDE_SEED_OFFSET: u64 = 0x9e3779b97f4a7c15;

// ---------------------------------------------------------------------
// Config fingerprints
// ---------------------------------------------------------------------

/// FNV-1a accumulator over the config fields a stage depends on. Stable
/// within a process run, which is all cache invalidation needs.
struct Fnv(u64);

impl Fnv {
    fn new(tag: u64) -> Self {
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        h.u64(tag);
        h
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.u64(v as u64);
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Folds one CSR graph's exact structure (vertex count, offsets,
/// targets) into an FNV accumulator.
fn fold_graph(h: &mut Fnv, g: &CsrGraph) {
    h.usize(g.num_vertices());
    for &off in g.offsets() {
        h.usize(off);
    }
    for &t in g.targets() {
        h.u64(t as u64);
    }
}

/// Structural fingerprint of an ordered graph pair: an FNV-1a digest of
/// both CSR layouts (vertex counts, offset arrays, target arrays).
///
/// Two pairs collide only if their CSR representations are bytewise
/// identical, so the digest identifies the *inputs* of a session
/// independently of any configuration — the key a serving layer needs to
/// route repeat queries at the session cache
/// ([`AlignmentSession::fingerprint`] exposes the same value). The pair
/// is ordered: `(a, b)` and `(b, a)` hash differently, matching the
/// asymmetric A→B direction of the pipeline.
pub fn graph_pair_fingerprint(a: &CsrGraph, b: &CsrGraph) -> u64 {
    let mut h = Fnv::new(7);
    fold_graph(&mut h, a);
    fold_graph(&mut h, b);
    h.finish()
}

fn embedding_fingerprint(m: &EmbeddingMethod) -> u64 {
    match m {
        EmbeddingMethod::Spectral(c) => {
            let mut h = Fnv::new(1);
            h.usize(c.dim);
            h.usize(c.iters);
            h.usize(c.oversample);
            h.u64(c.seed);
            h.f64(c.eigenvalue_power);
            h.bool(c.normalize);
            h.finish()
        }
        EmbeddingMethod::FastRp(c) => {
            let mut h = Fnv::new(2);
            h.usize(c.dim);
            h.usize(c.hops);
            h.f64(c.decay);
            h.u64(c.seed);
            h.bool(c.normalize);
            h.finish()
        }
        EmbeddingMethod::NetMf(c) => {
            let mut h = Fnv::new(3);
            h.usize(c.dim);
            h.usize(c.window);
            h.f64(c.negative);
            h.u64(c.seed);
            h.bool(c.normalize);
            h.finish()
        }
    }
}

fn subspace_fingerprint(upstream: u64, c: &SubspaceAlignConfig) -> u64 {
    let mut h = Fnv::new(4);
    h.u64(upstream);
    h.usize(c.anchors);
    h.usize(c.iterations);
    h.f64(c.sinkhorn.epsilon);
    h.usize(c.sinkhorn.max_iters);
    h.f64(c.sinkhorn.tolerance);
    h.f64(c.epsilon_start);
    h.finish()
}

fn sparsity_fingerprint(upstream: u64, s: &SparsityChoice) -> u64 {
    let mut h = Fnv::new(5);
    h.u64(upstream);
    match *s {
        SparsityChoice::K(k) => {
            h.u64(1);
            h.usize(k);
        }
        SparsityChoice::Density(d) => {
            h.u64(2);
            h.f64(d);
        }
        SparsityChoice::MutualK(k) => {
            h.u64(3);
            h.usize(k);
        }
        SparsityChoice::Threshold {
            min_weight,
            cap_per_vertex,
        } => {
            h.u64(4);
            h.f64(min_weight);
            h.usize(cap_per_vertex);
        }
        SparsityChoice::Ann {
            k,
            bands,
            bits,
            probes,
        } => {
            h.u64(5);
            h.usize(k);
            h.usize(bands);
            h.usize(bits);
            h.usize(probes);
        }
    }
    h.finish()
}

fn bp_fingerprint(upstream: u64, c: &BpConfig) -> u64 {
    let mut h = Fnv::new(6);
    h.u64(upstream);
    h.f64(c.alpha);
    h.f64(c.beta);
    h.f64(c.gamma);
    h.usize(c.max_iters);
    h.bool(c.fused);
    h.bool(c.warm_start);
    h.u64(match c.matcher {
        MatcherKind::Serial => 1,
        MatcherKind::Parallel => 2,
        MatcherKind::Greedy => 3,
        MatcherKind::Suitor => 4,
    });
    h.u64(match c.damping {
        DampingSchedule::PowerDecay => 1,
        DampingSchedule::Constant => 2,
    });
    h.finish()
}

// ---------------------------------------------------------------------
// Stage artifacts
// ---------------------------------------------------------------------

/// Stage-1 artifact: the proximity embeddings of both input graphs.
#[derive(Clone, Debug)]
pub struct Embeddings {
    /// Embedding of graph A (`n_A × d`).
    pub y1: DenseMatrix,
    /// Embedding of graph B (`n_B × d`), drawn with offset randomness.
    pub y2: DenseMatrix,
}

/// Stage-5 artifact: the optimization outcome plus derived quality data.
#[derive(Clone, Debug)]
struct Optimized {
    bp: BpOutcome,
    mapping: Vec<Option<VertexId>>,
    scores: AlignmentScores,
}

struct Cached<T> {
    fingerprint: u64,
    value: T,
}

/// The cached artifact for a stage that has just been ensured. Every
/// `ensure_*` step leaves its slot populated, so a `None` here is a
/// session bookkeeping bug — reported as [`AlignError::Internal`]
/// rather than panicking (the library's no-panic contract).
fn cached<'a, T>(
    slot: &'a Option<Cached<T>>,
    stage: &'static str,
) -> Result<&'a Cached<T>, AlignError> {
    slot.as_ref().ok_or(AlignError::Internal { stage })
}

/// How many times each pipeline stage has been (re)built over a
/// session's lifetime. Stage accessors and [`AlignmentSession::align`]
/// increment these only on actual builds, so a sweep can assert that the
/// run-once stages really ran once.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageCounters {
    /// Builds of the [`Embeddings`] artifact.
    pub embedding_builds: usize,
    /// Builds of the aligned-subspace artifact (Eq. 2).
    pub subspace_builds: usize,
    /// Builds of the sparsified candidate graph `L`.
    pub sparsify_builds: usize,
    /// Builds of the overlap matrix `S` (Algorithm 3).
    pub overlap_builds: usize,
    /// Runs of the BP ⇄ matching optimization loop.
    pub optimize_builds: usize,
}

impl StageCounters {
    /// Total stage builds across the pipeline.
    pub fn total_builds(&self) -> usize {
        self.embedding_builds
            + self.subspace_builds
            + self.sparsify_builds
            + self.overlap_builds
            + self.optimize_builds
    }
}

// ---------------------------------------------------------------------
// Telemetry handles
// ---------------------------------------------------------------------

/// Interned hit/miss counters for one pipeline stage. These registry
/// counters are the *canonical* cache statistics: unlike the per-run
/// `cache_hits` rollup in [`StageTimings`], they distinguish which stage
/// was served from cache, across the whole session lifetime.
struct StageTele {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
}

impl StageTele {
    fn new(registry: &Registry, stage: &str) -> Self {
        StageTele {
            hits: registry.counter(&format!("session.{stage}.hits")),
            misses: registry.counter(&format!("session.{stage}.misses")),
        }
    }
}

/// Cached handles to every session instrument, built once per session so
/// stage accesses touch only atomics (never the registry's intern lock).
struct SessionTelemetry {
    embed: StageTele,
    subspace: StageTele,
    sparsify: StageTele,
    overlap: StageTele,
    optimize: StageTele,
}

impl SessionTelemetry {
    fn new(registry: &Registry) -> Self {
        SessionTelemetry {
            embed: StageTele::new(registry, "embed"),
            subspace: StageTele::new(registry, "subspace"),
            sparsify: StageTele::new(registry, "sparsify"),
            overlap: StageTele::new(registry, "overlap"),
            optimize: StageTele::new(registry, "optimize"),
        }
    }
}

// ---------------------------------------------------------------------
// The session
// ---------------------------------------------------------------------

/// A stage-cached alignment engine over one pair of input graphs.
///
/// Construct with [`AlignmentSession::new`], then either call
/// [`AlignmentSession::align`] for full results or the individual stage
/// accessors ([`AlignmentSession::embeddings`] …
/// [`AlignmentSession::overlap`]) for partial pipelines (the cone-align
/// baseline stops after `L`). Reconfigure between runs with
/// [`AlignmentSession::update_config`]; only the stages whose
/// configuration slice actually changed are rebuilt:
///
/// ```
/// use cualign::{AlignerConfig, AlignmentSession, SparsityChoice};
/// use cualign_graph::generators::erdos_renyi_gnm;
/// use cualign_graph::permutation::AlignmentInstance;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let a = erdos_renyi_gnm(120, 360, &mut rng);
/// let inst = AlignmentInstance::permuted_pair(a, &mut rng);
///
/// let cfg = AlignerConfig::builder().density(0.01).bp_iters(8).build().unwrap();
/// let mut session = AlignmentSession::new(&inst.a, &inst.b, cfg).unwrap();
/// for density in [0.01, 0.025, 0.05] {
///     session.update_config(|c| c.sparsity = SparsityChoice::Density(density)).unwrap();
///     let r = session.align().unwrap();
///     println!("{density}: {:.3} ({} stages reused)", r.scores.ncv_gs3, r.timings.cache_hits);
/// }
/// // Embeddings and subspace were computed once, not three times.
/// assert_eq!(session.counters().embedding_builds, 1);
/// assert_eq!(session.counters().subspace_builds, 1);
/// assert_eq!(session.counters().sparsify_builds, 3);
/// ```
///
/// The session is generic over how it holds its input graphs: anything
/// that [`Borrow`]s a [`CsrGraph`]. Sweep drivers pass plain references
/// (`AlignmentSession::new(&a, &b, cfg)` as above); long-running
/// embedders that must *own* their sessions — the `cualign-serve`
/// session LRU — pass `Arc<CsrGraph>`, which makes the session
/// `'static` and freely movable across worker threads:
///
/// ```
/// use cualign::{AlignerConfig, AlignmentSession};
/// use cualign_graph::CsrGraph;
/// use std::sync::Arc;
///
/// let ring: Vec<(u32, u32)> = (0..20).map(|i| (i, (i + 1) % 20)).collect();
/// let g = Arc::new(CsrGraph::from_edges(20, &ring));
/// let cfg = AlignerConfig::builder().embedding_dim(2).k(2).bp_iters(2).build().unwrap();
/// let session: AlignmentSession<Arc<CsrGraph>> =
///     AlignmentSession::new(Arc::clone(&g), g, cfg).unwrap();
/// let owned: Box<dyn Send> = Box::new(session); // no borrowed graphs
/// # drop(owned);
/// ```
pub struct AlignmentSession<G: Borrow<CsrGraph>> {
    a: G,
    b: G,
    /// Structural digest of the input pair, fixed at construction.
    pair_fp: u64,
    cfg: AlignerConfig,
    embeddings: Option<Cached<Embeddings>>,
    subspace: Option<Cached<SubspaceAlignment>>,
    sparse_l: Option<Cached<BipartiteGraph>>,
    overlap: Option<Cached<OverlapMatrix>>,
    optimized: Option<Cached<Optimized>>,
    counters: StageCounters,
    cumulative: StageTimings,
    registry: &'static Registry,
    tele: SessionTelemetry,
}

/// Outcome of an `ensure_*` step: was the artifact reused? (Build
/// durations live in the cumulative timings and the span tree.)
struct StageOutcome {
    hit: bool,
}

impl StageOutcome {
    fn hit() -> Self {
        StageOutcome { hit: true }
    }

    fn built() -> Self {
        StageOutcome { hit: false }
    }
}

impl<G: Borrow<CsrGraph>> AlignmentSession<G> {
    /// Opens a session over `a` and `b`, recording telemetry into the
    /// process-global registry. Validates the configuration and rejects
    /// degenerate inputs (empty graphs, embedding dimension larger than
    /// the smaller graph).
    pub fn new(a: G, b: G, cfg: AlignerConfig) -> Result<Self, AlignError> {
        Self::with_registry(a, b, cfg, cualign_telemetry::global())
    }

    /// As [`AlignmentSession::new`], but recording stage spans and the
    /// per-stage cache hit/miss counters into `registry` instead of the
    /// global one. Tests use this with a leaked fresh registry so
    /// concurrently running sessions cannot perturb each other's counts.
    pub fn with_registry(
        a: G,
        b: G,
        cfg: AlignerConfig,
        registry: &'static Registry,
    ) -> Result<Self, AlignError> {
        cfg.validate()?;
        Self::check_inputs(a.borrow(), b.borrow(), &cfg)?;
        let pair_fp = graph_pair_fingerprint(a.borrow(), b.borrow());
        Ok(AlignmentSession {
            a,
            b,
            pair_fp,
            cfg,
            embeddings: None,
            subspace: None,
            sparse_l: None,
            overlap: None,
            optimized: None,
            counters: StageCounters::default(),
            cumulative: StageTimings::default(),
            registry,
            tele: SessionTelemetry::new(registry),
        })
    }

    /// The registry this session records into.
    pub fn registry(&self) -> &'static Registry {
        self.registry
    }

    fn check_inputs(a: &CsrGraph, b: &CsrGraph, cfg: &AlignerConfig) -> Result<(), AlignError> {
        if a.num_vertices() == 0 {
            return Err(AlignError::EmptyGraph { side: GraphSide::A });
        }
        if b.num_vertices() == 0 {
            return Err(AlignError::EmptyGraph { side: GraphSide::B });
        }
        let smaller = a.num_vertices().min(b.num_vertices());
        // min_vertices, not dim: the spectral method also needs room for
        // its oversampling block, and its kernel asserts that bound — it
        // must surface here as a typed error, never as a worker panic on
        // a small network-supplied graph.
        if cfg.embedding.dim() > smaller || cfg.embedding.min_vertices() > smaller {
            return Err(AlignError::DimExceedsVertices {
                dim: cfg.embedding.dim(),
                vertices: smaller,
            });
        }
        Ok(())
    }

    /// The input graphs `(a, b)`.
    pub fn graphs(&self) -> (&CsrGraph, &CsrGraph) {
        (self.a.borrow(), self.b.borrow())
    }

    /// Structural fingerprint of the input graph pair
    /// ([`graph_pair_fingerprint`]), computed once at construction.
    ///
    /// Configuration changes never alter it — it identifies *which
    /// inputs* this session serves, which is exactly the cache key a
    /// serving layer wants: repeat queries for the same pair (under any
    /// config) route to the same resident session and hit its stage
    /// cache.
    pub fn fingerprint(&self) -> u64 {
        self.pair_fp
    }

    /// Drops every cached stage artifact, returning the session to its
    /// freshly-constructed state (configuration, counters, and
    /// cumulative timings are kept).
    ///
    /// This is the eviction hook for embedders that keep sessions
    /// resident — a session LRU under memory pressure can shed the
    /// artifact payload (embeddings, `L`, `S`, the optimized matching)
    /// without discarding the session's identity or statistics; the next
    /// [`AlignmentSession::align`] rebuilds from the graphs.
    pub fn clear_cache(&mut self) {
        self.embeddings = None;
        self.subspace = None;
        self.sparse_l = None;
        self.overlap = None;
        self.optimized = None;
    }

    /// The active configuration.
    pub fn config(&self) -> &AlignerConfig {
        &self.cfg
    }

    /// Replaces the configuration. Cached artifacts stay resident and are
    /// revalidated lazily by fingerprint on the next stage access, so
    /// switching back and forth between two BP budgets never rebuilds the
    /// front half.
    pub fn set_config(&mut self, cfg: AlignerConfig) -> Result<(), AlignError> {
        cfg.validate()?;
        Self::check_inputs(self.a.borrow(), self.b.borrow(), &cfg)?;
        self.cfg = cfg;
        Ok(())
    }

    /// Edits the configuration in place (clone–mutate–validate).
    ///
    /// ```ignore
    /// session.update_config(|c| c.bp.max_iters = 50)?;
    /// ```
    pub fn update_config(
        &mut self,
        edit: impl FnOnce(&mut AlignerConfig),
    ) -> Result<(), AlignError> {
        let mut cfg = self.cfg.clone();
        edit(&mut cfg);
        self.set_config(cfg)
    }

    /// Per-stage build counters over this session's lifetime.
    pub fn counters(&self) -> StageCounters {
        self.counters
    }

    /// Total wall-clock spent building artifacts over this session's
    /// lifetime (reused artifacts contribute nothing).
    pub fn cumulative_timings(&self) -> StageTimings {
        self.cumulative
    }

    // -- stage 1: embeddings ------------------------------------------

    fn ensure_embeddings(&mut self) -> StageOutcome {
        let fp = embedding_fingerprint(&self.cfg.embedding);
        if matches!(&self.embeddings, Some(c) if c.fingerprint == fp) {
            self.tele.embed.hits.inc();
            return StageOutcome::hit();
        }
        self.tele.embed.misses.inc();
        let (value, seconds) = self.registry.timed("session.embed", || {
            let y1 = self.cfg.embedding.embed(self.a.borrow());
            let y2 = self
                .cfg
                .embedding
                .with_seed_offset(B_SIDE_SEED_OFFSET)
                .embed(self.b.borrow());
            Embeddings { y1, y2 }
        });
        self.embeddings = Some(Cached {
            fingerprint: fp,
            value,
        });
        self.counters.embedding_builds += 1;
        self.cumulative.embedding_s += seconds;
        StageOutcome::built()
    }

    /// The stage-1 artifact: proximity embeddings of both graphs.
    pub fn embeddings(&mut self) -> Result<&Embeddings, AlignError> {
        self.ensure_embeddings();
        Ok(&cached(&self.embeddings, "embeddings")?.value)
    }

    // -- stage 2: subspace alignment ----------------------------------

    fn ensure_subspace(&mut self) -> Result<StageOutcome, AlignError> {
        let upstream = self.ensure_embeddings();
        let fp = subspace_fingerprint(
            cached(&self.embeddings, "embeddings")?.fingerprint,
            &self.cfg.subspace,
        );
        if upstream.hit && matches!(&self.subspace, Some(c) if c.fingerprint == fp) {
            self.tele.subspace.hits.inc();
            return Ok(StageOutcome::hit());
        }
        self.tele.subspace.misses.inc();
        let emb = &cached(&self.embeddings, "embeddings")?.value;
        let (sub, seconds) = self.registry.timed("session.subspace", || {
            align_subspaces(
                &emb.y1,
                &emb.y2,
                self.a.borrow(),
                self.b.borrow(),
                &self.cfg.subspace,
            )
        });
        self.subspace = Some(Cached {
            fingerprint: fp,
            value: sub?,
        });
        self.counters.subspace_builds += 1;
        self.cumulative.subspace_s += seconds;
        Ok(StageOutcome::built())
    }

    /// The stage-2 artifact: embeddings rotated into a common subspace
    /// (Eq. 2).
    pub fn subspace(&mut self) -> Result<&SubspaceAlignment, AlignError> {
        self.ensure_subspace()?;
        Ok(&cached(&self.subspace, "subspace")?.value)
    }

    // -- stage 3: sparsification --------------------------------------

    fn ensure_sparse_l(&mut self) -> Result<StageOutcome, AlignError> {
        let upstream = self.ensure_subspace()?;
        let fp = sparsity_fingerprint(
            cached(&self.subspace, "subspace")?.fingerprint,
            &self.cfg.sparsity,
        );
        if upstream.hit && matches!(&self.sparse_l, Some(c) if c.fingerprint == fp) {
            self.tele.sparsify.hits.inc();
            return Ok(StageOutcome::hit());
        }
        self.tele.sparsify.misses.inc();
        let sub = &cached(&self.subspace, "subspace")?.value;
        // Hand the graphs over so the ANN rule can union in its
        // Weisfeiler–Lehman structural candidates; exact rules ignore
        // them.
        let (l, seconds) = self.registry.timed("session.sparsify", || {
            self.cfg
                .build_l_with_graphs(&sub.ya, &sub.yb, Some((self.a.borrow(), self.b.borrow())))
        });
        if l.num_edges() == 0 {
            return Err(AlignError::EmptySparsification);
        }
        self.sparse_l = Some(Cached {
            fingerprint: fp,
            value: l,
        });
        self.counters.sparsify_builds += 1;
        self.cumulative.sparsify_s += seconds;
        Ok(StageOutcome::built())
    }

    /// The stage-3 artifact: the sparsified candidate graph `L`.
    pub fn sparse_l(&mut self) -> Result<&BipartiteGraph, AlignError> {
        self.ensure_sparse_l()?;
        Ok(&cached(&self.sparse_l, "sparse_l")?.value)
    }

    // -- stage 4: overlap matrix --------------------------------------

    fn ensure_overlap(&mut self) -> Result<StageOutcome, AlignError> {
        let upstream = self.ensure_sparse_l()?;
        // S depends only on (a, b, L): its fingerprint is L's.
        let fp = cached(&self.sparse_l, "sparse_l")?.fingerprint;
        if upstream.hit && matches!(&self.overlap, Some(c) if c.fingerprint == fp) {
            self.tele.overlap.hits.inc();
            return Ok(StageOutcome::hit());
        }
        self.tele.overlap.misses.inc();
        let l = &cached(&self.sparse_l, "sparse_l")?.value;
        let (s, seconds) = self.registry.timed("session.overlap", || {
            OverlapMatrix::build(self.a.borrow(), self.b.borrow(), l)
        });
        self.overlap = Some(Cached {
            fingerprint: fp,
            value: s,
        });
        self.counters.overlap_builds += 1;
        self.cumulative.overlap_s += seconds;
        Ok(StageOutcome::built())
    }

    /// The stage-4 artifact: the overlap matrix `S` (Algorithm 3).
    pub fn overlap(&mut self) -> Result<&OverlapMatrix, AlignError> {
        self.ensure_overlap()?;
        Ok(&cached(&self.overlap, "overlap")?.value)
    }

    /// Both structural artifacts at once (`L`, `S`) — for callers that
    /// need them simultaneously (the GPU cost model, the MR baseline).
    pub fn artifacts(&mut self) -> Result<(&BipartiteGraph, &OverlapMatrix), AlignError> {
        self.ensure_overlap()?;
        Ok((
            &cached(&self.sparse_l, "sparse_l")?.value,
            &cached(&self.overlap, "overlap")?.value,
        ))
    }

    // -- stage 5: optimization ----------------------------------------

    fn ensure_optimized(&mut self) -> Result<StageOutcome, AlignError> {
        let upstream = self.ensure_overlap()?;
        let fp = bp_fingerprint(cached(&self.overlap, "overlap")?.fingerprint, &self.cfg.bp);
        if upstream.hit && matches!(&self.optimized, Some(c) if c.fingerprint == fp) {
            self.tele.optimize.hits.inc();
            return Ok(StageOutcome::hit());
        }
        self.tele.optimize.misses.inc();
        let l = &cached(&self.sparse_l, "sparse_l")?.value;
        let s = &cached(&self.overlap, "overlap")?.value;
        let (value, seconds) = self.registry.timed("session.optimize", || {
            let bp = BpEngine::new(l, s, &self.cfg.bp).run();
            let mapping: Vec<Option<VertexId>> = (0..self.a.borrow().num_vertices())
                .map(|u| bp.best_matching.mate_of_a(u as VertexId))
                .collect();
            let scores = score_alignment(self.a.borrow(), self.b.borrow(), &mapping);
            Optimized {
                bp,
                mapping,
                scores,
            }
        });
        self.optimized = Some(Cached {
            fingerprint: fp,
            value,
        });
        self.counters.optimize_builds += 1;
        self.cumulative.optimize_s += seconds;
        Ok(StageOutcome::built())
    }

    /// Runs the full pipeline, reusing every artifact whose configuration
    /// slice is unchanged. The returned [`StageTimings`] charge `0 s` for
    /// reused stages and report how many were reused in `cache_hits`.
    pub fn align(&mut self) -> Result<AlignmentResult, AlignError> {
        // Drive only the last stage: its dependency walk ensures every
        // upstream artifact exactly once, so each run logs exactly one
        // hit-or-miss per stage in the telemetry counters. Per-run
        // timings are the cumulative deltas (reused stages charge 0 s).
        let before_t = self.cumulative;
        let before_c = self.counters;
        self.ensure_optimized()?;
        let timings = StageTimings {
            embedding_s: self.cumulative.embedding_s - before_t.embedding_s,
            subspace_s: self.cumulative.subspace_s - before_t.subspace_s,
            sparsify_s: self.cumulative.sparsify_s - before_t.sparsify_s,
            overlap_s: self.cumulative.overlap_s - before_t.overlap_s,
            optimize_s: self.cumulative.optimize_s - before_t.optimize_s,
            cache_hits: 5 - (self.counters.total_builds() - before_c.total_builds()),
        };

        let l_edges = cached(&self.sparse_l, "sparse_l")?.value.num_edges();
        let s_nnz = cached(&self.overlap, "overlap")?.value.nnz();
        let o = &cached(&self.optimized, "optimized")?.value;
        Ok(AlignmentResult {
            matching: o.bp.best_matching.clone(),
            mapping: o.mapping.clone(),
            scores: o.scores,
            bp: o.bp.clone(),
            timings,
            l_edges,
            s_nnz,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cualign_embed::SpectralConfig;
    use cualign_graph::generators::erdos_renyi_gnm;
    use cualign_graph::permutation::AlignmentInstance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_cfg() -> AlignerConfig {
        let mut cfg = AlignerConfig {
            embedding: EmbeddingMethod::Spectral(SpectralConfig {
                dim: 16,
                oversample: 8,
                ..Default::default()
            }),
            sparsity: SparsityChoice::K(5),
            ..AlignerConfig::default()
        };
        cfg.bp.max_iters = 5;
        cfg.subspace.anchors = 0;
        cfg
    }

    #[test]
    fn fingerprints_differ_per_field() {
        let base = small_cfg();
        let base_fp = embedding_fingerprint(&base.embedding);
        let mut seeded = base.clone();
        if let EmbeddingMethod::Spectral(c) = &mut seeded.embedding {
            c.seed += 1;
        }
        assert_ne!(base_fp, embedding_fingerprint(&seeded.embedding));

        let sp = sparsity_fingerprint(7, &SparsityChoice::K(5));
        assert_ne!(sp, sparsity_fingerprint(7, &SparsityChoice::K(6)));
        assert_ne!(sp, sparsity_fingerprint(8, &SparsityChoice::K(5)));
        // Same k under a different rule is a different artifact.
        assert_ne!(sp, sparsity_fingerprint(7, &SparsityChoice::MutualK(5)));

        // Every ANN knob is a fingerprint ingredient.
        let ann = |k, bands, bits, probes| {
            sparsity_fingerprint(
                7,
                &SparsityChoice::Ann {
                    k,
                    bands,
                    bits,
                    probes,
                },
            )
        };
        let base_ann = ann(5, 8, 12, 2);
        assert_ne!(base_ann, sp, "ANN k=5 must differ from exact K(5)");
        assert_ne!(base_ann, ann(6, 8, 12, 2));
        assert_ne!(base_ann, ann(5, 9, 12, 2));
        assert_ne!(base_ann, ann(5, 8, 13, 2));
        assert_ne!(base_ann, ann(5, 8, 12, 3));

        let bp = BpConfig::default();
        let mut bp2 = bp;
        bp2.max_iters += 1;
        assert_ne!(bp_fingerprint(1, &bp), bp_fingerprint(1, &bp2));
    }

    #[test]
    fn repeated_align_hits_every_stage() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = erdos_renyi_gnm(60, 150, &mut rng);
        let inst = AlignmentInstance::permuted_pair(a, &mut rng);
        let mut s = AlignmentSession::new(&inst.a, &inst.b, small_cfg()).unwrap();
        let r1 = s.align().unwrap();
        assert_eq!(r1.timings.cache_hits, 0);
        assert!(r1.timings.total_s() > 0.0);
        let r2 = s.align().unwrap();
        assert_eq!(r2.timings.cache_hits, 5);
        assert_eq!(r2.timings.total_s(), 0.0);
        assert_eq!(r1.mapping, r2.mapping);
        assert_eq!(s.counters().total_builds(), 5);
    }

    #[test]
    fn stage_accessors_build_prefix_only() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = erdos_renyi_gnm(50, 120, &mut rng);
        let inst = AlignmentInstance::permuted_pair(a, &mut rng);
        let mut s = AlignmentSession::new(&inst.a, &inst.b, small_cfg()).unwrap();
        let l_edges = s.sparse_l().unwrap().num_edges();
        assert!(l_edges >= 50 * 5);
        assert_eq!(
            s.counters(),
            StageCounters {
                embedding_builds: 1,
                subspace_builds: 1,
                sparsify_builds: 1,
                ..Default::default()
            }
        );
        // Completing the pipeline afterwards reuses the prefix.
        let r = s.align().unwrap();
        assert_eq!(r.timings.cache_hits, 3);
        assert_eq!(s.counters().embedding_builds, 1);
    }

    #[test]
    fn pair_fingerprint_identifies_inputs_not_config() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = erdos_renyi_gnm(40, 90, &mut rng);
        let inst = AlignmentInstance::permuted_pair(a, &mut rng);

        let mut s1 = AlignmentSession::new(&inst.a, &inst.b, small_cfg()).unwrap();
        let s2 = AlignmentSession::new(&inst.a, &inst.b, small_cfg()).unwrap();
        assert_eq!(s1.fingerprint(), s2.fingerprint());
        assert_eq!(
            s1.fingerprint(),
            graph_pair_fingerprint(&inst.a, &inst.b),
            "accessor and free function agree"
        );
        // Config changes leave the pair identity alone.
        let before = s1.fingerprint();
        s1.update_config(|c| c.bp.max_iters = 9).unwrap();
        assert_eq!(s1.fingerprint(), before);
        // Ordering matters; a different pair hashes differently.
        assert_ne!(
            graph_pair_fingerprint(&inst.a, &inst.b),
            graph_pair_fingerprint(&inst.b, &inst.a)
        );
        let other = erdos_renyi_gnm(40, 90, &mut rng);
        assert_ne!(
            graph_pair_fingerprint(&inst.a, &inst.b),
            graph_pair_fingerprint(&inst.a, &other)
        );
    }

    #[test]
    fn clear_cache_sheds_artifacts_and_rebuilds() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = erdos_renyi_gnm(50, 120, &mut rng);
        let inst = AlignmentInstance::permuted_pair(a, &mut rng);
        let mut s = AlignmentSession::new(&inst.a, &inst.b, small_cfg()).unwrap();
        let r1 = s.align().unwrap();
        s.clear_cache();
        let r2 = s.align().unwrap();
        assert_eq!(r2.timings.cache_hits, 0, "eviction dropped every artifact");
        assert_eq!(r1.mapping, r2.mapping, "rebuild is deterministic");
        assert_eq!(s.counters().total_builds(), 10);
    }

    #[test]
    fn arc_owned_sessions_are_static_and_send() {
        let mut rng = StdRng::seed_from_u64(13);
        let a = erdos_renyi_gnm(50, 120, &mut rng);
        let inst = AlignmentInstance::permuted_pair(a, &mut rng);
        let (ga, gb) = (Arc::new(inst.a.clone()), Arc::new(inst.b.clone()));
        let mut owned: AlignmentSession<Arc<CsrGraph>> =
            AlignmentSession::new(Arc::clone(&ga), Arc::clone(&gb), small_cfg()).unwrap();
        // The whole point of Arc ownership: movable to another thread.
        let handle = std::thread::spawn(move || {
            let r = owned.align().unwrap();
            (owned.fingerprint(), r.mapping)
        });
        let (fp, mapping) = handle.join().unwrap();
        assert_eq!(fp, graph_pair_fingerprint(&ga, &gb));
        let borrowed = AlignmentSession::new(&inst.a, &inst.b, small_cfg())
            .unwrap()
            .align()
            .unwrap();
        assert_eq!(mapping, borrowed.mapping, "ownership mode is transparent");
    }
}
