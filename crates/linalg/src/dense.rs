//! Row-major dense matrices.
//!
//! Row-major layout keeps each embedding vector (one row per graph vertex)
//! contiguous, which is what the similarity kNN kernel streams over.
//! Products run on the tiled kernel in [`crate::gemm`] (packed panels,
//! register tiles, rayon over output row blocks).

use rand::Rng;

/// A dense `rows × cols` matrix of `f64`, row-major.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from a generator `f(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        DenseMatrix { rows, cols, data }
    }

    /// Builds from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        DenseMatrix { rows, cols, data }
    }

    /// Standard-normal random matrix (for random projections / range
    /// finders). Uses Box–Muller to stay independent of rand_distr.
    pub fn gaussian<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        while data.len() < rows * cols {
            let u1: f64 = rng.gen::<f64>().max(1e-300);
            let u2: f64 = rng.gen();
            let r = (-2.0 * u1.ln()).sqrt();
            data.push(r * (2.0 * std::f64::consts::PI * u2).cos());
            if data.len() < rows * cols {
                data.push(r * (2.0 * std::f64::consts::PI * u2).sin());
            }
        }
        DenseMatrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self · other` on the tiled kernel
    /// ([`crate::gemm::matmul`]): packed column panels, 4×4 register
    /// tiles, rayon over output row blocks.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        crate::gemm::matmul(self, other)
    }

    /// `selfᵀ · other` without materializing the transpose (`k × n` output
    /// for `m × k` self and `m × n` other), register-blocked over input
    /// rows ([`crate::gemm::matmul_tn`]).
    pub fn transpose_matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        crate::gemm::matmul_tn(self, other)
    }

    /// Element-wise scale in place.
    pub fn scale(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// `self - other`.
    pub fn sub(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Whether `selfᵀ self ≈ I` within `tol` (columns orthonormal).
    pub fn is_orthonormal(&self, tol: f64) -> bool {
        let gram = self.transpose_matmul(self);
        let eye = DenseMatrix::identity(self.cols);
        gram.sub(&eye).max_abs() <= tol
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_multiplication() {
        let a = DenseMatrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let i3 = DenseMatrix::identity(3);
        assert_eq!(a.matmul(&i3), a);
        let i2 = DenseMatrix::identity(2);
        assert_eq!(i2.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = DenseMatrix::gaussian(4, 7, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_matmul_matches_explicit() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = DenseMatrix::gaussian(5, 3, &mut rng);
        let b = DenseMatrix::gaussian(5, 4, &mut rng);
        let fast = a.transpose_matmul(&b);
        let slow = a.transpose().matmul(&b);
        assert!(fast.sub(&slow).max_abs() < 1e-12);
    }

    #[test]
    fn frobenius_norm_known() {
        let a = DenseMatrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_moments_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = DenseMatrix::gaussian(100, 100, &mut rng);
        let mean: f64 = a.data().iter().sum::<f64>() / 10_000.0;
        let var: f64 = a.data().iter().map(|x| x * x).sum::<f64>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn identity_is_orthonormal() {
        assert!(DenseMatrix::identity(6).is_orthonormal(1e-14));
        let mut rng = StdRng::seed_from_u64(4);
        let g = DenseMatrix::gaussian(6, 6, &mut rng);
        assert!(!g.is_orthonormal(1e-3));
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn matmul_rejects_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
