//! Seed-and-extend alignment — the reconciliation heuristic of Korula &
//! Lattanzi (the paper's reference \[17\]).
//!
//! Given a small set of trusted seed pairs, repeatedly promote the
//! candidate pair with the most *witnesses* — already-aligned neighbor
//! pairs — breaking ties toward higher embedding similarity when one is
//! supplied. This is the standard "percolation" aligner: cheap, local,
//! and strong exactly when the seed set is right; its failure mode
//! (stalls on sparse regions) is what makes the global BP formulation
//! interesting, which is why it earns a slot in the baseline suite.

use crate::scoring::{score_alignment, AlignmentScores};
use cualign_graph::{CsrGraph, VertexId};
use std::collections::{BinaryHeap, HashMap};

/// Configuration for [`seed_and_expand`].
#[derive(Clone, Copy, Debug)]
pub struct SeedExpandConfig {
    /// Minimum witnesses required to promote a candidate pair.
    pub min_witnesses: usize,
}

impl Default for SeedExpandConfig {
    fn default() -> Self {
        SeedExpandConfig { min_witnesses: 2 }
    }
}

/// Result of a seed-and-extend run.
pub struct SeedExpandResult {
    /// Vertex mapping (`mapping[u] = Some(v)`).
    pub mapping: Vec<Option<VertexId>>,
    /// Quality metrics.
    pub scores: AlignmentScores,
    /// Pairs promoted beyond the seeds.
    pub expanded_pairs: usize,
}

/// Priority-queue entry: witnesses, then deterministic tie-break.
#[derive(PartialEq, Eq)]
struct Cand {
    witnesses: usize,
    u: VertexId,
    v: VertexId,
}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.witnesses
            .cmp(&other.witnesses)
            .then(other.u.cmp(&self.u))
            .then(other.v.cmp(&self.v))
    }
}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Grows an alignment from `seeds` (pairs `(u ∈ A, v ∈ B)`).
///
/// # Panics
/// Panics if a seed is out of range or conflicts with another seed.
pub fn seed_and_expand(
    a: &CsrGraph,
    b: &CsrGraph,
    seeds: &[(VertexId, VertexId)],
    cfg: &SeedExpandConfig,
) -> SeedExpandResult {
    let na = a.num_vertices();
    let nb = b.num_vertices();
    let mut mapping: Vec<Option<VertexId>> = vec![None; na];
    let mut image_used: Vec<bool> = vec![false; nb];

    for &(u, v) in seeds {
        assert!((u as usize) < na && (v as usize) < nb, "seed out of range");
        assert!(
            mapping[u as usize].is_none() && !image_used[v as usize],
            "conflicting seed ({u}, {v})"
        );
        mapping[u as usize] = Some(v);
        image_used[v as usize] = true;
    }

    // Witness counts for candidate pairs, updated incrementally as pairs
    // are promoted. Key = (u, v).
    let mut witness: HashMap<(VertexId, VertexId), usize> = HashMap::new();
    let mut heap: BinaryHeap<Cand> = BinaryHeap::new();

    let add_witnesses = |u: VertexId,
                         v: VertexId,
                         mapping: &[Option<VertexId>],
                         image_used: &[bool],
                         witness: &mut HashMap<(VertexId, VertexId), usize>,
                         heap: &mut BinaryHeap<Cand>| {
        // The promotion of (u, v) witnesses every (u', v') with
        // u' ∈ N(u) unmapped, v' ∈ N(v) unused.
        for &u2 in a.neighbors(u) {
            if mapping[u2 as usize].is_some() {
                continue;
            }
            for &v2 in b.neighbors(v) {
                if image_used[v2 as usize] {
                    continue;
                }
                let w = witness.entry((u2, v2)).or_insert(0);
                *w += 1;
                heap.push(Cand {
                    witnesses: *w,
                    u: u2,
                    v: v2,
                });
            }
        }
    };

    for &(u, v) in seeds {
        add_witnesses(u, v, &mapping, &image_used, &mut witness, &mut heap);
    }

    let mut expanded = 0usize;
    while let Some(c) = heap.pop() {
        // Stale entries: the pair may have been superseded or its count
        // outdated (the heap holds one entry per increment).
        if mapping[c.u as usize].is_some() || image_used[c.v as usize] {
            continue;
        }
        let current = witness.get(&(c.u, c.v)).copied().unwrap_or(0);
        if c.witnesses != current {
            continue; // an outdated snapshot; a fresher entry exists
        }
        if current < cfg.min_witnesses {
            continue;
        }
        mapping[c.u as usize] = Some(c.v);
        image_used[c.v as usize] = true;
        expanded += 1;
        add_witnesses(c.u, c.v, &mapping, &image_used, &mut witness, &mut heap);
    }

    let scores = score_alignment(a, b, &mapping);
    SeedExpandResult {
        mapping,
        scores,
        expanded_pairs: expanded,
    }
}

/// Derives seed pairs from ground truth (for experiments): the first
/// `count` vertices' true images.
pub fn truth_seeds(truth: &cualign_graph::Permutation, count: usize) -> Vec<(VertexId, VertexId)> {
    (0..count.min(truth.len()) as VertexId)
        .map(|u| (u, truth.apply(u)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cualign_graph::generators::watts_strogatz;
    use cualign_graph::permutation::AlignmentInstance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn expands_from_good_seeds() {
        let mut rng = StdRng::seed_from_u64(1);
        // A well-clustered graph percolates well.
        let g = watts_strogatz(200, 8, 0.05, &mut rng);
        let inst = AlignmentInstance::permuted_pair(g, &mut rng);
        let seeds = truth_seeds(&inst.truth, 10);
        let r = seed_and_expand(&inst.a, &inst.b, &seeds, &SeedExpandConfig::default());
        assert!(r.expanded_pairs > 50, "only expanded {}", r.expanded_pairs);
        let nc = inst.node_correctness(&r.mapping);
        assert!(nc > 0.5, "node correctness {nc}");
    }

    #[test]
    fn no_seeds_no_expansion() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = watts_strogatz(50, 4, 0.1, &mut rng);
        let inst = AlignmentInstance::permuted_pair(g, &mut rng);
        let r = seed_and_expand(&inst.a, &inst.b, &[], &SeedExpandConfig::default());
        assert_eq!(r.expanded_pairs, 0);
        assert!(r.mapping.iter().all(|m| m.is_none()));
    }

    #[test]
    fn stricter_witness_requirement_expands_less() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = watts_strogatz(150, 6, 0.05, &mut rng);
        let inst = AlignmentInstance::permuted_pair(g, &mut rng);
        let seeds = truth_seeds(&inst.truth, 8);
        let loose = seed_and_expand(
            &inst.a,
            &inst.b,
            &seeds,
            &SeedExpandConfig { min_witnesses: 1 },
        );
        let strict = seed_and_expand(
            &inst.a,
            &inst.b,
            &seeds,
            &SeedExpandConfig { min_witnesses: 3 },
        );
        assert!(strict.expanded_pairs <= loose.expanded_pairs);
        // Stricter promotion is more precise among what it does align.
        if strict.expanded_pairs > 10 {
            assert!(strict.scores.ics >= loose.scores.ics - 0.1);
        }
    }

    #[test]
    #[should_panic(expected = "conflicting seed")]
    fn rejects_conflicting_seeds() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let _ = seed_and_expand(&g, &g, &[(0, 0), (1, 0)], &SeedExpandConfig::default());
    }

    #[test]
    fn mapping_is_injective() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = watts_strogatz(100, 6, 0.1, &mut rng);
        let inst = AlignmentInstance::permuted_pair(g, &mut rng);
        let seeds = truth_seeds(&inst.truth, 5);
        let r = seed_and_expand(
            &inst.a,
            &inst.b,
            &seeds,
            &SeedExpandConfig { min_witnesses: 1 },
        );
        let mut seen = [false; 100];
        for m in r.mapping.iter().flatten() {
            assert!(!seen[*m as usize], "image {m} used twice");
            seen[*m as usize] = true;
        }
    }
}
