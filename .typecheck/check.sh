#!/usr/bin/env bash
# Offline verification harness.
#
# The reproduction environment has no crates.io mirror, so `cargo build`
# cannot resolve the external deps (rand, rayon, serde, proptest,
# criterion). This script temporarily points the workspace at the API-
# compatible stubs in .typecheck/stubs/, runs the requested cargo command
# (default: a full check + the non-proptest test targets), and restores
# the real manifest afterwards. The stub RNG is deterministic, and the
# stub rayon is sequential, so `cargo test` under the harness exercises
# real logic — only RNG-stream-dependent quality thresholds differ from
# a real-deps run.
#
# Usage:
#   .typecheck/check.sh                 # cargo check workspace + key tests
#   .typecheck/check.sh test -q ...     # any cargo subcommand, stubs on
set -u
cd "$(dirname "$0")/.."

cp Cargo.toml .typecheck/Cargo.toml.real
cleanup() {
  mv .typecheck/Cargo.toml.real Cargo.toml
  rm -f Cargo.lock
}
trap cleanup EXIT

python3 - <<'EOF'
import re
src = open('Cargo.toml').read()
stubs = {
    'rand': 'rand = { path = ".typecheck/stubs/rand", default-features = false, features = ["std", "std_rng", "small_rng"] }',
    'rayon': 'rayon = { path = ".typecheck/stubs/rayon" }',
    'proptest': 'proptest = { path = ".typecheck/stubs/proptest" }',
    'criterion': 'criterion = { path = ".typecheck/stubs/criterion", default-features = false, features = ["plotters", "cargo_bench_support"] }',
    'serde': 'serde = { path = ".typecheck/stubs/serde", features = ["derive"] }',
}
out = []
for line in src.splitlines():
    name = line.split('=')[0].strip()
    out.append(stubs.get(name, line))
open('Cargo.toml', 'w').write('\n'.join(out) + '\n')
EOF

if [ $# -gt 0 ]; then
  cargo "$@"
  status=$?
else
  cargo check --workspace --bins --examples &&
    cargo check -p cualign --test pipeline_integration \
      --test crosscrate_invariants --test gpusim_consistency \
      --test session_cache --test telemetry_session \
      --test multilevel_pipeline &&
    cargo check -p cualign-telemetry --tests &&
    cargo check -p cualign-linalg --tests &&
    cargo check -p cualign-bp --tests &&
    cargo check -p cualign-overlap --tests &&
    cargo check -p cualign-sparsify --tests &&
    cargo check -p cualign-embed --tests &&
    cargo check -p cualign-serve --tests &&
    cargo check -p cualign-bench --benches &&
    cargo check -p lint --tests &&
    cargo run -q --release -p lint
  status=$?
fi
exit $status
