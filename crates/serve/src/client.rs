//! A tiny blocking HTTP client for the service's own tests, bench
//! load generator, and CI smoke checks.
//!
//! It speaks exactly the dialect the server emits — one request per
//! connection, `Connection: close`, body delimited by EOF — so it reads
//! to end-of-stream instead of honoring `Content-Length`, which keeps it
//! honest about the server's close-after-response contract.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A decoded response: status code and UTF-8 body.
pub struct HttpResponse {
    /// The HTTP status code.
    pub status: u16,
    /// The response body.
    pub body: String,
}

/// Sends one request and reads the full response, failing if the server
/// does not answer within `timeout`.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: cualign-serve\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8(raw)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 response"))?;
    let (head, payload) = text.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "no header terminator")
    })?;
    let status = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    Ok(HttpResponse {
        status,
        body: payload.to_string(),
    })
}

/// `GET path` with a two-minute timeout.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<HttpResponse> {
    request(addr, "GET", path, "", Duration::from_secs(120))
}

/// `POST path` with a JSON body and a two-minute timeout. The generous
/// default covers requests parked in the server's queue behind slow
/// alignments; latency-sensitive callers use [`request`] directly.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<HttpResponse> {
    request(addr, "POST", path, body, Duration::from_secs(120))
}
