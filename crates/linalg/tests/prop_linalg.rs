//! Property-based tests for the linear algebra kernels: factorization
//! identities on random matrices of random shapes.

use cualign_linalg::eig::symmetric_eigen;
use cualign_linalg::qr::householder_qr;
use cualign_linalg::sinkhorn::{sinkhorn, SinkhornOptions};
use cualign_linalg::svd::jacobi_svd;
use cualign_linalg::{orthogonal_procrustes, vecops, DenseMatrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn gaussian(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    DenseMatrix::gaussian(rows, cols, &mut StdRng::seed_from_u64(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// QR: reconstruction, orthonormal Q, upper-triangular R — any shape
    /// with rows ≥ cols.
    #[test]
    fn qr_identities(rows in 1usize..25, extra in 0usize..15, seed in 0u64..10_000) {
        let cols = rows.min(rows.saturating_sub(extra).max(1));
        let a = gaussian(rows, cols, seed);
        let qr = householder_qr(&a);
        prop_assert!(qr.q.matmul(&qr.r).sub(&a).max_abs() < 1e-9);
        prop_assert!(qr.q.is_orthonormal(1e-9));
        for i in 0..cols {
            for j in 0..i {
                prop_assert_eq!(qr.r[(i, j)], 0.0);
            }
        }
    }

    /// SVD: reconstruction, orthonormal factors, sorted non-negative
    /// spectrum.
    #[test]
    fn svd_identities(rows in 1usize..20, extra in 0usize..12, seed in 0u64..10_000) {
        let cols = (rows.saturating_sub(extra)).max(1);
        let a = gaussian(rows, cols, seed);
        let svd = jacobi_svd(&a);
        prop_assert!(svd.reconstruct().sub(&a).max_abs() < 1e-8);
        prop_assert!(svd.u.is_orthonormal(1e-8));
        prop_assert!(svd.v.is_orthonormal(1e-8));
        prop_assert!(svd.sigma.iter().all(|&s| s >= 0.0));
        prop_assert!(svd.sigma.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    /// Symmetric eigendecomposition: M·V = V·Λ and trace preservation.
    #[test]
    fn eig_identities(n in 1usize..15, seed in 0u64..10_000) {
        let g = gaussian(n, n, seed);
        let m = DenseMatrix::from_fn(n, n, |i, j| 0.5 * (g[(i, j)] + g[(j, i)]));
        let e = symmetric_eigen(&m);
        prop_assert!(e.vectors.is_orthonormal(1e-8));
        let mv = m.matmul(&e.vectors);
        for j in 0..n {
            for i in 0..n {
                prop_assert!((mv[(i, j)] - e.values[j] * e.vectors[(i, j)]).abs() < 1e-8);
            }
        }
        let trace: f64 = (0..n).map(|i| m[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8);
    }

    /// Procrustes returns an orthogonal matrix and exactly recovers a
    /// planted rotation.
    #[test]
    fn procrustes_identities(m in 6usize..30, d in 2usize..6, seed in 0u64..10_000) {
        let x = gaussian(m, d, seed);
        let q_raw = gaussian(d, d, seed + 1);
        let q_true = cualign_linalg::qr::orthonormalize(&q_raw);
        let y = x.matmul(&q_true);
        let q = orthogonal_procrustes(&x, &y);
        prop_assert!(q.is_orthonormal(1e-8));
        prop_assert!(x.matmul(&q).sub(&y).max_abs() < 1e-7);
    }

    /// Sinkhorn: total mass 1, non-negative entries, marginal violations
    /// below tolerance after convergence.
    #[test]
    fn sinkhorn_is_a_transport_plan(
        n in 1usize..8,
        m in 1usize..8,
        seed in 0u64..10_000,
    ) {
        let cost = DenseMatrix::from_fn(n, m, |i, j| {
            // Deterministic pseudo-random non-negative costs.
            let h = (i * 31 + j * 17 + seed as usize) % 101;
            h as f64 / 25.0
        });
        // Note the generous tolerances: Sinkhorn's contraction factor
        // degrades as exp(-cost_range/ε), so for adversarial cost matrices
        // the marginals converge slowly — the property is approximate
        // feasibility, not exactness.
        let tp = sinkhorn(&cost, &SinkhornOptions { epsilon: 0.4, max_iters: 5000, tolerance: 1e-9 });
        prop_assert!(tp.plan.data().iter().all(|&x| x >= 0.0));
        let total: f64 = tp.plan.data().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-3, "mass {}", total);
        for i in 0..n {
            let rs: f64 = tp.plan.row(i).iter().sum();
            prop_assert!(
                (rs - 1.0 / n as f64).abs() < 2e-3,
                "row {} sums to {}",
                i,
                rs
            );
        }
    }

    /// Cosine similarity is bounded, symmetric, and scale-invariant.
    #[test]
    fn cosine_properties(
        a in prop::collection::vec(-5.0f64..5.0, 1..12),
        scale in 0.1f64..10.0,
    ) {
        let b: Vec<f64> = a.iter().map(|x| x * 0.5 + 1.0).collect();
        let c = vecops::cosine_similarity(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&c));
        prop_assert!((c - vecops::cosine_similarity(&b, &a)).abs() < 1e-12);
        let scaled: Vec<f64> = a.iter().map(|x| x * scale).collect();
        prop_assert!((c - vecops::cosine_similarity(&scaled, &b)).abs() < 1e-9);
    }
}
