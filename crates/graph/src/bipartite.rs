//! The weighted bipartite alignment graph `L = (V_A ∪ V_B, E_L, w)`.
//!
//! `L` is the central shared data structure of the framework: the
//! sparsification stage constructs it, belief propagation rewrites its edge
//! weights every iteration (Algorithm 2, lines 17–20), and the matching
//! stage rounds it to an alignment.
//!
//! Both orientations are materialized as CSR:
//! * the **A side** maps each `a ∈ V_A` to its incident `(b, edge-id)` pairs,
//! * the **B side** maps each `b ∈ V_B` to its incident `(a, edge-id)` pairs.
//!
//! Edge ids are stable: id `e` always refers to the same `(a, b)` pair. The
//! weight vector is indexed by edge id, so swapping in a new weight vector
//! (as BP rounding does) never touches the topology. This mirrors the
//! paper's observation that "sparse data structures for vectors and matrices
//! remain fixed; only the values change" — the property its GPU kernels
//! exploit.

use crate::{EdgeId, VertexId};

/// One edge of `L`: vertex `a` of graph A, vertex `b` of graph B.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LEdge {
    /// Endpoint in `V_A`.
    pub a: VertexId,
    /// Endpoint in `V_B`.
    pub b: VertexId,
}

/// Which side of the bipartition a CSR view is rooted at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Rows are vertices of graph A.
    A,
    /// Rows are vertices of graph B.
    B,
}

/// Weighted bipartite graph with stable edge ids and dual CSR orientation.
#[derive(Clone, Debug)]
pub struct BipartiteGraph {
    na: usize,
    nb: usize,
    /// Canonical edge list, sorted by `(a, b)`. `edges[e]` is edge id `e`.
    edges: Vec<LEdge>,
    /// Edge weights indexed by edge id.
    weights: Vec<f64>,
    // A-side CSR.
    a_offsets: Vec<usize>,
    a_targets: Vec<VertexId>,
    a_eids: Vec<EdgeId>,
    // B-side CSR.
    b_offsets: Vec<usize>,
    b_targets: Vec<VertexId>,
    b_eids: Vec<EdgeId>,
}

impl BipartiteGraph {
    /// Builds `L` from `(a, b, weight)` triples.
    ///
    /// Duplicate `(a, b)` pairs keep the **maximum** weight (a duplicate
    /// candidate edge from two kNN directions should not be double counted).
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn from_weighted_edges(
        na: usize,
        nb: usize,
        triples: &[(VertexId, VertexId, f64)],
    ) -> Self {
        let mut sorted: Vec<(VertexId, VertexId, f64)> = triples.to_vec();
        for &(a, b, _) in &sorted {
            assert!(
                (a as usize) < na && (b as usize) < nb,
                "edge ({a}, {b}) out of bounds for ({na}, {nb})"
            );
        }
        sorted.sort_unstable_by_key(|x| (x.0, x.1));
        // Collapse duplicates, keeping the max weight.
        let mut edges: Vec<LEdge> = Vec::with_capacity(sorted.len());
        let mut weights: Vec<f64> = Vec::with_capacity(sorted.len());
        for (a, b, w) in sorted {
            match (edges.last(), weights.last_mut()) {
                (Some(last), Some(lw)) if last.a == a && last.b == b => {
                    if w > *lw {
                        *lw = w;
                    }
                }
                _ => {
                    edges.push(LEdge { a, b });
                    weights.push(w);
                }
            }
        }

        let m = edges.len();
        // A-side CSR: edges are already sorted by (a, b).
        let mut a_offsets = vec![0usize; na + 1];
        for e in &edges {
            a_offsets[e.a as usize + 1] += 1;
        }
        for i in 0..na {
            a_offsets[i + 1] += a_offsets[i];
        }
        let a_targets: Vec<VertexId> = edges.iter().map(|e| e.b).collect();
        let a_eids: Vec<EdgeId> = (0..m as EdgeId).collect();

        // B-side CSR via counting sort on b.
        let mut b_offsets = vec![0usize; nb + 1];
        for e in &edges {
            b_offsets[e.b as usize + 1] += 1;
        }
        for i in 0..nb {
            b_offsets[i + 1] += b_offsets[i];
        }
        let mut cursor = b_offsets.clone();
        let mut b_targets = vec![0 as VertexId; m];
        let mut b_eids = vec![0 as EdgeId; m];
        for (eid, e) in edges.iter().enumerate() {
            let slot = cursor[e.b as usize];
            b_targets[slot] = e.a;
            b_eids[slot] = eid as EdgeId;
            cursor[e.b as usize] += 1;
        }

        BipartiteGraph {
            na,
            nb,
            edges,
            weights,
            a_offsets,
            a_targets,
            a_eids,
            b_offsets,
            b_targets,
            b_eids,
        }
    }

    /// Number of vertices on the A side.
    #[inline]
    pub fn na(&self) -> usize {
        self.na
    }

    /// Number of vertices on the B side.
    #[inline]
    pub fn nb(&self) -> usize {
        self.nb
    }

    /// Number of edges `|E_L|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge with id `e`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> LEdge {
        self.edges[e as usize]
    }

    /// All edges, indexed by edge id.
    #[inline]
    pub fn edges(&self) -> &[LEdge] {
        &self.edges
    }

    /// Edge weights, indexed by edge id.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Mutable edge weights — used by BP rounding to substitute message
    /// values for weights without rebuilding topology.
    #[inline]
    pub fn weights_mut(&mut self) -> &mut [f64] {
        &mut self.weights
    }

    /// Replaces the entire weight vector.
    ///
    /// # Panics
    /// Panics if `w.len() != num_edges()`.
    pub fn set_weights(&mut self, w: &[f64]) {
        assert_eq!(w.len(), self.edges.len(), "weight vector length mismatch");
        self.weights.copy_from_slice(w);
    }

    /// Degree of vertex `a` on the A side.
    #[inline]
    pub fn degree_a(&self, a: VertexId) -> usize {
        self.a_offsets[a as usize + 1] - self.a_offsets[a as usize]
    }

    /// Degree of vertex `b` on the B side.
    #[inline]
    pub fn degree_b(&self, b: VertexId) -> usize {
        self.b_offsets[b as usize + 1] - self.b_offsets[b as usize]
    }

    /// Incident `(neighbor, edge-id)` pairs of `a ∈ V_A`. Neighbors are
    /// B-side vertices in increasing order.
    pub fn incident_a(&self, a: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let r = self.a_offsets[a as usize]..self.a_offsets[a as usize + 1];
        self.a_targets[r.clone()]
            .iter()
            .copied()
            .zip(self.a_eids[r].iter().copied())
    }

    /// Incident `(neighbor, edge-id)` pairs of `b ∈ V_B`. Neighbors are
    /// A-side vertices in increasing order.
    pub fn incident_b(&self, b: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let r = self.b_offsets[b as usize]..self.b_offsets[b as usize + 1];
        self.b_targets[r.clone()]
            .iter()
            .copied()
            .zip(self.b_eids[r].iter().copied())
    }

    /// Edge-id slice of the A-side CSR row for `a` (ids of edges incident to
    /// `a`, ordered by B endpoint).
    #[inline]
    pub fn row_a(&self, a: VertexId) -> &[EdgeId] {
        &self.a_eids[self.a_offsets[a as usize]..self.a_offsets[a as usize + 1]]
    }

    /// Edge-id slice of the B-side CSR row for `b`.
    #[inline]
    pub fn row_b(&self, b: VertexId) -> &[EdgeId] {
        &self.b_eids[self.b_offsets[b as usize]..self.b_offsets[b as usize + 1]]
    }

    /// B-side endpoints of the A-side CSR row for `a`, ascending —
    /// parallel to [`BipartiteGraph::row_a`]. The overlap build's merge
    /// intersections walk this slice against `B`'s adjacency.
    #[inline]
    pub fn targets_a(&self, a: VertexId) -> &[VertexId] {
        &self.a_targets[self.a_offsets[a as usize]..self.a_offsets[a as usize + 1]]
    }

    /// Flat edge-id array of the requested side's CSR, parallel to
    /// [`BipartiteGraph::offsets`] — position `p` of side `s` holds the
    /// id of the `p`-th incidence. The sparse othermax kernel indexes
    /// messages through this slice and writes positional outputs.
    #[inline]
    pub fn eids(&self, side: Side) -> &[EdgeId] {
        match side {
            Side::A => &self.a_eids,
            Side::B => &self.b_eids,
        }
    }

    /// CSR offsets for the requested side.
    pub fn offsets(&self, side: Side) -> &[usize] {
        match side {
            Side::A => &self.a_offsets,
            Side::B => &self.b_offsets,
        }
    }

    /// Looks up the id of edge `(a, b)`, if present (binary search over the
    /// A-side row).
    pub fn edge_id(&self, a: VertexId, b: VertexId) -> Option<EdgeId> {
        let r = self.a_offsets[a as usize]..self.a_offsets[a as usize + 1];
        let row = &self.a_targets[r.clone()];
        row.binary_search(&b).ok().map(|i| self.a_eids[r.start + i])
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Validates structural invariants (dual-CSR consistency, sortedness,
    /// stable edge ids).
    pub fn check_invariants(&self) -> Result<(), String> {
        let m = self.edges.len();
        if self.weights.len() != m {
            return Err("weights length mismatch".into());
        }
        if self.a_offsets[self.na] != m || self.b_offsets[self.nb] != m {
            return Err("CSR offset totals wrong".into());
        }
        // Canonical list sorted by (a, b), no duplicates.
        if !self
            .edges
            .windows(2)
            .all(|w| (w[0].a, w[0].b) < (w[1].a, w[1].b))
        {
            return Err("edge list not strictly sorted".into());
        }
        // Every A-side entry points back to the canonical edge, and vice versa.
        for a in 0..self.na as VertexId {
            for (b, e) in self.incident_a(a) {
                let le = self.edges[e as usize];
                if le.a != a || le.b != b {
                    return Err(format!("A-side eid {e} inconsistent at vertex {a}"));
                }
            }
        }
        for b in 0..self.nb as VertexId {
            let mut prev: Option<VertexId> = None;
            for (a, e) in self.incident_b(b) {
                let le = self.edges[e as usize];
                if le.a != a || le.b != b {
                    return Err(format!("B-side eid {e} inconsistent at vertex {b}"));
                }
                if let Some(p) = prev {
                    if a <= p {
                        return Err(format!("B-side row {b} not sorted"));
                    }
                }
                prev = Some(a);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BipartiteGraph {
        BipartiteGraph::from_weighted_edges(
            3,
            3,
            &[
                (0, 0, 1.0),
                (0, 1, 0.5),
                (1, 1, 2.0),
                (2, 0, 0.25),
                (2, 2, 3.0),
            ],
        )
    }

    #[test]
    fn builds_and_validates() {
        let g = sample();
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.na(), 3);
        assert_eq!(g.nb(), 3);
        g.check_invariants().unwrap();
    }

    #[test]
    fn dual_csr_consistent() {
        let g = sample();
        // Edge (1,1) must be reachable from both sides with the same id.
        let e = g.edge_id(1, 1).unwrap();
        assert!(g.incident_a(1).any(|(b, id)| b == 1 && id == e));
        assert!(g.incident_b(1).any(|(a, id)| a == 1 && id == e));
        assert_eq!(g.edge(e), LEdge { a: 1, b: 1 });
        assert!((g.weights()[e as usize] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_edges_keep_max_weight() {
        let g = BipartiteGraph::from_weighted_edges(2, 2, &[(0, 1, 0.3), (0, 1, 0.9), (0, 1, 0.1)]);
        assert_eq!(g.num_edges(), 1);
        assert!((g.weights()[0] - 0.9).abs() < 1e-12);
        g.check_invariants().unwrap();
    }

    #[test]
    fn degrees() {
        let g = sample();
        assert_eq!(g.degree_a(0), 2);
        assert_eq!(g.degree_a(1), 1);
        assert_eq!(g.degree_a(2), 2);
        assert_eq!(g.degree_b(0), 2);
        assert_eq!(g.degree_b(1), 2);
        assert_eq!(g.degree_b(2), 1);
    }

    #[test]
    fn set_weights_preserves_topology() {
        let mut g = sample();
        let new_w = vec![9.0; g.num_edges()];
        g.set_weights(&new_w);
        assert!((g.total_weight() - 45.0).abs() < 1e-12);
        g.check_invariants().unwrap();
        assert_eq!(g.edge_id(2, 2), Some(4));
    }

    #[test]
    fn missing_edge_lookup() {
        let g = sample();
        assert_eq!(g.edge_id(1, 0), None);
        assert_eq!(g.edge_id(0, 2), None);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn set_weights_rejects_wrong_length() {
        let mut g = sample();
        g.set_weights(&[1.0, 2.0]);
    }
}
