//! Failure-injection tests: how the matchers behave on adversarial
//! weights (NaN, ±∞, subnormals). The contract: NaN edges are never
//! eligible (every comparison against NaN is false, and NaN > 0.0 is
//! false), +∞ edges are matched first, -∞ and negative edges never.

use cualign_graph::BipartiteGraph;
use cualign_matching::{
    greedy_matching, locally_dominant_parallel, locally_dominant_serial, suitor_matching,
};

#[test]
fn nan_weights_are_ignored() {
    let l =
        BipartiteGraph::from_weighted_edges(2, 2, &[(0, 0, f64::NAN), (0, 1, 1.0), (1, 0, 2.0)]);
    for m in [
        locally_dominant_serial(&l),
        locally_dominant_parallel(&l),
        greedy_matching(&l),
        suitor_matching(&l),
    ] {
        m.check_valid(&l).unwrap();
        assert_eq!(m.mate_of_a(0), Some(1), "NaN edge must not be chosen");
        assert_eq!(m.mate_of_a(1), Some(0));
    }
}

#[test]
fn infinite_weight_wins() {
    let l = BipartiteGraph::from_weighted_edges(
        2,
        2,
        &[(0, 0, f64::INFINITY), (0, 1, 5.0), (1, 1, 5.0)],
    );
    for m in [
        locally_dominant_serial(&l),
        locally_dominant_parallel(&l),
        greedy_matching(&l),
        suitor_matching(&l),
    ] {
        assert_eq!(m.mate_of_a(0), Some(0));
        assert_eq!(m.mate_of_a(1), Some(1));
    }
}

#[test]
fn negative_infinity_never_matched() {
    let l = BipartiteGraph::from_weighted_edges(1, 1, &[(0, 0, f64::NEG_INFINITY)]);
    for m in [
        locally_dominant_serial(&l),
        locally_dominant_parallel(&l),
        greedy_matching(&l),
        suitor_matching(&l),
    ] {
        assert!(m.is_empty());
    }
}

#[test]
fn subnormal_weights_still_match() {
    let tiny = f64::MIN_POSITIVE / 2.0; // subnormal, still > 0
    let l = BipartiteGraph::from_weighted_edges(1, 2, &[(0, 0, tiny), (0, 1, tiny * 2.0)]);
    for m in [
        locally_dominant_serial(&l),
        locally_dominant_parallel(&l),
        greedy_matching(&l),
        suitor_matching(&l),
    ] {
        assert_eq!(m.len(), 1);
        assert_eq!(m.mate_of_a(0), Some(1), "heavier subnormal wins");
    }
}

#[test]
fn all_matchers_agree_under_injection() {
    // A mixed bag of pathological weights: agreement must survive.
    let l = BipartiteGraph::from_weighted_edges(
        4,
        4,
        &[
            (0, 0, f64::NAN),
            (0, 1, 1.0),
            (1, 1, f64::INFINITY),
            (1, 2, 3.0),
            (2, 2, -0.0),
            (2, 3, 1e-300),
            (3, 3, f64::NEG_INFINITY),
            (3, 0, 0.5),
        ],
    );
    let reference = locally_dominant_serial(&l);
    assert_eq!(reference, locally_dominant_parallel(&l));
    assert_eq!(reference, greedy_matching(&l));
    assert_eq!(reference, suitor_matching(&l));
}
