//! Subspace alignment across graphs — the paper's Eq. (2):
//!
//! ```text
//! min_{Q ∈ O(d)}  min_{P ∈ Perm(n)}  ‖ Y₁ Q − P Y₂ ‖²
//! ```
//!
//! solved, per Chen et al. (cone-align), by alternating
//!
//! 1. **soft correspondence** — entropic Sinkhorn OT between the current
//!    `Y₁Q` rows and the `Y₂` rows gives a doubly-stochastic relaxation of
//!    `P`, and
//! 2. **rotation** — orthogonal Procrustes against the barycentric
//!    projection of that plan gives the optimal `Q`.
//!
//! For scalability the OT step runs on **anchor subsets**: the top-degree
//! vertices of each graph. Degree sequences are isomorphism-invariant, so
//! the two anchor sets approximately correspond, and `Q` has only `d²`
//! degrees of freedom — a few hundred anchors pin it down (substitution
//! recorded in DESIGN.md §2; `anchors = 0` requests the exact full-matrix
//! procedure).

use cualign_graph::{CsrGraph, VertexId};
use cualign_linalg::procrustes::orthogonal_procrustes;
use cualign_linalg::sinkhorn::{sinkhorn, SinkhornOptions};
use cualign_linalg::{vecops, DenseMatrix};

/// Configuration for [`align_subspaces`].
#[derive(Clone, Copy, Debug)]
pub struct SubspaceAlignConfig {
    /// Anchor count per side; `0` uses every vertex (exact but `O(n²)` per
    /// Sinkhorn iteration).
    pub anchors: usize,
    /// Alternation rounds of (Sinkhorn ⇄ Procrustes).
    pub iterations: usize,
    /// Entropic OT solver options; `sinkhorn.epsilon` is the **final**
    /// regularization.
    pub sinkhorn: SinkhornOptions,
    /// Initial entropic regularization. Rounds anneal geometrically from
    /// here down to `sinkhorn.epsilon` — the coarse-to-fine schedule that
    /// keeps early rounds from committing to a bad correspondence (the
    /// role of cone-align's convex initialization).
    pub epsilon_start: f64,
}

impl Default for SubspaceAlignConfig {
    fn default() -> Self {
        SubspaceAlignConfig {
            anchors: 768,
            iterations: 8,
            sinkhorn: SinkhornOptions {
                epsilon: 0.05,
                max_iters: 150,
                tolerance: 1e-5,
            },
            epsilon_start: 0.3,
        }
    }
}

/// Result of subspace alignment.
#[derive(Clone, Debug)]
pub struct SubspaceAlignment {
    /// `Y₁ · Q` — graph A's embedding rotated into B's frame.
    pub ya: DenseMatrix,
    /// `Y₂` unchanged (the paper's Algorithm 1 line 6).
    pub yb: DenseMatrix,
    /// The learned orthogonal rotation `Q` (`d × d`).
    pub rotation: DenseMatrix,
    /// Anchor-set transport cost per round (diagnostic; non-increasing in
    /// well-conditioned instances).
    pub round_costs: Vec<f64>,
}

/// Indices of the `k` highest-degree vertices in **degree-rank order**
/// (descending degree, ties broken by id); all vertices when `k == 0` or
/// `k ≥ n`.
///
/// The rank ordering matters: because degree sequences are
/// isomorphism-invariant, pairing rank `i` of graph A with rank `i` of
/// graph B gives a serviceable initial correspondence for Eq. (2) — the
/// rotation is then refined by the Sinkhorn/Procrustes alternation.
pub fn top_degree_anchors(g: &CsrGraph, k: usize) -> Vec<usize> {
    let n = g.num_vertices();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by_key(|&u| (std::cmp::Reverse(g.degree(u as VertexId)), u));
    if k != 0 && k < n {
        idx.truncate(k);
    }
    idx
}

/// Rotation-invariant structural node features used to seed the
/// correspondence: log-degree, mean/max neighbor degree (log), 2-hop
/// neighborhood size (log), and local clustering coefficient — all
/// isomorphism-invariant, so corresponding vertices of `A` and `B = P(A)`
/// get identical feature rows. Columns are standardized per graph.
pub fn structural_features(g: &CsrGraph) -> DenseMatrix {
    let n = g.num_vertices();
    let mut f = DenseMatrix::zeros(n, 5);
    for u in 0..n {
        let nbrs = g.neighbors(u as VertexId);
        let deg = nbrs.len();
        let (mut sum_nd, mut max_nd) = (0usize, 0usize);
        let mut two_hop = std::collections::HashSet::new();
        let mut tri = 0usize;
        for (idx, &v) in nbrs.iter().enumerate() {
            let dv = g.degree(v);
            sum_nd += dv;
            max_nd = max_nd.max(dv);
            for &w in g.neighbors(v) {
                if w != u as VertexId {
                    two_hop.insert(w);
                }
            }
            for &w in &nbrs[idx + 1..] {
                if g.has_edge(v, w) {
                    tri += 1;
                }
            }
        }
        let row = f.row_mut(u);
        row[0] = (1.0 + deg as f64).ln();
        row[1] = if deg == 0 {
            0.0
        } else {
            (1.0 + sum_nd as f64 / deg as f64).ln()
        };
        row[2] = (1.0 + max_nd as f64).ln();
        row[3] = (1.0 + two_hop.len() as f64).ln();
        row[4] = if deg >= 2 {
            2.0 * tri as f64 / (deg * (deg - 1)) as f64
        } else {
            0.0
        };
    }
    // Standardize columns (per graph; the feature distributions of
    // isomorphic graphs coincide exactly).
    for j in 0..5 {
        let mean: f64 = (0..n).map(|i| f[(i, j)]).sum::<f64>() / n.max(1) as f64;
        let var: f64 = (0..n).map(|i| (f[(i, j)] - mean).powi(2)).sum::<f64>() / n.max(1) as f64;
        let std = var.sqrt().max(1e-12);
        for i in 0..n {
            f[(i, j)] = (f[(i, j)] - mean) / std;
        }
    }
    f
}

fn gather_rows(y: &DenseMatrix, rows: &[usize]) -> DenseMatrix {
    let d = y.cols();
    let mut out = DenseMatrix::zeros(rows.len(), d);
    for (i, &r) in rows.iter().enumerate() {
        out.row_mut(i).copy_from_slice(y.row(r));
    }
    out
}

/// Pairwise squared-Euclidean cost between the rows of `x` and `z`.
fn pairwise_cost(x: &DenseMatrix, z: &DenseMatrix) -> DenseMatrix {
    DenseMatrix::from_fn(x.rows(), z.rows(), |i, j| {
        let d = vecops::euclidean_distance(x.row(i), z.row(j));
        d * d
    })
}

/// Solves Eq. (2): finds the orthogonal `Q` aligning `y1`'s subspace to
/// `y2`'s, guided by anchor correspondences from graphs `ga`, `gb`.
///
/// # Panics
/// Panics if the embeddings disagree in dimension or don't match their
/// graphs' vertex counts.
pub fn align_subspaces(
    y1: &DenseMatrix,
    y2: &DenseMatrix,
    ga: &CsrGraph,
    gb: &CsrGraph,
    cfg: &SubspaceAlignConfig,
) -> SubspaceAlignment {
    assert_eq!(y1.cols(), y2.cols(), "embedding dimension mismatch");
    assert_eq!(y1.rows(), ga.num_vertices(), "Y₁ rows ≠ |V_A|");
    assert_eq!(y2.rows(), gb.num_vertices(), "Y₂ rows ≠ |V_B|");
    let d = y1.cols();

    let anchors_a = top_degree_anchors(ga, cfg.anchors);
    let anchors_b = top_degree_anchors(gb, cfg.anchors);
    let x0 = gather_rows(y1, &anchors_a); // unrotated anchor embedding of A
    let z = gather_rows(y2, &anchors_b);

    // Initial rotation from a structural-feature correspondence: vertex
    // features that are rotation-invariant and isomorphism-invariant
    // (degree statistics, 2-hop size, clustering) give a meaningful anchor
    // correspondence before any rotation is known. One Sinkhorn pass over
    // the feature cost seeds the Procrustes. Starting from Q = I instead
    // would have Sinkhorn matching unrotated frames — a near-random
    // correspondence the alternation rarely recovers from.
    let k = anchors_a.len().min(anchors_b.len());
    let mut q = if k >= d {
        let fa = gather_rows(&structural_features(ga), &anchors_a);
        let fb = gather_rows(&structural_features(gb), &anchors_b);
        let feat_cost = pairwise_cost(&fa, &fb);
        let init_opts = SinkhornOptions {
            epsilon: 0.5,
            max_iters: cfg.sinkhorn.max_iters,
            tolerance: cfg.sinkhorn.tolerance,
        };
        let tp = sinkhorn(&feat_cost, &init_opts);
        let mut target = tp.plan.matmul(&z);
        target.scale(anchors_a.len() as f64);
        orthogonal_procrustes(&x0, &target)
    } else {
        DenseMatrix::identity(d)
    };
    let mut round_costs = Vec::with_capacity(cfg.iterations);
    for round in 0..cfg.iterations {
        let x = x0.matmul(&q);
        let cost = pairwise_cost(&x, &z);
        // Geometric annealing of the entropic regularization.
        let eps = if cfg.iterations <= 1 {
            cfg.sinkhorn.epsilon
        } else {
            let t = round as f64 / (cfg.iterations - 1) as f64;
            cfg.epsilon_start.max(1e-12).powf(1.0 - t) * cfg.sinkhorn.epsilon.max(1e-12).powf(t)
        };
        let opts = SinkhornOptions {
            epsilon: eps,
            ..cfg.sinkhorn
        };
        let tp = sinkhorn(&cost, &opts);
        // Transport cost ⟨T, C⟩ as the round diagnostic.
        let tc: f64 = tp
            .plan
            .data()
            .iter()
            .zip(cost.data())
            .map(|(t, c)| t * c)
            .sum();
        round_costs.push(tc);
        // Barycentric projection: row i of target = Σ_j T(i,j)·z_j / row-mass.
        // With uniform marginals the row mass is 1/k, so scale by k.
        let mut target = tp.plan.matmul(&z);
        target.scale(anchors_a.len() as f64);
        q = orthogonal_procrustes(&x0, &target);
    }

    SubspaceAlignment {
        ya: y1.matmul(&q),
        yb: y2.clone(),
        rotation: q,
        round_costs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proximity::{fastrp_embedding, FastRpConfig};
    use cualign_graph::generators::barabasi_albert;
    use cualign_graph::Permutation;
    use cualign_linalg::qr::orthonormalize;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a planted instance: B = P(A); Y₂ = rows of (Y₁ Q₀) permuted
    /// by P. align_subspaces must recover a rotation close to Q₀.
    #[test]
    fn recovers_planted_rotation() {
        let mut rng = StdRng::seed_from_u64(1);
        let ga = barabasi_albert(150, 3, &mut rng);
        let p = Permutation::random(150, &mut rng);
        let gb = p.apply_to_graph(&ga);

        let y1 = fastrp_embedding(
            &ga,
            &FastRpConfig {
                dim: 16,
                ..Default::default()
            },
        );
        let q0 = orthonormalize(&DenseMatrix::gaussian(16, 16, &mut rng));
        let rotated = y1.matmul(&q0);
        let mut y2 = DenseMatrix::zeros(150, 16);
        for i in 0..150 {
            y2.row_mut(p.apply(i as u32) as usize)
                .copy_from_slice(rotated.row(i));
        }

        let cfg = SubspaceAlignConfig {
            anchors: 0,
            iterations: 8,
            ..Default::default()
        };
        let out = align_subspaces(&y1, &y2, &ga, &gb, &cfg);

        // After alignment, vertex i of A should be near its true image.
        let mut mean_sim = 0.0;
        for i in 0..150 {
            let j = p.apply(i as u32) as usize;
            mean_sim += vecops::cosine_similarity(out.ya.row(i), out.yb.row(j));
        }
        mean_sim /= 150.0;
        assert!(mean_sim > 0.9, "mean true-pair similarity {mean_sim}");
    }

    #[test]
    fn rotation_is_orthogonal() {
        let mut rng = StdRng::seed_from_u64(2);
        let ga = barabasi_albert(80, 3, &mut rng);
        let gb = barabasi_albert(80, 3, &mut rng);
        let y1 = fastrp_embedding(
            &ga,
            &FastRpConfig {
                dim: 8,
                ..Default::default()
            },
        );
        let y2 = fastrp_embedding(
            &gb,
            &FastRpConfig {
                dim: 8,
                seed: 99,
                ..Default::default()
            },
        );
        let out = align_subspaces(&y1, &y2, &ga, &gb, &SubspaceAlignConfig::default());
        assert!(out.rotation.is_orthonormal(1e-8));
    }

    #[test]
    fn anchor_selection_prefers_hubs() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = barabasi_albert(200, 2, &mut rng);
        let anchors = top_degree_anchors(&g, 20);
        assert_eq!(anchors.len(), 20);
        let min_anchor_deg = anchors.iter().map(|&u| g.degree(u as u32)).min().unwrap();
        // Every non-anchor has degree ≤ the smallest anchor degree.
        for u in 0..200usize {
            if !anchors.contains(&u) {
                assert!(g.degree(u as u32) <= min_anchor_deg);
            }
        }
    }

    #[test]
    fn zero_anchors_means_all_vertices() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2)]);
        // Degree-rank order: vertex 1 (deg 2), then 0 and 2 (deg 1), then
        // the isolated 3 and 4.
        assert_eq!(top_degree_anchors(&g, 0), vec![1, 0, 2, 3, 4]);
        assert_eq!(top_degree_anchors(&g, 10), vec![1, 0, 2, 3, 4]);
    }

    #[test]
    fn alignment_reduces_transport_cost() {
        let mut rng = StdRng::seed_from_u64(4);
        let ga = barabasi_albert(120, 3, &mut rng);
        let p = Permutation::random(120, &mut rng);
        let gb = p.apply_to_graph(&ga);
        let y1 = fastrp_embedding(
            &ga,
            &FastRpConfig {
                dim: 12,
                ..Default::default()
            },
        );
        let q0 = orthonormalize(&DenseMatrix::gaussian(12, 12, &mut rng));
        let rotated = y1.matmul(&q0);
        let mut y2 = DenseMatrix::zeros(120, 12);
        for i in 0..120 {
            y2.row_mut(p.apply(i as u32) as usize)
                .copy_from_slice(rotated.row(i));
        }
        let cfg = SubspaceAlignConfig {
            anchors: 0,
            iterations: 6,
            ..Default::default()
        };
        let out = align_subspaces(&y1, &y2, &ga, &gb, &cfg);
        let first = out.round_costs.first().copied().unwrap();
        let last = out.round_costs.last().copied().unwrap();
        assert!(last < first, "cost went {first} → {last}");
    }
}
