//! Property tests pinning the merge-balanced sparse kernels to their
//! serial references, *bit for bit*: merge chunks split only the work
//! distribution, never a row's floating-point chain — every output
//! value is the naive sequential left-to-right reduction.

use cualign_linalg::sparse::{
    exclusion_max, exclusion_max_apply, exclusion_max_apply_reference, exclusion_max_reference,
    map_values, mask_apply, mask_apply_reference, masked_spmv, masked_spmv_reference, reduce_rows,
    reduce_rows_reference, row_map_reduce, row_map_reduce_reference, row_scaled_map,
    row_scaled_map_reference, spmm,
    spmm_reference, spmv, spmv_reference, CsrPattern, MergePlan,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random CSR pattern: `rows` rows over `ncols` columns, up to
/// `max_deg` strictly-ascending column indices per row.
fn random_csr(rows: usize, ncols: usize, max_deg: usize, rng: &mut StdRng) -> (Vec<usize>, Vec<u32>) {
    let mut offsets = vec![0usize];
    let mut cols = Vec::new();
    for _ in 0..rows {
        let deg = if ncols == 0 { 0 } else { rng.gen_range(0..=max_deg) };
        let mut row: Vec<u32> = (0..deg).map(|_| rng.gen_range(0..ncols as u32)).collect();
        row.sort_unstable();
        row.dedup();
        cols.extend_from_slice(&row);
        offsets.push(cols.len());
    }
    (offsets, cols)
}

fn random_vals(n: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..n).map(|_| rng.gen::<f64>() * 4.0 - 2.0).collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Merge-balanced SpMV ≡ reference bitwise across random shapes and
    /// chunk sizes (including chunk_nnz = 1, maximal splitting).
    #[test]
    fn spmv_is_bitwise_reference(
        rows in 0usize..40,
        ncols in 1usize..30,
        max_deg in 0usize..12,
        chunk_nnz in 1usize..24,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (offsets, cols) = random_csr(rows, ncols, max_deg, &mut rng);
        let pattern = CsrPattern::new(&offsets, &cols);
        let vals = random_vals(cols.len(), &mut rng);
        let x = random_vals(ncols, &mut rng);
        let plan = MergePlan::with_chunk_nnz(&offsets, chunk_nnz);
        let mut fast = vec![0.0; rows];
        let mut slow = vec![0.0; rows];
        spmv(&pattern, &plan, &vals, &x, &mut fast);
        spmv_reference(&pattern, &vals, &x, &mut slow);
        prop_assert_eq!(bits(&fast), bits(&slow));
    }

    /// Merge-balanced SpMM ≡ reference bitwise, all dense widths.
    #[test]
    fn spmm_is_bitwise_reference(
        rows in 0usize..24,
        ncols in 1usize..16,
        max_deg in 0usize..8,
        k in 1usize..6,
        chunk_nnz in 1usize..16,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (offsets, cols) = random_csr(rows, ncols, max_deg, &mut rng);
        let pattern = CsrPattern::new(&offsets, &cols);
        let vals = random_vals(cols.len(), &mut rng);
        let x = random_vals(ncols * k, &mut rng);
        let plan = MergePlan::with_chunk_nnz(&offsets, chunk_nnz);
        let mut fast = vec![0.0; rows * k];
        let mut slow = vec![0.0; rows * k];
        spmm(&pattern, &plan, &vals, &x, k, &mut fast);
        spmm_reference(&pattern, &vals, &x, k, &mut slow);
        prop_assert_eq!(bits(&fast), bits(&slow));
    }

    /// Masked SpMV (two-pointer merge) ≡ reference (per-entry binary
    /// search) bitwise: same surviving entries, same chain.
    #[test]
    fn masked_spmv_is_bitwise_reference(
        rows in 0usize..32,
        ncols in 1usize..24,
        max_deg in 0usize..10,
        mask_deg in 0usize..10,
        chunk_nnz in 1usize..20,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (offsets, cols) = random_csr(rows, ncols, max_deg, &mut rng);
        let (moffsets, mcols) = random_csr(rows, ncols, mask_deg, &mut rng);
        let pattern = CsrPattern::new(&offsets, &cols);
        let mask = CsrPattern::new(&moffsets, &mcols);
        let vals = random_vals(cols.len(), &mut rng);
        let x = random_vals(ncols, &mut rng);
        let plan = MergePlan::with_chunk_nnz(&offsets, chunk_nnz);
        let mut fast = vec![0.0; rows];
        let mut slow = vec![0.0; rows];
        masked_spmv(&pattern, &mask, &plan, &vals, &x, &mut fast);
        masked_spmv_reference(&pattern, &mask, &vals, &x, &mut slow);
        prop_assert_eq!(bits(&fast), bits(&slow));
    }

    /// Structural-mask apply ≡ reference (pure selection, no FP).
    #[test]
    fn mask_apply_is_bitwise_reference(
        rows in 0usize..32,
        ncols in 1usize..24,
        max_deg in 0usize..10,
        mask_deg in 0usize..10,
        chunk_nnz in 1usize..20,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (offsets, cols) = random_csr(rows, ncols, max_deg, &mut rng);
        let (moffsets, mcols) = random_csr(rows, ncols, mask_deg, &mut rng);
        let pattern = CsrPattern::new(&offsets, &cols);
        let mask = CsrPattern::new(&moffsets, &mcols);
        let vals = random_vals(cols.len(), &mut rng);
        let plan = MergePlan::with_chunk_nnz(&offsets, chunk_nnz);
        let mut fast = vec![0.0; cols.len()];
        let mut slow = vec![0.0; cols.len()];
        mask_apply(&pattern, &mask, &plan, &vals, &mut fast);
        mask_apply_reference(&pattern, &mask, &vals, &mut slow);
        prop_assert_eq!(bits(&fast), bits(&slow));
    }

    /// Fused map + row-reduce (values and sums), straddle fixup
    /// included, ≡ reference bitwise; and the unfused pair
    /// (map_values + reduce_rows) reproduces the same bits.
    #[test]
    fn row_map_reduce_is_bitwise_reference(
        rows in 0usize..40,
        ncols in 1usize..24,
        max_deg in 0usize..12,
        chunk_nnz in 1usize..16,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (offsets, cols) = random_csr(rows, ncols, max_deg, &mut rng);
        let src = random_vals(cols.len(), &mut rng);
        let w = random_vals(rows, &mut rng);
        let map = |j: usize| (2.0 + src[j]).clamp(0.0, 2.0);
        let init = |r: usize| 0.7 * w[r];
        let plan = MergePlan::with_chunk_nnz(&offsets, chunk_nnz);
        let nnz = cols.len();
        let (mut vf, mut yf) = (vec![0.0; nnz], vec![0.0; rows]);
        let (mut vs, mut ys) = (vec![0.0; nnz], vec![0.0; rows]);
        row_map_reduce(&offsets, &plan, map, init, &mut vf, &mut yf);
        row_map_reduce_reference(&offsets, map, init, &mut vs, &mut ys);
        prop_assert_eq!(bits(&yf), bits(&ys));
        prop_assert_eq!(bits(&vf), bits(&vs));
        // Unfused pair: same bits through the two-pass route.
        let (mut vu, mut yu) = (vec![0.0; nnz], vec![0.0; rows]);
        map_values(&plan, map, &mut vu);
        reduce_rows(&offsets, &plan, &vu, init, &mut yu);
        prop_assert_eq!(bits(&yu), bits(&ys));
        prop_assert_eq!(bits(&vu), bits(&vs));
    }

    /// Standalone row reduction over materialized values ≡ reference
    /// bitwise (owners read whole rows; no fixup path).
    #[test]
    fn reduce_rows_is_bitwise_reference(
        rows in 0usize..40,
        ncols in 1usize..24,
        max_deg in 0usize..12,
        chunk_nnz in 1usize..16,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (offsets, cols) = random_csr(rows, ncols, max_deg, &mut rng);
        let vals = random_vals(cols.len(), &mut rng);
        let w = random_vals(rows, &mut rng);
        let init = |r: usize| w[r] - 0.5;
        let plan = MergePlan::with_chunk_nnz(&offsets, chunk_nnz);
        let mut fast = vec![0.0; rows];
        let mut slow = vec![0.0; rows];
        reduce_rows(&offsets, &plan, &vals, init, &mut fast);
        reduce_rows_reference(&offsets, &vals, init, &mut slow);
        prop_assert_eq!(bits(&fast), bits(&slow));
    }

    /// Row-scaled elementwise map ≡ reference bitwise (per-row scalar
    /// broadcast down rows that may straddle chunks).
    #[test]
    fn row_scaled_map_is_bitwise_reference(
        rows in 0usize..40,
        ncols in 1usize..24,
        max_deg in 0usize..12,
        chunk_nnz in 1usize..16,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (offsets, cols) = random_csr(rows, ncols, max_deg, &mut rng);
        let f = random_vals(cols.len(), &mut rng);
        let yzd = random_vals(rows, &mut rng);
        let scalar = |r: usize| yzd[r] * 1.5 - 0.25;
        let map = |v: f64, j: usize| v - f[j];
        let plan = MergePlan::with_chunk_nnz(&offsets, chunk_nnz);
        let mut fast = vec![0.0; cols.len()];
        let mut slow = vec![0.0; cols.len()];
        row_scaled_map(&offsets, &plan, scalar, map, &mut fast);
        row_scaled_map_reference(&offsets, scalar, map, &mut slow);
        prop_assert_eq!(bits(&fast), bits(&slow));
    }

    /// Grouped exclusion max ≡ reference bitwise (pure selection, same
    /// first-argmax / runner-up scan).
    #[test]
    fn exclusion_max_is_bitwise_reference(
        groups in 0usize..30,
        max_deg in 0usize..10,
        chunk_nnz in 1usize..16,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut offsets = vec![0usize];
        for _ in 0..groups {
            let deg = rng.gen_range(0..=max_deg);
            offsets.push(offsets.last().copied().unwrap() + deg);
        }
        let n = *offsets.last().unwrap();
        // ids: a permutation of 0..n (each value referenced once, as in
        // the side-CSR incidence arrays).
        let mut ids: Vec<u32> = (0..n as u32).collect();
        for i in (1..ids.len()).rev() {
            ids.swap(i, rng.gen_range(0..=i));
        }
        let values = random_vals(n, &mut rng);
        let plan = MergePlan::with_chunk_nnz(&offsets, chunk_nnz);
        let mut fast = vec![0.0; n];
        let mut slow = vec![0.0; n];
        exclusion_max(&offsets, &plan, &ids, &values, &mut fast);
        exclusion_max_reference(&offsets, &ids, &values, &mut slow);
        prop_assert_eq!(bits(&fast), bits(&slow));
    }

    /// Fused exclusion max + epilogue ≡ its reference bitwise, and both
    /// ≡ the unfused route (materialize with `exclusion_max`, then
    /// apply the same epilogue elementwise) — the fusion must change
    /// no bits, only the number of passes.
    #[test]
    fn exclusion_max_apply_is_bitwise_reference(
        groups in 0usize..30,
        max_deg in 0usize..10,
        chunk_nnz in 1usize..16,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut offsets = vec![0usize];
        for _ in 0..groups {
            let deg = rng.gen_range(0..=max_deg);
            offsets.push(offsets.last().copied().unwrap() + deg);
        }
        let n = *offsets.last().unwrap();
        let mut ids: Vec<u32> = (0..n as u32).collect();
        for i in (1..ids.len()).rev() {
            ids.swap(i, rng.gen_range(0..=i));
        }
        let values = random_vals(n, &mut rng);
        let d = random_vals(n, &mut rng);
        let prev = random_vals(n, &mut rng);
        let g = 0.93f64;
        // The BP tail shape: o1 = d − om, o2 = γ·o1 + (1−γ)·o2.
        let apply = |p: usize, om: f64, o1: &mut f64, o2: &mut f64| {
            *o1 = d[p] - om;
            *o2 = g * *o1 + (1.0 - g) * *o2;
        };
        let plan = MergePlan::with_chunk_nnz(&offsets, chunk_nnz);
        let (mut f1, mut f2) = (vec![0.0; n], prev.clone());
        let (mut s1, mut s2) = (vec![0.0; n], prev.clone());
        exclusion_max_apply(&offsets, &plan, &ids, &values, apply, &mut f1, &mut f2);
        exclusion_max_apply_reference(&offsets, &ids, &values, apply, &mut s1, &mut s2);
        prop_assert_eq!(bits(&f1), bits(&s1));
        prop_assert_eq!(bits(&f2), bits(&s2));
        // Unfused route: materialize om, then the same epilogue.
        let mut om = vec![0.0; n];
        exclusion_max(&offsets, &plan, &ids, &values, &mut om);
        let (mut u1, mut u2) = (vec![0.0; n], prev);
        for p in 0..n {
            apply(p, om[p], &mut u1[p], &mut u2[p]);
        }
        prop_assert_eq!(bits(&u1), bits(&s1));
        prop_assert_eq!(bits(&u2), bits(&s2));
    }
}

/// A single hot row holding almost all nonzeros — the skewed-degree
/// shape merge balancing exists for. The hot row spans every chunk;
/// its chain must still be the sequential one.
#[test]
fn skewed_single_hot_row_is_bitwise_reference() {
    let mut rng = StdRng::seed_from_u64(77);
    let hot = 10_000usize;
    let ncols = hot + 8;
    let mut offsets = vec![0usize, 1];
    let mut cols: Vec<u32> = vec![3];
    cols.extend(0..hot as u32); // the hot row, strictly ascending
    offsets.push(cols.len());
    for c in 0..6u32 {
        cols.push(c);
        offsets.push(cols.len());
    }
    let pattern = CsrPattern::new(&offsets, &cols);
    let vals = random_vals(cols.len(), &mut rng);
    let x = random_vals(ncols, &mut rng);
    let plan = MergePlan::with_chunk_nnz(&offsets, 256);
    assert!(plan.chunks().len() > 10, "hot row must span many chunks");
    assert!(
        plan.straddle_rows().contains(&1),
        "hot row must be recorded as a straddle row"
    );
    let rows = offsets.len() - 1;
    let mut fast = vec![0.0; rows];
    let mut slow = vec![0.0; rows];
    spmv(&pattern, &plan, &vals, &x, &mut fast);
    spmv_reference(&pattern, &vals, &x, &mut slow);
    assert_eq!(bits(&fast), bits(&slow));

    let map = |j: usize| vals[j] * 1.25;
    let init = |r: usize| r as f64 * 0.5;
    let (mut vf, mut yf) = (vec![0.0; cols.len()], vec![0.0; rows]);
    let (mut vs, mut ys) = (vec![0.0; cols.len()], vec![0.0; rows]);
    row_map_reduce(&offsets, &plan, map, init, &mut vf, &mut yf);
    row_map_reduce_reference(&offsets, map, init, &mut vs, &mut ys);
    assert_eq!(bits(&yf), bits(&ys));
    assert_eq!(bits(&vf), bits(&vs));
}

/// Mask with no nonzeros anywhere: every masked sum collapses to the
/// empty chain (`0.0`), bitwise equal to the reference.
#[test]
fn mask_all_zero_yields_zero_rows() {
    let mut rng = StdRng::seed_from_u64(5);
    let (offsets, cols) = random_csr(20, 16, 6, &mut rng);
    let moffsets = vec![0usize; 21];
    let mcols: Vec<u32> = Vec::new();
    let pattern = CsrPattern::new(&offsets, &cols);
    let mask = CsrPattern::new(&moffsets, &mcols);
    let vals = random_vals(cols.len(), &mut rng);
    let x = random_vals(16, &mut rng);
    let plan = MergePlan::with_chunk_nnz(&offsets, 4);
    let mut fast = vec![1.0; 20];
    let mut slow = vec![2.0; 20];
    masked_spmv(&pattern, &mask, &plan, &vals, &x, &mut fast);
    masked_spmv_reference(&pattern, &mask, &vals, &x, &mut slow);
    assert_eq!(bits(&fast), bits(&slow));
    assert!(fast.iter().all(|&v| v == 0.0));
    let mut applied = vec![1.0; cols.len()];
    mask_apply(&pattern, &mask, &plan, &vals, &mut applied);
    assert!(applied.iter().all(|&v| v == 0.0));
}

/// Empty matrices and all-empty-row patterns go through every kernel
/// without touching the (empty) outputs incorrectly.
#[test]
fn empty_and_all_empty_rows_are_handled() {
    for offsets in [vec![0usize], vec![0usize, 0, 0, 0]] {
        let cols: Vec<u32> = Vec::new();
        let pattern = CsrPattern::new(&offsets, &cols);
        let plan = MergePlan::with_chunk_nnz(&offsets, 3);
        let rows = offsets.len() - 1;
        let x = vec![1.0; 4];
        let mut fast = vec![9.0; rows];
        let mut slow = vec![9.0; rows];
        spmv(&pattern, &plan, &[], &x, &mut fast);
        spmv_reference(&pattern, &[], &x, &mut slow);
        assert_eq!(bits(&fast), bits(&slow));
        assert!(fast.iter().all(|&v| v == 0.0), "empty rows must sum to 0");
    }
}
