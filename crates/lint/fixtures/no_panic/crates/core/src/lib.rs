//! Fixture: `no-panic` violations in library code, with every flavor of
//! escape hatch the rule knows about.

/// Plain unwrap in library code — must fire.
pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

/// Expect in library code — must fire.
pub fn second(v: &[u32]) -> u32 {
    *v.get(1).expect("needs two elements")
}

/// Panic macro in library code — must fire.
pub fn boom() {
    panic!("library code must not panic");
}

/// Unreachable in library code — must fire.
pub fn pick(x: bool) -> u32 {
    match x {
        true => 1,
        false => unreachable!("not actually unreachable"),
    }
}

/// Reasoned allow on the preceding line — suppressed.
pub fn sanctioned(v: &[u32]) -> u32 {
    // lint: allow(no-panic): fixture demonstrates a reasoned allow
    *v.first().unwrap()
}

/// Reasonless allow — suppresses nothing, and is itself reported.
pub fn unsanctioned(v: &[u32]) -> u32 {
    // lint: allow(no-panic)
    *v.first().unwrap()
}

/// Allow naming an unknown rule — reported as directive hygiene.
pub fn mistyped(v: &[u32]) -> u32 {
    // lint: allow(no-panics): typo in the rule name
    v.iter().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    /// Unwrap inside a test — permitted.
    #[test]
    fn tests_may_unwrap() {
        let v = [1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
