//! # cualign-overlap
//!
//! Construction of the overlap ("squares") matrix **S** — Algorithm 3 of
//! the paper.
//!
//! Rows and columns of `S` are indexed by the edges of the bipartite graph
//! `L`. Entry `S[(i,i'),(j,j')] = 1` iff `(i,j) ∈ E_A` and `(i',j') ∈ E_B`:
//! the two candidate alignment edges close a "square" through one edge of
//! each input graph, i.e. matching both of them conserves an edge. The
//! number of such conserved edges is the quadratic term of the alignment
//! objective (Eq. 1).
//!
//! Structural properties the rest of the stack leans on:
//!
//! * `S` is **structurally symmetric** (input graphs are undirected), so a
//!   single CSR plus a transpose permutation `perm` (an involution mapping
//!   each nonzero to its mirror) supports both `S` and `Sᵀ` traversal —
//!   exactly the `perm[j]` indirection in the paper's fused kernel
//!   (Listing 1).
//! * The sparsity pattern is **fixed** for the whole BP run; only values
//!   attached to the nonzeros change. Belief propagation therefore stores
//!   its message matrices as flat value arrays parallel to `col_idx`.
//!
//! Construction is a parallel two-phase masked-SpGEMM-style pass
//! (count offsets, then fill): row `e = (u, v)` owes one nonzero to
//! every edge `(u', v')` of `L` with `u' ∈ N_A(u)` and `v' ∈ N_B(v)` —
//! "accumulate only where the mask (`L`'s pattern) has a nonzero".
//! Both phases use dense epoch-tagged marker tables over B-vertices
//! (the sparse-accumulator idiom of row-wise SpGEMM) instead of
//! per-pair sorted merges: the count phase tallies, once per shared
//! A-endpoint `u`, the multiset of candidate targets
//! `{v' : (u', v') ∈ E_L, u' ∈ N_A(u)}` into a multiplicity table, so
//! each row then counts its nonzeros with `deg_B(v)` probes; the fill
//! phase marks `N_B(v)` and scans the candidate rows in `(u', v')`
//! order. Because `L`'s edge ids ascend lexicographically by `(a, b)`,
//! that scan emits each row already sorted and duplicate-free, so the
//! fill writes its final CSR slices directly, balanced across workers
//! by `linalg::sparse` merge plans (one over `L`'s A-side CSR for the
//! count, one over the counted offsets for the fill). The original
//! per-row enumerate-sort-dedup construction is kept as
//! [`OverlapMatrix::build_reference`] — the pinned oracle
//! (`docs/oracle_manifest.txt`) that [`OverlapMatrix::build`] must
//! reproduce exactly (same offsets, columns, and permutation).
//!
//! **Place in the pipeline** (paper Fig. 2): stage 3, between
//! sparsification and belief propagation — `S` is rebuilt whenever `L`
//! changes (per density in a sweep, and per refinement band at each
//! multilevel level) and is the structure all BP messages live on.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use cualign_graph::{BipartiteGraph, CsrGraph, EdgeId, Side, VertexId};
use cualign_linalg::sparse::MergePlan;
use rayon::prelude::*;

/// Splits `data` into consecutive mutable parts covering each plan
/// chunk's owned-row flat span (row-aligned; spans tile `[0, nnz)`).
fn split_owned_spans<'v, T>(
    plan: &MergePlan,
    offsets: &[usize],
    mut data: &'v mut [T],
) -> Vec<&'v mut [T]> {
    plan.chunks()
        .iter()
        .map(|c| {
            let (head, tail) = std::mem::take(&mut data).split_at_mut(c.owned_span_len(offsets));
            data = tail;
            head
        })
        .collect()
}

/// The overlap matrix `S` in CSR form with a transpose permutation.
#[derive(Clone, Debug)]
pub struct OverlapMatrix {
    /// Row offsets (`num_rows + 1` entries).
    row_offsets: Vec<usize>,
    /// Column indices per row, ascending (edge ids of `L`).
    col_idx: Vec<EdgeId>,
    /// `perm[j]` = flat index of the mirrored nonzero: if nonzero `j` sits
    /// at `(e, e')`, then `col_idx[perm[j]] == e` within row `e'`.
    transpose_perm: Vec<u32>,
}

impl OverlapMatrix {
    /// Builds `S` from the two input graphs and the bipartite graph `L`
    /// (Algorithm 3) as a parallel two-phase masked SpGEMM-style pass:
    /// phase 1 counts each row's nonzeros through a per-A-endpoint
    /// multiplicity table, phase 2 marks `N_B(v)` and fills the final
    /// CSR slices directly (already sorted and duplicate-free — see the
    /// module docs), balanced by merge plans. Produces output identical
    /// to [`OverlapMatrix::build_reference`].
    pub fn build(a: &CsrGraph, b: &CsrGraph, l: &BipartiteGraph) -> Self {
        let t0 = std::time::Instant::now();
        let _span = cualign_telemetry::global().span("overlap.build");
        let m = l.num_edges();
        let edges = l.edges();
        // Marker tables are indexed by B-side vertex ids; `L`'s targets
        // and `B`'s adjacency draw from the same vertex universe.
        let marker_len = b.num_vertices().max(l.nb());

        // Phase 1 (count): all rows sharing an A-endpoint `u` draw
        // their candidate columns from the same multiset
        // {(u', v') ∈ E_L : u' ∈ N_A(u)}. Tally it once per `u` into an
        // epoch-tagged multiplicity table over B-vertices; row
        // e = (u, v) then counts its nonzeros with deg_B(v) probes:
        // Σ_{v' ∈ N_B(v)} mult[v']. The probe + tally touches are the
        // "candidate squares checked" telemetry unit. Work is split by
        // a merge plan over `L`'s A-side CSR, whose flat positions are
        // exactly the row ids (edge ids ascend lexicographically by
        // `(a, b)`).
        let a_offsets = l.offsets(Side::A);
        let a_eids = l.eids(Side::A);
        let plan_count = MergePlan::new(a_offsets);
        let mut row_counts = vec![0usize; m];
        let count_parts = split_owned_spans(&plan_count, a_offsets, &mut row_counts);
        let count_checks: u64 = plan_count
            .chunks()
            .par_iter()
            .zip(count_parts)
            .map(|(c, part)| {
                let mut tag = vec![0u32; marker_len];
                let mut mult = vec![0u32; marker_len];
                let mut checks = 0u64;
                let base = a_offsets[c.first_owned];
                for u in c.first_owned..c.first_owned + c.owned_rows {
                    let rows = l.targets_a(u as VertexId);
                    if rows.is_empty() {
                        continue;
                    }
                    let epoch = u as u32 + 1;
                    for &u2 in a.neighbors(u as VertexId) {
                        let targets = l.targets_a(u2);
                        for &v2 in targets {
                            if tag[v2 as usize] == epoch {
                                mult[v2 as usize] += 1;
                            } else {
                                tag[v2 as usize] = epoch;
                                mult[v2 as usize] = 1;
                            }
                        }
                        checks += targets.len() as u64;
                    }
                    for (p, &v) in (a_offsets[u]..).zip(rows) {
                        debug_assert_eq!(a_eids[p] as usize, p, "side-A positions are edge ids");
                        let nbrs = b.neighbors(v);
                        let mut cnt = 0usize;
                        for &v2 in nbrs {
                            if tag[v2 as usize] == epoch {
                                cnt += mult[v2 as usize] as usize;
                            }
                        }
                        checks += nbrs.len() as u64;
                        part[p - base] = cnt;
                    }
                }
                checks
            })
            .sum();

        let mut row_offsets = Vec::with_capacity(m + 1);
        let mut nnz = 0usize;
        row_offsets.push(nnz);
        for c in &row_counts {
            nnz += c;
            row_offsets.push(nnz);
        }

        // Phase 2 (fill): epoch-mark `N_B(v)` per row, then scan the
        // candidate rows in `(u', v')` order writing surviving edge ids
        // straight into each row's final slice (the scan order IS the
        // ascending edge-id order). Work is split by an equal-nnz merge
        // plan; each chunk fills the rows it owns.
        let plan = MergePlan::new(&row_offsets);
        let mut col_idx = vec![0 as EdgeId; nnz];
        let col_parts = split_owned_spans(&plan, &row_offsets, &mut col_idx);
        let fill_checks: u64 = plan
            .chunks()
            .par_iter()
            .zip(col_parts)
            .map(|(c, part)| {
                let mut mark = vec![0u32; marker_len];
                let mut checks = 0u64;
                let base = row_offsets[c.first_owned];
                for r in c.first_owned..c.first_owned + c.owned_rows {
                    let le = edges[r];
                    let epoch = r as u32 + 1;
                    let nbrs = b.neighbors(le.b);
                    for &v2 in nbrs {
                        mark[v2 as usize] = epoch;
                    }
                    let mut k = row_offsets[r] - base;
                    for &u2 in a.neighbors(le.a) {
                        let targets = l.targets_a(u2);
                        let eids = l.row_a(u2);
                        for (i, &v2) in targets.iter().enumerate() {
                            if mark[v2 as usize] == epoch {
                                part[k] = eids[i];
                                k += 1;
                            }
                        }
                        checks += targets.len() as u64;
                    }
                    checks += nbrs.len() as u64;
                    debug_assert_eq!(k, row_offsets[r + 1] - base, "fill/count mismatch");
                }
                checks
            })
            .sum();
        let squares_checked = count_checks + fill_checks;

        // Transpose permutation: nonzero j at (row, col) ↦ index of (col,
        // row). Symmetry of the pattern guarantees the mirror exists.
        let mut transpose_perm = vec![0u32; nnz];
        let perm_parts = split_owned_spans(&plan, &row_offsets, &mut transpose_perm);
        {
            let row_offsets = &row_offsets;
            let col_idx = &col_idx;
            plan.chunks()
                .par_iter()
                .zip(perm_parts)
                .for_each(|(c, part)| {
                    let base = row_offsets[c.first_owned];
                    for row in c.first_owned..c.first_owned + c.owned_rows {
                        for j in row_offsets[row]..row_offsets[row + 1] {
                            let col = col_idx[j] as usize;
                            let cs = row_offsets[col];
                            let ce = row_offsets[col + 1];
                            let pos = col_idx[cs..ce]
                                .binary_search(&(row as EdgeId))
                                // lint: allow(no-panic): the fill phase inserts (u',v') iff (v',u') is also inserted, so the pattern is structurally symmetric by construction
                                .expect("overlap matrix not structurally symmetric");
                            part[j - base] = (cs + pos) as u32;
                        }
                    }
                });
        }

        let reg = cualign_telemetry::global();
        reg.counter("overlap.builds").inc();
        reg.counter("overlap.squares_checked").add(squares_checked);
        reg.gauge("overlap.nnz").set(col_idx.len() as f64);
        reg.histogram("overlap.build_seconds")
            .record(t0.elapsed().as_secs_f64());
        OverlapMatrix {
            row_offsets,
            col_idx,
            transpose_perm,
        }
    }

    /// The original serial-shaped construction (per-row candidate
    /// enumeration through `edge_id` probes, then sort + dedup), kept
    /// verbatim as the pinned oracle for [`OverlapMatrix::build`]
    /// (`docs/oracle_manifest.txt`): both must produce identical
    /// offsets, column indices, and transpose permutations. Records no
    /// telemetry — it exists for equivalence tests and as the
    /// `bench_bp` baseline.
    pub fn build_reference(a: &CsrGraph, b: &CsrGraph, l: &BipartiteGraph) -> Self {
        let m = l.num_edges();
        // Row e = (u, v): for every neighbor u' of u and v' of v, the edge
        // (u', v') of L (if present) overlaps e.
        let rows: Vec<Vec<EdgeId>> = (0..m)
            .into_par_iter()
            .map(|e| {
                let le = l.edge(e as EdgeId);
                let mut cols = Vec::new();
                for &u2 in a.neighbors(le.a) {
                    for &v2 in b.neighbors(le.b) {
                        if let Some(e2) = l.edge_id(u2, v2) {
                            cols.push(e2);
                        }
                    }
                }
                cols.sort_unstable();
                cols.dedup();
                cols
            })
            .collect();

        let mut row_offsets = Vec::with_capacity(m + 1);
        let mut nnz = 0usize;
        row_offsets.push(nnz);
        for r in &rows {
            nnz += r.len();
            row_offsets.push(nnz);
        }
        let col_idx: Vec<EdgeId> = rows.into_iter().flatten().collect();

        // Transpose permutation: nonzero j at (row, col) ↦ index of (col,
        // row). Symmetry of the pattern guarantees the mirror exists.
        let transpose_perm: Vec<u32> = (0..m)
            .into_par_iter()
            .flat_map_iter(|row| {
                let start = row_offsets[row];
                let end = row_offsets[row + 1];
                let row_offsets = &row_offsets;
                let col_idx = &col_idx;
                (start..end).map(move |j| {
                    let col = col_idx[j] as usize;
                    let cs = row_offsets[col];
                    let ce = row_offsets[col + 1];
                    let pos = col_idx[cs..ce]
                        .binary_search(&(row as EdgeId))
                        // lint: allow(no-panic): the row construction above inserts (u',v') iff (v',u') is also inserted, so the pattern is structurally symmetric by construction
                        .expect("overlap matrix not structurally symmetric");
                    (cs + pos) as u32
                })
            })
            .collect();

        OverlapMatrix {
            row_offsets,
            col_idx,
            transpose_perm,
        }
    }

    /// Number of rows (= `|E_L|`).
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of structural nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Row offsets.
    #[inline]
    pub fn row_offsets(&self) -> &[usize] {
        &self.row_offsets
    }

    /// All column indices (flat CSR).
    #[inline]
    pub fn col_indices(&self) -> &[EdgeId] {
        &self.col_idx
    }

    /// Column indices of row `e` — the edges overlapping `e`.
    #[inline]
    pub fn row(&self, e: EdgeId) -> &[EdgeId] {
        &self.col_idx[self.row_offsets[e as usize]..self.row_offsets[e as usize + 1]]
    }

    /// Number of overlaps of edge `e` (row degree).
    #[inline]
    pub fn row_degree(&self, e: EdgeId) -> usize {
        self.row_offsets[e as usize + 1] - self.row_offsets[e as usize]
    }

    /// The transpose permutation (see struct docs).
    #[inline]
    pub fn transpose_perm(&self) -> &[u32] {
        &self.transpose_perm
    }

    /// Whether nonzero `(e, e')` exists, i.e. the two edges overlap.
    pub fn overlaps(&self, e: EdgeId, e2: EdgeId) -> bool {
        self.row(e).binary_search(&e2).is_ok()
    }

    /// Counts conserved (overlapped) edges under a matching, given a
    /// membership mask over `L`'s edge ids. Each overlapping pair counts
    /// once (the CSR stores both directions, hence the halving) — this is
    /// the `xᵀSx / 2` term of Eq. (1).
    pub fn count_matched_overlaps(&self, in_matching: &[bool]) -> usize {
        assert_eq!(in_matching.len(), self.num_rows(), "mask length mismatch");
        let twice: usize = (0..self.num_rows())
            .into_par_iter()
            .filter(|&e| in_matching[e])
            .map(|e| {
                self.row(e as EdgeId)
                    .iter()
                    .filter(|&&e2| in_matching[e2 as usize])
                    .count()
            })
            .sum();
        twice / 2
    }

    /// Validates structural symmetry and that `transpose_perm` is a
    /// consistent involution.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.num_rows();
        for e in 0..n {
            let (s, t) = (self.row_offsets[e], self.row_offsets[e + 1]);
            let row = &self.col_idx[s..t];
            if !row.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("row {e} not strictly sorted"));
            }
            for j in s..t {
                let e2 = self.col_idx[j];
                if !self.overlaps(e2, e as EdgeId) {
                    return Err(format!("asymmetric nonzero ({e}, {e2})"));
                }
                let p = self.transpose_perm[j] as usize;
                if self.col_idx[p] != e as EdgeId {
                    return Err(format!("perm[{j}] does not point at the mirror"));
                }
                if self.transpose_perm[p] as usize != j {
                    return Err(format!("perm not an involution at {j}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cualign_graph::generators::erdos_renyi_gnm;
    use cualign_graph::{Permutation, VertexId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Brute-force S for cross-checking.
    fn brute_overlaps(a: &CsrGraph, b: &CsrGraph, l: &BipartiteGraph) -> Vec<(EdgeId, EdgeId)> {
        let mut pairs = Vec::new();
        for e in 0..l.num_edges() as EdgeId {
            for e2 in 0..l.num_edges() as EdgeId {
                let le = l.edge(e);
                let le2 = l.edge(e2);
                if a.has_edge(le.a, le2.a) && b.has_edge(le.b, le2.b) {
                    pairs.push((e, e2));
                }
            }
        }
        pairs
    }

    fn small_instance() -> (CsrGraph, CsrGraph, BipartiteGraph) {
        // A: path 0-1-2; B: path 0-1-2. L: diagonal + one off-diagonal.
        let a = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let b = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let l = BipartiteGraph::from_weighted_edges(
            3,
            3,
            &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0), (0, 2, 0.5)],
        );
        (a, b, l)
    }

    #[test]
    fn matches_brute_force_small() {
        let (a, b, l) = small_instance();
        let s = OverlapMatrix::build(&a, &b, &l);
        s.check_invariants().unwrap();
        let brute = brute_overlaps(&a, &b, &l);
        assert_eq!(s.nnz(), brute.len());
        for (e, e2) in brute {
            assert!(s.overlaps(e, e2), "missing overlap ({e}, {e2})");
        }
    }

    #[test]
    fn matches_brute_force_random() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = erdos_renyi_gnm(12, 25, &mut rng);
        let b = erdos_renyi_gnm(12, 25, &mut rng);
        let triples: Vec<(VertexId, VertexId, f64)> = (0..60)
            .map(|_| (rng.gen_range(0..12), rng.gen_range(0..12), rng.gen::<f64>()))
            .collect();
        let l = BipartiteGraph::from_weighted_edges(12, 12, &triples);
        let s = OverlapMatrix::build(&a, &b, &l);
        s.check_invariants().unwrap();
        let brute = brute_overlaps(&a, &b, &l);
        assert_eq!(s.nnz(), brute.len());
    }

    #[test]
    fn identity_alignment_conserves_all_edges() {
        // B = A, L = identity diagonal: matching everything conserves every
        // edge of A.
        let mut rng = StdRng::seed_from_u64(9);
        let a = erdos_renyi_gnm(20, 50, &mut rng);
        let b = a.clone();
        let triples: Vec<(VertexId, VertexId, f64)> = (0..20).map(|i| (i, i, 1.0)).collect();
        let l = BipartiteGraph::from_weighted_edges(20, 20, &triples);
        let s = OverlapMatrix::build(&a, &b, &l);
        let mask = vec![true; l.num_edges()];
        assert_eq!(s.count_matched_overlaps(&mask), a.num_edges());
    }

    #[test]
    fn permuted_diagonal_conserves_all_edges() {
        // B = P(A); L pairs i with P(i): the ground-truth alignment
        // conserves all |E_A| edges.
        let mut rng = StdRng::seed_from_u64(10);
        let a = erdos_renyi_gnm(25, 60, &mut rng);
        let p = Permutation::random(25, &mut rng);
        let b = p.apply_to_graph(&a);
        let triples: Vec<(VertexId, VertexId, f64)> =
            (0..25).map(|i| (i, p.apply(i), 1.0)).collect();
        let l = BipartiteGraph::from_weighted_edges(25, 25, &triples);
        let s = OverlapMatrix::build(&a, &b, &l);
        let mask = vec![true; l.num_edges()];
        assert_eq!(s.count_matched_overlaps(&mask), a.num_edges());
    }

    #[test]
    fn no_overlap_without_structure() {
        // Edgeless inputs: S is all zero.
        let a = CsrGraph::empty(4);
        let b = CsrGraph::empty(4);
        let l = BipartiteGraph::from_weighted_edges(4, 4, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let s = OverlapMatrix::build(&a, &b, &l);
        assert_eq!(s.nnz(), 0);
        s.check_invariants().unwrap();
    }

    #[test]
    fn diagonal_has_no_self_overlap() {
        // An edge never overlaps itself (would need a self loop in A and B).
        let (a, b, l) = small_instance();
        let s = OverlapMatrix::build(&a, &b, &l);
        for e in 0..l.num_edges() as EdgeId {
            assert!(!s.overlaps(e, e), "self-overlap at {e}");
        }
    }

    #[test]
    fn empty_mask_counts_zero() {
        let (a, b, l) = small_instance();
        let s = OverlapMatrix::build(&a, &b, &l);
        let mask = vec![false; l.num_edges()];
        assert_eq!(s.count_matched_overlaps(&mask), 0);
    }
}
