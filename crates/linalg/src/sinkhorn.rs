//! Entropic optimal transport via Sinkhorn–Knopp scaling.
//!
//! The subspace-alignment stage (Eq. 2, per Chen et al.'s cone-align) needs
//! a soft correspondence between the two embeddings: a doubly-(sub)stochastic
//! plan `T` minimizing `⟨T, C⟩ − ε·H(T)` for a pairwise cost matrix `C`.
//! Sinkhorn alternates row/column scalings of the Gibbs kernel
//! `K = exp(−C/ε)`; all updates run in log-space for numerical safety at
//! small `ε`.
//!
//! Two implementations live here:
//!
//! * [`sinkhorn`] / [`sinkhorn_with`] — the **blocked** solver the pipeline
//!   runs. It precomputes the scaled kernel `−C/ε` once (one reciprocal
//!   multiply per element for the whole solve, instead of a division per
//!   element per sweep), keeps the dual potentials in `/ε` units so the
//!   inner loops are pure add/max/[`exp_fast`],
//!   skips the polynomial entirely for arguments below the
//!   [`EXP_UNDERFLOW`] cutoff (past
//!   convergence the annealed kernel has one surviving entry per row —
//!   the skip turns each exp-sum sweep into a compare sweep, and it is
//!   exact: those terms are hard zeros under `exp_fast`'s flush-to-zero
//!   contract), streams the **column** update in row-major
//!   [`COL_BLOCK`]-wide panels (the naive column walk strides by the row
//!   length and misses cache on every element once the matrix outgrows
//!   L2), reuses the row log-sum-exp between the convergence check and
//!   the next row update (two `n·m` reductions per sweep instead of
//!   three), and reuses every buffer across iterations — and, through a
//!   caller-supplied [`SinkhornWorkspace`], across solves. Annealed solve
//!   sequences can additionally warm-start each round from the previous
//!   round's rescaled potentials ([`sinkhorn_warm_with`]), replacing the
//!   slow cold-start transient at small `ε` with a handful of corrective
//!   sweeps. Row chunks and
//!   column panels are disjoint, so rayon parallelism never changes the
//!   reduction order: results are deterministic under any thread count.
//! * [`sinkhorn_reference`] — the seed implementation, kept verbatim as the
//!   exactness oracle. `embed/tests/prop_subspace.rs` pins the blocked
//!   solver against it on random cost matrices.
//!
//! The two differ only in floating-point association (scaled-domain
//! arithmetic and the polynomial `exp`), so plans agree to ~1e-12 — far
//! inside the entropic smoothing of any `ε` the pipeline uses.

use crate::fastexp::{exp_fast, EXP_UNDERFLOW};
use crate::DenseMatrix;
use rayon::prelude::*;

/// Column-panel width of the blocked column update: 256 lanes = 2 KiB of
/// kernel row per stream step, a full prefetch-friendly stride.
pub const COL_BLOCK: usize = 256;

/// Sinkhorn solver parameters.
#[derive(Clone, Copy, Debug)]
pub struct SinkhornOptions {
    /// Entropic regularization strength `ε` (> 0). Smaller values give
    /// sharper (more permutation-like) plans but need more iterations.
    pub epsilon: f64,
    /// Maximum scaling iterations.
    pub max_iters: usize,
    /// Convergence threshold on the L1 marginal violation.
    pub tolerance: f64,
}

impl Default for SinkhornOptions {
    fn default() -> Self {
        SinkhornOptions {
            epsilon: 0.05,
            max_iters: 500,
            tolerance: 1e-6,
        }
    }
}

/// An optimal transport plan between uniform marginals.
pub struct TransportPlan {
    /// The `n × m` plan; rows sum to `1/n`, columns to `1/m` at convergence.
    pub plan: DenseMatrix,
    /// Iterations actually used.
    pub iterations: usize,
    /// Final L1 marginal violation.
    pub marginal_error: f64,
}

/// Reusable buffers for [`sinkhorn_with`].
///
/// One Sinkhorn-annealed subspace alignment solves `iterations + 1`
/// transport problems of identical shape; routing them through one
/// workspace means the `n·m` scaled-kernel buffer and the potential/LSE
/// vectors are allocated once per alignment instead of once per solve.
#[derive(Debug, Default)]
pub struct SinkhornWorkspace {
    /// `−C/ε`, the log-domain Gibbs kernel (`n·m`).
    kernel: Vec<f64>,
    /// Row potentials in `/ε` units (`f/ε`).
    fs: Vec<f64>,
    /// Column potentials in `/ε` units (`g/ε`).
    gs: Vec<f64>,
    /// `log Σ_j exp(gs_j + kernel_ij)` per row, shared between the
    /// convergence check and the next row update.
    row_lse: Vec<f64>,
    /// `ε` of the last completed solve — the rescaling anchor for
    /// [`sinkhorn_warm_with`]; `0` means no usable potentials.
    last_eps: f64,
}

impl SinkhornWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        SinkhornWorkspace::default()
    }

    /// Drops the carried potentials: the next [`sinkhorn_warm_with`]
    /// cold-starts. Call between solve sequences whose cost matrices are
    /// unrelated (different scale or structure) — continuation only pays
    /// off when consecutive fixed points are close.
    pub fn forget_potentials(&mut self) {
        self.last_eps = 0.0;
    }
}

/// Lane width of the strip-structured reductions. Eight f64 lanes break
/// the serial `max`/`sum` dependency chains (and the 13-step Horner chain
/// of [`exp_fast`]) into independent streams the core can overlap, and
/// give the SLP vectorizer a fixed shape to pack.
const STRIP: usize = 8;

/// Pairwise (tree-shaped) fold of one strip of accumulators — three
/// dependent steps instead of seven.
#[inline(always)]
fn strip_max(a: &[f64; STRIP]) -> f64 {
    (a[0].max(a[1]).max(a[2].max(a[3]))).max(a[4].max(a[5]).max(a[6].max(a[7])))
}

#[inline(always)]
fn strip_sum(a: &[f64; STRIP]) -> f64 {
    ((a[0] + a[1]) + (a[2] + a[3])) + ((a[4] + a[5]) + (a[6] + a[7]))
}

/// Row pass: `row_lse[i] = log Σ_j exp(gs[j] + kernel[i·m + j])`.
/// Each row is a two-sweep (max, then exp-sum) reduction over contiguous
/// memory, run [`STRIP`] lanes at a time; rayon splits across rows only.
/// The exp-sum sweep skips any strip whose arguments all sit below the
/// [`EXP_UNDERFLOW`] cutoff — past convergence the annealed kernel is
/// dominated by one near-zero entry per row, so eight compares replace
/// eight polynomials almost everywhere. The skip is exact: skipped terms
/// are hard zeros under [`exp_fast`]'s flush-to-zero contract.
fn row_lse_pass(kernel: &[f64], gs: &[f64], row_lse: &mut [f64], m: usize) {
    let main = m - m % STRIP;
    row_lse.par_iter_mut().enumerate().for_each(|(i, out)| {
        let krow = &kernel[i * m..(i + 1) * m];
        let mut mx = [f64::NEG_INFINITY; STRIP];
        for (k8, g8) in krow[..main]
            .chunks_exact(STRIP)
            .zip(gs[..main].chunks_exact(STRIP))
        {
            for l in 0..STRIP {
                mx[l] = mx[l].max(g8[l] + k8[l]);
            }
        }
        let mut maxv = strip_max(&mx);
        for (&kv, &g) in krow[main..].iter().zip(&gs[main..]) {
            maxv = maxv.max(g + kv);
        }
        if maxv == f64::NEG_INFINITY {
            *out = f64::NEG_INFINITY;
            return;
        }
        let mut acc = [0.0f64; STRIP];
        for (k8, g8) in krow[..main]
            .chunks_exact(STRIP)
            .zip(gs[..main].chunks_exact(STRIP))
        {
            let mut a = [0.0f64; STRIP];
            for l in 0..STRIP {
                a[l] = g8[l] + k8[l] - maxv;
            }
            if strip_max(&a) > EXP_UNDERFLOW {
                for l in 0..STRIP {
                    acc[l] += exp_fast(a[l]);
                }
            }
        }
        let mut sum = strip_sum(&acc);
        for (&kv, &g) in krow[main..].iter().zip(&gs[main..]) {
            let a = g + kv - maxv;
            if a > EXP_UNDERFLOW {
                sum += exp_fast(a);
            }
        }
        *out = maxv + sum.ln();
    });
}

/// Column pass: `gs[j] = log ν − log Σ_i exp(fs[i] + kernel[i·m + j])`,
/// streamed row-major over [`COL_BLOCK`]-wide panels so every kernel
/// element arrives on a fully-used cache line. Per-column accumulation
/// still runs in strictly increasing `i` order: deterministic under any
/// rayon split.
fn col_pass(kernel: &[f64], fs: &[f64], gs: &mut [f64], log_nu: f64) {
    let n = fs.len();
    let m = gs.len();
    gs.par_chunks_mut(COL_BLOCK)
        .enumerate()
        .for_each(|(bi, gblock)| {
            let j0 = bi * COL_BLOCK;
            let w = gblock.len();
            let mut maxs = [f64::NEG_INFINITY; COL_BLOCK];
            for (i, &fi) in fs.iter().enumerate().take(n) {
                let krow = &kernel[i * m + j0..i * m + j0 + w];
                for (mx, &kv) in maxs[..w].iter_mut().zip(krow) {
                    *mx = mx.max(fi + kv);
                }
            }
            let mut sums = [0.0f64; COL_BLOCK];
            let wmain = w - w % STRIP;
            for (i, &fi) in fs.iter().enumerate().take(n) {
                let krow = &kernel[i * m + j0..i * m + j0 + w];
                // Same strip-level underflow skip as the row pass, eight
                // panel lanes at a time.
                for b in (0..wmain).step_by(STRIP) {
                    let mut a = [0.0f64; STRIP];
                    for l in 0..STRIP {
                        a[l] = fi + krow[b + l] - maxs[b + l];
                    }
                    if strip_max(&a) > EXP_UNDERFLOW {
                        for l in 0..STRIP {
                            sums[b + l] += exp_fast(a[l]);
                        }
                    }
                }
                for j in wmain..w {
                    let a = fi + krow[j] - maxs[j];
                    if a > EXP_UNDERFLOW {
                        sums[j] += exp_fast(a);
                    }
                }
            }
            for ((g, &mx), &s) in gblock.iter_mut().zip(&maxs[..w]).zip(&sums[..w]) {
                *g = if mx == f64::NEG_INFINITY {
                    f64::INFINITY
                } else {
                    log_nu - (mx + s.ln())
                };
            }
        });
}

/// Runs blocked log-domain Sinkhorn on cost matrix `cost` (`n × m`) with
/// uniform marginals `1/n`, `1/m`. Allocates a fresh workspace; callers
/// solving many same-shaped problems should hold a [`SinkhornWorkspace`]
/// and call [`sinkhorn_with`].
///
/// # Panics
/// Panics if the cost matrix is empty or `epsilon <= 0` (the pipeline
/// validates both at configuration time — see `AlignerConfig::builder`).
pub fn sinkhorn(cost: &DenseMatrix, opts: &SinkhornOptions) -> TransportPlan {
    sinkhorn_with(cost, opts, &mut SinkhornWorkspace::new())
}

/// As [`sinkhorn`], reusing the buffers in `ws` across calls.
///
/// # Panics
/// Panics if the cost matrix is empty or `epsilon <= 0`.
pub fn sinkhorn_with(
    cost: &DenseMatrix,
    opts: &SinkhornOptions,
    ws: &mut SinkhornWorkspace,
) -> TransportPlan {
    sinkhorn_impl(cost, opts, ws, false)
}

/// As [`sinkhorn_with`], but warm-started from the potentials of the
/// workspace's previous solve when one of matching column count exists:
/// the carried `g/ε_prev` potentials are rescaled by `ε_prev/ε` (the
/// standard ε-scaling continuation), so an annealed sequence of solves
/// over a slowly-moving cost matrix starts each round near its fixed
/// point instead of at zero. Converges to the same plan as a cold solve
/// (the entropic fixed point is unique; only the iteration trajectory
/// differs), typically in a handful of sweeps per round instead of the
/// full budget. Falls back to a cold start on the first solve or after a
/// shape change.
///
/// # Panics
/// Panics if the cost matrix is empty or `epsilon <= 0`.
pub fn sinkhorn_warm_with(
    cost: &DenseMatrix,
    opts: &SinkhornOptions,
    ws: &mut SinkhornWorkspace,
) -> TransportPlan {
    sinkhorn_impl(cost, opts, ws, true)
}

fn sinkhorn_impl(
    cost: &DenseMatrix,
    opts: &SinkhornOptions,
    ws: &mut SinkhornWorkspace,
    warm: bool,
) -> TransportPlan {
    let (n, m) = (cost.rows(), cost.cols());
    assert!(n > 0 && m > 0, "empty cost matrix");
    assert!(opts.epsilon > 0.0, "epsilon must be positive");
    let eps = opts.epsilon;
    let log_mu = -(n as f64).ln(); // log(1/n)
    let log_nu = -(m as f64).ln(); // log(1/m)

    // Scaled kernel −C/ε: ε is inverted once and applied as a multiply
    // (the per-element quotient differs from a true divide by ≤ 1 ulp,
    // far inside the oracle tolerance).
    let neg_inv_eps = -1.0 / eps;
    ws.kernel.clear();
    ws.kernel.resize(n * m, 0.0);
    ws.kernel
        .par_chunks_mut(m)
        .zip(cost.data().par_chunks(m))
        .for_each(|(krow, crow)| {
            for (k, &c) in krow.iter_mut().zip(crow) {
                *k = c * neg_inv_eps;
            }
        });
    ws.fs.clear();
    ws.fs.resize(n, 0.0);
    if warm && ws.last_eps > 0.0 && ws.gs.len() == m && ws.gs.iter().all(|g| g.is_finite()) {
        // gs holds g/ε_prev; the same g in the new solve's units is
        // gs · (ε_prev/ε).
        let scale = ws.last_eps / eps;
        for g in &mut ws.gs {
            *g *= scale;
        }
    } else {
        ws.gs.clear();
        ws.gs.resize(m, 0.0);
    }
    ws.row_lse.clear();
    ws.row_lse.resize(n, 0.0);

    // Row LSE for the initial gs = 0; thereafter it is refreshed at the
    // bottom of the loop and shared by the convergence check *and* the
    // next sweep's row update.
    row_lse_pass(&ws.kernel, &ws.gs, &mut ws.row_lse, m);
    let mu = log_mu.exp();
    let mut iterations = 0;
    let mut marginal_error = f64::INFINITY;
    for it in 0..opts.max_iters {
        iterations = it + 1;
        // fs_i ← log μ − row_lse_i  (the f-update, in /ε units).
        for (f, &r) in ws.fs.iter_mut().zip(&ws.row_lse) {
            *f = log_mu - r;
        }
        col_pass(&ws.kernel, &ws.fs, &mut ws.gs, log_nu);
        row_lse_pass(&ws.kernel, &ws.gs, &mut ws.row_lse, m);
        // Row marginal violation (columns are exact right after their
        // update). Summed sequentially so the convergence cutoff — and
        // thus the whole pipeline — is run-to-run stable.
        marginal_error = ws
            .row_lse
            .iter()
            .zip(&ws.fs)
            .map(|(&r, &f)| ((r + f).exp() - mu).abs())
            .sum();
        if marginal_error < opts.tolerance {
            break;
        }
    }
    ws.last_eps = eps;

    // Materialize the plan T(i,j) = exp(fs_i + gs_j + kernel_ij).
    let mut plan = DenseMatrix::zeros(n, m);
    plan.data_mut()
        .par_chunks_mut(m)
        .enumerate()
        .for_each(|(i, row)| {
            let krow = &ws.kernel[i * m..(i + 1) * m];
            let fi = ws.fs[i];
            // Underflow skip again: a converged plan is a near-
            // permutation, so almost every strip is left as the exact
            // zeros the buffer started with — which also keeps the
            // downstream Procrustes projection free of subnormal
            // operands.
            let main = m - m % STRIP;
            for b in (0..main).step_by(STRIP) {
                let mut a = [0.0f64; STRIP];
                for l in 0..STRIP {
                    a[l] = fi + ws.gs[b + l] + krow[b + l];
                }
                if strip_max(&a) > EXP_UNDERFLOW {
                    for l in 0..STRIP {
                        row[b + l] = exp_fast(a[l]);
                    }
                }
            }
            for j in main..m {
                let a = fi + ws.gs[j] + krow[j];
                if a > EXP_UNDERFLOW {
                    row[j] = exp_fast(a);
                }
            }
        });

    TransportPlan {
        plan,
        iterations,
        marginal_error,
    }
}

/// The seed log-domain Sinkhorn, kept verbatim as the exactness oracle
/// for the blocked solver (`embed/tests/prop_subspace.rs`) and as the
/// `bench_subspace` baseline. Same marginals, same convergence criterion.
///
/// # Panics
/// Panics if the cost matrix is empty or `epsilon <= 0`.
pub fn sinkhorn_reference(cost: &DenseMatrix, opts: &SinkhornOptions) -> TransportPlan {
    let (n, m) = (cost.rows(), cost.cols());
    assert!(n > 0 && m > 0, "empty cost matrix");
    assert!(opts.epsilon > 0.0, "epsilon must be positive");
    let eps = opts.epsilon;
    let log_mu = -(n as f64).ln(); // log(1/n)
    let log_nu = -(m as f64).ln(); // log(1/m)

    // Dual potentials f (rows) and g (cols), in units of cost.
    let mut f = vec![0.0; n];
    let mut g = vec![0.0; m];

    // logsumexp over a row of (-C(i,·) + f_i + g_·)/eps is what the updates
    // need; we fold f in afterwards, so define:
    //   row_lse(i) = log Σ_j exp((g_j − C(i,j)) / eps)
    let row_lse = |f_unused: &[f64], g: &[f64], i: usize| -> f64 {
        let _ = f_unused;
        let crow = cost.row(i);
        let mut maxv = f64::NEG_INFINITY;
        for j in 0..m {
            maxv = maxv.max((g[j] - crow[j]) / eps);
        }
        if maxv == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        let sum: f64 = (0..m).map(|j| ((g[j] - crow[j]) / eps - maxv).exp()).sum();
        maxv + sum.ln()
    };
    let col_lse = |f: &[f64], i_col: usize| -> f64 {
        let mut maxv = f64::NEG_INFINITY;
        for i in 0..n {
            maxv = maxv.max((f[i] - cost[(i, i_col)]) / eps);
        }
        if maxv == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        let sum: f64 = (0..n)
            .map(|i| ((f[i] - cost[(i, i_col)]) / eps - maxv).exp())
            .sum();
        maxv + sum.ln()
    };

    let mut iterations = 0;
    let mut marginal_error = f64::INFINITY;
    for it in 0..opts.max_iters {
        iterations = it + 1;
        // f_i ← ε (log μ_i − row_lse_i)
        let new_f: Vec<f64> = (0..n)
            .into_par_iter()
            .map(|i| eps * (log_mu - row_lse(&f, &g, i)))
            .collect();
        f = new_f;
        // g_j ← ε (log ν_j − col_lse_j)
        let new_g: Vec<f64> = (0..m)
            .into_par_iter()
            .map(|j| eps * (log_nu - col_lse(&f, j)))
            .collect();
        g = new_g;

        // Row marginal violation (columns are exact right after their
        // update). Collected then summed sequentially: a rayon f64 `sum()`
        // reduces in nondeterministic order, which would make the
        // convergence cutoff — and thus the whole pipeline — run-to-run
        // unstable.
        let errs: Vec<f64> = (0..n)
            .into_par_iter()
            .map(|i| {
                let lse = row_lse(&f, &g, i) + f[i] / eps;
                (lse.exp() - log_mu.exp()).abs()
            })
            .collect();
        marginal_error = errs.iter().sum();
        if marginal_error < opts.tolerance {
            break;
        }
    }

    // Materialize the plan T(i,j) = exp((f_i + g_j − C(i,j))/ε).
    let mut plan = DenseMatrix::zeros(n, m);
    plan.data_mut()
        .par_chunks_mut(m)
        .enumerate()
        .for_each(|(i, row)| {
            let crow = cost.row(i);
            for j in 0..m {
                row[j] = ((f[i] + g[j] - crow[j]) / eps).exp();
            }
        });

    TransportPlan {
        plan,
        iterations,
        marginal_error,
    }
}

impl TransportPlan {
    /// Hard correspondence: for each row, the column with maximum mass.
    ///
    /// Total-order fold with an explicit NaN policy: a NaN entry never
    /// beats the running best (`v > best` is false for NaN), so a
    /// NaN-poisoned plan degrades to column 0 instead of panicking
    /// mid-run the way `partial_cmp().expect()` used to.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.plan.rows())
            .map(|i| {
                let row = self.plan.row(i);
                let mut arg = 0usize;
                let mut best = f64::NEG_INFINITY;
                for (j, &v) in row.iter().enumerate() {
                    if v > best {
                        arg = j;
                        best = v;
                    }
                }
                arg
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_cost(n: usize) -> DenseMatrix {
        DenseMatrix::from_fn(n, n, |_, _| 1.0)
    }

    #[test]
    fn argmax_rows_survives_nan_poisoned_plan() {
        // Regression: the old partial_cmp().expect("plan entries finite")
        // panicked the moment one plan entry went NaN. The total-order
        // fold treats NaN as smaller than everything instead.
        let mut plan = DenseMatrix::from_fn(3, 3, |i, j| if i == j { 1.0 } else { 0.1 });
        plan[(0, 1)] = f64::NAN;
        plan[(2, 0)] = f64::NAN;
        let tp = TransportPlan {
            plan,
            iterations: 0,
            marginal_error: 0.0,
        };
        assert_eq!(tp.argmax_rows(), vec![0, 1, 2]);

        // Fully poisoned rows degrade to column 0 rather than panicking.
        let tp = TransportPlan {
            plan: DenseMatrix::from_fn(2, 2, |_, _| f64::NAN),
            iterations: 0,
            marginal_error: 0.0,
        };
        assert_eq!(tp.argmax_rows(), vec![0, 0]);
    }

    #[test]
    fn uniform_cost_gives_uniform_plan() {
        let c = uniform_cost(4);
        let tp = sinkhorn(&c, &SinkhornOptions::default());
        for i in 0..4 {
            for j in 0..4 {
                assert!((tp.plan[(i, j)] - 1.0 / 16.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn marginals_are_satisfied() {
        let c = DenseMatrix::from_fn(5, 7, |i, j| ((i * 3 + j * 5) % 11) as f64 / 11.0);
        let tp = sinkhorn(
            &c,
            &SinkhornOptions {
                epsilon: 0.1,
                max_iters: 2000,
                tolerance: 1e-10,
            },
        );
        for i in 0..5 {
            let rs: f64 = tp.plan.row(i).iter().sum();
            assert!((rs - 0.2).abs() < 1e-6, "row {i} sums to {rs}");
        }
        for j in 0..7 {
            let cs: f64 = (0..5).map(|i| tp.plan[(i, j)]).sum();
            assert!((cs - 1.0 / 7.0).abs() < 1e-6, "col {j} sums to {cs}");
        }
    }

    #[test]
    fn sharp_epsilon_recovers_permutation() {
        // Cost is a permuted identity-ish matrix: zero cost on the planted
        // permutation, high elsewhere.
        let perm = [2usize, 0, 3, 1];
        let c = DenseMatrix::from_fn(4, 4, |i, j| if perm[i] == j { 0.0 } else { 1.0 });
        let tp = sinkhorn(
            &c,
            &SinkhornOptions {
                epsilon: 0.02,
                max_iters: 3000,
                tolerance: 1e-9,
            },
        );
        assert_eq!(tp.argmax_rows(), perm.to_vec());
    }

    #[test]
    fn converges_and_reports_iterations() {
        let c = uniform_cost(3);
        let tp = sinkhorn(&c, &SinkhornOptions::default());
        assert!(tp.iterations <= 500);
        assert!(tp.marginal_error < 1e-5);
    }

    #[test]
    fn rectangular_plan_mass_is_one() {
        let c = DenseMatrix::from_fn(3, 8, |i, j| (i as f64 - j as f64).abs());
        let tp = sinkhorn(&c, &SinkhornOptions::default());
        let total: f64 = tp.plan.data().iter().sum();
        assert!((total - 1.0).abs() < 1e-5, "total mass {total}");
    }

    #[test]
    fn blocked_matches_reference_plan() {
        // The real equivalence suite lives in embed/tests/prop_subspace.rs;
        // this is the fast smoke version, on a shape that exercises both
        // the aligned and ragged column-panel paths.
        let c = DenseMatrix::from_fn(9, 300, |i, j| ((i * 7 + j * 3) % 13) as f64 / 13.0);
        let opts = SinkhornOptions {
            epsilon: 0.08,
            max_iters: 400,
            tolerance: 1e-9,
        };
        let fast = sinkhorn(&c, &opts);
        let oracle = sinkhorn_reference(&c, &opts);
        let worst = fast
            .plan
            .data()
            .iter()
            .zip(oracle.plan.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < 1e-10, "plans diverge by {worst:e}");
    }

    #[test]
    fn workspace_reuse_is_transparent() {
        let mut ws = SinkhornWorkspace::new();
        let opts = SinkhornOptions::default();
        // Different shapes through one workspace: buffers resize cleanly
        // and results match fresh-workspace solves.
        for (n, m) in [(4usize, 6usize), (8, 3), (4, 6)] {
            let c = DenseMatrix::from_fn(n, m, |i, j| ((i * 5 + j * 11) % 7) as f64);
            let reused = sinkhorn_with(&c, &opts, &mut ws);
            let fresh = sinkhorn(&c, &opts);
            assert_eq!(reused.plan.data(), fresh.plan.data());
            assert_eq!(reused.iterations, fresh.iterations);
        }
    }

    #[test]
    fn warm_start_reaches_the_cold_fixed_point_faster() {
        // An annealed ε sequence over a fixed cost matrix: each warm
        // solve must land on the same plan as a cold solve at that ε
        // (the fixed point is unique) while spending fewer sweeps on the
        // later, slower rounds.
        let c = DenseMatrix::from_fn(24, 24, |i, j| ((i * 7 + j * 3) % 13) as f64 / 13.0);
        let mut ws = SinkhornWorkspace::new();
        let mut warm_total = 0;
        let mut cold_total = 0;
        for k in 0..6 {
            let opts = SinkhornOptions {
                epsilon: 0.3 * 0.7f64.powi(k),
                max_iters: 4000,
                tolerance: 1e-9,
            };
            let warm = sinkhorn_warm_with(&c, &opts, &mut ws);
            let cold = sinkhorn(&c, &opts);
            let worst = warm
                .plan
                .data()
                .iter()
                .zip(cold.plan.data())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(worst < 1e-7, "plans diverge by {worst:e} at round {k}");
            warm_total += warm.iterations;
            cold_total += cold.iterations;
        }
        assert!(
            warm_total < cold_total,
            "warm starts took {warm_total} sweeps vs {cold_total} cold"
        );
    }

    #[test]
    fn warm_start_falls_back_cold_on_shape_change() {
        let mut ws = SinkhornWorkspace::new();
        let opts = SinkhornOptions::default();
        let a = DenseMatrix::from_fn(5, 6, |i, j| ((i + 2 * j) % 5) as f64);
        let _ = sinkhorn_warm_with(&a, &opts, &mut ws);
        // New column count: carried potentials are unusable; the solve
        // must silently cold-start and match a fresh workspace exactly.
        let b = DenseMatrix::from_fn(4, 9, |i, j| ((i * 3 + j) % 7) as f64);
        let warm = sinkhorn_warm_with(&b, &opts, &mut ws);
        let fresh = sinkhorn(&b, &opts);
        assert_eq!(warm.plan.data(), fresh.plan.data());
        assert_eq!(warm.iterations, fresh.iterations);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_nonpositive_epsilon() {
        let c = uniform_cost(2);
        let _ = sinkhorn(
            &c,
            &SinkhornOptions {
                epsilon: 0.0,
                max_iters: 10,
                tolerance: 1e-6,
            },
        );
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn reference_rejects_nonpositive_epsilon() {
        let c = uniform_cost(2);
        let _ = sinkhorn_reference(
            &c,
            &SinkhornOptions {
                epsilon: -1.0,
                max_iters: 10,
                tolerance: 1e-6,
            },
        );
    }
}
