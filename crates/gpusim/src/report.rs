//! Cross-device speedup reports — the shape of the paper's Table 2.

use crate::bp_gpu::model_bp_phase;
use crate::device::DeviceSpec;
use crate::exec::ExecConfig;
use crate::match_gpu::{model_matching_time, simulate_matching};
use cualign_bp::BpConfig;
use cualign_graph::BipartiteGraph;
use cualign_overlap::OverlapMatrix;

/// Modeled phase times on one device.
#[derive(Clone, Copy, Debug)]
pub struct PhaseTimes {
    /// Belief-propagation phase seconds.
    pub bp_s: f64,
    /// Matching phase seconds (one rounding per BP iteration, two matcher
    /// invocations each — Algorithm 2 lines 17–20).
    pub match_s: f64,
}

impl PhaseTimes {
    /// Total optimization-phase seconds.
    pub fn total_s(&self) -> f64 {
        self.bp_s + self.match_s
    }
}

/// A Table-2 row: CPU vs GPU times and the resulting speedups.
#[derive(Clone, Debug)]
pub struct SpeedupReport {
    /// CPU-model phase times.
    pub cpu: PhaseTimes,
    /// GPU-model phase times.
    pub gpu: PhaseTimes,
}

impl SpeedupReport {
    /// BP speedup (CPU / GPU).
    pub fn bp_speedup(&self) -> f64 {
        self.cpu.bp_s / self.gpu.bp_s
    }

    /// Matching speedup.
    pub fn match_speedup(&self) -> f64 {
        self.cpu.match_s / self.gpu.match_s
    }

    /// Total optimization-phase speedup.
    pub fn total_speedup(&self) -> f64 {
        self.cpu.total_s() / self.gpu.total_s()
    }
}

/// Builds the Table-2 comparison for one instance: models the BP phase and
/// the per-iteration matching phase on both device descriptions.
///
/// The matching behavior (rounds, recomputation volume) is measured once
/// from the reference parallel matcher on the *similarity* weights; the
/// per-iteration roundings during BP run over message weights with very
/// similar structure, so the same statistics are charged for each of the
/// `2 × max_iters` matcher invocations.
pub fn table2_row(
    l: &BipartiteGraph,
    s: &OverlapMatrix,
    cfg: &BpConfig,
    exec: &ExecConfig,
) -> SpeedupReport {
    let gpu_dev = DeviceSpec::a100();
    let cpu_dev = DeviceSpec::epyc7702p();
    // CPU baseline runs without SIMT-specific tricks; its exec config only
    // affects binning bookkeeping, which is a no-op at warp width 1.
    let cpu_exec = ExecConfig {
        binning: false,
        virtual_warps: false,
        streams: false,
    };

    let gpu_bp = model_bp_phase(l, s, cfg, &gpu_dev, exec);
    let cpu_bp = model_bp_phase(l, s, cfg, &cpu_dev, &cpu_exec);

    let (_, stats, gpu_match_once) = simulate_matching(l, &gpu_dev, exec);
    let cpu_match_once = model_matching_time(l, &stats, &cpu_dev, &cpu_exec);
    let invocations = (2 * cfg.max_iters) as f64;

    SpeedupReport {
        cpu: PhaseTimes {
            bp_s: cpu_bp.seconds,
            match_s: cpu_match_once.seconds * invocations,
        },
        gpu: PhaseTimes {
            bp_s: gpu_bp.seconds,
            match_s: gpu_match_once.seconds * invocations,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cualign_graph::generators::erdos_renyi_gnm;
    use cualign_graph::{Permutation, VertexId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn instance(n: usize, seed: u64) -> (BipartiteGraph, OverlapMatrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = erdos_renyi_gnm(n, n * 3, &mut rng);
        let p = Permutation::random(n, &mut rng);
        let b = p.apply_to_graph(&a);
        let mut triples = Vec::new();
        for i in 0..n as VertexId {
            triples.push((i, p.apply(i), 0.5));
            for _ in 0..9 {
                triples.push((i, rng.gen_range(0..n as VertexId), 0.5));
            }
        }
        let l = BipartiteGraph::from_weighted_edges(n, n, &triples);
        let s = OverlapMatrix::build(&a, &b, &l);
        (l, s)
    }

    #[test]
    fn table2_shape_bp_beats_match_speedup() {
        let (l, s) = instance(6000, 1);
        let row = table2_row(&l, &s, &BpConfig::default(), &ExecConfig::optimized());
        assert!(row.bp_speedup() > 1.0, "BP speedup {}", row.bp_speedup());
        assert!(
            row.match_speedup() > 1.0,
            "match speedup {}",
            row.match_speedup()
        );
        assert!(
            row.bp_speedup() > row.match_speedup(),
            "paper shape violated: BP {} ≤ match {}",
            row.bp_speedup(),
            row.match_speedup()
        );
        // Total lies between the two phase speedups.
        let t = row.total_speedup();
        assert!(t >= row.match_speedup().min(row.bp_speedup()) - 1e-9);
        assert!(t <= row.bp_speedup().max(row.match_speedup()) + 1e-9);
    }

    #[test]
    fn speedups_in_paper_regime() {
        let (l, s) = instance(8000, 2);
        let row = table2_row(&l, &s, &BpConfig::default(), &ExecConfig::optimized());
        assert!(
            row.bp_speedup() > 2.0 && row.bp_speedup() < 30.0,
            "BP speedup {} outside regime",
            row.bp_speedup()
        );
        assert!(
            row.match_speedup() < 10.0,
            "match speedup {} implausibly high",
            row.match_speedup()
        );
    }
}
