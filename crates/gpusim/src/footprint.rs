//! Per-work-item resource footprints.
//!
//! A kernel describes, for a work item of size `s` (neighbors, nonzeros…),
//! how many contiguous f64 loads, scattered (indirect) f64 loads,
//! contiguous f64 stores, and floating-point operations one item costs.
//! The executor scales these by the real item sizes of the run.

/// Resource consumption of one work item (all counts in f64 elements /
/// scalar flops).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Footprint {
    /// f64 loads from addresses contiguous across lanes (coalescible).
    pub contiguous_reads: usize,
    /// f64 loads through an indirection (one transaction per lane).
    pub scattered_reads: usize,
    /// f64 stores, contiguous across lanes.
    pub contiguous_writes: usize,
    /// f64 stores through an indirection.
    pub scattered_writes: usize,
    /// Floating-point operations.
    pub flops: usize,
}

impl Footprint {
    /// Element-wise sum.
    pub fn add(&self, other: &Footprint) -> Footprint {
        Footprint {
            contiguous_reads: self.contiguous_reads + other.contiguous_reads,
            scattered_reads: self.scattered_reads + other.scattered_reads,
            contiguous_writes: self.contiguous_writes + other.contiguous_writes,
            scattered_writes: self.scattered_writes + other.scattered_writes,
            flops: self.flops + other.flops,
        }
    }

    /// Scales all counts by `k` items.
    pub fn scaled(&self, k: usize) -> Footprint {
        Footprint {
            contiguous_reads: self.contiguous_reads * k,
            scattered_reads: self.scattered_reads * k,
            contiguous_writes: self.contiguous_writes * k,
            scattered_writes: self.scattered_writes * k,
            flops: self.flops * k,
        }
    }

    /// Total f64 elements touched.
    pub fn total_elements(&self) -> usize {
        self.contiguous_reads
            + self.scattered_reads
            + self.contiguous_writes
            + self.scattered_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_scale() {
        let a = Footprint {
            contiguous_reads: 1,
            scattered_reads: 2,
            contiguous_writes: 3,
            scattered_writes: 0,
            flops: 4,
        };
        let b = a.add(&a);
        assert_eq!(b.scattered_reads, 4);
        assert_eq!(a.scaled(3).flops, 12);
        assert_eq!(a.total_elements(), 6);
    }
}
