//! Alignment quality metrics.
//!
//! The paper scores with **NCV-GS³** (§6.1, after Meng et al.): the
//! geometric mean of *node coverage* (how much of both vertex sets the
//! alignment touches) and the *generalized symmetric substructure score*
//! (how well edges are conserved, symmetrically normalized). Alignments
//! above 0.8 are considered good in the literature the paper cites.
//! The classical EC / ICS / S³ metrics are computed alongside.

use cualign_graph::{CsrGraph, VertexId};
use std::collections::HashSet;

/// The standard alignment quality metrics for a (partial) vertex mapping.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AlignmentScores {
    /// Conserved edges: `(u,v) ∈ E_A` with both endpoints mapped and
    /// `(f(u), f(v)) ∈ E_B`.
    pub conserved_edges: usize,
    /// Edge correctness: conserved / `|E_A|`.
    pub ec: f64,
    /// Induced conserved structure: conserved / edges of `B` induced on
    /// the image of the mapping.
    pub ics: f64,
    /// Symmetric substructure score:
    /// conserved / (`|E_A(dom)|` + `|E_B(img)|` − conserved), where the
    /// domain/image restrictions keep the score honest for partial maps.
    pub s3: f64,
    /// Node coverage: `2·|mapping| / (|V_A| + |V_B|)`.
    pub ncv: f64,
    /// The paper's headline metric: `√(NCV · GS³)`.
    pub ncv_gs3: f64,
}

/// Scores a partial vertex mapping `mapping[u] = Some(f(u))` from `a`
/// into `b`.
///
/// # Panics
/// Panics if `mapping.len() != |V_A|` or an image is out of range.
pub fn score_alignment(
    a: &CsrGraph,
    b: &CsrGraph,
    mapping: &[Option<VertexId>],
) -> AlignmentScores {
    assert_eq!(mapping.len(), a.num_vertices(), "mapping length ≠ |V_A|");
    for m in mapping.iter().flatten() {
        assert!((*m as usize) < b.num_vertices(), "image {m} out of range");
    }

    let mapped: usize = mapping.iter().filter(|m| m.is_some()).count();
    // Conserved edges and the domain-restricted edge count of A.
    let mut conserved = 0usize;
    let mut dom_edges = 0usize;
    for (u, v) in a.edges() {
        if let (Some(fu), Some(fv)) = (mapping[u as usize], mapping[v as usize]) {
            dom_edges += 1;
            if b.has_edge(fu, fv) {
                conserved += 1;
            }
        }
    }
    // Edges of B induced on the image set.
    let image: HashSet<VertexId> = mapping.iter().flatten().copied().collect();
    let img_edges = b
        .edges()
        .filter(|&(x, y)| image.contains(&x) && image.contains(&y))
        .count();

    let ea = a.num_edges();
    let ec = if ea == 0 {
        0.0
    } else {
        conserved as f64 / ea as f64
    };
    let ics = if img_edges == 0 {
        0.0
    } else {
        conserved as f64 / img_edges as f64
    };
    let s3_den = dom_edges + img_edges - conserved;
    let s3 = if s3_den == 0 {
        0.0
    } else {
        conserved as f64 / s3_den as f64
    };
    let nv = a.num_vertices() + b.num_vertices();
    let ncv = if nv == 0 {
        0.0
    } else {
        2.0 * mapped as f64 / nv as f64
    };
    AlignmentScores {
        conserved_edges: conserved,
        ec,
        ics,
        s3,
        ncv,
        ncv_gs3: (ncv * s3).sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cualign_graph::generators::erdos_renyi_gnm;
    use cualign_graph::Permutation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_self_alignment_scores_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = erdos_renyi_gnm(50, 120, &mut rng);
        let id: Vec<Option<VertexId>> = (0..50).map(Some).collect();
        let s = score_alignment(&a, &a, &id);
        assert_eq!(s.conserved_edges, 120);
        assert!((s.ec - 1.0).abs() < 1e-12);
        assert!((s.ics - 1.0).abs() < 1e-12);
        assert!((s.s3 - 1.0).abs() < 1e-12);
        assert!((s.ncv - 1.0).abs() < 1e-12);
        assert!((s.ncv_gs3 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ground_truth_permutation_scores_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = erdos_renyi_gnm(40, 90, &mut rng);
        let p = Permutation::random(40, &mut rng);
        let b = p.apply_to_graph(&a);
        let mapping: Vec<Option<VertexId>> = (0..40).map(|i| Some(p.apply(i))).collect();
        let s = score_alignment(&a, &b, &mapping);
        assert!((s.ncv_gs3 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_mapping_scores_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = erdos_renyi_gnm(20, 40, &mut rng);
        let mapping = vec![None; 20];
        let s = score_alignment(&a, &a, &mapping);
        assert_eq!(s.conserved_edges, 0);
        assert_eq!(s.ncv, 0.0);
        assert_eq!(s.ncv_gs3, 0.0);
    }

    #[test]
    fn wrong_mapping_scores_low() {
        // Map a path onto itself shifted by one: few edges conserved.
        let a = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let shifted: Vec<Option<VertexId>> = (0..6).map(|i| Some((i + 3) % 6)).collect();
        let s = score_alignment(&a, &a, &shifted);
        assert!(s.ec < 1.0);
        assert!(s.ncv_gs3 < 1.0);
        // But NCV is full: every vertex is mapped.
        assert!((s.ncv - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_mapping_uses_restricted_denominators() {
        // Only two vertices mapped, the edge between them conserved: S3
        // restricted to the domain/image must be 1, NCV must be small.
        let a = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut mapping = vec![None; 4];
        mapping[0] = Some(0);
        mapping[1] = Some(1);
        let s = score_alignment(&a, &a, &mapping);
        assert_eq!(s.conserved_edges, 1);
        assert!((s.s3 - 1.0).abs() < 1e-12);
        assert!((s.ncv - 0.5).abs() < 1e-12);
        assert!((s.ncv_gs3 - 0.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_image() {
        let a = CsrGraph::empty(2);
        let b = CsrGraph::empty(2);
        let _ = score_alignment(&a, &b, &[Some(5), None]);
    }
}
