//! # cualign-sparsify
//!
//! Sparsification — stage 2 of the framework and the second half of the
//! paper's Algorithm 1. Instead of the complete (and noisy, and `O(n²)`)
//! bipartite graph between `V_A` and `V_B`, keep for every vertex only its
//! `k` most similar cross-graph partners under the aligned embeddings.
//! The result has `O(k·n)` edges, which in turn bounds the overlap matrix
//! and makes belief propagation tractable (§2: "one of the contributions
//! of this paper is to sparsify the complete graph such that the number of
//! edges remains O(n)").
//!
//! Edge weights are cosine similarities mapped to `(0, 1]` via
//! `w = (1 + cos) / 2`, keeping them strictly positive for the matching
//! stage, which only considers positive-weight edges.
//!
//! The paper's **density** knob (Figures 4–6) is the fraction of the
//! `n_A · n_B` complete graph retained; [`density_to_k`] converts it to a
//! per-vertex `k`, so `density = 1%` on a 10k-vertex instance keeps ~100
//! candidates per vertex.
//!
//! **Place in the pipeline** (paper Fig. 2): stage 2, between the
//! aligned embeddings of `cualign-embed` and the overlap matrix of
//! `cualign-overlap` — its output `L` is the bipartite candidate graph
//! every later stage works on. The multilevel wrapper builds its own
//! candidate graphs at refinement levels (projection bands in
//! `cualign::multilevel`), using this crate's kNN only at the coarsest
//! level.
//!
//! Two candidate-generation regimes live here (the repo's exactness
//! contract for both is `docs/APPROXIMATION.md`):
//!
//! * **Exact** — [`knn_candidates`], the tiled brute-force sweep,
//!   bit-identical to the seed [`knn_candidates_reference`]
//!   (`tests/prop_knn.rs`). `O(n² d)`: the scalability gate.
//! * **Approximate** — [`ann::ann_candidates`], banded multi-probe LSH
//!   ([`ann::AnnConfig`]) whose bucket collisions are rescored with the
//!   exact kernel's arithmetic, so shared pairs carry bit-identical
//!   weights; only *recall* is approximate, measured against the exact
//!   kernel as pinned oracle (`tests/prop_ann.rs`). Near-linear, which
//!   is what lets the multilevel pipeline crack million-vertex pairs.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod ann;
pub mod knn;
pub mod variants;

pub use ann::{ann_candidates, ann_recall, build_alignment_graph_ann, AnnConfig};
pub use knn::{knn_candidates, knn_candidates_reference, KnnDirection};
pub use variants::{build_with, Sparsifier};

use cualign_graph::BipartiteGraph;
use cualign_linalg::DenseMatrix;

/// Converts the paper's density percentage (fraction of the complete
/// bipartite graph, in `(0, 1]`) into the per-vertex neighbor count `k`.
///
/// `k = max(1, round(density · min(na, nb)))` — a per-side kNN union with
/// this `k` retains close to `density · na · nb` edges.
pub fn density_to_k(na: usize, nb: usize, density: f64) -> usize {
    assert!(density > 0.0 && density <= 1.0, "density must be in (0, 1]");
    let base = na.min(nb) as f64;
    ((density * base).round() as usize).max(1)
}

/// Builds the sparsified alignment graph `L` from aligned embeddings:
/// the union of each side's `k` nearest cross-graph neighbors by cosine
/// similarity, weighted `w = (1 + cos)/2`.
///
/// # Panics
/// Panics if the embeddings disagree in dimension or `k == 0`.
pub fn build_alignment_graph(ya: &DenseMatrix, yb: &DenseMatrix, k: usize) -> BipartiteGraph {
    assert!(k > 0, "k must be positive");
    assert_eq!(ya.cols(), yb.cols(), "embedding dimension mismatch");
    let mut triples = knn_candidates(ya, yb, k, KnnDirection::AtoB);
    triples.extend(knn_candidates(ya, yb, k, KnnDirection::BtoA));
    // Duplicate (a, b) pairs carry identical weights; the constructor
    // collapses them.
    BipartiteGraph::from_weighted_edges(ya.rows(), yb.rows(), &triples)
}

/// Builds `L` at a target density of the complete bipartite graph
/// (the paper's Figures 4–6 sweep knob).
pub fn build_alignment_graph_density(
    ya: &DenseMatrix,
    yb: &DenseMatrix,
    density: f64,
) -> BipartiteGraph {
    let k = density_to_k(ya.rows(), yb.rows(), density);
    build_alignment_graph(ya, yb, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Embeddings where row i of A and row i of B are (noisy) copies, so
    /// the true correspondence is the identity.
    fn planted_embeddings(n: usize, d: usize, noise: f64, seed: u64) -> (DenseMatrix, DenseMatrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ya = DenseMatrix::gaussian(n, d, &mut rng);
        let mut yb = ya.clone();
        for x in yb.data_mut() {
            *x += noise * (rng.gen::<f64>() - 0.5);
        }
        (ya, yb)
    }

    #[test]
    fn density_to_k_basics() {
        assert_eq!(density_to_k(1000, 1000, 0.01), 10);
        assert_eq!(density_to_k(1000, 1000, 0.025), 25);
        assert_eq!(density_to_k(100, 100, 0.001), 1); // floor at 1
        assert_eq!(density_to_k(4000, 4000, 0.01), 40);
    }

    #[test]
    #[should_panic(expected = "density")]
    fn density_rejects_out_of_range() {
        let _ = density_to_k(10, 10, 0.0);
    }

    #[test]
    fn planted_pairs_survive_sparsification() {
        let (ya, yb) = planted_embeddings(60, 16, 0.05, 1);
        let l = build_alignment_graph(&ya, &yb, 3);
        l.check_invariants().unwrap();
        // Every true pair (i, i) must be among the kNN edges.
        for i in 0..60 {
            assert!(
                l.edge_id(i, i).is_some(),
                "true pair ({i}, {i}) pruned by kNN"
            );
        }
    }

    #[test]
    fn edge_count_is_linear_in_n() {
        let (ya, yb) = planted_embeddings(100, 8, 0.3, 2);
        let k = 5;
        let l = build_alignment_graph(&ya, &yb, k);
        // Union of two k-NN sets: between k·n and 2k·n edges.
        assert!(l.num_edges() >= k * 100);
        assert!(l.num_edges() <= 2 * k * 100);
    }

    #[test]
    fn k_at_least_n_gives_complete_graph() {
        let (ya, yb) = planted_embeddings(15, 4, 0.3, 3);
        let l = build_alignment_graph(&ya, &yb, 50);
        assert_eq!(l.num_edges(), 15 * 15);
    }

    #[test]
    fn weights_are_positive_and_bounded() {
        let (ya, yb) = planted_embeddings(40, 8, 0.5, 4);
        let l = build_alignment_graph(&ya, &yb, 4);
        for &w in l.weights() {
            assert!(w > 0.0 && w <= 1.0, "weight {w} out of range");
        }
    }

    #[test]
    fn true_pair_weight_dominates_row() {
        // With tiny noise, the planted pair should be each vertex's
        // heaviest incident edge.
        let (ya, yb) = planted_embeddings(30, 16, 0.01, 5);
        let l = build_alignment_graph(&ya, &yb, 5);
        for a in 0..30u32 {
            let true_e = l.edge_id(a, a).expect("planted edge present");
            let true_w = l.weights()[true_e as usize];
            for (_, e) in l.incident_a(a) {
                assert!(l.weights()[e as usize] <= true_w + 1e-12);
            }
        }
    }

    #[test]
    fn density_builder_tracks_target() {
        let (ya, yb) = planted_embeddings(200, 8, 0.3, 6);
        let l = build_alignment_graph_density(&ya, &yb, 0.05);
        let density = l.num_edges() as f64 / (200.0 * 200.0);
        assert!(
            (0.04..=0.11).contains(&density),
            "realized density {density}"
        );
    }
}
