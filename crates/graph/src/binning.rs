//! Degree binning — the load-balancing strategy of §5.
//!
//! The paper groups work items (vertices, or rows of the overlap matrix `S`)
//! by their neighbor count into power-of-two bins, assigns a "virtual warp"
//! size to each bin, and launches one kernel per bin (overlapped with CUDA
//! streams). Because the sparsity structure is fixed for the whole run, the
//! binning is computed once and reused.
//!
//! The same structure serves two masters here: the GPU simulator uses it to
//! model warp assignment and lane idling, and the CPU engine uses it to
//! batch similar-size rows for better branch behavior.

use serde::{Deserialize, Serialize};

/// Virtual-warp sizes permitted by the paper ("divisor or multiple of the
/// 32-lane warp"): {8, 16, 32, 64, 128, 256, 512}.
pub const VIRTUAL_WARP_SIZES: [u32; 7] = [8, 16, 32, 64, 128, 256, 512];

/// Largest permitted virtual-warp size (the saturation point for oversized
/// work items).
pub const MAX_VIRTUAL_WARP: u32 = VIRTUAL_WARP_SIZES[VIRTUAL_WARP_SIZES.len() - 1];

/// One degree bin: work items whose size falls in `(lo, hi]`, processed with
/// `virtual_warp` lanes each.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Bin {
    /// Exclusive lower bound on item size.
    pub lo: usize,
    /// Inclusive upper bound on item size.
    pub hi: usize,
    /// Number of lanes assigned per item.
    pub virtual_warp: u32,
    /// Item indices in this bin, in increasing order.
    pub items: Vec<u32>,
}

/// A complete binning of `num_items` work items.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Binning {
    bins: Vec<Bin>,
    num_items: usize,
}

impl Binning {
    /// Bins items by `size(item)` into the paper's power-of-two buckets:
    /// `(0, 8], (8, 16], (16, 32], …, (256, 512], (512, ∞)`.
    ///
    /// Items of size 0 are placed in the smallest bin (they still need a
    /// lane to write their identity result). The per-bin virtual warp is the
    /// smallest permitted size ≥ the bin's upper bound, capped at 512.
    pub fn by_size<F>(num_items: usize, size: F) -> Self
    where
        F: Fn(usize) -> usize,
    {
        let mut bins: Vec<Bin> = VIRTUAL_WARP_SIZES
            .iter()
            .enumerate()
            .map(|(i, &vw)| Bin {
                lo: if i == 0 {
                    0
                } else {
                    VIRTUAL_WARP_SIZES[i - 1] as usize
                },
                hi: vw as usize,
                virtual_warp: vw,
                items: Vec::new(),
            })
            .collect();
        // Overflow bin: items larger than the largest virtual warp; lanes
        // loop over the item in strips of 512.
        bins.push(Bin {
            lo: MAX_VIRTUAL_WARP as usize,
            hi: usize::MAX,
            virtual_warp: MAX_VIRTUAL_WARP,
            items: Vec::new(),
        });

        for item in 0..num_items {
            let s = size(item);
            // The overflow bin's `hi` is usize::MAX, so the search cannot
            // miss; the fallback index is unreachable but keeps this total.
            let idx = bins
                .iter()
                .position(|b| s <= b.hi)
                .unwrap_or(bins.len() - 1);
            // Size-0 items land in bin 0 because 0 <= 8.
            bins[idx].items.push(item as u32);
        }
        bins.retain(|b| !b.items.is_empty());
        Binning { bins, num_items }
    }

    /// The non-empty bins, ordered by increasing item size.
    #[inline]
    pub fn bins(&self) -> &[Bin] {
        &self.bins
    }

    /// Total number of binned work items.
    #[inline]
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Checks that every item appears in exactly one bin.
    pub fn check_partition(&self) -> Result<(), String> {
        let mut seen = vec![false; self.num_items];
        for bin in &self.bins {
            for &i in &bin.items {
                let i = i as usize;
                if i >= self.num_items {
                    return Err(format!("item {i} out of range"));
                }
                if seen[i] {
                    return Err(format!("item {i} in two bins"));
                }
                seen[i] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|s| !s) {
            return Err(format!("item {missing} unbinned"));
        }
        Ok(())
    }
}

/// The smallest permitted virtual-warp size that covers `work_size` lanes,
/// saturating at 512. This is the paper's rule for choosing lanes-per-item.
pub fn virtual_warp_for(work_size: usize) -> u32 {
    for &vw in &VIRTUAL_WARP_SIZES {
        if work_size <= vw as usize {
            return vw;
        }
    }
    MAX_VIRTUAL_WARP
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_all_items() {
        let sizes = [0usize, 3, 9, 17, 33, 70, 300, 600, 5000];
        let b = Binning::by_size(sizes.len(), |i| sizes[i]);
        b.check_partition().unwrap();
    }

    #[test]
    fn bin_boundaries_follow_paper_buckets() {
        let sizes = [8usize, 9, 16, 17];
        let b = Binning::by_size(sizes.len(), |i| sizes[i]);
        // 8 → vw 8 bin; 9 and 16 → vw 16 bin; 17 → vw 32 bin.
        let find = |item: u32| {
            b.bins()
                .iter()
                .find(|bin| bin.items.contains(&item))
                .expect("binned")
                .virtual_warp
        };
        assert_eq!(find(0), 8);
        assert_eq!(find(1), 16);
        assert_eq!(find(2), 16);
        assert_eq!(find(3), 32);
    }

    #[test]
    fn oversized_items_go_to_overflow_bin() {
        let b = Binning::by_size(2, |i| if i == 0 { 4 } else { 100_000 });
        b.check_partition().unwrap();
        let big = b
            .bins()
            .iter()
            .find(|bin| bin.items.contains(&1))
            .expect("binned");
        assert_eq!(big.virtual_warp, 512);
        assert_eq!(big.hi, usize::MAX);
    }

    #[test]
    fn virtual_warp_selection() {
        assert_eq!(virtual_warp_for(1), 8);
        assert_eq!(virtual_warp_for(8), 8);
        assert_eq!(virtual_warp_for(9), 16);
        assert_eq!(virtual_warp_for(32), 32);
        assert_eq!(virtual_warp_for(512), 512);
        assert_eq!(virtual_warp_for(10_000), 512);
    }

    #[test]
    fn empty_input() {
        let b = Binning::by_size(0, |_| 0);
        assert!(b.bins().is_empty());
        b.check_partition().unwrap();
    }

    #[test]
    fn uniform_sizes_single_bin() {
        let b = Binning::by_size(100, |_| 20);
        assert_eq!(b.bins().len(), 1);
        assert_eq!(b.bins()[0].virtual_warp, 32);
        assert_eq!(b.bins()[0].items.len(), 100);
    }
}
