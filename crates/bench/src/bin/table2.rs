//! Regenerates **Table 2**: per-input BP and matching phase times under
//! the CPU (EPYC 7702P) and GPU (A100) device models, with the resulting
//! speedups — plus this host's measured wall-clock for the CPU phase as a
//! sanity column.
//!
//! The paper's shape: BP gains 5–19×, matching 2.3–2.9×, totals 4.4–14.6×,
//! with the biological (larger, denser-L) inputs gaining the most and
//! Synthetic_4000 the least.
//!
//! ```text
//! cargo run --release -p cualign-bench --bin table2
//! ```

use cualign::PaperInput;
use cualign_bench::{prepare_instance, HarnessConfig};
use cualign_bp::{BpConfig, BpEngine};
use cualign_gpusim::report::table2_row;
use cualign_gpusim::ExecConfig;
use std::time::Instant;

fn main() {
    let telemetry = cualign_bench::telemetry_sink();
    let h = HarnessConfig::from_env();
    let density = 0.025;
    println!(
        "Table 2: modeled phase times and speedups (scale = {}, density = {}%, bp_iters = {}, seed = {})\n",
        h.scale,
        density * 100.0,
        h.bp_iters,
        h.seed
    );
    println!(
        "{:<16} {:>10} {:>10} {:>8} | {:>10} {:>10} {:>8} | {:>8} | {:>10}",
        "Problem",
        "BP-CPU(s)",
        "BP-GPU(s)",
        "speedup",
        "Mat-CPU(s)",
        "Mat-GPU(s)",
        "speedup",
        "total",
        "host-BP(s)"
    );
    println!("{}", "-".repeat(110));
    for input in PaperInput::all() {
        let p = prepare_instance(&h, input, density);
        let cfg = BpConfig {
            max_iters: h.bp_iters,
            ..Default::default()
        };
        let row = table2_row(&p.l, &p.s, &cfg, &ExecConfig::optimized());

        // Measured wall-clock of the reference BP phase on this host
        // (message updates only — matching is timed by the model).
        let t = Instant::now();
        let mut engine = BpEngine::new(&p.l, &p.s, &cfg);
        for _ in 0..cfg.max_iters {
            engine.iterate();
        }
        let host_bp = t.elapsed().as_secs_f64();

        println!(
            "{:<16} {:>10.4} {:>10.4} {:>7.2}x | {:>10.4} {:>10.4} {:>7.2}x | {:>7.2}x | {:>10.3}",
            input.name(),
            row.cpu.bp_s,
            row.gpu.bp_s,
            row.bp_speedup(),
            row.cpu.match_s,
            row.gpu.match_s,
            row.match_speedup(),
            row.total_speedup(),
            host_bp
        );
    }
    println!("\nExpected shape (paper): BP speedup ≫ matching speedup; totals in between;");
    println!("the small Synthetic_4000 gains least (launch overheads amortize poorly).");
    cualign_bench::emit_telemetry(&telemetry);
}
