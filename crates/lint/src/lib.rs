//! `cualign-lint` — zero-dependency static analysis for the cuAlign
//! workspace.
//!
//! The workspace's performance story rests on conventions nothing in
//! the compiler enforces: fast kernels keep pinned reference oracles,
//! telemetry names match the DESIGN.md §5 map, library crates never
//! panic on caller-reachable paths, and the `unsafe` count stays zero.
//! This crate is the machine checker for those contracts. Like
//! `crates/telemetry`, it is std-only and offline-compatible: a
//! hand-rolled Rust lexer ([`lexer`]) feeds a token-pattern rule engine
//! ([`rules`]), exposed as the `cualign-lint` binary that walks the
//! workspace and emits `file:line: [rule] message` diagnostics with a
//! non-zero exit on violations.
//!
//! ## Rules
//!
//! | Rule | Contract |
//! |------|----------|
//! | `no-panic` | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in library code of the algorithmic crates |
//! | `float-ordering` | no `partial_cmp` chained into `unwrap`/`expect` or fed to sort/max/min comparators (NaN hazard) |
//! | `oracle-pinning` | `docs/oracle_manifest.txt` rows (kernel, oracle, property test) exist and the test references both symbols |
//! | `telemetry-names` | registered instrument/span names and `docs/telemetry_names.txt` agree bidirectionally |
//! | `unsafe-hygiene` | `unsafe` and `static mut` are forbidden workspace-wide |
//! | `doc-links` | relative markdown links in README/DESIGN/EXPERIMENTS/`docs/*.md` resolve to real files |
//!
//! ## Escape hatch
//!
//! A violation that encodes a real, stated invariant can be annotated
//! on the preceding line (or as a trailing comment):
//!
//! ```text
//! // lint: allow(no-panic): pool is seeded with >= 1 endpoint above
//! ```
//!
//! The reason is mandatory: a reasonless `allow` suppresses nothing and
//! is itself reported (rule `lint-allow`).

#![deny(unsafe_code)]

pub mod lexer;
pub mod rules;
pub mod source;
pub mod walk;

use std::fmt;
use std::path::Path;

/// Every rule name, in diagnostic-output order.
pub const ALL_RULES: &[&str] = &[
    rules::no_panic::RULE,
    rules::float_ordering::RULE,
    rules::oracle_pinning::RULE,
    rules::telemetry_names::RULE,
    rules::unsafe_hygiene::RULE,
    rules::doc_links::RULE,
];

/// One finding: a file, a line (0 = whole file / manifest), the rule
/// that fired, and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-root-relative path, `/`-separated.
    pub file: String,
    /// 1-indexed line; 0 for file-level findings.
    pub line: usize,
    /// Rule name.
    pub rule: &'static str,
    /// What went wrong and how to fix it.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Runs `rules` (names from [`ALL_RULES`]) over the workspace at
/// `root`. Returns diagnostics sorted by `(file, line, rule)`.
/// Directive hygiene (reasonless or unknown-rule `lint: allow`s, rule
/// `lint-allow`) is always checked.
pub fn run(root: &Path, enabled: &[&str]) -> Result<Vec<Diagnostic>, String> {
    for r in enabled {
        if !ALL_RULES.contains(r) {
            return Err(format!(
                "unknown rule `{r}` (known: {})",
                ALL_RULES.join(", ")
            ));
        }
    }
    let files = walk::load_workspace(root)?;
    let on = |r: &str| enabled.contains(&r);
    let mut diags = Vec::new();

    for f in &files {
        if on(rules::no_panic::RULE) {
            diags.extend(rules::no_panic::check(f));
        }
        if on(rules::float_ordering::RULE) {
            diags.extend(rules::float_ordering::check(f));
        }
        if on(rules::unsafe_hygiene::RULE) {
            diags.extend(rules::unsafe_hygiene::check(f));
        }
        for a in &f.allows {
            if a.reason.is_empty() {
                diags.push(Diagnostic {
                    file: f.rel.clone(),
                    line: a.line,
                    rule: "lint-allow",
                    message: format!(
                        "allow({}) without a reason; write `// lint: allow({}): <why>`",
                        a.rule, a.rule
                    ),
                });
            } else if !ALL_RULES.contains(&a.rule.as_str()) {
                diags.push(Diagnostic {
                    file: f.rel.clone(),
                    line: a.line,
                    rule: "lint-allow",
                    message: format!("allow({}) names an unknown rule", a.rule),
                });
            }
        }
    }
    if on(rules::telemetry_names::RULE) {
        diags.extend(rules::telemetry_names::check(&files, root));
    }
    if on(rules::oracle_pinning::RULE) {
        diags.extend(rules::oracle_pinning::check(&files, root));
    }
    if on(rules::doc_links::RULE) {
        diags.extend(rules::doc_links::check(root));
    }

    diags.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
    diags.dedup();
    Ok(diags)
}

/// The sorted, deduplicated set of normalized telemetry names the
/// workspace registers — the generator for `docs/telemetry_names.txt`
/// (`cualign-lint --dump-telemetry`).
pub fn dump_telemetry(root: &Path) -> Result<Vec<String>, String> {
    let files = walk::load_workspace(root)?;
    let mut sink = Vec::new();
    let mut names: Vec<String> = files
        .iter()
        .flat_map(|f| rules::telemetry_names::extract(f, &mut sink))
        .map(|(name, _)| name)
        .collect();
    names.sort();
    names.dedup();
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_rule_is_rejected() {
        let err = run(Path::new("."), &["no-such-rule"]).unwrap_err();
        assert!(err.contains("unknown rule"));
    }
}
