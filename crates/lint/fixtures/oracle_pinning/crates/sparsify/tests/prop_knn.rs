//! Fixture property test that mentions the oracle but never the kernel
//! itself — the manifest row for `sparsify::knn_candidates` must fail.

#[test]
fn oracle_only() {
    let _ = knn_candidates_reference();
}

fn knn_candidates_reference() -> u32 {
    0
}
