//! Embedding-vector kernels: dot products, norms, cosine similarity, row
//! normalization. These are the innermost loops of the kNN sparsification
//! stage, so they are written to auto-vectorize (plain indexed loops over
//! contiguous slices).

use crate::DenseMatrix;
use rayon::prelude::*;

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics on length mismatch.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let mut acc = 0.0;
    for i in 0..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Cosine similarity of *unit-norm* vectors: the dot product clamped to
/// `[-1, 1]`, skipping the two norm computations (and the division) that
/// [`cosine_similarity`] spends on every call. The kNN sweep and the
/// multilevel band refinement use this after [`normalize_rows`]; callers
/// with non-normalized inputs must keep using [`cosine_similarity`].
#[inline]
pub fn dot_unit(a: &[f64], b: &[f64]) -> f64 {
    dot(a, b).clamp(-1.0, 1.0)
}

/// Cosine similarity in `[-1, 1]`; 0 if either vector is zero.
#[inline]
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Euclidean distance.
#[inline]
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance: length mismatch");
    let mut acc = 0.0;
    for i in 0..a.len() {
        let d = a[i] - b[i];
        acc += d * d;
    }
    acc.sqrt()
}

/// Normalizes every row of `m` to unit Euclidean norm in place (zero rows
/// stay zero). After this, cosine similarity between rows is a plain dot
/// product — the kNN kernel relies on it.
pub fn normalize_rows(m: &mut DenseMatrix) {
    let cols = m.cols();
    m.data_mut().par_chunks_mut(cols).for_each(|row| {
        let n = norm(row);
        if n > 0.0 {
            for x in row {
                *x /= n;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_bounds_and_cases() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn cosine_scale_invariant() {
        let a = [0.3, -0.7, 2.0];
        let b = [1.1, 0.4, -0.2];
        let scaled: Vec<f64> = a.iter().map(|x| x * 17.0).collect();
        assert!((cosine_similarity(&a, &b) - cosine_similarity(&scaled, &b)).abs() < 1e-12);
    }

    #[test]
    fn dot_unit_equals_cosine_on_unit_rows() {
        // Exactly-unit vectors: equivalence is bitwise.
        let a = [1.0, 0.0, 0.0];
        let b = [0.0, 1.0, 0.0];
        assert_eq!(dot_unit(&a, &a), cosine_similarity(&a, &a));
        assert_eq!(dot_unit(&a, &b), cosine_similarity(&a, &b));
        // Normalized random rows: norms are 1 ± ulps, so the two paths
        // agree to floating-point roundoff.
        let mut m = DenseMatrix::from_vec(2, 3, vec![0.3, -0.7, 2.0, 1.1, 0.4, -0.2]);
        normalize_rows(&mut m);
        let fast = dot_unit(m.row(0), m.row(1));
        let general = cosine_similarity(m.row(0), m.row(1));
        assert!((fast - general).abs() < 1e-14, "{fast} vs {general}");
        assert!((-1.0..=1.0).contains(&fast));
    }

    #[test]
    fn euclidean_known() {
        assert!((euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(euclidean_distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn normalize_rows_makes_unit() {
        let mut m = DenseMatrix::from_vec(2, 2, vec![3.0, 4.0, 0.0, 0.0]);
        normalize_rows(&mut m);
        assert!((norm(m.row(0)) - 1.0).abs() < 1e-12);
        assert_eq!(m.row(1), &[0.0, 0.0]);
        // Direction preserved.
        assert!((m[(0, 0)] - 0.6).abs() < 1e-12);
        assert!((m[(0, 1)] - 0.8).abs() < 1e-12);
    }
}
