//! Exact brute-force k-nearest-neighbor search over embedding rows, on
//! the tiled block-similarity kernel.
//!
//! For each query row, compute cosine similarity against every row of the
//! other embedding and keep the top `k`. The sweep is blocked: queries are
//! split into `QUERY_BLOCK` (32)-row rayon tasks, targets stream through
//! in `TARGET_BLOCK` (256)-lane packed panels, and each `Qblock × Tblockᵀ`
//! dot tile ([`cualign_linalg::gemm::dot_block`]) folds into per-query
//! bounded top-`k` heaps. Row norms are computed *once* per row up front instead
//! of twice per pair, which is where the seed kernel spent two thirds of
//! its arithmetic.
//!
//! **Exactness**: the tile kernel's per-pair dot is the same in-order
//! chain as [`vecops::dot`], the norms are the same [`vecops::norm`]
//! values, and the cosine is the same `(dot / (nq·nt)).clamp(-1, 1)`
//! expression — so every similarity is bit-identical to the seed
//! [`knn_candidates_reference`] path, and the heap's total order (
//! descending similarity, ascending id) selects the identical top-`k`
//! set. `tests/prop_knn.rs` pins the equivalence, ties included.

use cualign_graph::VertexId;
use cualign_linalg::{gemm, vecops, DenseMatrix};
use cualign_telemetry::{Counter, Histogram};
use rayon::prelude::*;
use std::cmp::Ordering;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Query rows per rayon task in the blocked sweep.
const QUERY_BLOCK: usize = 32;
/// Target lanes per dot tile (panel-aligned; the tile buffer is
/// `QUERY_BLOCK × TARGET_BLOCK` f64s, small enough to stay cache-hot).
const TARGET_BLOCK: usize = 256;

/// Interned sweep counters: how many candidate pairs the kNN sweep
/// scored vs. how many survived the top-`k` selection (the Fig. 4 story
/// of what sparsification discards), plus the number of dot tiles the
/// blocked kernel computed and a per-query-block wall-time histogram
/// (recorded only when telemetry is enabled).
pub(crate) struct KnnTele {
    pub(crate) scanned: Arc<Counter>,
    pub(crate) kept: Arc<Counter>,
    pub(crate) tiles: Arc<Counter>,
    pub(crate) block_seconds: Arc<Histogram>,
}

pub(crate) fn knn_tele() -> &'static KnnTele {
    static TELE: OnceLock<KnnTele> = OnceLock::new();
    TELE.get_or_init(|| {
        let r = cualign_telemetry::global();
        KnnTele {
            scanned: r.counter("sparsify.candidates_scanned"),
            kept: r.counter("sparsify.candidates_kept"),
            tiles: r.counter("sparsify.knn.tiles"),
            block_seconds: r.histogram("sparsify.knn.block_seconds"),
        }
    })
}

/// Which side queries which.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KnnDirection {
    /// Each A-row finds its `k` nearest B-rows.
    AtoB,
    /// Each B-row finds its `k` nearest A-rows.
    BtoA,
}

/// The seed ranking order: descending similarity, ascending target id on
/// ties — a total order, so the top-`k` set is unique.
#[inline]
pub(crate) fn rank(x: &(f64, VertexId), y: &(f64, VertexId)) -> Ordering {
    y.0.total_cmp(&x.0).then(x.1.cmp(&y.1))
}

/// Bounded top-`k` selector: a binary max-heap under [`rank`] whose root
/// is the *worst* kept candidate, replaced whenever a strictly better
/// one arrives.
pub(crate) struct TopK {
    keep: usize,
    heap: Vec<(f64, VertexId)>,
}

impl TopK {
    pub(crate) fn new(keep: usize) -> Self {
        TopK {
            keep,
            heap: Vec::with_capacity(keep),
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, sim: f64, t: VertexId) {
        if self.keep == 0 {
            return;
        }
        let cand = (sim, t);
        if self.heap.len() < self.keep {
            self.heap.push(cand);
            self.sift_up(self.heap.len() - 1);
        } else if rank(&cand, &self.heap[0]) == Ordering::Less {
            self.heap[0] = cand;
            self.sift_down();
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if rank(&self.heap[i], &self.heap[parent]) == Ordering::Greater {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self) {
        let len = self.heap.len();
        let mut i = 0;
        loop {
            let left = 2 * i + 1;
            if left >= len {
                break;
            }
            let right = left + 1;
            let mut worst = left;
            if right < len && rank(&self.heap[right], &self.heap[left]) == Ordering::Greater {
                worst = right;
            }
            if rank(&self.heap[worst], &self.heap[i]) == Ordering::Greater {
                self.heap.swap(i, worst);
                i = worst;
            } else {
                break;
            }
        }
    }

    /// Kept candidates, best-first (deterministic under [`rank`]).
    pub(crate) fn into_sorted(mut self) -> Vec<(f64, VertexId)> {
        self.heap.sort_unstable_by(rank);
        self.heap
    }
}

pub(crate) fn row_norms(m: &DenseMatrix) -> Vec<f64> {
    (0..m.rows())
        .into_par_iter()
        .map(|i| vecops::norm(m.row(i)))
        .collect()
}

/// The shared blocked similarity sweep: visits every `(query, target)`
/// pair exactly once, target-ascending within each query, with the
/// cosine similarity computed from tiled dot products and precomputed
/// row norms. `init(q)` builds the per-query fold state; the returned
/// states are in query order.
pub(crate) fn sweep_similarity<S, I, V>(
    queries: &DenseMatrix,
    targets: &DenseMatrix,
    init: I,
    visit: V,
) -> Vec<S>
where
    S: Send,
    I: Fn(usize) -> S + Sync,
    V: Fn(&mut S, usize, f64) + Sync,
{
    assert_eq!(
        queries.cols(),
        targets.cols(),
        "embedding dimension mismatch"
    );
    let (nq, nt) = (queries.rows(), targets.rows());
    let qnorms = row_norms(queries);
    let tnorms = row_norms(targets);
    let packed = gemm::pack_rows(targets);
    let tele = knn_tele();
    let instrument = cualign_telemetry::enabled();
    let blocks: Vec<Vec<S>> = (0..nq.div_ceil(QUERY_BLOCK))
        .into_par_iter()
        .map(|qb| {
            let started = instrument.then(Instant::now);
            let q0 = qb * QUERY_BLOCK;
            let q1 = (q0 + QUERY_BLOCK).min(nq);
            let mut states: Vec<S> = (q0..q1).map(&init).collect();
            let mut tile = vec![0.0f64; (q1 - q0) * TARGET_BLOCK.min(nt.max(1))];
            let mut tiles = 0u64;
            let mut t0 = 0;
            while t0 < nt {
                let t1 = (t0 + TARGET_BLOCK).min(nt);
                let tw = t1 - t0;
                gemm::dot_block(
                    queries,
                    q0,
                    q1,
                    &packed,
                    t0,
                    t1,
                    &mut tile[..(q1 - q0) * tw],
                );
                tiles += 1;
                for (qi, state) in states.iter_mut().enumerate() {
                    let qn = qnorms[q0 + qi];
                    let row = &tile[qi * tw..(qi + 1) * tw];
                    for (ti, &dp) in row.iter().enumerate() {
                        let tn = tnorms[t0 + ti];
                        let sim = if qn == 0.0 || tn == 0.0 {
                            0.0
                        } else {
                            (dp / (qn * tn)).clamp(-1.0, 1.0)
                        };
                        visit(state, t0 + ti, sim);
                    }
                }
                t0 = t1;
            }
            tele.tiles.add(tiles);
            if let Some(t) = started {
                tele.block_seconds.record(t.elapsed().as_secs_f64());
            }
            states
        })
        .collect();
    blocks.into_iter().flatten().collect()
}

/// Returns `(a, b, weight)` triples for the `k` nearest cross-graph
/// neighbors of every vertex on the querying side, with
/// `weight = (1 + cosine)/2 ∈ (0, 1]`.
///
/// Ties in similarity break toward the smaller target id, making the
/// candidate set deterministic; per query, triples come out best-first.
/// Output is bit-identical (same pairs, same weights) to the seed
/// [`knn_candidates_reference`] sweep.
pub fn knn_candidates(
    ya: &DenseMatrix,
    yb: &DenseMatrix,
    k: usize,
    direction: KnnDirection,
) -> Vec<(VertexId, VertexId, f64)> {
    assert!(k > 0, "k must be positive");
    assert_eq!(ya.cols(), yb.cols(), "embedding dimension mismatch");
    let (queries, targets) = match direction {
        KnnDirection::AtoB => (ya, yb),
        KnnDirection::BtoA => (yb, ya),
    };
    let (nq, nt) = (queries.rows(), targets.rows());
    let keep = k.min(nt);

    let states = sweep_similarity(
        queries,
        targets,
        |_| TopK::new(keep),
        |state, t, sim| state.push(sim, t as VertexId),
    );
    let mut triples = Vec::with_capacity(nq * keep);
    for (q, state) in states.into_iter().enumerate() {
        for (sim, t) in state.into_sorted() {
            let w = (1.0 + sim) / 2.0;
            // Clamp away a potential exact zero for antipodal rows;
            // downstream matchers require strictly positive weights.
            let w = w.max(f64::MIN_POSITIVE);
            triples.push(match direction {
                KnnDirection::AtoB => (q as VertexId, t, w),
                KnnDirection::BtoA => (t, q as VertexId, w),
            });
        }
    }
    let tele = knn_tele();
    tele.scanned.add((nq * nt) as u64);
    tele.kept.add(triples.len() as u64);
    triples
}

/// The seed kNN kernel: rayon per query, one `cosine_similarity` call
/// per pair (both norms recomputed every time), partial selection of the
/// top `keep`. Kept as the reference the blocked sweep is pinned against
/// in `tests/prop_knn.rs` and timed against in `bench_knn`; not
/// instrumented.
pub fn knn_candidates_reference(
    ya: &DenseMatrix,
    yb: &DenseMatrix,
    k: usize,
    direction: KnnDirection,
) -> Vec<(VertexId, VertexId, f64)> {
    assert!(k > 0, "k must be positive");
    assert_eq!(ya.cols(), yb.cols(), "embedding dimension mismatch");
    let (queries, targets) = match direction {
        KnnDirection::AtoB => (ya, yb),
        KnnDirection::BtoA => (yb, ya),
    };
    let nq = queries.rows();
    let nt = targets.rows();
    let keep = k.min(nt);

    let mut out: Vec<Vec<(VertexId, VertexId, f64)>> = Vec::new();
    (0..nq)
        .into_par_iter()
        .map(|q| {
            // Score all targets, then partial-select the top `keep`.
            let qrow = queries.row(q);
            let mut scored: Vec<(f64, usize)> = (0..nt)
                .map(|t| (vecops::cosine_similarity(qrow, targets.row(t)), t))
                .collect();
            // Descending similarity, ascending id on ties.
            scored.select_nth_unstable_by(keep - 1, |x, y| y.0.total_cmp(&x.0).then(x.1.cmp(&y.1)));
            scored.truncate(keep);
            scored
                .into_iter()
                .map(|(sim, t)| {
                    let w = (1.0 + sim) / 2.0;
                    let w = w.max(f64::MIN_POSITIVE);
                    match direction {
                        KnnDirection::AtoB => (q as VertexId, t as VertexId, w),
                        KnnDirection::BtoA => (t as VertexId, q as VertexId, w),
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect_into_vec(&mut out);
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axis_embeddings() -> (DenseMatrix, DenseMatrix) {
        // A rows: e0, e1, e2. B rows: e1, e0, e2 (swapped first two).
        let ya = DenseMatrix::from_vec(3, 3, vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]);
        let yb = DenseMatrix::from_vec(3, 3, vec![0.0, 1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        (ya, yb)
    }

    #[test]
    fn finds_exact_matches_first() {
        let (ya, yb) = axis_embeddings();
        let cands = knn_candidates(&ya, &yb, 1, KnnDirection::AtoB);
        // A0 (e0) ↦ B1, A1 (e1) ↦ B0, A2 ↦ B2.
        let mut pairs: Vec<(u32, u32)> = cands.iter().map(|&(a, b, _)| (a, b)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (1, 0), (2, 2)]);
        for &(_, _, w) in &cands {
            assert!((w - 1.0).abs() < 1e-12, "perfect match weight should be 1");
        }
    }

    #[test]
    fn direction_flips_roles() {
        let (ya, yb) = axis_embeddings();
        let ab = knn_candidates(&ya, &yb, 1, KnnDirection::AtoB);
        let ba = knn_candidates(&ya, &yb, 1, KnnDirection::BtoA);
        // Both directions emit (a, b) ordered triples; for this symmetric
        // instance the pair sets coincide.
        let norm = |v: &[(u32, u32, f64)]| {
            let mut p: Vec<(u32, u32)> = v.iter().map(|&(a, b, _)| (a, b)).collect();
            p.sort_unstable();
            p
        };
        assert_eq!(norm(&ab), norm(&ba));
    }

    #[test]
    fn k_is_respected() {
        let (ya, yb) = axis_embeddings();
        let cands = knn_candidates(&ya, &yb, 2, KnnDirection::AtoB);
        assert_eq!(cands.len(), 6);
        let all = knn_candidates(&ya, &yb, 99, KnnDirection::AtoB);
        assert_eq!(all.len(), 9, "k larger than n keeps everything");
    }

    #[test]
    fn weights_strictly_positive_even_antipodal() {
        let ya = DenseMatrix::from_vec(1, 2, vec![1.0, 0.0]);
        let yb = DenseMatrix::from_vec(1, 2, vec![-1.0, 0.0]);
        let cands = knn_candidates(&ya, &yb, 1, KnnDirection::AtoB);
        assert!(cands[0].2 > 0.0);
    }

    #[test]
    fn tie_break_prefers_smaller_id() {
        // Two identical B rows: the smaller id must be ranked first.
        let ya = DenseMatrix::from_vec(1, 2, vec![1.0, 0.0]);
        let yb = DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 1.0, 0.0]);
        let cands = knn_candidates(&ya, &yb, 1, KnnDirection::AtoB);
        assert_eq!(cands[0].1, 0);
    }

    #[test]
    fn per_query_output_is_best_first() {
        let ya = DenseMatrix::from_vec(1, 2, vec![1.0, 0.0]);
        let yb = DenseMatrix::from_vec(
            3,
            2,
            vec![
                0.0,
                1.0,
                1.0,
                0.0,
                std::f64::consts::FRAC_1_SQRT_2,
                std::f64::consts::FRAC_1_SQRT_2,
            ],
        );
        let cands = knn_candidates(&ya, &yb, 3, KnnDirection::AtoB);
        let order: Vec<u32> = cands.iter().map(|&(_, b, _)| b).collect();
        assert_eq!(order, vec![1, 2, 0], "descending similarity per query");
    }

    #[test]
    fn zero_rows_score_zero_like_cosine() {
        // A zero query row: the seed path returns cosine 0 for every
        // target, so weights are exactly 0.5 and ids break ties.
        let ya = DenseMatrix::from_vec(1, 2, vec![0.0, 0.0]);
        let yb = DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let blocked = knn_candidates(&ya, &yb, 2, KnnDirection::AtoB);
        let reference = knn_candidates_reference(&ya, &yb, 2, KnnDirection::AtoB);
        assert_eq!(blocked, reference);
        assert!(blocked.iter().all(|&(_, _, w)| w == 0.5));
    }
}
