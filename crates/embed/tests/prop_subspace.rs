//! Property tests pinning the subspace stage's fast kernels to their
//! in-tree reference oracles (the `prop_gemm.rs` pattern, adapted):
//!
//! * [`pairwise_cost`] vs [`pairwise_cost_reference`] — the GEMM
//!   expansion `‖x‖² + ‖z‖² − 2·x·z` reassociates the per-pair sums, so
//!   the pin is a tight tolerance (1e-10 on unit-scale Gaussians), not
//!   bitwise, over random shapes including tile-edge and degenerate
//!   dimensions.
//! * blocked [`sinkhorn`] vs [`sinkhorn_reference`] — scaled-potential
//!   arithmetic plus the polynomial `exp` differ from the seed sweep only
//!   in floating-point association; plans must agree element-wise to
//!   1e-9 on random cost matrices spanning the annealing schedule's ε
//!   range.
//! * [`align_subspaces`] vs [`align_subspaces_reference`] — the full
//!   alternation stays glued end-to-end on planted permuted pairs.

use cualign_embed::{
    align_subspaces, align_subspaces_reference, pairwise_cost, pairwise_cost_reference,
    SubspaceAlignConfig,
};
use cualign_graph::generators::barabasi_albert;
use cualign_linalg::{sinkhorn, sinkhorn_reference, DenseMatrix, SinkhornOptions};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn gaussian(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    DenseMatrix::gaussian(rows, cols, &mut StdRng::seed_from_u64(seed))
}

fn max_abs_diff(a: &DenseMatrix, b: &DenseMatrix) -> f64 {
    a.data()
        .iter()
        .zip(b.data())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// GEMM-based cost ≡ scalar reference on random rectangular shapes,
    /// including non-multiple-of-tile edges, single rows/columns, and the
    /// zero-dimensional embedding (every distance 0).
    #[test]
    fn gemm_cost_matches_reference(
        n in 1usize..40,
        m in 1usize..40,
        d in 0usize..20,
        seed in 0u64..10_000,
    ) {
        let x = gaussian(n, d, seed);
        let z = gaussian(m, d, seed.wrapping_add(1));
        let fast = pairwise_cost(&x, &z);
        let oracle = pairwise_cost_reference(&x, &z);
        prop_assert_eq!((fast.rows(), fast.cols()), (n, m));
        let worst = max_abs_diff(&fast, &oracle);
        prop_assert!(worst < 1e-10, "cost kernels diverge by {:e}", worst);
    }

    /// Identical rows must cost (numerically) zero under both kernels —
    /// the tie case where the GEMM expansion is most cancellation-prone
    /// (and where its zero-clamp engages).
    #[test]
    fn gemm_cost_ties_are_clamped_nonnegative(
        n in 1usize..24,
        d in 1usize..16,
        seed in 0u64..10_000,
    ) {
        let x = gaussian(n, d, seed);
        let fast = pairwise_cost(&x, &x);
        for i in 0..n {
            prop_assert!(fast[(i, i)] >= 0.0);
            prop_assert!(fast[(i, i)] < 1e-10, "self-cost {:e}", fast[(i, i)]);
        }
        prop_assert!(fast.data().iter().all(|&c| c >= 0.0));
    }

    /// Blocked Sinkhorn ≡ the seed sweep on random cost matrices, across
    /// the ε range the annealed schedule actually visits, rectangular
    /// shapes, and column counts straddling the COL_BLOCK panel edge.
    #[test]
    fn blocked_sinkhorn_matches_reference(
        n in 1usize..30,
        m in 1usize..30,
        eps_scaled in 1usize..12,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cost = DenseMatrix::gaussian(n, m, &mut rng);
        // Costs are squared distances in the pipeline: keep them ≥ 0.
        let cost = DenseMatrix::from_fn(n, m, |i, j| cost[(i, j)].abs());
        let opts = SinkhornOptions {
            epsilon: 0.05 * eps_scaled as f64, // 0.05 ..= 0.55
            max_iters: 200,
            tolerance: 1e-7,
        };
        let fast = sinkhorn(&cost, &opts);
        let oracle = sinkhorn_reference(&cost, &opts);
        let worst = max_abs_diff(&fast.plan, &oracle.plan);
        prop_assert!(worst < 1e-9, "plans diverge by {:e}", worst);
        prop_assert!(
            (fast.marginal_error - oracle.marginal_error).abs() < 1e-9,
            "marginal errors diverge: {} vs {}",
            fast.marginal_error,
            oracle.marginal_error
        );
    }
}

proptest! {
    // End-to-end alternation runs two full alignments per case; keep the
    // case count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The fast alternation and the seed (all-reference) alternation stay
    /// glued end-to-end on planted instances: the two paths seed the
    /// alternation differently (the fast path caps the stalled init
    /// solve), so the pin is the *fixed point* — on a planted permuted
    /// pair the annealed rounds must converge to the same rotation from
    /// either seed, without kernel-level 1e-12 disagreements or the
    /// coarser seed being amplified into a different matching.
    #[test]
    fn fast_alignment_tracks_reference_alignment(
        n in 40usize..80,
        seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ga = barabasi_albert(n, 3, &mut rng);
        let p = cualign_graph::Permutation::random(n, &mut rng);
        let gb = p.apply_to_graph(&ga);
        let y1 = gaussian(n, 8, seed.wrapping_add(2));
        let q0 = cualign_linalg::qr::orthonormalize(&gaussian(8, 8, seed.wrapping_add(3)));
        let rotated = y1.matmul(&q0);
        let mut y2 = DenseMatrix::zeros(n, 8);
        for i in 0..n {
            y2.row_mut(p.apply(i as u32) as usize)
                .copy_from_slice(rotated.row(i));
        }
        let cfg = SubspaceAlignConfig {
            anchors: 0,
            iterations: 6,
            ..Default::default()
        };
        let fast = align_subspaces(&y1, &y2, &ga, &gb, &cfg).unwrap();
        let oracle = align_subspaces_reference(&y1, &y2, &ga, &gb, &cfg).unwrap();
        // Full-anchor planted instances have an unambiguous fixed point:
        // both seeds must snap to the planted rotation, so the residual
        // gap is pure annealed-convergence slack. A different matching
        // would put the rotations O(0.1)–O(1) apart.
        let dq = max_abs_diff(&fast.rotation, &oracle.rotation);
        prop_assert!(dq < 1e-3, "rotations diverge by {:e}", dq);
        prop_assert_eq!(fast.round_costs.len(), oracle.round_costs.len());
        let (fa, oa) = (fast.round_costs.last().unwrap(), oracle.round_costs.last().unwrap());
        // Same-matching plans still differ in entropic smoothing at the
        // final ε, so pin the final cost relatively: a wrong matching
        // shifts it by tens of percent, the seed difference by ≲ 0.2%.
        prop_assert!(
            (fa - oa).abs() < 1e-2 * (1.0 + oa.abs()),
            "final round costs diverge: {} vs {}",
            fa,
            oa
        );
    }
}
