//! Deterministic end-to-end telemetry snapshot: one small ER instance,
//! fixed seed, a three-density session sweep plus one repeated density so
//! every cache path (miss *and* hit) fires. The default sink is
//! `json:BENCH_session.json` — running this binary with no flags refreshes
//! the checked-in snapshot:
//!
//! ```text
//! cargo run --release -p cualign-bench --bin bench_session
//! ```
//!
//! The snapshot line carries the span-tree timings for all five session
//! stages, the BP residual histogram, and the per-stage
//! `session.*.hits` / `.misses` counters — it is the artifact the
//! telemetry subsystem is judged against, so keep the workload here tiny
//! and fully seeded.

use cualign::{AlignerConfig, AlignmentSession, SparsityChoice};
use cualign_graph::generators::erdos_renyi_gnm;
use cualign_graph::permutation::AlignmentInstance;
use cualign_telemetry::TelemetryMode;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 42;
const VERTICES: usize = 256;
const EDGES: usize = 768;
/// Two misses for the density-dependent stages, then a repeat of the
/// last density so the whole back half is served from cache.
const DENSITIES: [f64; 3] = [0.02, 0.05, 0.05];

fn main() {
    // Unlike the figure binaries this one *defaults* to writing the
    // checked-in snapshot; an explicit flag or env var still wins.
    let explicit = std::env::args().any(|a| a.starts_with("--telemetry"))
        || std::env::var("CUALIGN_TELEMETRY").is_ok_and(|v| !v.is_empty());
    let telemetry = if explicit {
        cualign_bench::telemetry_sink()
    } else {
        TelemetryMode::Json("BENCH_session.json".into()).activate()
    };

    let mut rng = StdRng::seed_from_u64(SEED);
    let a = erdos_renyi_gnm(VERTICES, EDGES, &mut rng);
    let inst = AlignmentInstance::permuted_pair(a, &mut rng);
    let cfg = AlignerConfig::builder()
        .density(DENSITIES[0])
        .bp_iters(8)
        .build()
        .expect("fixed config is valid");
    let mut session = AlignmentSession::new(&inst.a, &inst.b, cfg)
        .expect("the seeded ER instance is non-degenerate");

    println!(
        "bench_session: ER n = {VERTICES}, m = {EDGES}, seed = {SEED} (telemetry -> {})",
        telemetry.mode()
    );
    for density in DENSITIES {
        session
            .update_config(|c| c.sparsity = SparsityChoice::Density(density))
            .expect("grid densities are in (0, 1]");
        let r = session.align().expect("the seeded instance aligns");
        println!(
            "  density {:>5.3}: NCV-GS3 = {:.4}, cache_hits = {}",
            density, r.scores.ncv_gs3, r.timings.cache_hits
        );
    }
    let c = session.counters();
    println!(
        "session builds: embed {} / subspace {} / sparsify {} / overlap {} / optimize {}",
        c.embedding_builds,
        c.subspace_builds,
        c.sparsify_builds,
        c.overlap_builds,
        c.optimize_builds
    );
    cualign_bench::emit_telemetry(&telemetry);
}
