//! # cualign-matching
//!
//! Half-approximate maximum weighted matching on the bipartite alignment
//! graph `L` — the rounding step of the cuAlign framework (§4.3).
//!
//! The workhorse is the **locally dominant** algorithm of Preis, in the
//! pointer-based formulation Khan et al. parallelized: an edge that is at
//! least as heavy as every other edge incident on its two endpoints is
//! locally dominant and can be committed immediately; committing it may
//! expose new locally dominant edges, which a worklist propagates. The
//! result is ½-approximate in theory and near-optimal in practice.
//!
//! * [`locally_dominant::locally_dominant_serial`] — sequential reference,
//! * [`parallel::locally_dominant_parallel`] — the two-queue (`Q_C`/`Q_N`)
//!   parallel version of §4.3, built on rayon + atomics,
//! * [`suitor::suitor_matching`] — the Suitor (deferred-acceptance)
//!   formulation of the same matching,
//! * [`greedy::greedy_matching`] — globally-sorted greedy (also ½-approx),
//!   a simpler baseline,
//! * [`hungarian::hungarian_matching`] — exact `O(n³)` oracle used by tests
//!   to certify approximation ratios.
//!
//! All matchers share one **edge preference order** (weight descending,
//! edge id ascending as tie-break) and only consider strictly positive
//! weights. The preference order is total, which makes the locally
//! dominant matching *unique* — the serial and parallel algorithms are
//! bit-for-bit interchangeable, a property the test suite pins down.
//!
//! **Place in the pipeline** (paper Fig. 2): the rounding half of stage
//! 4 — each BP iteration's messages are rounded to a matching here, and
//! the best one wins. The multilevel wrapper adds a second call site:
//! its per-level *repair pass* re-runs [`locally_dominant_parallel`] on
//! the residual band (edges of still-unmatched vertices) to complete
//! BP's rounding.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod greedy;
pub mod hungarian;
pub mod locally_dominant;
pub mod matching;
pub mod parallel;
pub mod suitor;

pub use greedy::greedy_matching;
pub use hungarian::hungarian_matching;
pub use locally_dominant::locally_dominant_serial;
pub use matching::Matching;
pub use parallel::locally_dominant_parallel;
pub use suitor::suitor_matching;

use cualign_graph::{BipartiteGraph, EdgeId};

/// `true` iff edge `e1` is preferred over `e2` for matching: heavier wins,
/// ties break toward the smaller edge id. Strictly total for distinct ids.
#[inline]
pub fn prefer(l: &BipartiteGraph, e1: EdgeId, e2: EdgeId) -> bool {
    let w1 = l.weights()[e1 as usize];
    let w2 = l.weights()[e2 as usize];
    w1 > w2 || (w1 == w2 && e1 < e2)
}
