//! Graphlet degree signatures — per-vertex orbit counts for graphlets of
//! up to four nodes.
//!
//! The alignment literature the paper builds on (Kuchaiev et al.'s
//! GRAAL/H-GRAAL line, reference \[18\]) scores vertex similarity by
//! *graphlet degree vectors* (GDVs): how many times a vertex touches each
//! automorphism orbit of each small induced subgraph. They are the
//! classical "signature" alternative to embedding-based similarity, and a
//! rotation-free source of structural features.
//!
//! Enumeration uses the **ESU algorithm** (Wernicke): every connected
//! induced subgraph of size 3 and 4 is visited exactly once, classified
//! by its internal degree sequence (which uniquely identifies all six
//! connected 4-vertex graphs), and each member vertex's orbit counter is
//! incremented. Exact by construction, and cross-checked against a
//! brute-force 4-subset enumerator in the tests.
//!
//! Orbits (Pržulj numbering, graphlets G0–G8, orbits 0–14):
//!
//! ```text
//! G0 edge:           0 = endpoint (degree)
//! G1 path P3:        1 = end, 2 = middle
//! G2 triangle:       3 = corner
//! G3 path P4:        4 = end, 5 = middle
//! G4 claw K1,3:      6 = leaf, 7 = center
//! G5 cycle C4:       8 = vertex
//! G6 paw:            9 = tail, 10 = attachment (deg 3), 11 = plain (deg 2)
//! G7 diamond:        12 = degree-2 vertex, 13 = degree-3 vertex
//! G8 clique K4:      14 = vertex
//! ```

use crate::{CsrGraph, VertexId};
use rayon::prelude::*;

/// Number of orbits counted (graphlets on 2–4 nodes).
pub const NUM_ORBITS: usize = 15;

/// Classifies a connected induced subgraph on `verts` (3 or 4 vertices)
/// and credits each vertex's orbit. `adj(x, y)` must answer induced
/// adjacency.
fn credit_orbits(g: &CsrGraph, verts: &[VertexId], gdv: &mut [[u64; NUM_ORBITS]]) {
    match verts.len() {
        3 => {
            let [a, b, c] = [verts[0], verts[1], verts[2]];
            let e = [g.has_edge(a, b), g.has_edge(a, c), g.has_edge(b, c)];
            let degs = [
                e[0] as u64 + e[1] as u64,
                e[0] as u64 + e[2] as u64,
                e[1] as u64 + e[2] as u64,
            ];
            let edge_count: u64 = degs.iter().sum::<u64>() / 2;
            match edge_count {
                3 => {
                    for &v in verts {
                        gdv[v as usize][3] += 1;
                    }
                }
                2 => {
                    for (i, &v) in verts.iter().enumerate() {
                        gdv[v as usize][if degs[i] == 2 { 2 } else { 1 }] += 1;
                    }
                }
                // lint: allow(no-panic): ESU only yields connected subgraphs, so a 3-set has 2 or 3 edges
                _ => unreachable!("ESU only yields connected subgraphs"),
            }
        }
        4 => {
            let mut degs = [0u64; 4];
            let mut edge_count = 0u64;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    if g.has_edge(verts[i], verts[j]) {
                        degs[i] += 1;
                        degs[j] += 1;
                        edge_count += 1;
                    }
                }
            }
            // Degree sequences uniquely identify the six connected
            // 4-vertex graphs; orbits follow from the internal degree.
            for (i, &v) in verts.iter().enumerate() {
                let orbit = match (edge_count, degs[i]) {
                    (3, 1) if degs.contains(&3) => 6,  // claw leaf
                    (3, 3) => 7,                       // claw center
                    (3, 1) => 4,                       // P4 end
                    (3, 2) => 5,                       // P4 middle
                    (4, 2) if !degs.contains(&3) => 8, // C4
                    (4, 1) => 9,                       // paw tail
                    (4, 3) => 10,                      // paw attachment
                    (4, 2) => 11,                      // paw plain triangle vertex
                    (5, 2) => 12,                      // diamond degree-2
                    (5, 3) => 13,                      // diamond degree-3
                    (6, 3) => 14,                      // K4
                    // lint: allow(no-panic): the match above enumerates every (edges, degree) pair a connected induced 4-graph admits
                    _ => unreachable!(
                        "impossible induced 4-graph: {edge_count} edges, deg {}",
                        degs[i]
                    ),
                };
                gdv[v as usize][orbit] += 1;
            }
        }
        // lint: allow(no-panic): callers pass verts of length 3 or 4 only (ESU is invoked with k ∈ {3, 4})
        _ => unreachable!("only sizes 3 and 4 are enumerated"),
    }
}

/// ESU recursion: grows `sub` by vertices from `extension`, only ever
/// adding ids greater than the root to visit each subgraph exactly once.
fn esu_extend(
    g: &CsrGraph,
    root: VertexId,
    sub: &mut Vec<VertexId>,
    extension: &[VertexId],
    target: usize,
    gdv: &mut [[u64; NUM_ORBITS]],
) {
    if sub.len() == target {
        credit_orbits(g, sub, gdv);
        return;
    }
    let mut ext = extension.to_vec();
    while let Some(w) = ext.pop() {
        // New extension: remaining candidates plus exclusive neighbors of
        // w (greater than root, not adjacent to the current subgraph).
        let mut next_ext = ext.clone();
        for &x in g.neighbors(w) {
            if x <= root || sub.contains(&x) || x == w {
                continue;
            }
            // exclusive: not a neighbor of any current sub vertex and not
            // already a candidate.
            let adjacent_to_sub = sub.iter().any(|&s| g.has_edge(s, x));
            if !adjacent_to_sub && !next_ext.contains(&x) && !ext.contains(&x) {
                next_ext.push(x);
            }
        }
        sub.push(w);
        esu_extend(g, root, sub, &next_ext, target, gdv);
        sub.pop();
    }
}

/// Per-vertex graphlet degree vectors: `gdv[u][o]` = number of times
/// vertex `u` appears at orbit `o`. Exact ESU enumeration — intended for
/// feature extraction on sparse graphs (cost grows with the number of
/// connected 4-subgraphs, ≈ `Σ_v deg(v)³` on skewed graphs).
pub fn graphlet_degree_vectors(g: &CsrGraph) -> Vec<[u64; NUM_ORBITS]> {
    let n = g.num_vertices();
    // Parallel over roots; merge the per-root partial counts.
    let partials: Vec<Vec<[u64; NUM_ORBITS]>> = (0..n as VertexId)
        .into_par_iter()
        .map(|root| {
            let mut gdv = vec![[0u64; NUM_ORBITS]; n];
            // Orbit 0 once per vertex (assigned at its own root turn).
            gdv[root as usize][0] = g.degree(root) as u64;
            let ext: Vec<VertexId> = g
                .neighbors(root)
                .iter()
                .copied()
                .filter(|&v| v > root)
                .collect();
            let mut sub = vec![root];
            for target in [3usize, 4] {
                esu_extend(g, root, &mut sub, &ext, target, &mut gdv);
            }
            gdv
        })
        .collect();
    let mut gdv = vec![[0u64; NUM_ORBITS]; n];
    for part in partials {
        for (u, row) in part.into_iter().enumerate() {
            for (o, c) in row.into_iter().enumerate() {
                gdv[u][o] += c;
            }
        }
    }
    gdv
}

/// Log-scaled, per-graph-standardized GDV feature matrix — drop-in
/// structural features (e.g. for subspace-alignment initialization).
pub fn gdv_features(g: &CsrGraph) -> Vec<[f64; NUM_ORBITS]> {
    let gdv = graphlet_degree_vectors(g);
    let n = gdv.len().max(1);
    let mut feats: Vec<[f64; NUM_ORBITS]> = gdv
        .iter()
        .map(|row| {
            let mut f = [0.0; NUM_ORBITS];
            for (j, &c) in row.iter().enumerate() {
                f[j] = (1.0 + c as f64).ln();
            }
            f
        })
        .collect();
    for j in 0..NUM_ORBITS {
        let mean: f64 = feats.iter().map(|f| f[j]).sum::<f64>() / n as f64;
        let var: f64 = feats.iter().map(|f| (f[j] - mean).powi(2)).sum::<f64>() / n as f64;
        let std = var.sqrt().max(1e-12);
        for f in &mut feats {
            f[j] = (f[j] - mean) / std;
        }
    }
    feats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi_gnm;
    use crate::Permutation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Brute-force comparator: enumerate every 3- and 4-subset, keep the
    /// connected induced ones, credit orbits.
    fn brute_gdv(g: &CsrGraph) -> Vec<[u64; NUM_ORBITS]> {
        let n = g.num_vertices();
        let mut gdv = vec![[0u64; NUM_ORBITS]; n];
        for u in 0..n as VertexId {
            gdv[u as usize][0] = g.degree(u) as u64;
        }
        let connected = |verts: &[VertexId]| -> bool {
            // BFS within the induced subgraph.
            let mut seen = vec![false; verts.len()];
            let mut stack = vec![0usize];
            seen[0] = true;
            let mut count = 1;
            while let Some(i) = stack.pop() {
                for (j, s) in seen.iter_mut().enumerate() {
                    if !*s && g.has_edge(verts[i], verts[j]) {
                        *s = true;
                        count += 1;
                        stack.push(j);
                    }
                }
            }
            count == verts.len()
        };
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    let v3 = [a as VertexId, b as VertexId, c as VertexId];
                    if connected(&v3) {
                        credit_orbits(g, &v3, &mut gdv);
                    }
                    for d in (c + 1)..n {
                        let v4 = [a as VertexId, b as VertexId, c as VertexId, d as VertexId];
                        if connected(&v4) {
                            credit_orbits(g, &v4, &mut gdv);
                        }
                    }
                }
            }
        }
        gdv
    }

    #[test]
    fn esu_matches_brute_force() {
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = erdos_renyi_gnm(12, 20, &mut rng);
            assert_eq!(graphlet_degree_vectors(&g), brute_gdv(&g), "seed {seed}");
        }
    }

    #[test]
    fn triangle_graph() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let gdv = graphlet_degree_vectors(&g);
        for row in gdv.iter().take(3) {
            assert_eq!(row[0], 2, "degree");
            assert_eq!(row[3], 1, "one triangle");
            assert_eq!(row[2], 0, "no open wedge");
        }
    }

    #[test]
    fn path_p4() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let gdv = graphlet_degree_vectors(&g);
        assert_eq!(gdv[1][2], 1, "vertex 1 centers one wedge");
        assert_eq!(gdv[0][1], 1, "vertex 0 ends one wedge");
        assert_eq!(gdv[0][4], 1, "vertex 0 ends the P4");
        assert_eq!(gdv[1][5], 1, "vertex 1 is a P4 middle");
        assert_eq!(gdv[0][3], 0, "no triangles");
    }

    #[test]
    fn square_c4() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let gdv = graphlet_degree_vectors(&g);
        for row in gdv.iter().take(4) {
            assert_eq!(row[8], 1, "each vertex in one C4");
        }
    }

    #[test]
    fn clique_k4_and_diamond() {
        let k4 = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let gdv = graphlet_degree_vectors(&k4);
        for row in gdv.iter().take(4) {
            assert_eq!(row[14], 1);
            assert_eq!(row[3], 3, "three triangles per K4 vertex");
            assert_eq!(row[8], 0, "no induced C4 in a clique");
        }
        // Diamond = K4 minus one edge (2–3).
        let dia = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]);
        let gdv = graphlet_degree_vectors(&dia);
        assert_eq!(gdv[0][13], 1, "vertex 0 is a degree-3 diamond vertex");
        assert_eq!(gdv[1][13], 1);
        assert_eq!(gdv[2][12], 1, "vertex 2 is a degree-2 diamond vertex");
        assert_eq!(gdv[3][12], 1);
    }

    #[test]
    fn claw_and_paw() {
        let claw = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let gdv = graphlet_degree_vectors(&claw);
        assert_eq!(gdv[0][7], 1, "hub is the claw center");
        for row in gdv.iter().take(4).skip(1) {
            assert_eq!(row[6], 1, "leaf orbit");
        }
        // Paw: triangle 0-1-2 with tail 3 at 0.
        let paw = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]);
        let gdv = graphlet_degree_vectors(&paw);
        assert_eq!(gdv[3][9], 1, "tail end");
        assert_eq!(gdv[0][10], 1, "attachment vertex");
        assert_eq!(gdv[1][11], 1, "plain triangle vertex");
        assert_eq!(gdv[2][11], 1);
    }

    #[test]
    fn gdv_is_isomorphism_invariant() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = erdos_renyi_gnm(25, 55, &mut rng);
        let p = Permutation::random(25, &mut rng);
        let b = p.apply_to_graph(&a);
        let ga = graphlet_degree_vectors(&a);
        let gb = graphlet_degree_vectors(&b);
        for u in 0..25u32 {
            assert_eq!(
                ga[u as usize],
                gb[p.apply(u) as usize],
                "GDV not preserved at {u}"
            );
        }
    }

    #[test]
    fn features_standardized() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = erdos_renyi_gnm(40, 90, &mut rng);
        let f = gdv_features(&g);
        for j in 0..NUM_ORBITS {
            let mean: f64 = f.iter().map(|r| r[j]).sum::<f64>() / 40.0;
            assert!(mean.abs() < 1e-9, "orbit {j} mean {mean}");
        }
    }
}
