//! Householder QR decomposition and orthonormalization.
//!
//! The embedding pipeline uses QR in two places: orthonormalizing the
//! iterated random projection (FastRP's stability trick) and as the range
//! finder inside randomized SVD. Thin QR of an `m × k` matrix with `k ≪ m`
//! costs `O(m k²)` — negligible next to the graph propagation it supports.

use crate::DenseMatrix;

/// Thin QR decomposition `A = Q · R` of an `m × k` matrix with `m ≥ k`:
/// `Q` is `m × k` with orthonormal columns, `R` is `k × k` upper triangular.
pub struct QrDecomposition {
    /// Orthonormal factor (`m × k`).
    pub q: DenseMatrix,
    /// Upper-triangular factor (`k × k`).
    pub r: DenseMatrix,
}

/// Computes the thin QR factorization by Householder reflections.
///
/// # Panics
/// Panics if `a.rows() < a.cols()`.
pub fn householder_qr(a: &DenseMatrix) -> QrDecomposition {
    let (m, k) = (a.rows(), a.cols());
    assert!(m >= k, "thin QR requires rows ≥ cols (got {m} × {k})");
    // Work on a copy; accumulate the reflectors to build Q afterwards.
    let mut r = a.clone();
    // Householder vectors, stored per column (length m, zero above j).
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(k);
    for j in 0..k {
        // Build the reflector for column j from rows j..m.
        let mut v = vec![0.0; m];
        let mut norm2 = 0.0;
        for i in j..m {
            let x = r[(i, j)];
            v[i] = x;
            norm2 += x * x;
        }
        let norm = norm2.sqrt();
        if norm <= f64::EPSILON {
            vs.push(vec![0.0; m]);
            continue;
        }
        let alpha = if v[j] >= 0.0 { -norm } else { norm };
        v[j] -= alpha;
        let vnorm2: f64 = v[j..].iter().map(|x| x * x).sum();
        if vnorm2 <= f64::EPSILON {
            vs.push(vec![0.0; m]);
            r[(j, j)] = alpha;
            continue;
        }
        // Apply H = I - 2 v vᵀ / (vᵀ v) to the remaining columns of R.
        for c in j..k {
            let mut dot = 0.0;
            for i in j..m {
                dot += v[i] * r[(i, c)];
            }
            let coef = 2.0 * dot / vnorm2;
            for i in j..m {
                r[(i, c)] -= coef * v[i];
            }
        }
        vs.push(v);
    }
    // Zero the strict lower triangle of R (numerical dust) and keep k × k.
    let mut rk = DenseMatrix::zeros(k, k);
    for i in 0..k {
        for j in i..k {
            rk[(i, j)] = r[(i, j)];
        }
    }
    // Q = H_0 H_1 … H_{k-1} · [I_k; 0]  — apply reflectors in reverse to the
    // identity embedding.
    let mut q = DenseMatrix::zeros(m, k);
    for j in 0..k {
        q[(j, j)] = 1.0;
    }
    for j in (0..k).rev() {
        let v = &vs[j];
        let vnorm2: f64 = v[j..].iter().map(|x| x * x).sum();
        if vnorm2 <= f64::EPSILON {
            continue;
        }
        for c in 0..k {
            let mut dot = 0.0;
            for i in j..m {
                dot += v[i] * q[(i, c)];
            }
            let coef = 2.0 * dot / vnorm2;
            for i in j..m {
                q[(i, c)] -= coef * v[i];
            }
        }
    }
    QrDecomposition { q, r: rk }
}

/// Returns an orthonormal basis for the column space of `a` (its thin-QR
/// `Q` factor).
pub fn orthonormalize(a: &DenseMatrix) -> DenseMatrix {
    householder_qr(a).q
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn reconstruct(qr: &QrDecomposition) -> DenseMatrix {
        qr.q.matmul(&qr.r)
    }

    #[test]
    fn qr_reconstructs_square() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = DenseMatrix::gaussian(6, 6, &mut rng);
        let qr = householder_qr(&a);
        assert!(reconstruct(&qr).sub(&a).max_abs() < 1e-10);
        assert!(qr.q.is_orthonormal(1e-10));
    }

    #[test]
    fn qr_reconstructs_tall() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = DenseMatrix::gaussian(50, 8, &mut rng);
        let qr = householder_qr(&a);
        assert!(reconstruct(&qr).sub(&a).max_abs() < 1e-10);
        assert!(qr.q.is_orthonormal(1e-10));
    }

    #[test]
    fn r_is_upper_triangular() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = DenseMatrix::gaussian(10, 5, &mut rng);
        let qr = householder_qr(&a);
        for i in 0..5 {
            for j in 0..i {
                assert_eq!(qr.r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn handles_rank_deficient() {
        // Two identical columns.
        let a = DenseMatrix::from_vec(4, 2, vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0]);
        let qr = householder_qr(&a);
        assert!(reconstruct(&qr).sub(&a).max_abs() < 1e-10);
        // Second diagonal of R collapses.
        assert!(qr.r[(1, 1)].abs() < 1e-10);
    }

    #[test]
    fn orthonormalize_gives_basis() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = DenseMatrix::gaussian(30, 4, &mut rng);
        let q = orthonormalize(&a);
        assert!(q.is_orthonormal(1e-10));
        assert_eq!(q.rows(), 30);
        assert_eq!(q.cols(), 4);
    }

    #[test]
    fn zero_matrix_qr() {
        let a = DenseMatrix::zeros(5, 3);
        let qr = householder_qr(&a);
        assert!(reconstruct(&qr).max_abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "rows ≥ cols")]
    fn rejects_wide() {
        let a = DenseMatrix::zeros(2, 5);
        let _ = householder_qr(&a);
    }
}
