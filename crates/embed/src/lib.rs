//! # cualign-embed
//!
//! Stage 1 of the cuAlign framework (§4.1): represent every vertex of each
//! input graph as a `d`-dimensional vector such that (a) proximate vertices
//! within a graph embed close together, and (b) after a learned orthogonal
//! rotation, corresponding vertices *across* graphs embed close together.
//!
//! Two proximity embedders are provided:
//!
//! * [`proximity::fastrp_embedding`] — iterated-propagation random
//!   projection (FastRP family). `O(T · nnz · d)` time, scales to every
//!   input in the paper's Table 1. This is the default.
//! * [`netmf::netmf_embedding`] — the exact NetMF-window factorization used
//!   by cone-align, for small graphs (dense `n × n` intermediate).
//!
//! Cross-graph alignment of the two embeddings — Eq. (2) of the paper,
//! `min_Q min_P ‖Y₁Q − PY₂‖²` — is solved in [`subspace`] by alternating
//! Sinkhorn optimal transport (soft `P`) with orthogonal Procrustes
//! (optimal `Q`), following Chen et al.'s cone-align procedure.
//!
//! **Place in the pipeline** (paper Fig. 2): the first stage proper —
//! it consumes `cualign-graph` CSR graphs and feeds the aligned vectors
//! to `cualign-sparsify`'s kNN stage. Under the multilevel wrapper this
//! stage runs only on the coarsest graphs, with `dim` clamped to the
//! contracted size.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod netmf;
pub mod proximity;
pub mod spectral;
pub mod subspace;

pub use proximity::{fastrp_embedding, FastRpConfig};
pub use spectral::{spectral_embedding, SpectralConfig};
pub use subspace::{
    align_subspaces, align_subspaces_reference, pairwise_cost, pairwise_cost_reference,
    structural_features, structural_features_for, SubspaceAlignConfig, SubspaceAlignment,
    SubspaceError,
};

use cualign_graph::CsrGraph;
use cualign_linalg::DenseMatrix;

/// Which proximity embedder to run — the framework treats this as a
/// pluggable component ("one can easily switch the node embedding", §6.3).
#[derive(Clone, Copy, Debug)]
pub enum EmbeddingMethod {
    /// Dominant-eigenspace embedding of `D^{-1/2}AD^{-1/2}` — the default
    /// for cross-graph alignment: isomorphic graphs embed identically up
    /// to the orthogonal transform that Eq. (2) resolves.
    Spectral(SpectralConfig),
    /// Iterated random projection — fast, but its random basis is not
    /// shared across graphs, so cross-graph use relies entirely on the
    /// anchor-initialized subspace alignment. Kept for within-graph use
    /// and ablations.
    FastRp(FastRpConfig),
    /// Exact NetMF-window factorization (dense `n²` intermediate; small
    /// graphs only) — the embedder cone-align itself uses.
    NetMf(netmf::NetMfConfig),
}

impl Default for EmbeddingMethod {
    fn default() -> Self {
        EmbeddingMethod::Spectral(SpectralConfig::default())
    }
}

impl EmbeddingMethod {
    /// Runs the selected embedder.
    pub fn embed(&self, g: &CsrGraph) -> DenseMatrix {
        let reg = cualign_telemetry::global();
        reg.counter("embed.builds").inc();
        let _span = reg.span(match self {
            EmbeddingMethod::Spectral(_) => "embed.spectral",
            EmbeddingMethod::FastRp(_) => "embed.fastrp",
            EmbeddingMethod::NetMf(_) => "embed.netmf",
        });
        match self {
            EmbeddingMethod::Spectral(cfg) => spectral_embedding(g, cfg),
            EmbeddingMethod::FastRp(cfg) => fastrp_embedding(g, cfg),
            EmbeddingMethod::NetMf(cfg) => netmf::netmf_embedding(g, cfg),
        }
    }

    /// The embedding dimension this method will produce.
    pub fn dim(&self) -> usize {
        match self {
            EmbeddingMethod::Spectral(cfg) => cfg.dim,
            EmbeddingMethod::FastRp(cfg) => cfg.dim,
            EmbeddingMethod::NetMf(cfg) => cfg.dim,
        }
    }

    /// Smallest vertex count a graph must have for this method to run.
    /// The embedding subspace cannot exceed the space: `dim` for every
    /// method, plus the randomized-eigensolver oversampling block for
    /// the spectral method (whose kernel asserts exactly this bound).
    pub fn min_vertices(&self) -> usize {
        match self {
            EmbeddingMethod::Spectral(cfg) => cfg.dim + cfg.oversample,
            EmbeddingMethod::FastRp(cfg) => cfg.dim,
            EmbeddingMethod::NetMf(cfg) => cfg.dim,
        }
    }

    /// A copy with the RNG seed offset — used to give the two input graphs
    /// independent randomness where the method tolerates it.
    pub fn with_seed_offset(&self, offset: u64) -> Self {
        let mut m = *self;
        match &mut m {
            EmbeddingMethod::Spectral(cfg) => cfg.seed = cfg.seed.wrapping_add(offset),
            EmbeddingMethod::FastRp(cfg) => cfg.seed = cfg.seed.wrapping_add(offset),
            EmbeddingMethod::NetMf(cfg) => cfg.seed = cfg.seed.wrapping_add(offset),
        }
        m
    }
}
