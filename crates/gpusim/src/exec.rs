//! The launch simulator: bins work items, assigns virtual warps, counts
//! lane slots and memory transactions, and converts them to modeled time
//! under a [`DeviceSpec`].

use crate::device::DeviceSpec;
use crate::footprint::Footprint;
use cualign_graph::binning::Binning;
use cualign_telemetry::{Counter, Histogram};
use std::sync::{Arc, OnceLock};

/// Interned telemetry handles for the launch chokepoint: every simulated
/// kernel family passes through [`simulate_launch`], so these counters
/// are a complete account of modeled GPU work.
struct GpusimTele {
    launches: Arc<Counter>,
    active_lane_slots: Arc<Counter>,
    idle_lane_slots: Arc<Counter>,
    coalesced_tx: Arc<Counter>,
    scattered_tx: Arc<Counter>,
    launch_seconds: Arc<Histogram>,
}

fn gpusim_tele() -> &'static GpusimTele {
    static TELE: OnceLock<GpusimTele> = OnceLock::new();
    TELE.get_or_init(|| {
        let r = cualign_telemetry::global();
        GpusimTele {
            launches: r.counter("gpusim.launches"),
            active_lane_slots: r.counter("gpusim.active_lane_slots"),
            idle_lane_slots: r.counter("gpusim.idle_lane_slots"),
            coalesced_tx: r.counter("gpusim.coalesced_tx"),
            scattered_tx: r.counter("gpusim.scattered_tx"),
            launch_seconds: r.histogram("gpusim.launch_seconds"),
        }
    })
}

/// Which of the paper's §5 optimizations are active. Each is independently
/// toggleable so the ablation benches can quantify it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecConfig {
    /// Degree binning (one launch per size class).
    pub binning: bool,
    /// Virtual warps sized per bin (requires binning; without it every
    /// item gets one full 32-lane warp).
    pub virtual_warps: bool,
    /// CUDA-stream-like concurrent bin launches.
    pub streams: bool,
}

impl ExecConfig {
    /// Everything on — the cuAlign configuration.
    pub fn optimized() -> Self {
        ExecConfig {
            binning: true,
            virtual_warps: true,
            streams: true,
        }
    }

    /// Everything off — the naive "one warp per item, serial launches"
    /// port the paper warns about.
    pub fn naive() -> Self {
        ExecConfig {
            binning: false,
            virtual_warps: false,
            streams: false,
        }
    }
}

/// Cost of one bin's kernel.
#[derive(Clone, Debug)]
pub struct BinCost {
    /// Lanes per item in this bin.
    pub virtual_warp: u32,
    /// Items in the bin.
    pub items: usize,
    /// Lane-slots that did useful work.
    pub active_lane_slots: u64,
    /// Lane-slots wasted on lanes past the item size.
    pub idle_lane_slots: u64,
    /// Coalesced memory transactions.
    pub coalesced_tx: u64,
    /// Scattered (one-per-lane) memory transactions.
    pub scattered_tx: u64,
    /// Floating-point operations.
    pub flops: u64,
    /// Roofline components in seconds.
    pub compute_s: f64,
    /// DRAM-bytes component.
    pub bandwidth_s: f64,
    /// Transaction-latency component.
    pub latency_s: f64,
    /// Load-imbalance tail: the single longest item's serial time. One
    /// virtual warp processes an item strip by strip, so a hub item
    /// finishes `strips × per-strip-cycles` after the balanced bulk — the
    /// §5 pathology that degree binning + virtual warps attack.
    pub critical_path_s: f64,
}

impl BinCost {
    /// The bin's bottleneck time (balanced bulk, excluding the tail).
    pub fn bottleneck_s(&self) -> f64 {
        self.compute_s.max(self.bandwidth_s).max(self.latency_s)
    }

    /// Bulk plus imbalance tail.
    pub fn total_s(&self) -> f64 {
        self.bottleneck_s() + self.critical_path_s
    }
}

/// Aggregate result of simulating one kernel launch (or one binned family
/// of launches).
#[derive(Clone, Debug)]
pub struct LaunchStats {
    /// Per-bin costs (single pseudo-bin when binning is off).
    pub bins: Vec<BinCost>,
    /// Modeled wall-clock seconds including launch overheads.
    pub seconds: f64,
    /// Number of kernel launches charged.
    pub launches: usize,
}

impl LaunchStats {
    /// Total idle lane slots across bins.
    pub fn idle_lane_slots(&self) -> u64 {
        self.bins.iter().map(|b| b.idle_lane_slots).sum()
    }

    /// Total active lane slots across bins.
    pub fn active_lane_slots(&self) -> u64 {
        self.bins.iter().map(|b| b.active_lane_slots).sum()
    }

    /// Total memory transactions (coalesced + scattered).
    pub fn transactions(&self) -> u64 {
        self.bins
            .iter()
            .map(|b| b.coalesced_tx + b.scattered_tx)
            .sum()
    }

    /// DRAM bytes moved under the device's transaction size.
    pub fn bytes(&self, device: &DeviceSpec) -> u64 {
        self.transactions() * device.transaction_bytes as u64
    }

    /// Fraction of issue slots wasted idle.
    pub fn idle_fraction(&self) -> f64 {
        let a = self.active_lane_slots();
        let i = self.idle_lane_slots();
        if a + i == 0 {
            0.0
        } else {
            i as f64 / (a + i) as f64
        }
    }
}

/// Transactions needed to move `elems` contiguous f64 under `tb`-byte
/// transactions.
#[inline]
fn contiguous_tx(elems: usize, tb: usize) -> u64 {
    ((elems * 8).div_ceil(tb)) as u64
}

/// Simulates launching a kernel over `sizes.len()` work items, where item
/// `i` has size `sizes[i]` and per-item resource use `footprint(sizes[i])`.
///
/// The footprint's element counts are interpreted as spread across the
/// item's lanes: contiguous elements coalesce into transactions, scattered
/// elements pay one transaction each.
pub fn simulate_launch<F>(
    device: &DeviceSpec,
    cfg: &ExecConfig,
    sizes: &[usize],
    footprint: F,
) -> LaunchStats
where
    F: Fn(usize) -> Footprint + Sync,
{
    let simt = device.warp_width > 1;
    // Partition items into bins.
    let binning = if cfg.binning && simt {
        Binning::by_size(sizes.len(), |i| sizes[i])
    } else {
        Binning::by_size(sizes.len(), |_| 1).merged_single()
    };

    let mut bins = Vec::new();
    for bin in binning.bins() {
        let vw: u32 = if !simt {
            1
        } else if cfg.binning && cfg.virtual_warps {
            bin.virtual_warp
        } else {
            device.warp_width
        };
        let mut active: u64 = 0;
        let mut idle: u64 = 0;
        let mut coal: u64 = 0;
        let mut scat: u64 = 0;
        let mut flops: u64 = 0;
        let mut max_item_cycles: f64 = 0.0;
        for &item in &bin.items {
            let s = sizes[item as usize].max(1);
            let fp = footprint(sizes[item as usize]);
            let strips = s.div_ceil(vw as usize) as u64;
            active += s as u64;
            idle += strips * vw as u64 - s as u64;
            coal += contiguous_tx(fp.contiguous_reads, device.transaction_bytes)
                + contiguous_tx(fp.contiguous_writes, device.transaction_bytes);
            scat += (fp.scattered_reads + fp.scattered_writes) as u64;
            flops += fp.flops as u64;
            // Serial time of this item on its virtual warp: each strip
            // issues its lane loads (amortized by the device's
            // memory-level parallelism when scattered, pipelined when
            // streaming) and its lane math.
            let flops_per_elem = fp.flops as f64 / s as f64;
            let stall = if fp.scattered_reads + fp.scattered_writes > 0 {
                device.dram_latency_cycles / device.memory_parallelism
            } else {
                8.0
            };
            let item_cycles =
                strips as f64 * (flops_per_elem / device.flops_per_lane_cycle + stall);
            max_item_cycles = max_item_cycles.max(item_cycles);
        }
        // Roofline components.
        let compute_s =
            (flops as f64 / device.flops_per_lane_cycle + idle as f64) / device.lane_throughput();
        let bytes = (coal + scat) * device.transaction_bytes as u64;
        let bandwidth_s = bytes as f64 / (device.dram_gbps * 1e9);
        // Only scattered transactions are latency-bound: coalesced traffic
        // streams through the prefetch/pipeline machinery and is charged to
        // bandwidth alone.
        let latency_s = scat as f64 * device.dram_latency_cycles
            / (device.warp_slots() as f64 * device.memory_parallelism * device.clock_ghz * 1e9);
        let critical_path_s = max_item_cycles / (device.clock_ghz * 1e9);
        bins.push(BinCost {
            virtual_warp: vw,
            items: bin.items.len(),
            active_lane_slots: active,
            idle_lane_slots: idle,
            coalesced_tx: coal,
            scattered_tx: scat,
            flops,
            compute_s,
            bandwidth_s,
            latency_s,
            critical_path_s,
        });
    }

    let launches = bins.len().max(1);
    let tail: f64 = bins.iter().map(|b| b.critical_path_s).fold(0.0, f64::max);
    let seconds = if cfg.streams && simt {
        // Bins overlap: each hardware resource pipelines across bins; the
        // slowest resource bounds the launch family, plus the longest
        // item's tail. One overhead charge.
        let c: f64 = bins.iter().map(|b| b.compute_s).sum();
        let bw: f64 = bins.iter().map(|b| b.bandwidth_s).sum();
        let lt: f64 = bins.iter().map(|b| b.latency_s).sum();
        c.max(bw).max(lt) + tail + device.launch_overhead_s
    } else {
        // Serial launches: each bin pays its own bulk + tail.
        bins.iter().map(|b| b.total_s()).sum::<f64>() + device.launch_overhead_s * launches as f64
    };

    let stats = LaunchStats {
        bins,
        seconds,
        launches,
    };
    let tele = gpusim_tele();
    tele.launches.add(stats.launches as u64);
    tele.active_lane_slots.add(stats.active_lane_slots());
    tele.idle_lane_slots.add(stats.idle_lane_slots());
    if cualign_telemetry::enabled() {
        tele.coalesced_tx
            .add(stats.bins.iter().map(|b| b.coalesced_tx).sum());
        tele.scattered_tx
            .add(stats.bins.iter().map(|b| b.scattered_tx).sum());
        tele.launch_seconds.record(stats.seconds);
    }
    stats
}

/// Helper: merge a Binning into one pseudo-bin keeping all items.
trait MergeSingle {
    fn merged_single(self) -> Binning;
}

impl MergeSingle for Binning {
    fn merged_single(self) -> Binning {
        let n = self.num_items();
        Binning::by_size(n, |_| usize::MAX / 2) // everything in the overflow bin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_footprint(s: usize) -> Footprint {
        Footprint {
            contiguous_reads: s,
            scattered_reads: 0,
            contiguous_writes: s,
            scattered_writes: 0,
            flops: 2 * s,
        }
    }

    #[test]
    fn cpu_has_no_idle_lanes() {
        let cpu = DeviceSpec::epyc7702p();
        let sizes = vec![3usize, 100, 7, 1];
        let st = simulate_launch(&cpu, &ExecConfig::optimized(), &sizes, unit_footprint);
        assert_eq!(st.idle_lane_slots(), 0);
    }

    #[test]
    fn binning_reduces_idle_slots_on_skewed_sizes() {
        let gpu = DeviceSpec::a100();
        // Many tiny items + a few huge ones: the §5 pathology.
        let mut sizes = vec![2usize; 1000];
        sizes.extend(std::iter::repeat_n(500, 10));
        let naive = simulate_launch(&gpu, &ExecConfig::naive(), &sizes, unit_footprint);
        let opt = simulate_launch(&gpu, &ExecConfig::optimized(), &sizes, unit_footprint);
        assert!(
            opt.idle_lane_slots() < naive.idle_lane_slots() / 2,
            "binning did not cut idle slots: {} vs {}",
            opt.idle_lane_slots(),
            naive.idle_lane_slots()
        );
        assert!(opt.seconds <= naive.seconds);
    }

    #[test]
    fn scattered_access_costs_more_transactions() {
        let gpu = DeviceSpec::a100();
        let sizes = vec![64usize; 100];
        let coal = simulate_launch(&gpu, &ExecConfig::optimized(), &sizes, |s| Footprint {
            contiguous_reads: s,
            ..Default::default()
        });
        let scat = simulate_launch(&gpu, &ExecConfig::optimized(), &sizes, |s| Footprint {
            scattered_reads: s,
            ..Default::default()
        });
        // 32-byte transactions hold 4 contiguous f64 → 4× fewer transactions.
        assert_eq!(scat.transactions(), 4 * coal.transactions());
    }

    #[test]
    fn streams_overlap_bins() {
        let gpu = DeviceSpec::a100();
        let mut sizes = vec![4usize; 500];
        sizes.extend(std::iter::repeat_n(100, 500));
        let no_streams = simulate_launch(
            &gpu,
            &ExecConfig {
                streams: false,
                ..ExecConfig::optimized()
            },
            &sizes,
            unit_footprint,
        );
        let streams = simulate_launch(&gpu, &ExecConfig::optimized(), &sizes, unit_footprint);
        assert!(streams.seconds <= no_streams.seconds);
    }

    #[test]
    fn gpu_beats_cpu_on_streaming_kernel() {
        // A large regular kernel is bandwidth-bound: the A100 should win by
        // roughly the bandwidth ratio (~13×).
        let gpu = DeviceSpec::a100();
        let cpu = DeviceSpec::epyc7702p();
        let sizes = vec![64usize; 200_000];
        let g = simulate_launch(&gpu, &ExecConfig::optimized(), &sizes, unit_footprint);
        let c = simulate_launch(&cpu, &ExecConfig::optimized(), &sizes, unit_footprint);
        let speedup = c.seconds / g.seconds;
        assert!(speedup > 5.0 && speedup < 25.0, "speedup {speedup}");
    }

    #[test]
    fn empty_launch() {
        let gpu = DeviceSpec::a100();
        let st = simulate_launch(&gpu, &ExecConfig::optimized(), &[], unit_footprint);
        assert_eq!(st.transactions(), 0);
        assert!(st.seconds >= 0.0);
    }

    #[test]
    fn idle_fraction_bounds() {
        let gpu = DeviceSpec::a100();
        let sizes = vec![1usize; 64];
        let st = simulate_launch(&gpu, &ExecConfig::naive(), &sizes, unit_footprint);
        // Size-1 items on 32-wide warps: 31/32 idle.
        assert!((st.idle_fraction() - 31.0 / 32.0).abs() < 1e-9);
    }
}
