//! Parallel locally-dominant matching — the two-queue algorithm of §4.3.
//!
//! Khan et al.'s formulation alternates between a *current* queue `Q_C` of
//! vertices matched in the previous round and a *next* queue `Q_N` being
//! filled in the current round, so reads and writes never contend. Each
//! round:
//!
//! 1. the unmatched neighbors of `Q_C` whose candidate pointer was
//!    invalidated recompute their candidates (rayon-parallel),
//! 2. mutual candidate pairs are committed (they are automatically
//!    vertex-disjoint: a vertex has exactly one candidate), and
//! 3. the endpoints of the committed edges become `Q_N`.
//!
//! Bipartiteness gives a free dedup rule: every edge has exactly one A-side
//! endpoint, so only the A-side thread reports a mutual pair.
//!
//! Because the crate preference order is strictly total, the locally
//! dominant matching is **unique** — this function returns bit-identically
//! the same matching as [`crate::locally_dominant_serial`] regardless of
//! thread schedule (pinned by tests and by the GPU-simulator consistency
//! suite).

use crate::matching::Matching;
use crate::prefer;
use cualign_graph::{BipartiteGraph, EdgeId, VertexId};
use rayon::prelude::*;

const EDGE_NONE: EdgeId = EdgeId::MAX;

/// Execution statistics of a parallel matching run, for the benches and
/// the GPU model (which charges per round).
#[derive(Clone, Debug, Default)]
pub struct MatchStats {
    /// Queue-driven rounds after the initial pointer phase.
    pub rounds: usize,
    /// Total candidate recomputations across all rounds.
    pub recomputations: usize,
    /// Per-round breakdown, in execution order.
    pub detail: Vec<RoundDetail>,
}

/// What one queue round did — the unit of work the GPU model charges.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundDetail {
    /// Edges committed this round.
    pub matched: usize,
    /// Vertices whose candidate was recomputed.
    pub recomputed: usize,
    /// Sum of the degrees of those vertices (the round's scan volume).
    pub recomputed_degree_sum: usize,
}

#[inline]
fn other_gv(l: &BipartiteGraph, e: EdgeId, gv: usize) -> usize {
    let le = l.edge(e);
    let ga = le.a as usize;
    let gb = l.na() + le.b as usize;
    if gv == ga {
        gb
    } else {
        ga
    }
}

/// Best eligible edge for global vertex `gv` (positive weight, opposite
/// endpoint unmatched), or `EDGE_NONE`.
fn compute_candidate(l: &BipartiteGraph, matched: &[bool], gv: usize) -> EdgeId {
    let na = l.na();
    let mut best = EDGE_NONE;
    let mut consider = |e: EdgeId, other: usize| {
        // NaN-weighted edges are excluded along with non-positive ones.
        let w = l.weights()[e as usize];
        if w <= 0.0 || w.is_nan() || matched[other] {
            return;
        }
        if best == EDGE_NONE || prefer(l, e, best) {
            best = e;
        }
    };
    if gv < na {
        for (b, e) in l.incident_a(gv as VertexId) {
            consider(e, na + b as usize);
        }
    } else {
        for (a, e) in l.incident_b((gv - na) as VertexId) {
            consider(e, a as usize);
        }
    }
    best
}

/// Computes the locally dominant matching of `l` with the two-queue
/// parallel algorithm. See [`locally_dominant_parallel_with_stats`] for the
/// round/recomputation counters.
pub fn locally_dominant_parallel(l: &BipartiteGraph) -> Matching {
    locally_dominant_parallel_with_stats(l).0
}

/// As [`locally_dominant_parallel`], also returning [`MatchStats`].
pub fn locally_dominant_parallel_with_stats(l: &BipartiteGraph) -> (Matching, MatchStats) {
    let na = l.na();
    let nv = na + l.nb();
    let mut matched = vec![false; nv];
    let mut cand: Vec<EdgeId> = (0..nv)
        .into_par_iter()
        .map(|gv| compute_candidate(l, &matched, gv))
        .collect();
    let mut chosen: Vec<EdgeId> = Vec::new();
    let mut stats = MatchStats {
        rounds: 0,
        recomputations: nv,
        detail: Vec::new(),
    };

    // Initial pointer phase: commit every mutual pair. A-side reports.
    let mut newly: Vec<EdgeId> = (0..na)
        .into_par_iter()
        .filter_map(|a| {
            let e = cand[a];
            if e == EDGE_NONE {
                return None;
            }
            let b_gv = na + l.edge(e).b as usize;
            (cand[b_gv] == e).then_some(e)
        })
        .collect();

    // Queue-driven rounds.
    while !newly.is_empty() {
        stats.rounds += 1;
        // Commit this round's edges and build Q_C from their endpoints.
        let mut qc: Vec<usize> = Vec::with_capacity(newly.len() * 2);
        for &e in &newly {
            let le = l.edge(e);
            let (ga, gb) = (le.a as usize, na + le.b as usize);
            debug_assert!(!matched[ga] && !matched[gb]);
            matched[ga] = true;
            matched[gb] = true;
            chosen.push(e);
            qc.push(ga);
            qc.push(gb);
        }

        // Affected vertices: unmatched neighbors of Q_C whose candidate
        // points at a vertex that just got matched.
        let mut affected: Vec<usize> = qc
            .par_iter()
            .flat_map_iter(|&gv| {
                let na = l.na();
                let iter: Box<dyn Iterator<Item = usize>> = if gv < na {
                    Box::new(
                        l.incident_a(gv as VertexId)
                            .map(move |(b, _)| na + b as usize),
                    )
                } else {
                    Box::new(l.incident_b((gv - na) as VertexId).map(|(a, _)| a as usize))
                };
                iter
            })
            .filter(|&w| {
                if matched[w] {
                    return false;
                }
                let e = cand[w];
                e != EDGE_NONE && matched[other_gv(l, e, w)]
            })
            .collect();
        affected.par_sort_unstable();
        affected.dedup();
        stats.recomputations += affected.len();
        let degree_of = |gv: usize| {
            if gv < na {
                l.degree_a(gv as VertexId)
            } else {
                l.degree_b((gv - na) as VertexId)
            }
        };
        stats.detail.push(RoundDetail {
            matched: newly.len(),
            recomputed: affected.len(),
            recomputed_degree_sum: affected.iter().map(|&w| degree_of(w)).sum(),
        });

        // Recompute candidates for the affected set, then publish.
        let fresh: Vec<(usize, EdgeId)> = affected
            .par_iter()
            .map(|&w| (w, compute_candidate(l, &matched, w)))
            .collect();
        for &(w, e) in &fresh {
            cand[w] = e;
        }

        // Mutual pairs among vertices with live candidates. Only pairs
        // where at least one side was just recomputed can be new, and the
        // A-side endpoint reports, so scan affected ∪ their candidates'
        // A-endpoints — conservatively: scan the A-endpoints of all fresh
        // candidate edges.
        let mut check: Vec<usize> = fresh
            .iter()
            .filter(|&&(_, e)| e != EDGE_NONE)
            .map(|&(_, e)| l.edge(e).a as usize)
            .collect();
        check.sort_unstable();
        check.dedup();
        newly = check
            .par_iter()
            .filter_map(|&a| {
                if matched[a] {
                    return None;
                }
                let e = cand[a];
                if e == EDGE_NONE {
                    return None;
                }
                let b_gv = na + l.edge(e).b as usize;
                (!matched[b_gv] && cand[b_gv] == e).then_some(e)
            })
            .collect();
        newly.sort_unstable();
        newly.dedup();
    }

    let tele = match_tele();
    tele.runs.inc();
    tele.rounds.add(stats.rounds as u64);
    tele.recomputations.add(stats.recomputations as u64);
    (Matching::from_edge_ids(l, chosen), stats)
}

/// Interned telemetry counters for the parallel matcher: round counts are
/// the quantity the GPU model charges per-launch, so surfacing them in
/// every run keeps the model's inputs observable.
struct MatchTele {
    runs: std::sync::Arc<cualign_telemetry::Counter>,
    rounds: std::sync::Arc<cualign_telemetry::Counter>,
    recomputations: std::sync::Arc<cualign_telemetry::Counter>,
}

fn match_tele() -> &'static MatchTele {
    static TELE: std::sync::OnceLock<MatchTele> = std::sync::OnceLock::new();
    TELE.get_or_init(|| {
        let r = cualign_telemetry::global();
        MatchTele {
            runs: r.counter("matching.runs"),
            rounds: r.counter("matching.rounds"),
            recomputations: r.counter("matching.recomputations"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locally_dominant::locally_dominant_serial;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_l(na: usize, nb: usize, m: usize, seed: u64) -> BipartiteGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let triples: Vec<(VertexId, VertexId, f64)> = (0..m)
            .map(|_| {
                (
                    rng.gen_range(0..na as VertexId),
                    rng.gen_range(0..nb as VertexId),
                    rng.gen::<f64>(),
                )
            })
            .collect();
        BipartiteGraph::from_weighted_edges(na, nb, &triples)
    }

    #[test]
    fn matches_serial_on_random_instances() {
        for seed in 0..15 {
            let l = random_l(50, 50, 400, seed);
            let serial = locally_dominant_serial(&l);
            let parallel = locally_dominant_parallel(&l);
            assert_eq!(serial, parallel, "divergence at seed {seed}");
        }
    }

    #[test]
    fn matches_serial_with_ties() {
        // All weights equal: tie-breaking alone decides everything.
        let mut rng = StdRng::seed_from_u64(7);
        let triples: Vec<(VertexId, VertexId, f64)> = (0..200)
            .map(|_| (rng.gen_range(0..20), rng.gen_range(0..20), 1.0))
            .collect();
        let l = BipartiteGraph::from_weighted_edges(20, 20, &triples);
        assert_eq!(locally_dominant_serial(&l), locally_dominant_parallel(&l));
    }

    #[test]
    fn valid_and_maximal() {
        let l = random_l(100, 80, 900, 99);
        let (m, stats) = locally_dominant_parallel_with_stats(&l);
        m.check_valid(&l).unwrap();
        assert!(m.is_maximal(&l));
        assert!(stats.rounds >= 1);
    }

    #[test]
    fn chain_instance() {
        // The cascade from the serial tests must round through the queues.
        let l = BipartiteGraph::from_weighted_edges(
            3,
            3,
            &[
                (0, 0, 3.0),
                (1, 0, 2.5),
                (1, 1, 2.0),
                (2, 1, 1.5),
                (2, 2, 1.0),
            ],
        );
        let (m, stats) = locally_dominant_parallel_with_stats(&l);
        assert_eq!(m.len(), 3);
        assert!(stats.rounds >= 2, "cascade must need multiple rounds");
    }

    #[test]
    fn empty_and_nonpositive() {
        let l = BipartiteGraph::from_weighted_edges(4, 4, &[(0, 0, -3.0), (1, 1, 0.0)]);
        let m = locally_dominant_parallel(&l);
        assert!(m.is_empty());
    }

    #[test]
    fn skewed_degree_instance() {
        // One hub on each side touching everything — stress the affected-set
        // bookkeeping.
        let mut triples = Vec::new();
        for i in 0..50u32 {
            triples.push((0, i, 1.0 + i as f64));
            triples.push((i, 0, 2.0 + i as f64));
        }
        let l = BipartiteGraph::from_weighted_edges(50, 50, &triples);
        let serial = locally_dominant_serial(&l);
        let parallel = locally_dominant_parallel(&l);
        assert_eq!(serial, parallel);
    }
}
