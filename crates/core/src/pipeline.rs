//! The end-to-end cuAlign pipeline (paper Fig. 2): embed → align subspaces
//! → sparsify → (belief propagation ⇄ matching)* → score.

use crate::config::AlignerConfig;
use crate::scoring::{score_alignment, AlignmentScores};
use cualign_bp::{BpEngine, BpOutcome};
use cualign_embed::align_subspaces;
use cualign_graph::{CsrGraph, VertexId};
use cualign_matching::Matching;
use cualign_overlap::OverlapMatrix;
use std::time::Instant;

/// Wall-clock seconds per pipeline stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Proximity embedding of both graphs.
    pub embedding_s: f64,
    /// Subspace alignment (Eq. 2).
    pub subspace_s: f64,
    /// kNN sparsification (constructing `L`).
    pub sparsify_s: f64,
    /// Overlap matrix `S` construction (Algorithm 3).
    pub overlap_s: f64,
    /// BP + matching optimization loop.
    pub optimize_s: f64,
}

impl StageTimings {
    /// Initialization time (the run-once part of Fig. 2).
    pub fn init_s(&self) -> f64 {
        self.embedding_s + self.subspace_s + self.sparsify_s + self.overlap_s
    }

    /// Total pipeline time.
    pub fn total_s(&self) -> f64 {
        self.init_s() + self.optimize_s
    }
}

/// Output of a full cuAlign run.
pub struct AlignmentResult {
    /// The best matching found (on `L`'s edge ids).
    pub matching: Matching,
    /// Vertex mapping `V_A → V_B` extracted from the matching.
    pub mapping: Vec<Option<VertexId>>,
    /// Quality metrics of the mapping.
    pub scores: AlignmentScores,
    /// The BP run's outcome (history, best iteration, objective).
    pub bp: BpOutcome,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
    /// Size of the sparsified graph `L`.
    pub l_edges: usize,
    /// Nonzeros of the overlap matrix `S`.
    pub s_nnz: usize,
}

/// The cuAlign aligner. Construct with a config, call
/// [`Aligner::align`].
pub struct Aligner {
    cfg: AlignerConfig,
}

impl Aligner {
    /// Creates an aligner with the given configuration.
    pub fn new(cfg: AlignerConfig) -> Self {
        Aligner { cfg }
    }

    /// Convenience constructor with [`AlignerConfig::default`].
    pub fn with_defaults() -> Self {
        Aligner { cfg: AlignerConfig::default() }
    }

    /// The active configuration.
    pub fn config(&self) -> &AlignerConfig {
        &self.cfg
    }

    /// Runs the full pipeline on graphs `a` and `b`.
    pub fn align(&self, a: &CsrGraph, b: &CsrGraph) -> AlignmentResult {
        let mut timings = StageTimings::default();

        // Stage 1: proximity embeddings. Different seeds per side — the
        // subspace stage must not rely on shared randomness.
        let t = Instant::now();
        let y1 = self.cfg.embedding.embed(a);
        let y2 = self.cfg.embedding.with_seed_offset(0x9e3779b97f4a7c15).embed(b);
        timings.embedding_s = t.elapsed().as_secs_f64();

        // Stage 2: subspace alignment (Eq. 2).
        let t = Instant::now();
        let sub = align_subspaces(&y1, &y2, a, b, &self.cfg.subspace);
        timings.subspace_s = t.elapsed().as_secs_f64();

        // Stage 3: sparsification → L (kNN by default; see
        // `SparsityChoice` for the alternative rules).
        let t = Instant::now();
        let l = self.cfg.build_l(&sub.ya, &sub.yb);
        timings.sparsify_s = t.elapsed().as_secs_f64();

        // Stage 4: overlap matrix S (Algorithm 3).
        let t = Instant::now();
        let s = OverlapMatrix::build(a, b, &l);
        timings.overlap_s = t.elapsed().as_secs_f64();

        // Stage 5: BP ⇄ matching optimization (Algorithm 2).
        let t = Instant::now();
        let bp = BpEngine::new(&l, &s, &self.cfg.bp).run();
        timings.optimize_s = t.elapsed().as_secs_f64();

        let mapping: Vec<Option<VertexId>> = (0..a.num_vertices())
            .map(|u| bp.best_matching.mate_of_a(u as VertexId))
            .collect();
        let scores = score_alignment(a, b, &mapping);

        AlignmentResult {
            mapping,
            scores,
            timings,
            l_edges: l.num_edges(),
            s_nnz: s.nnz(),
            matching: bp.best_matching.clone(),
            bp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SparsityChoice;
    use cualign_graph::generators::{duplication_divergence, erdos_renyi_gnm};
    use cualign_graph::permutation::AlignmentInstance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_cfg() -> AlignerConfig {
        use cualign_embed::{EmbeddingMethod, SpectralConfig};
        let mut cfg = AlignerConfig::default();
        cfg.embedding = EmbeddingMethod::Spectral(SpectralConfig {
            dim: 24,
            oversample: 12,
            ..Default::default()
        });
        cfg.bp.max_iters = 10;
        cfg.sparsity = SparsityChoice::K(6);
        cfg.subspace.anchors = 0;
        cfg
    }

    #[test]
    fn recovers_permuted_er_graph() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = erdos_renyi_gnm(150, 450, &mut rng);
        let inst = AlignmentInstance::permuted_pair(a, &mut rng);
        let result = Aligner::new(small_cfg()).align(&inst.a, &inst.b);
        assert!(
            result.scores.ncv_gs3 > 0.6,
            "NCV-GS3 only {}",
            result.scores.ncv_gs3
        );
        assert!(
            result.matching.len() <= inst.a.num_vertices().min(inst.b.num_vertices())
        );
    }

    #[test]
    fn recovers_ppi_like_graph() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = duplication_divergence(200, 0.45, 0.35, &mut rng);
        let inst = AlignmentInstance::permuted_pair(a, &mut rng);
        let result = Aligner::new(small_cfg()).align(&inst.a, &inst.b);
        assert!(
            result.scores.ncv_gs3 > 0.5,
            "NCV-GS3 only {}",
            result.scores.ncv_gs3
        );
        // Ground-truth recovery should be well above chance.
        let nc = inst.node_correctness(&result.mapping);
        assert!(nc > 0.3, "node correctness {nc}");
    }

    #[test]
    fn timings_and_sizes_populated() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = erdos_renyi_gnm(80, 200, &mut rng);
        let inst = AlignmentInstance::permuted_pair(a, &mut rng);
        let result = Aligner::new(small_cfg()).align(&inst.a, &inst.b);
        assert!(result.timings.total_s() > 0.0);
        assert!(result.timings.init_s() > 0.0);
        assert!(result.l_edges >= 80 * 6);
        // 10 BP iterations + the iteration-0 direct rounding.
        assert!(result.bp.history.len() == 11);
    }

    #[test]
    fn deterministic_given_config() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = erdos_renyi_gnm(60, 150, &mut rng);
        let inst = AlignmentInstance::permuted_pair(a, &mut rng);
        let r1 = Aligner::new(small_cfg()).align(&inst.a, &inst.b);
        let r2 = Aligner::new(small_cfg()).align(&inst.a, &inst.b);
        assert_eq!(r1.mapping, r2.mapping);
        assert_eq!(r1.scores, r2.scores);
    }
}
