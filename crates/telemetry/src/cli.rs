//! `--telemetry <off|summary|json:PATH>` plumbing shared by the CLI and
//! every bench binary.
//!
//! Parsing is pure ([`TelemetryMode::parse`]); [`TelemetryMode::from_env_args`]
//! scans a raw argument list (with a `CUALIGN_TELEMETRY` environment
//! fallback, so bench binaries that take no arguments can still be
//! switched on). Activating a mode ([`TelemetryMode::activate`]) flips the
//! global enabled flag and returns a [`TelemetrySink`] whose
//! [`TelemetrySink::emit`] writes the final snapshot wherever the mode
//! points.

use std::fmt;
use std::io::Write as _;
use std::path::PathBuf;

use crate::registry::Registry;

/// Where (and whether) a run's telemetry snapshot goes.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum TelemetryMode {
    /// No recording beyond the always-on atomics; nothing emitted.
    #[default]
    Off,
    /// Record everything; print the pretty tree to stderr at exit.
    Summary,
    /// Record everything; append one JSON line to the given file.
    Json(PathBuf),
}

impl TelemetryMode {
    /// Parses `off`, `summary`, or `json:PATH`.
    pub fn parse(s: &str) -> Result<TelemetryMode, String> {
        match s {
            "off" => Ok(TelemetryMode::Off),
            "summary" => Ok(TelemetryMode::Summary),
            _ => match s.strip_prefix("json:") {
                Some(path) if !path.is_empty() => Ok(TelemetryMode::Json(PathBuf::from(path))),
                Some(_) => Err("--telemetry json: requires a path (json:PATH)".to_string()),
                None => Err(format!(
                    "unknown telemetry mode '{s}' (expected off, summary, or json:PATH)"
                )),
            },
        }
    }

    /// Finds `--telemetry MODE` (or `--telemetry=MODE`) in `args`,
    /// falling back to the `CUALIGN_TELEMETRY` environment variable, then
    /// to `Off`. The last occurrence wins.
    pub fn from_env_args(args: impl Iterator<Item = String>) -> Result<TelemetryMode, String> {
        let mut found = None;
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            if arg == "--telemetry" {
                match args.next() {
                    Some(v) => found = Some(TelemetryMode::parse(&v)?),
                    None => return Err("--telemetry requires a value".to_string()),
                }
            } else if let Some(v) = arg.strip_prefix("--telemetry=") {
                found = Some(TelemetryMode::parse(v)?);
            }
        }
        if let Some(mode) = found {
            return Ok(mode);
        }
        match std::env::var("CUALIGN_TELEMETRY") {
            Ok(v) if !v.is_empty() => TelemetryMode::parse(&v),
            _ => Ok(TelemetryMode::Off),
        }
    }

    /// Whether this mode records (anything other than [`TelemetryMode::Off`]).
    pub fn is_on(&self) -> bool {
        *self != TelemetryMode::Off
    }

    /// Flips the global enabled flag to match this mode and returns the
    /// sink to [`TelemetrySink::emit`] when the run finishes.
    pub fn activate(self) -> TelemetrySink {
        crate::set_enabled(self.is_on());
        TelemetrySink { mode: self }
    }
}

impl fmt::Display for TelemetryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryMode::Off => write!(f, "off"),
            TelemetryMode::Summary => write!(f, "summary"),
            TelemetryMode::Json(p) => write!(f, "json:{}", p.display()),
        }
    }
}

/// An activated [`TelemetryMode`], ready to emit a snapshot at run end.
#[derive(Debug)]
pub struct TelemetrySink {
    mode: TelemetryMode,
}

impl TelemetrySink {
    /// The mode this sink was activated with.
    pub fn mode(&self) -> &TelemetryMode {
        &self.mode
    }

    /// Snapshots `registry` and writes it out: pretty tree to stderr for
    /// `summary`, one appended JSON line for `json:PATH`, nothing for
    /// `off`. A snapshot with nothing recorded
    /// ([`crate::Snapshot::is_empty`]) emits nothing in any mode, so a
    /// run whose telemetry never switched on does not leave `{}`-husk
    /// lines in JSON sinks.
    pub fn emit(&self, registry: &Registry) -> std::io::Result<()> {
        match &self.mode {
            TelemetryMode::Off => Ok(()),
            TelemetryMode::Summary => {
                let snapshot = registry.snapshot();
                if !snapshot.is_empty() {
                    eprint!("{}", snapshot.render_tree());
                }
                Ok(())
            }
            TelemetryMode::Json(path) => {
                let snapshot = registry.snapshot();
                if snapshot.is_empty() {
                    return Ok(());
                }
                let mut file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?;
                writeln!(file, "{}", snapshot.to_json())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_modes() {
        assert_eq!(TelemetryMode::parse("off"), Ok(TelemetryMode::Off));
        assert_eq!(TelemetryMode::parse("summary"), Ok(TelemetryMode::Summary));
        assert_eq!(
            TelemetryMode::parse("json:/tmp/t.json"),
            Ok(TelemetryMode::Json(PathBuf::from("/tmp/t.json")))
        );
        assert!(TelemetryMode::parse("json:").is_err());
        assert!(TelemetryMode::parse("verbose").is_err());
    }

    #[test]
    fn scans_args_in_both_flag_styles() {
        fn args(v: &[&str]) -> std::vec::IntoIter<String> {
            v.iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .into_iter()
        }
        assert_eq!(
            TelemetryMode::from_env_args(args(&["--telemetry", "summary"])),
            Ok(TelemetryMode::Summary)
        );
        assert_eq!(
            TelemetryMode::from_env_args(args(&["--telemetry=json:x.json", "--seed", "7"])),
            Ok(TelemetryMode::Json(PathBuf::from("x.json")))
        );
        // Last occurrence wins.
        assert_eq!(
            TelemetryMode::from_env_args(args(&["--telemetry=summary", "--telemetry", "off"])),
            Ok(TelemetryMode::Off)
        );
        assert!(TelemetryMode::from_env_args(args(&["--telemetry"])).is_err());
    }

    #[test]
    fn json_sink_appends_one_line_per_emit() {
        let dir =
            std::env::temp_dir().join(format!("cualign-telemetry-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let _ = std::fs::remove_file(&path);

        let sink = TelemetryMode::Json(path.clone()).activate();
        let r = Registry::new();
        r.counter("runs").inc();
        sink.emit(&r).unwrap();
        r.counter("runs").inc();
        sink.emit(&r).unwrap();

        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"runs\":1"));
        assert!(lines[1].contains("\"runs\":2"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        std::fs::remove_file(&path).unwrap();
        crate::set_enabled(false);
    }

    #[test]
    fn empty_snapshot_emits_nothing() {
        let dir =
            std::env::temp_dir().join(format!("cualign-telemetry-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.json");
        let _ = std::fs::remove_file(&path);

        let sink = TelemetryMode::Json(path.clone()).activate();
        let r = Registry::new();
        assert!(r.snapshot().is_empty());
        sink.emit(&r).unwrap();
        assert!(
            !path.exists(),
            "an empty snapshot must not leave a husk record"
        );

        // The moment anything records, emission resumes.
        r.counter("runs").inc();
        assert!(!r.snapshot().is_empty());
        sink.emit(&r).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap().lines().count(), 1);
        std::fs::remove_file(&path).unwrap();
        crate::set_enabled(false);
    }

    #[test]
    fn display_round_trips() {
        for s in ["off", "summary", "json:a/b.json"] {
            let mode = TelemetryMode::parse(s).unwrap();
            assert_eq!(TelemetryMode::parse(&mode.to_string()).unwrap(), mode);
        }
    }
}
