//! The Suitor algorithm (Manne & Halappanavar) for half-approximate
//! weighted matching.
//!
//! Where the pointer-based locally dominant algorithm has every vertex
//! *propose to* its heaviest eligible neighbor and waits for mutual
//! proposals, Suitor inverts the bookkeeping: each vertex tracks its best
//! *incoming* proposal (its current suitor), and a proposing vertex may
//! displace a weaker suitor, sending the displaced vertex back to
//! propose elsewhere — a deferred-acceptance scheme à la Gale–Shapley.
//!
//! Under a strict total preference order Suitor computes **exactly the
//! locally dominant matching**, so it is both a production-grade
//! alternative (often faster in practice: no candidate recomputation
//! scans) and a differential-testing partner for the other matchers.

use crate::matching::Matching;
use crate::prefer;
use cualign_graph::{BipartiteGraph, EdgeId, VertexId};

const EDGE_NONE: EdgeId = EdgeId::MAX;

/// Computes the locally dominant matching of `l` with the Suitor
/// algorithm. Only strictly positive edge weights are eligible.
pub fn suitor_matching(l: &BipartiteGraph) -> Matching {
    let na = l.na();
    let nv = na + l.nb();
    // suitor[gv] = edge id of the best proposal vertex gv currently holds.
    let mut suitor: Vec<EdgeId> = vec![EDGE_NONE; nv];
    // Work stack of vertices that still need to propose.
    let mut work: Vec<usize> = (0..nv).collect();

    // The edge's opposite endpoint as a global vertex.
    let other_gv = |e: EdgeId, gv: usize| -> usize {
        let le = l.edge(e);
        let ga = le.a as usize;
        let gb = na + le.b as usize;
        if gv == ga {
            gb
        } else {
            ga
        }
    };

    while let Some(u) = work.pop() {
        // u proposes along its best edge whose opposite endpoint would
        // accept (i.e. u's edge beats the endpoint's current suitor).
        let mut best: EdgeId = EDGE_NONE;
        if u < na {
            for (_, e) in l.incident_a(u as VertexId) {
                // NaN-weighted edges are excluded along with non-positive ones.
                let w = l.weights()[e as usize];
                if w <= 0.0 || w.is_nan() {
                    continue;
                }
                let v = other_gv(e, u);
                let current = suitor[v];
                let acceptable = current == EDGE_NONE || prefer(l, e, current);
                if acceptable && (best == EDGE_NONE || prefer(l, e, best)) {
                    best = e;
                }
            }
        } else {
            for (_, e) in l.incident_b((u - na) as VertexId) {
                // NaN-weighted edges are excluded along with non-positive ones.
                let w = l.weights()[e as usize];
                if w <= 0.0 || w.is_nan() {
                    continue;
                }
                let v = other_gv(e, u);
                let current = suitor[v];
                let acceptable = current == EDGE_NONE || prefer(l, e, current);
                if acceptable && (best == EDGE_NONE || prefer(l, e, best)) {
                    best = e;
                }
            }
        }
        if best == EDGE_NONE {
            continue; // u stays unmatched (for now)
        }
        let v = other_gv(best, u);
        let displaced = suitor[v];
        suitor[v] = best;
        if displaced != EDGE_NONE {
            // The previous suitor of v must go propose elsewhere.
            work.push(other_gv(displaced, v));
        }
    }

    // An edge is matched iff it is a mutual suitor pair. Report from the
    // A side to count each edge once.
    let mut chosen = Vec::new();
    for a in 0..na {
        let e = suitor[a];
        if e == EDGE_NONE {
            continue;
        }
        let b_gv = na + l.edge(e).b as usize;
        if suitor[b_gv] == e {
            chosen.push(e);
        }
    }
    Matching::from_edge_ids(l, chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locally_dominant::locally_dominant_serial;
    use crate::parallel::locally_dominant_parallel;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_l(na: usize, nb: usize, m: usize, seed: u64) -> BipartiteGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let triples: Vec<(VertexId, VertexId, f64)> = (0..m)
            .map(|_| {
                (
                    rng.gen_range(0..na as VertexId),
                    rng.gen_range(0..nb as VertexId),
                    rng.gen::<f64>(),
                )
            })
            .collect();
        BipartiteGraph::from_weighted_edges(na, nb, &triples)
    }

    #[test]
    fn agrees_with_locally_dominant() {
        for seed in 0..20 {
            let l = random_l(40, 40, 300, seed);
            let suitor = suitor_matching(&l);
            let ld = locally_dominant_serial(&l);
            assert_eq!(suitor, ld, "divergence at seed {seed}");
        }
    }

    #[test]
    fn agrees_under_ties() {
        let mut rng = StdRng::seed_from_u64(9);
        let triples: Vec<(VertexId, VertexId, f64)> = (0..150)
            .map(|_| (rng.gen_range(0..15), rng.gen_range(0..15), 1.0))
            .collect();
        let l = BipartiteGraph::from_weighted_edges(15, 15, &triples);
        assert_eq!(suitor_matching(&l), locally_dominant_parallel(&l));
    }

    #[test]
    fn displacement_chain() {
        // B0 receives successively better proposals; displaced vertices
        // must re-propose and settle correctly.
        let l = BipartiteGraph::from_weighted_edges(
            3,
            2,
            &[
                (0, 0, 1.0),
                (1, 0, 2.0),
                (2, 0, 3.0),
                (0, 1, 0.9),
                (1, 1, 0.8),
            ],
        );
        let m = suitor_matching(&l);
        assert_eq!(m.mate_of_b(0), Some(2), "heaviest proposal wins B0");
        // Displaced A1/A0 compete for B1: A0's 0.9 beats A1's 0.8.
        assert_eq!(m.mate_of_b(1), Some(0));
        assert_eq!(m, locally_dominant_serial(&l));
    }

    #[test]
    fn skips_nonpositive_and_empty() {
        let l = BipartiteGraph::from_weighted_edges(2, 2, &[(0, 0, -1.0), (1, 1, 0.0)]);
        assert!(suitor_matching(&l).is_empty());
        let empty = BipartiteGraph::from_weighted_edges(3, 3, &[]);
        assert!(suitor_matching(&empty).is_empty());
    }
}
