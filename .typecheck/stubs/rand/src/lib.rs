//! Offline stand-in for the `rand` crate, used only by the
//! `.typecheck/check.sh` harness in environments without a crates.io
//! mirror. API-compatible with the subset of rand 0.8 this workspace
//! uses; the generator is a deterministic splitmix64.

pub use distributions::{Distribution, Standard, Uniform};

/// Core RNG interface.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (blanket-implemented like rand's `Rng`).
pub trait Rng: RngCore {
    /// Samples a value of `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::SampleUniform,
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 stand-in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            super::splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed ^ 0x5d4c_9f31_7b3a_11e7 }
        }
    }

    /// Same engine under the `SmallRng` name.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            super::splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed ^ 0x1234_5678_9abc_def0 }
        }
    }
}

/// Distributions and uniform sampling.
pub mod distributions {
    use super::Rng;

    /// A sampling distribution over `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution per type (uniform bits / [0,1) floats).
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Types uniformly sampleable in a range.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Uniform draw in `[low, high)`.
        fn sample_in<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    }

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_in<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low < high, "empty range in gen_range");
                    let span = (high as u128).wrapping_sub(low as u128);
                    low.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }
    uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleUniform for f64 {
        fn sample_in<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
            assert!(low < high, "empty range in gen_range");
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            low + u * (high - low)
        }
    }

    impl SampleUniform for f32 {
        fn sample_in<R: Rng + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
            assert!(low < high, "empty range in gen_range");
            let u = ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32);
            low + u * (high - low)
        }
    }

    /// Ranges acceptable to `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draws one sample from the range.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
            T::sample_in(self.start, self.end, rng)
        }
    }

    impl SampleRange<usize> for std::ops::RangeInclusive<usize> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> usize {
            usize::sample_in(*self.start(), *self.end() + 1, rng)
        }
    }

    impl SampleRange<u64> for std::ops::RangeInclusive<u64> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> u64 {
            u64::sample_in(*self.start(), *self.end() + 1, rng)
        }
    }

    impl SampleRange<u32> for std::ops::RangeInclusive<u32> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> u32 {
            u32::sample_in(*self.start(), *self.end() + 1, rng)
        }
    }

    impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
            f64::sample_in(*self.start(), *self.end() + f64::EPSILON, rng)
        }
    }

    /// Uniform distribution over `[low, high)`.
    pub struct Uniform<X> {
        low: X,
        high: X,
    }

    impl<X: SampleUniform> Uniform<X> {
        /// Uniform over `[low, high)`.
        pub fn new(low: X, high: X) -> Self {
            Uniform { low, high }
        }

        /// Uniform over `[low, high]`.
        pub fn new_inclusive(low: X, high: X) -> Self {
            Uniform { low, high }
        }
    }

    impl<X: SampleUniform> Distribution<X> for Uniform<X> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> X {
            X::sample_in(self.low, self.high, rng)
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::Rng;

    /// Shuffle / choose on slices, mirroring rand's `SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on empty slices.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}
