//! Minimal HTTP/1.1 framing over blocking [`TcpStream`]s.
//!
//! One request per connection: the server always answers with
//! `Connection: close`, which sidesteps keep-alive bookkeeping and makes
//! "response complete" observable to clients as EOF. Request heads are
//! capped at 16 KiB and bodies at a caller-chosen limit so a misbehaving
//! client cannot hold a worker's memory hostage.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line + headers.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request: method, target path, and the full body.
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// The request target, e.g. `/align`.
    pub target: String,
    /// The request body (`Content-Length` bytes).
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes were not a well-formed HTTP/1.1 request → 400.
    Malformed(String),
    /// The declared body exceeds the server's limit → 413.
    BodyTooLarge {
        /// The configured cap the request exceeded.
        limit: usize,
    },
    /// The socket failed mid-read (including read timeouts); no response
    /// can be delivered.
    Io(std::io::Error),
}

/// Reads one HTTP/1.1 request from `stream`.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_blank_line(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::Malformed(format!(
                "header section exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let got = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if got == 0 {
            return Err(HttpError::Malformed(
                "connection closed before end of headers".to_string(),
            ));
        }
        buf.extend_from_slice(&chunk[..got]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("headers are not UTF-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1") {
        return Err(HttpError::Malformed(format!(
            "bad request line {request_line:?}"
        )));
    }

    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line {line:?}")));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length {value:?}")))?;
        }
    }
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge { limit: max_body });
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let got = stream.read(&mut chunk).map_err(HttpError::Io)?;
        if got == 0 {
            return Err(HttpError::Malformed(
                "connection closed mid-body".to_string(),
            ));
        }
        body.extend_from_slice(&chunk[..got]);
    }
    body.truncate(content_length);
    Ok(Request {
        method,
        target,
        body,
    })
}

/// Writes a complete response and flushes. Always closes the connection
/// from the client's perspective (`Connection: close`).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Canonical reason phrases for the statuses the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::thread;

    fn roundtrip(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let result = read_request(&mut stream, max_body);
        writer.join().unwrap();
        result
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /align HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = roundtrip(raw, 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/align");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_garbage_and_oversize() {
        assert!(matches!(
            roundtrip(b"NOT-HTTP\r\n\r\n", 1024),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip(b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort", 1024),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip(b"POST / HTTP/1.1\r\nContent-Length: 2000\r\n\r\n", 1024),
            Err(HttpError::BodyTooLarge { limit: 1024 })
        ));
    }
}
