//! Fixture: `unsafe-hygiene` violations.

/// Mutable global — must fire.
pub static mut COUNTER: u64 = 0;

/// Immutable static — must not fire.
pub static LIMIT: u64 = 16;

/// Unsafe block — must fire.
pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
