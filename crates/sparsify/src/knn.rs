//! Exact brute-force k-nearest-neighbor search over embedding rows.
//!
//! For each query row, compute cosine similarity against every row of the
//! other embedding and keep the top `k`. Rows are unit-normalized by the
//! embedding stage, so similarity is a dot product; with `n ≤ 10⁴` and
//! `d ≤ 256` the `O(n² d)` sweep is seconds of rayon-parallel streaming —
//! no approximate index needed at the paper's scales.

use cualign_graph::VertexId;
use cualign_linalg::{vecops, DenseMatrix};
use cualign_telemetry::Counter;
use rayon::prelude::*;
use std::sync::{Arc, OnceLock};

/// Interned scan-volume counters: how many candidate pairs the kNN sweep
/// scored vs. how many survived the top-`k` selection — the Fig. 4 story
/// of what sparsification discards.
pub(crate) struct KnnTele {
    pub(crate) scanned: Arc<Counter>,
    pub(crate) kept: Arc<Counter>,
}

pub(crate) fn knn_tele() -> &'static KnnTele {
    static TELE: OnceLock<KnnTele> = OnceLock::new();
    TELE.get_or_init(|| {
        let r = cualign_telemetry::global();
        KnnTele {
            scanned: r.counter("sparsify.candidates_scanned"),
            kept: r.counter("sparsify.candidates_kept"),
        }
    })
}

/// Which side queries which.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KnnDirection {
    /// Each A-row finds its `k` nearest B-rows.
    AtoB,
    /// Each B-row finds its `k` nearest A-rows.
    BtoA,
}

/// Returns `(a, b, weight)` triples for the `k` nearest cross-graph
/// neighbors of every vertex on the querying side, with
/// `weight = (1 + cosine)/2 ∈ (0, 1]`.
///
/// Ties in similarity break toward the smaller target id, making the
/// candidate set deterministic.
pub fn knn_candidates(
    ya: &DenseMatrix,
    yb: &DenseMatrix,
    k: usize,
    direction: KnnDirection,
) -> Vec<(VertexId, VertexId, f64)> {
    assert!(k > 0, "k must be positive");
    assert_eq!(ya.cols(), yb.cols(), "embedding dimension mismatch");
    let (queries, targets) = match direction {
        KnnDirection::AtoB => (ya, yb),
        KnnDirection::BtoA => (yb, ya),
    };
    let nq = queries.rows();
    let nt = targets.rows();
    let keep = k.min(nt);

    let mut out: Vec<Vec<(VertexId, VertexId, f64)>> = Vec::new();
    (0..nq)
        .into_par_iter()
        .map(|q| {
            // Score all targets, then partial-select the top `keep`.
            let qrow = queries.row(q);
            let mut scored: Vec<(f64, usize)> = (0..nt)
                .map(|t| (vecops::cosine_similarity(qrow, targets.row(t)), t))
                .collect();
            // Descending similarity, ascending id on ties.
            scored.select_nth_unstable_by(keep - 1, |x, y| y.0.total_cmp(&x.0).then(x.1.cmp(&y.1)));
            scored.truncate(keep);
            scored
                .into_iter()
                .map(|(sim, t)| {
                    let w = (1.0 + sim) / 2.0;
                    // Clamp away a potential exact zero for antipodal rows;
                    // downstream matchers require strictly positive weights.
                    let w = w.max(f64::MIN_POSITIVE);
                    match direction {
                        KnnDirection::AtoB => (q as VertexId, t as VertexId, w),
                        KnnDirection::BtoA => (t as VertexId, q as VertexId, w),
                    }
                })
                .collect::<Vec<_>>()
        })
        .collect_into_vec(&mut out);
    let triples: Vec<(VertexId, VertexId, f64)> = out.into_iter().flatten().collect();
    let tele = knn_tele();
    tele.scanned.add((nq * nt) as u64);
    tele.kept.add(triples.len() as u64);
    triples
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axis_embeddings() -> (DenseMatrix, DenseMatrix) {
        // A rows: e0, e1, e2. B rows: e1, e0, e2 (swapped first two).
        let ya = DenseMatrix::from_vec(3, 3, vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]);
        let yb = DenseMatrix::from_vec(3, 3, vec![0.0, 1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        (ya, yb)
    }

    #[test]
    fn finds_exact_matches_first() {
        let (ya, yb) = axis_embeddings();
        let cands = knn_candidates(&ya, &yb, 1, KnnDirection::AtoB);
        // A0 (e0) ↦ B1, A1 (e1) ↦ B0, A2 ↦ B2.
        let mut pairs: Vec<(u32, u32)> = cands.iter().map(|&(a, b, _)| (a, b)).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (1, 0), (2, 2)]);
        for &(_, _, w) in &cands {
            assert!((w - 1.0).abs() < 1e-12, "perfect match weight should be 1");
        }
    }

    #[test]
    fn direction_flips_roles() {
        let (ya, yb) = axis_embeddings();
        let ab = knn_candidates(&ya, &yb, 1, KnnDirection::AtoB);
        let ba = knn_candidates(&ya, &yb, 1, KnnDirection::BtoA);
        // Both directions emit (a, b) ordered triples; for this symmetric
        // instance the pair sets coincide.
        let norm = |v: &[(u32, u32, f64)]| {
            let mut p: Vec<(u32, u32)> = v.iter().map(|&(a, b, _)| (a, b)).collect();
            p.sort_unstable();
            p
        };
        assert_eq!(norm(&ab), norm(&ba));
    }

    #[test]
    fn k_is_respected() {
        let (ya, yb) = axis_embeddings();
        let cands = knn_candidates(&ya, &yb, 2, KnnDirection::AtoB);
        assert_eq!(cands.len(), 6);
        let all = knn_candidates(&ya, &yb, 99, KnnDirection::AtoB);
        assert_eq!(all.len(), 9, "k larger than n keeps everything");
    }

    #[test]
    fn weights_strictly_positive_even_antipodal() {
        let ya = DenseMatrix::from_vec(1, 2, vec![1.0, 0.0]);
        let yb = DenseMatrix::from_vec(1, 2, vec![-1.0, 0.0]);
        let cands = knn_candidates(&ya, &yb, 1, KnnDirection::AtoB);
        assert!(cands[0].2 > 0.0);
    }

    #[test]
    fn tie_break_prefers_smaller_id() {
        // Two identical B rows: the smaller id must be ranked first.
        let ya = DenseMatrix::from_vec(1, 2, vec![1.0, 0.0]);
        let yb = DenseMatrix::from_vec(2, 2, vec![1.0, 0.0, 1.0, 0.0]);
        let cands = knn_candidates(&ya, &yb, 1, KnnDirection::AtoB);
        assert_eq!(cands[0].1, 0);
    }
}
