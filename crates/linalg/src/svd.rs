//! One-sided Jacobi singular value decomposition.
//!
//! The subspace-alignment step (Eq. 2) needs the SVD of the `d × d`
//! cross-covariance `Y₁ᵀ P Y₂` between two embeddings; `d` is the embedding
//! dimension (≤ 256). One-sided Jacobi is the right tool at this size: it is
//! simple, numerically robust (it computes small singular values to high
//! relative accuracy), and needs no bidiagonalization machinery.
//!
//! For tall matrices (`m > n`) the input is first reduced by thin QR so the
//! sweeps run on an `n × n` factor.

use crate::qr::householder_qr;
use crate::DenseMatrix;

/// Result of an SVD `A = U · diag(σ) · Vᵀ`.
pub struct Svd {
    /// Left singular vectors, `m × n` (thin).
    pub u: DenseMatrix,
    /// Singular values, descending.
    pub sigma: Vec<f64>,
    /// Right singular vectors, `n × n` (**not** transposed).
    pub v: DenseMatrix,
}

/// Computes the thin SVD of an `m × n` matrix (`m ≥ n`) by one-sided Jacobi
/// rotations.
///
/// Convergence: sweeps continue until every column pair is numerically
/// orthogonal (`|aᵢ·aⱼ| ≤ tol·‖aᵢ‖‖aⱼ‖` with `tol = 1e-14`) or 60 sweeps
/// elapse, which in practice is far beyond what `d ≤ 256` needs.
///
/// # Panics
/// Panics if `m < n`.
pub fn jacobi_svd(a: &DenseMatrix) -> Svd {
    let (m, n) = (a.rows(), a.cols());
    assert!(m >= n, "jacobi_svd requires rows ≥ cols (got {m} × {n})");

    // Reduce tall inputs: A = Q R, svd(R) = U Σ Vᵀ ⇒ A = (Q U) Σ Vᵀ.
    if m > n {
        let qr = householder_qr(a);
        let inner = jacobi_svd(&qr.r);
        return Svd {
            u: qr.q.matmul(&inner.u),
            sigma: inner.sigma,
            v: inner.v,
        };
    }

    // Work on the *rows* of Wᵀ = Aᵀ (and Vᵀ): a rotation then reads and
    // writes two contiguous `n`-long slices instead of two `n`-strided
    // column walks, where every element of a 128-column matrix lands on
    // its own cache line. Pure layout change — element order inside each
    // loop, and thus every floating-point result, is identical to the
    // column-major formulation. After convergence row `j` of Wᵀ is
    // `σⱼ uⱼ`.
    let mut wt = a.transpose();
    let mut vt = DenseMatrix::identity(n);
    const TOL: f64 = 1e-14;
    const MAX_SWEEPS: usize = 60;

    // Two disjoint rows of a row-major square matrix, borrowed mutably.
    fn row_pair_mut(m: &mut DenseMatrix, p: usize, q: usize, n: usize) -> (&mut [f64], &mut [f64]) {
        debug_assert!(p < q);
        let (lo, hi) = m.data_mut().split_at_mut(q * n);
        (&mut lo[p * n..(p + 1) * n], &mut hi[..n])
    }

    for _sweep in 0..MAX_SWEEPS {
        let mut off_diagonal = false;
        for p in 0..n {
            for q in (p + 1)..n {
                let (rp, rq) = row_pair_mut(&mut wt, p, q, n);
                // Gram entries over column pair (p, q) of W.
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = 0.0;
                for (&wp, &wq) in rp.iter().zip(rq.iter()) {
                    app += wp * wp;
                    aqq += wq * wq;
                    apq += wp * wq;
                }
                if apq.abs() <= TOL * (app.sqrt() * aqq.sqrt()).max(f64::MIN_POSITIVE) {
                    continue;
                }
                off_diagonal = true;
                // Jacobi rotation zeroing the (p, q) Gram entry.
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for (wp, wq) in rp.iter_mut().zip(rq.iter_mut()) {
                    let (a, b) = (*wp, *wq);
                    *wp = c * a - s * b;
                    *wq = s * a + c * b;
                }
                let (vp, vq) = row_pair_mut(&mut vt, p, q, n);
                for (vp, vq) in vp.iter_mut().zip(vq.iter_mut()) {
                    let (a, b) = (*vp, *vq);
                    *vp = c * a - s * b;
                    *vq = s * a + c * b;
                }
            }
        }
        if !off_diagonal {
            break;
        }
    }

    // Extract singular values and normalize U columns.
    let mut order: Vec<usize> = (0..n).collect();
    let mut sigma_raw = vec![0.0; n];
    for (j, s) in sigma_raw.iter_mut().enumerate() {
        *s = wt.row(j).iter().map(|&w| w * w).sum::<f64>().sqrt();
    }
    // total_cmp: a total order even on NaN, so a degenerate input yields
    // a deterministic ordering instead of a panic. Singular values are
    // non-negative, so the descending order is unchanged.
    order.sort_by(|&x, &y| sigma_raw[y].total_cmp(&sigma_raw[x]));

    let mut u = DenseMatrix::zeros(n, n);
    let mut vv = DenseMatrix::zeros(n, n);
    let mut sigma = vec![0.0; n];
    for (new_j, &old_j) in order.iter().enumerate() {
        let s = sigma_raw[old_j];
        sigma[new_j] = s;
        for i in 0..n {
            // Zero singular value ⇒ leave the U column as an arbitrary unit
            // vector (e_j); any orthonormal completion is valid.
            u[(i, new_j)] = if s > 0.0 {
                wt[(old_j, i)] / s
            } else if i == new_j {
                1.0
            } else {
                0.0
            };
            vv[(i, new_j)] = vt[(old_j, i)];
        }
    }
    Svd { u, sigma, v: vv }
}

impl Svd {
    /// Reconstructs `U · diag(σ) · Vᵀ`.
    pub fn reconstruct(&self) -> DenseMatrix {
        let n = self.sigma.len();
        let mut us = self.u.clone();
        for i in 0..us.rows() {
            for j in 0..n {
                us[(i, j)] *= self.sigma[j];
            }
        }
        us.matmul(&self.v.transpose())
    }

    /// Spectral norm (largest singular value); 0 for an empty spectrum.
    pub fn spectral_norm(&self) -> f64 {
        self.sigma.first().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_valid_svd(a: &DenseMatrix, svd: &Svd, tol: f64) {
        assert!(
            svd.reconstruct().sub(a).max_abs() < tol,
            "reconstruction off"
        );
        assert!(svd.u.is_orthonormal(tol), "U not orthonormal");
        assert!(svd.v.is_orthonormal(tol), "V not orthonormal");
        assert!(
            svd.sigma.windows(2).all(|w| w[0] >= w[1] - tol),
            "σ not sorted: {:?}",
            svd.sigma
        );
        assert!(svd.sigma.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn diagonal_matrix() {
        let a = DenseMatrix::from_vec(3, 3, vec![3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let svd = jacobi_svd(&a);
        assert_valid_svd(&a, &svd, 1e-10);
        assert!((svd.sigma[0] - 3.0).abs() < 1e-10);
        assert!((svd.sigma[1] - 2.0).abs() < 1e-10);
        assert!((svd.sigma[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn random_square() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = DenseMatrix::gaussian(12, 12, &mut rng);
        let svd = jacobi_svd(&a);
        assert_valid_svd(&a, &svd, 1e-9);
    }

    #[test]
    fn random_tall() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = DenseMatrix::gaussian(40, 6, &mut rng);
        let svd = jacobi_svd(&a);
        assert_valid_svd(&a, &svd, 1e-9);
    }

    #[test]
    fn rank_deficient() {
        // Rank-1 outer product.
        let u = [1.0, 2.0, 3.0, 4.0];
        let v = [1.0, -1.0, 0.5];
        let a = DenseMatrix::from_fn(4, 3, |i, j| u[i] * v[j]);
        let svd = jacobi_svd(&a);
        assert_valid_svd(&a, &svd, 1e-9);
        assert!(svd.sigma[1] < 1e-9, "rank-1 matrix has one nonzero σ");
        assert!(svd.sigma[2] < 1e-9);
    }

    #[test]
    fn orthogonal_input_has_unit_sigmas() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = DenseMatrix::gaussian(8, 8, &mut rng);
        let q = crate::qr::orthonormalize(&g);
        let svd = jacobi_svd(&q);
        for &s in &svd.sigma {
            assert!((s - 1.0).abs() < 1e-9, "σ = {s}");
        }
    }

    #[test]
    fn zero_matrix() {
        let a = DenseMatrix::zeros(4, 3);
        let svd = jacobi_svd(&a);
        assert!(svd.sigma.iter().all(|&s| s == 0.0));
        assert!(svd.reconstruct().max_abs() < 1e-12);
    }

    #[test]
    fn spectral_norm_dominates_entries() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = DenseMatrix::gaussian(10, 10, &mut rng);
        let svd = jacobi_svd(&a);
        assert!(svd.spectral_norm() >= a.max_abs() - 1e-9);
    }
}
