//! The telemetry view of session caching: the `session.<stage>.hits` /
//! `.misses` registry counters are the *canonical* per-stage cache
//! statistics (ISSUE 3 satellite — `StageTimings.cache_hits` was a
//! global sum with no per-stage attribution). This file re-runs the
//! invalidation matrix of `session_cache.rs` and asserts it against the
//! counters instead of build counts, plus the `StageTimings` span-tree
//! view.
//!
//! Every test leaks a fresh [`Registry`] so parallel-running tests (and
//! the globally-registered sessions of other files) cannot perturb the
//! counts.

use cualign::{AlignerConfig, AlignmentSession, SparsityChoice, StageTimings};
use cualign_embed::{EmbeddingMethod, SpectralConfig};
use cualign_graph::generators::erdos_renyi_gnm;
use cualign_graph::permutation::AlignmentInstance;
use cualign_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_cfg() -> AlignerConfig {
    let mut cfg = AlignerConfig {
        embedding: EmbeddingMethod::Spectral(SpectralConfig {
            dim: 20,
            oversample: 10,
            ..Default::default()
        }),
        sparsity: SparsityChoice::K(6),
        ..AlignerConfig::default()
    };
    cfg.bp.max_iters = 8;
    cfg.subspace.anchors = 0;
    cfg
}

fn instance(seed: u64, n: usize, m: usize) -> AlignmentInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = erdos_renyi_gnm(n, m, &mut rng);
    AlignmentInstance::permuted_pair(a, &mut rng)
}

fn fresh_registry() -> &'static Registry {
    Box::leak(Box::new(Registry::new_enabled()))
}

/// Reads the five `(hits, misses)` pairs out of a registry snapshot, in
/// pipeline order.
fn stage_stats(reg: &Registry) -> [(u64, u64); 5] {
    let snap = reg.snapshot();
    let get = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    ["embed", "subspace", "sparsify", "overlap", "optimize"].map(|stage| {
        (
            get(&format!("session.{stage}.hits")),
            get(&format!("session.{stage}.misses")),
        )
    })
}

/// The invalidation matrix, row by row, asserted against the per-stage
/// counters: each config change misses exactly the stages downstream of
/// what it fingerprints and hits everything upstream.
#[test]
fn invalidation_matrix_is_visible_per_stage() {
    let inst = instance(11, 120, 360);
    let reg = fresh_registry();
    let mut s = AlignmentSession::with_registry(&inst.a, &inst.b, test_cfg(), reg).unwrap();

    // Cold run: every stage misses once, nothing hits.
    s.align().unwrap();
    assert_eq!(stage_stats(reg), [(0, 1); 5]);

    // `align()` on an untouched session serves all five from cache.
    s.align().unwrap();
    assert_eq!(stage_stats(reg), [(1, 1); 5]);

    // Sparsity change: embed + subspace hit, the back half misses.
    s.update_config(|c| c.sparsity = SparsityChoice::K(8))
        .unwrap();
    s.align().unwrap();
    assert_eq!(
        stage_stats(reg),
        [(2, 1), (2, 1), (1, 2), (1, 2), (1, 2)],
        "sparsity change must only invalidate sparsify/overlap/optimize"
    );

    // BP budget change: everything through S hits, only optimize misses.
    s.update_config(|c| c.bp.max_iters = 16).unwrap();
    s.align().unwrap();
    assert_eq!(
        stage_stats(reg),
        [(3, 1), (3, 1), (2, 2), (2, 2), (1, 3)],
        "bp change must only invalidate optimize"
    );

    // Embedding seed change: the whole chain misses.
    s.update_config(|c| {
        if let EmbeddingMethod::Spectral(sc) = &mut c.embedding {
            sc.seed = sc.seed.wrapping_add(1);
        }
    })
    .unwrap();
    s.align().unwrap();
    assert_eq!(
        stage_stats(reg),
        [(3, 2), (3, 2), (2, 3), (2, 3), (1, 4)],
        "embedding change must invalidate everything"
    );
}

/// Partial pipeline pulls attribute hits to the stage actually asked
/// for — `embeddings()` twice is one miss then one hit, and does not
/// touch downstream counters at all.
#[test]
fn partial_pulls_attribute_to_the_right_stage() {
    let inst = instance(12, 100, 300);
    let reg = fresh_registry();
    let mut s = AlignmentSession::with_registry(&inst.a, &inst.b, test_cfg(), reg).unwrap();

    s.embeddings().unwrap();
    s.embeddings().unwrap();
    assert_eq!(stage_stats(reg), [(1, 1), (0, 0), (0, 0), (0, 0), (0, 0)]);

    // `artifacts()` pulls sparsify + overlap; embed/subspace hit via the
    // dependency walk, optimize stays untouched.
    s.artifacts().unwrap();
    assert_eq!(stage_stats(reg), [(2, 1), (0, 1), (0, 1), (0, 1), (0, 0)]);
}

/// Two sessions on distinct registries cannot see each other's traffic —
/// the property that makes the per-stage counters trustworthy in tests.
#[test]
fn per_registry_counters_are_isolated() {
    let inst = instance(13, 90, 270);
    let (ra, rb) = (fresh_registry(), fresh_registry());
    let mut sa = AlignmentSession::with_registry(&inst.a, &inst.b, test_cfg(), ra).unwrap();
    let mut sb = AlignmentSession::with_registry(&inst.a, &inst.b, test_cfg(), rb).unwrap();

    sa.align().unwrap();
    sa.align().unwrap();
    sb.align().unwrap();

    assert_eq!(stage_stats(ra), [(1, 1); 5]);
    assert_eq!(stage_stats(rb), [(0, 1); 5]);
}

/// `StageTimings::from_snapshot` is a thin view of the span tree: the
/// per-stage seconds come from the `session.<stage>` spans and its
/// `cache_hits` is the sum of the per-stage hit counters. It must agree
/// with the session's own cumulative accounting.
#[test]
fn stage_timings_are_a_view_of_the_span_tree() {
    let inst = instance(14, 110, 330);
    let reg = fresh_registry();
    let mut s = AlignmentSession::with_registry(&inst.a, &inst.b, test_cfg(), reg).unwrap();
    s.align().unwrap();
    s.update_config(|c| c.sparsity = SparsityChoice::K(9))
        .unwrap();
    s.align().unwrap();

    let t = StageTimings::from_snapshot(&reg.snapshot());
    let c = s.cumulative_timings();

    // Span totals and the session's cumulative numbers come from the
    // same `Registry::timed` calls; the two clock reads bracket each
    // other within microseconds.
    let close = |a: f64, b: f64| (a - b).abs() < 1e-3;
    assert!(close(t.embedding_s, c.embedding_s), "{t:?} vs {c:?}");
    assert!(close(t.subspace_s, c.subspace_s));
    assert!(close(t.sparsify_s, c.sparsify_s));
    assert!(close(t.overlap_s, c.overlap_s));
    assert!(close(t.optimize_s, c.optimize_s));
    assert!(t.embedding_s > 0.0, "spectral embedding takes nonzero time");

    let hits: u64 = stage_stats(reg).iter().map(|&(h, _)| h).sum();
    assert_eq!(t.cache_hits as u64, hits);
    assert_eq!(t.cache_hits, 2, "embed + subspace hit on the second run");
}
