//! Spectral proximity embedding — the pipeline's default embedder.
//!
//! Computes the dominant `d`-dimensional eigenspace of the symmetric
//! normalized adjacency `S = D^{-1/2} A D^{-1/2}` by block power iteration
//! with periodic re-orthonormalization, followed by a Rayleigh–Ritz
//! projection (Jacobi eigendecomposition of the small `QᵀSQ`).
//!
//! Why this embedder for *alignment*: the eigenspace of `S` is a function
//! of the graph alone. For isomorphic graphs `B = P(A)` the embeddings are
//! related by the permutation composed with an orthogonal transform (signs
//! of eigenvectors, rotations inside degenerate eigenvalue blocks) —
//! precisely the ambiguity the subspace-alignment stage (Eq. 2) is built
//! to resolve. A random-projection embedder (FastRP) lacks this property:
//! two independent projections of even the *same* graph are not related by
//! any `d × d` orthogonal map, so it is kept for within-graph use only.

use cualign_graph::{CsrGraph, VertexId};
use cualign_linalg::eig::symmetric_eigen;
use cualign_linalg::qr::orthonormalize;
use cualign_linalg::{vecops, DenseMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Configuration for [`spectral_embedding`].
#[derive(Clone, Copy, Debug)]
pub struct SpectralConfig {
    /// Embedding dimension `d` (number of dominant eigenvectors kept).
    pub dim: usize,
    /// Block power iterations (with QR re-orthonormalization each step).
    pub iters: usize,
    /// Extra subspace columns carried during iteration for faster
    /// convergence, dropped at the end.
    pub oversample: usize,
    /// Seed for the random starting block.
    pub seed: u64,
    /// Scale eigenvector `j` by `|λ_j|^power` (0 = pure eigenvectors; 1 =
    /// diffusion-weighted). Weighting by eigenvalue magnitude emphasizes
    /// smooth structure.
    pub eigenvalue_power: f64,
    /// Row-normalize the final embedding.
    pub normalize: bool,
}

impl Default for SpectralConfig {
    fn default() -> Self {
        SpectralConfig {
            dim: 64,
            iters: 20,
            oversample: 16,
            seed: 0x57ec,
            eigenvalue_power: 1.0,
            normalize: true,
        }
    }
}

/// `Y ← D^{-1/2} A D^{-1/2} · X`, rayon-parallel over rows.
fn apply_sym_norm_adj(g: &CsrGraph, inv_sqrt_deg: &[f64], x: &DenseMatrix) -> DenseMatrix {
    let n = g.num_vertices();
    let d = x.cols();
    let mut out = DenseMatrix::zeros(n, d);
    out.data_mut()
        .par_chunks_mut(d)
        .enumerate()
        .for_each(|(u, row)| {
            let su = inv_sqrt_deg[u];
            if su == 0.0 {
                return;
            }
            for &v in g.neighbors(u as VertexId) {
                let sv = inv_sqrt_deg[v as usize];
                let src = x.row(v as usize);
                for j in 0..d {
                    row[j] += sv * src[j];
                }
            }
            for r in row {
                *r *= su;
            }
        });
    out
}

/// Computes the spectral embedding of `g`.
///
/// # Panics
/// Panics if `dim == 0` or `dim + oversample > n` (subspace larger than
/// the space).
pub fn spectral_embedding(g: &CsrGraph, cfg: &SpectralConfig) -> DenseMatrix {
    let n = g.num_vertices();
    assert!(cfg.dim > 0, "embedding dimension must be positive");
    let block = cfg.dim + cfg.oversample;
    assert!(
        block <= n,
        "dim + oversample = {block} exceeds vertex count {n}"
    );

    let inv_sqrt_deg: Vec<f64> = (0..n as VertexId)
        .map(|u| {
            let d = g.degree(u);
            if d == 0 {
                0.0
            } else {
                1.0 / (d as f64).sqrt()
            }
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut x = orthonormalize(&DenseMatrix::gaussian(n, block, &mut rng));
    for _ in 0..cfg.iters {
        x = orthonormalize(&apply_sym_norm_adj(g, &inv_sqrt_deg, &x));
    }
    // Rayleigh–Ritz: T = Xᵀ S X, eigendecompose, lift.
    let sx = apply_sym_norm_adj(g, &inv_sqrt_deg, &x);
    let t = x.transpose_matmul(&sx);
    let eig = symmetric_eigen(&t);
    let lifted = x.matmul(&eig.vectors); // n × block, ordered by |λ|

    let mut out = DenseMatrix::zeros(n, cfg.dim);
    for j in 0..cfg.dim {
        let scale = eig.values[j].abs().powf(cfg.eigenvalue_power);
        for i in 0..n {
            out[(i, j)] = lifted[(i, j)] * scale;
        }
    }
    if cfg.normalize {
        vecops::normalize_rows(&mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proximity::neighborhood_coherence;
    use cualign_graph::generators::{barabasi_albert, watts_strogatz};
    use cualign_graph::Permutation;

    #[test]
    fn shape_and_determinism() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = barabasi_albert(200, 3, &mut rng);
        let cfg = SpectralConfig {
            dim: 16,
            ..Default::default()
        };
        let y1 = spectral_embedding(&g, &cfg);
        let y2 = spectral_embedding(&g, &cfg);
        assert_eq!(y1.rows(), 200);
        assert_eq!(y1.cols(), 16);
        assert_eq!(y1, y2);
    }

    #[test]
    fn proximity_preserving() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = watts_strogatz(300, 8, 0.05, &mut rng);
        let y = spectral_embedding(
            &g,
            &SpectralConfig {
                dim: 32,
                ..Default::default()
            },
        );
        let c = neighborhood_coherence(&g, &y, 2000, 5);
        assert!(c > 0.2, "coherence only {c}");
    }

    /// The property FastRP lacks and alignment needs: embeddings of
    /// isomorphic graphs agree up to an orthogonal transform. We verify it
    /// via the Gram matrices, which are rotation-invariant:
    /// `Y_A Y_Aᵀ ≈ Pᵀ (Y_B Y_Bᵀ) P` entrywise.
    #[test]
    fn isomorphic_graphs_have_matching_gram_matrices() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = barabasi_albert(80, 3, &mut rng);
        let p = Permutation::random(80, &mut rng);
        let b = p.apply_to_graph(&a);
        // Generous iteration budget; different seeds on purpose.
        let cfg_a = SpectralConfig {
            dim: 8,
            iters: 60,
            oversample: 24,
            seed: 10,
            eigenvalue_power: 1.0,
            normalize: false,
        };
        let cfg_b = SpectralConfig { seed: 999, ..cfg_a };
        let ya = spectral_embedding(&a, &cfg_a);
        let yb = spectral_embedding(&b, &cfg_b);
        let mut max_err = 0.0f64;
        let mut scale = 0.0f64;
        for i in 0..80 {
            for j in 0..80 {
                let ga = vecops::dot(ya.row(i), ya.row(j));
                let gb = vecops::dot(
                    yb.row(p.apply(i as u32) as usize),
                    yb.row(p.apply(j as u32) as usize),
                );
                max_err = max_err.max((ga - gb).abs());
                scale = scale.max(ga.abs());
            }
        }
        assert!(
            max_err < 0.05 * scale.max(1e-12),
            "gram mismatch {max_err} at scale {scale}"
        );
    }

    #[test]
    fn isolated_vertices_zero_rows() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0)]);
        let cfg = SpectralConfig {
            dim: 2,
            oversample: 2,
            normalize: false,
            ..Default::default()
        };
        let y = spectral_embedding(&g, &cfg);
        for i in 3..6 {
            assert!(y.row(i).iter().all(|&x| x == 0.0), "row {i} not zero");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds vertex count")]
    fn rejects_oversized_block() {
        let g = CsrGraph::empty(10);
        let _ = spectral_embedding(
            &g,
            &SpectralConfig {
                dim: 8,
                oversample: 8,
                ..Default::default()
            },
        );
    }
}
