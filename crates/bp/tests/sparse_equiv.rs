//! Pins the merge-balanced BP sweep (`BpEngine::iterate`, routed through
//! `linalg::sparse`) to the original serial loops (`iterate_reference`),
//! bit for bit, and the positional othermax fast paths to their
//! collect-and-apply references. Also checks the full pipeline: the fast
//! and reference overlap builds plus BP runs agree on `overlap.nnz` and
//! produce identical matchings on a fixed seed pair.

use cualign_bp::othermax::{
    othermax_cols, othermax_cols_reference, othermax_rows, othermax_rows_reference,
};
use cualign_bp::{evaluate_matching, BpConfig, BpEngine};
use cualign_graph::generators::erdos_renyi_gnm;
use cualign_matching::locally_dominant_parallel;
use cualign_graph::{BipartiteGraph, CsrGraph, Permutation, VertexId};
use cualign_overlap::OverlapMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ground-truthed instance: B = P(A); L holds all true pairs plus random
/// decoys (same construction as the engine's unit tests).
fn planted_instance(
    n: usize,
    edges: usize,
    decoys_per_vertex: usize,
    seed: u64,
) -> (CsrGraph, CsrGraph, BipartiteGraph) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = erdos_renyi_gnm(n, edges, &mut rng);
    let p = Permutation::random(n, &mut rng);
    let b = p.apply_to_graph(&a);
    let mut triples: Vec<(VertexId, VertexId, f64)> = Vec::new();
    for i in 0..n as VertexId {
        triples.push((i, p.apply(i), 0.5));
        for _ in 0..decoys_per_vertex {
            triples.push((i, rng.gen_range(0..n as VertexId), 0.5));
        }
    }
    let l = BipartiteGraph::from_weighted_edges(n, n, &triples);
    (a, b, l)
}

/// Skewed L: one vertex of A is a candidate for *every* vertex of B, so
/// both the side CSRs and the overlap CSR get hot rows that straddle
/// merge chunks.
fn skewed_instance(n: usize, edges: usize, seed: u64) -> (CsrGraph, CsrGraph, BipartiteGraph) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = erdos_renyi_gnm(n, edges, &mut rng);
    let p = Permutation::random(n, &mut rng);
    let b = p.apply_to_graph(&a);
    let mut triples: Vec<(VertexId, VertexId, f64)> = Vec::new();
    for i in 0..n as VertexId {
        triples.push((i, p.apply(i), 0.5));
    }
    for j in 0..n as VertexId {
        triples.push((0, j, 0.5));
        triples.push((j, 0, 0.5));
    }
    let l = BipartiteGraph::from_weighted_edges(n, n, &triples);
    (a, b, l)
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Drive a fast engine and a reference engine in lockstep and demand
/// bitwise-identical message state after every sweep.
fn assert_lockstep(a: &CsrGraph, b: &CsrGraph, l: &BipartiteGraph, cfg: &BpConfig, iters: usize) {
    let s = OverlapMatrix::build(a, b, l);
    let mut fast = BpEngine::new(l, &s, cfg);
    let mut slow = BpEngine::new(l, &s, cfg);
    for k in 0..iters {
        fast.iterate();
        slow.iterate_reference();
        assert_eq!(bits(fast.yc()), bits(slow.yc()), "yc diverged at iter {k}");
        assert_eq!(bits(fast.zc()), bits(slow.zc()), "zc diverged at iter {k}");
        assert_eq!(bits(fast.dc()), bits(slow.dc()), "dc diverged at iter {k}");
        assert_eq!(bits(fast.f()), bits(slow.f()), "f diverged at iter {k}");
        assert_eq!(bits(fast.sp()), bits(slow.sp()), "sp diverged at iter {k}");
    }
}

#[test]
fn iterate_matches_iterate_reference_bitwise_fused() {
    let (a, b, l) = planted_instance(40, 100, 4, 11);
    let cfg = BpConfig::default();
    assert_lockstep(&a, &b, &l, &cfg, 8);
}

#[test]
fn iterate_matches_iterate_reference_bitwise_unfused() {
    let (a, b, l) = planted_instance(36, 90, 3, 12);
    let cfg = BpConfig {
        fused: false,
        ..Default::default()
    };
    assert_lockstep(&a, &b, &l, &cfg, 8);
}

#[test]
fn iterate_matches_iterate_reference_bitwise_warm_start() {
    let (a, b, l) = planted_instance(30, 70, 5, 13);
    let cfg = BpConfig {
        warm_start: true,
        ..Default::default()
    };
    assert_lockstep(&a, &b, &l, &cfg, 6);
}

#[test]
fn iterate_matches_iterate_reference_on_skewed_degrees() {
    let (a, b, l) = skewed_instance(60, 150, 14);
    let cfg = BpConfig::default();
    assert_lockstep(&a, &b, &l, &cfg, 6);
}

#[test]
fn othermax_fast_paths_match_references() {
    for seed in [3u64, 4, 5] {
        let (_, _, l) = planted_instance(30, 70, 6, seed);
        let m = l.num_edges();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
        let vals: Vec<f64> = (0..m).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
        let (mut fr, mut sr) = (vec![0.0; m], vec![0.0; m]);
        othermax_rows(&l, &vals, &mut fr);
        othermax_rows_reference(&l, &vals, &mut sr);
        assert_eq!(bits(&fr), bits(&sr));
        let (mut fc, mut sc) = (vec![0.0; m], vec![0.0; m]);
        othermax_cols(&l, &vals, &mut fc);
        othermax_cols_reference(&l, &vals, &mut sc);
        assert_eq!(bits(&fc), bits(&sc));
    }
}

/// Fixed seed pair, end to end: the SpGEMM-style overlap build and the
/// reference build agree on nnz (and full structure), and BP over either
/// produces the identical matching with the identical score.
#[test]
fn fixed_seed_pair_identical_matchings_and_overlap_nnz() {
    let (a, b, l) = planted_instance(40, 100, 4, 2026);
    let s = OverlapMatrix::build(&a, &b, &l);
    let s_ref = OverlapMatrix::build_reference(&a, &b, &l);
    assert_eq!(s.nnz(), s_ref.nnz(), "overlap.nnz must match the reference");
    assert_eq!(s.row_offsets(), s_ref.row_offsets());
    assert_eq!(s.col_indices(), s_ref.col_indices());
    assert_eq!(s.transpose_perm(), s_ref.transpose_perm());

    let cfg = BpConfig {
        max_iters: 15,
        ..Default::default()
    };
    let out_fast = BpEngine::new(&l, &s, &cfg).run();
    let out_ref = {
        // Reference trajectory: same run() schedule (iteration-0 direct
        // rounding of the original weights, then sweep+round), with the
        // sweeps replaced by the pinned serial loops.
        let mut eng = BpEngine::new(&l, &s_ref, &cfg);
        let mut l0 = l.clone();
        l0.set_weights(eng.original_weights());
        let m0 = locally_dominant_parallel(&l0);
        let (score0, _, _) =
            evaluate_matching(eng.original_weights(), &s_ref, &m0, cfg.alpha, cfg.beta);
        let mut best = (m0, score0);
        let mut best_iter = 0usize;
        for k in 1..=cfg.max_iters {
            eng.iterate_reference();
            let (m, score, _, _) = eng.round();
            if score > best.1 {
                best = (m, score);
                best_iter = k;
            }
        }
        (best, best_iter)
    };
    assert_eq!(out_fast.best_matching, out_ref.0 .0);
    assert_eq!(out_fast.best_score.to_bits(), out_ref.0 .1.to_bits());
    assert_eq!(out_fast.best_iteration, out_ref.1);
}
