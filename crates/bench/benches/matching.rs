//! Criterion bench: the half-approximate matchers (§4.3) on
//! pipeline-produced alignment graphs, plus the Hungarian oracle on a
//! small instance for perspective.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cualign::PaperInput;
use cualign_bench::{prepare_instance, HarnessConfig};
use cualign_matching::{
    greedy_matching, hungarian_matching, locally_dominant_parallel, locally_dominant_serial,
    suitor_matching,
};
use std::hint::black_box;

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    group.sample_size(10);
    for (label, scale) in [("small", 0.05), ("medium", 0.15)] {
        let h = HarnessConfig {
            scale,
            bp_iters: 1,
            seed: 1,
        };
        let p = prepare_instance(&h, PaperInput::HumanY2h1, 0.025);
        group.bench_function(BenchmarkId::new("locally_dominant_serial", label), |b| {
            b.iter(|| black_box(locally_dominant_serial(&p.l).len()))
        });
        group.bench_function(BenchmarkId::new("locally_dominant_parallel", label), |b| {
            b.iter(|| black_box(locally_dominant_parallel(&p.l).len()))
        });
        group.bench_function(BenchmarkId::new("greedy", label), |b| {
            b.iter(|| black_box(greedy_matching(&p.l).len()))
        });
        group.bench_function(BenchmarkId::new("suitor", label), |b| {
            b.iter(|| black_box(suitor_matching(&p.l).len()))
        });
    }
    // The exact oracle is cubic; keep it tiny.
    let h = HarnessConfig {
        scale: 0.02,
        bp_iters: 1,
        seed: 1,
    };
    let p = prepare_instance(&h, PaperInput::Synthetic4000, 0.05);
    group.bench_function("hungarian/tiny", |b| {
        b.iter(|| black_box(hungarian_matching(&p.l).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
