//! GPU cost model of the belief-propagation phase.
//!
//! [`simulate_bp`] runs the reference [`BpEngine`] for the numerics and
//! charges each of Algorithm 2's kernels against a [`DeviceSpec`] using the
//! run's *real* sparsity structure:
//!
//! | kernel | work items | size | access pattern |
//! |---|---|---|---|
//! | fused `F`+`dᶜ` (Listing 1) | rows of `S` | row degree | `Sᵖ[perm[j]]` scattered, `F`/`dᶜ` coalesced |
//! | unfused `F` then `dᶜ` | rows of `S` ×2 | row degree | same + re-reads `F` |
//! | othermaxcol → `yᶜ` | B vertices | `deg_B` | B-side CSR is an indirection → scattered |
//! | othermaxrow → `zᶜ` | A vertices | `deg_A` | A-side CSR is the canonical order → coalesced |
//! | `Sᶜ` update | rows of `S` | row degree | coalesced |
//! | damping `yᵖ/zᵖ` | edges | 1 | coalesced elementwise |
//! | damping `Sᵖ` | rows of `S` | row degree | coalesced |
//!
//! [`model_bp_iteration`] charges one iteration without running numerics,
//! so device sweeps don't pay for repeated BP runs.

use crate::device::DeviceSpec;
use crate::exec::{simulate_launch, ExecConfig, LaunchStats};
use crate::footprint::Footprint;
use cualign_bp::{BpConfig, BpEngine, BpOutcome};
use cualign_graph::{BipartiteGraph, VertexId};
use cualign_overlap::OverlapMatrix;

/// Timing report for a BP phase under one device model.
#[derive(Clone, Debug)]
pub struct BpGpuReport {
    /// Modeled seconds for the whole phase (`iters` iterations, matching
    /// excluded — Table 2 reports it separately).
    pub seconds: f64,
    /// Per-kernel modeled seconds per iteration, `(name, seconds)`.
    pub per_kernel: Vec<(&'static str, f64)>,
    /// Iterations charged.
    pub iterations: usize,
    /// Total modeled DRAM bytes per iteration.
    pub bytes_per_iteration: u64,
    /// Idle-lane fraction across the iteration's kernels.
    pub idle_fraction: f64,
}

fn row_sizes(s: &OverlapMatrix) -> Vec<usize> {
    (0..s.num_rows()).map(|e| s.row_degree(e as u32)).collect()
}

fn degree_sizes_a(l: &BipartiteGraph) -> Vec<usize> {
    (0..l.na()).map(|a| l.degree_a(a as VertexId)).collect()
}

fn degree_sizes_b(l: &BipartiteGraph) -> Vec<usize> {
    (0..l.nb()).map(|b| l.degree_b(b as VertexId)).collect()
}

/// Charges one BP iteration's kernels. Returns `(per-kernel stats,
/// seconds)`.
pub fn model_bp_iteration(
    l: &BipartiteGraph,
    s: &OverlapMatrix,
    fused: bool,
    device: &DeviceSpec,
    exec: &ExecConfig,
) -> (Vec<(&'static str, LaunchStats)>, f64) {
    let rows = row_sizes(s);
    let deg_a = degree_sizes_a(l);
    let deg_b = degree_sizes_b(l);
    let mut kernels: Vec<(&'static str, LaunchStats)> = Vec::new();

    if fused {
        // Listing 1: one pass reads Sᵖ via perm (scattered), writes F,
        // reduces into dᶜ.
        kernels.push((
            "fused_f_dc",
            simulate_launch(device, exec, &rows, |sz| Footprint {
                contiguous_reads: 1,       // w[row]
                scattered_reads: sz,       // sp[perm[j]]
                contiguous_writes: sz + 1, // F row + dc[row]
                scattered_writes: 0,
                flops: 3 * sz + 2,
            }),
        ));
    } else {
        kernels.push((
            "unfused_f",
            simulate_launch(device, exec, &rows, |sz| Footprint {
                scattered_reads: sz,
                contiguous_writes: sz,
                flops: 2 * sz,
                ..Default::default()
            }),
        ));
        kernels.push((
            "unfused_dc",
            simulate_launch(device, exec, &rows, |sz| Footprint {
                contiguous_reads: sz + 1, // re-read F + w[row]
                contiguous_writes: 1,
                flops: sz + 2,
                ..Default::default()
            }),
        ));
    }

    // othermaxcol over zᵖ → yᶜ: B-side rows go through the b_eids
    // indirection, so the message loads/stores are scattered.
    kernels.push((
        "othermax_col_yc",
        simulate_launch(device, exec, &deg_b, |sz| Footprint {
            scattered_reads: 2 * sz, // zp[eid], dc[eid]
            scattered_writes: sz,    // yc[eid]
            flops: 3 * sz,
            ..Default::default()
        }),
    ));
    // othermaxrow over yᵖ → zᶜ: A-side rows are the canonical edge order —
    // coalesced (the asymmetry the paper's Listing 2 exploits).
    kernels.push((
        "othermax_row_zc",
        simulate_launch(device, exec, &deg_a, |sz| Footprint {
            contiguous_reads: 2 * sz,
            contiguous_writes: sz,
            flops: 3 * sz,
            ..Default::default()
        }),
    ));
    // Sᶜ = diag(yᶜ+zᶜ−dᶜ)·S − F.
    kernels.push((
        "sc_update",
        simulate_launch(device, exec, &rows, |sz| Footprint {
            contiguous_reads: sz + 3,
            contiguous_writes: sz,
            flops: 2 * sz + 2,
            ..Default::default()
        }),
    ));
    // Damping: y/z elementwise, then Sᵖ rows.
    let m_edges = vec![1usize; l.num_edges()];
    kernels.push((
        "damp_yz",
        simulate_launch(device, exec, &m_edges, |_| Footprint {
            contiguous_reads: 4,
            contiguous_writes: 2,
            flops: 6,
            ..Default::default()
        }),
    ));
    kernels.push((
        "damp_sp",
        simulate_launch(device, exec, &rows, |sz| Footprint {
            contiguous_reads: 2 * sz,
            contiguous_writes: sz,
            flops: 3 * sz,
            ..Default::default()
        }),
    ));

    let seconds = kernels.iter().map(|(_, st)| st.seconds).sum();
    (kernels, seconds)
}

/// Runs BP (reference numerics) and models the phase's time on `device`.
///
/// Returns the outcome together with the [`BpGpuReport`]. The report
/// charges `cfg.max_iters` iterations of the kernel family above;
/// rounding/matching time is reported by
/// [`crate::match_gpu::simulate_matching`].
pub fn simulate_bp(
    l: &BipartiteGraph,
    s: &OverlapMatrix,
    cfg: &BpConfig,
    device: &DeviceSpec,
    exec: &ExecConfig,
) -> (BpOutcome, BpGpuReport) {
    let outcome = BpEngine::new(l, s, cfg).run();
    let report = model_bp_phase(l, s, cfg, device, exec);
    (outcome, report)
}

/// Models the BP phase time without running numerics.
pub fn model_bp_phase(
    l: &BipartiteGraph,
    s: &OverlapMatrix,
    cfg: &BpConfig,
    device: &DeviceSpec,
    exec: &ExecConfig,
) -> BpGpuReport {
    let (kernels, per_iter_seconds) = model_bp_iteration(l, s, cfg.fused, device, exec);
    let bytes: u64 = kernels.iter().map(|(_, st)| st.bytes(device)).sum();
    let active: u64 = kernels.iter().map(|(_, st)| st.active_lane_slots()).sum();
    let idle: u64 = kernels.iter().map(|(_, st)| st.idle_lane_slots()).sum();
    BpGpuReport {
        seconds: per_iter_seconds * cfg.max_iters as f64,
        per_kernel: kernels
            .iter()
            .map(|(name, st)| (*name, st.seconds))
            .collect(),
        iterations: cfg.max_iters,
        bytes_per_iteration: bytes,
        idle_fraction: if active + idle == 0 {
            0.0
        } else {
            idle as f64 / (active + idle) as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cualign_graph::generators::erdos_renyi_gnm;
    use cualign_graph::Permutation;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn instance(n: usize, seed: u64) -> (BipartiteGraph, OverlapMatrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = erdos_renyi_gnm(n, n * 3, &mut rng);
        let p = Permutation::random(n, &mut rng);
        let b = p.apply_to_graph(&a);
        let mut triples = Vec::new();
        for i in 0..n as VertexId {
            triples.push((i, p.apply(i), 0.5));
            for _ in 0..9 {
                triples.push((i, rng.gen_range(0..n as VertexId), 0.5));
            }
        }
        let l = BipartiteGraph::from_weighted_edges(n, n, &triples);
        let s = OverlapMatrix::build(&a, &b, &l);
        (l, s)
    }

    #[test]
    fn fusion_reduces_traffic_and_time() {
        let (l, s) = instance(60, 1);
        let gpu = DeviceSpec::a100();
        let exec = ExecConfig::optimized();
        let (_, fused_s) = model_bp_iteration(&l, &s, true, &gpu, &exec);
        let (_, unfused_s) = model_bp_iteration(&l, &s, false, &gpu, &exec);
        assert!(fused_s < unfused_s, "fused {fused_s} ≥ unfused {unfused_s}");
        let fused_bytes = model_bp_phase(
            &l,
            &s,
            &BpConfig {
                fused: true,
                max_iters: 1,
                ..Default::default()
            },
            &gpu,
            &exec,
        )
        .bytes_per_iteration;
        let unfused_bytes = model_bp_phase(
            &l,
            &s,
            &BpConfig {
                fused: false,
                max_iters: 1,
                ..Default::default()
            },
            &gpu,
            &exec,
        )
        .bytes_per_iteration;
        assert!(fused_bytes < unfused_bytes);
    }

    #[test]
    fn gpu_faster_than_cpu_on_bp() {
        // Needs a real-scale structure: below ~10⁵ L-edges the GPU's launch
        // overhead dominates and the CPU wins — the same size effect the
        // paper's Synthetic_4000 row shows (5× vs 19× on the large inputs).
        let (l, s) = instance(6000, 2);
        let exec = ExecConfig::optimized();
        let cfg = BpConfig::default();
        let g = model_bp_phase(&l, &s, &cfg, &DeviceSpec::a100(), &exec);
        let c = model_bp_phase(&l, &s, &cfg, &DeviceSpec::epyc7702p(), &exec);
        let speedup = c.seconds / g.seconds;
        assert!(speedup > 2.0, "BP speedup only {speedup}");
    }

    #[test]
    fn tiny_instances_do_not_benefit_much() {
        // The flip side of the size effect above.
        let (l, s) = instance(60, 7);
        let exec = ExecConfig::optimized();
        let cfg = BpConfig::default();
        let g = model_bp_phase(&l, &s, &cfg, &DeviceSpec::a100(), &exec);
        let c = model_bp_phase(&l, &s, &cfg, &DeviceSpec::epyc7702p(), &exec);
        assert!(c.seconds / g.seconds < 4.0);
    }

    #[test]
    fn simulate_bp_numerics_match_reference() {
        let (l, s) = instance(40, 3);
        let cfg = BpConfig {
            max_iters: 8,
            ..Default::default()
        };
        let (out_sim, report) =
            simulate_bp(&l, &s, &cfg, &DeviceSpec::a100(), &ExecConfig::optimized());
        let out_ref = BpEngine::new(&l, &s, &cfg).run();
        assert_eq!(out_sim.best_score, out_ref.best_score);
        assert_eq!(out_sim.best_matching, out_ref.best_matching);
        assert!(report.seconds > 0.0);
        assert_eq!(report.iterations, 8);
    }

    #[test]
    fn report_kernels_cover_pipeline() {
        let (l, s) = instance(30, 4);
        let r = model_bp_phase(
            &l,
            &s,
            &BpConfig::default(),
            &DeviceSpec::a100(),
            &ExecConfig::optimized(),
        );
        let names: Vec<&str> = r.per_kernel.iter().map(|(n, _)| *n).collect();
        for expected in [
            "fused_f_dc",
            "othermax_col_yc",
            "othermax_row_zc",
            "sc_update",
            "damp_yz",
            "damp_sp",
        ] {
            assert!(names.contains(&expected), "missing kernel {expected}");
        }
    }
}
