//! Additional alignment baselines from the paper's related-work lineage
//! (§3), implemented to give the evaluation harness non-trivial
//! comparators beyond cone-align:
//!
//! * [`isorank`] — similarity-flow alignment (Singh et al., reference
//!   \[27\]): the classical "IsoRank" fixpoint where two vertices are
//!   similar when their neighbors are similar, rounded by matching.
//! * [`seed_expand`] — seed-and-extend reconciliation (Korula–Lattanzi,
//!   reference \[17\]): start from a few high-confidence pairs and grow the
//!   alignment by common-neighbor witnessing.
//! * [`exact`] — exhaustive branch-and-bound over injective mappings for
//!   tiny instances; the ground-truth oracle the test suite uses to bound
//!   how much objective the heuristics leave on the table.

pub mod exact;
pub mod isorank;
pub mod seed_expand;

pub use exact::exact_alignment;
pub use isorank::{isorank_align, IsoRankConfig};
pub use seed_expand::{seed_and_expand, SeedExpandConfig};
