//! Property-based tests for the alignment quality metrics: bounds,
//! consistency relations, and behavior under mapping edits, for arbitrary
//! graphs and partial mappings.

use cualign::score_alignment;
use cualign_graph::{CsrGraph, Permutation, VertexId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Arbitrary graph + arbitrary partial injective mapping into a second
/// graph of the same size.
fn instance() -> impl Strategy<Value = (CsrGraph, CsrGraph, Vec<Option<VertexId>>)> {
    (3usize..20, 0u64..5000).prop_flat_map(|(n, seed)| {
        prop::collection::vec(prop::option::of(0..n as VertexId), n).prop_map(move |raw| {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = (n * 2).min(n * (n - 1) / 2);
            let a = cualign_graph::generators::erdos_renyi_gnm(n, m, &mut rng);
            let b = cualign_graph::generators::erdos_renyi_gnm(n, m, &mut rng);
            // Make the raw mapping injective: first occurrence wins.
            let mut used = vec![false; n];
            let mapping: Vec<Option<VertexId>> = raw
                .into_iter()
                .map(|o| match o {
                    Some(v) if !used[v as usize] => {
                        used[v as usize] = true;
                        Some(v)
                    }
                    _ => None,
                })
                .collect();
            (a, b, mapping)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All metrics live in [0, 1]; conserved is bounded by |E_A|.
    #[test]
    fn metric_bounds((a, b, mapping) in instance()) {
        let s = score_alignment(&a, &b, &mapping);
        for (name, v) in [
            ("ec", s.ec),
            ("ics", s.ics),
            ("s3", s.s3),
            ("ncv", s.ncv),
            ("ncv_gs3", s.ncv_gs3),
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "{} = {} out of range", name, v);
        }
        prop_assert!(s.conserved_edges <= a.num_edges());
    }

    /// NCV-GS³ is exactly the geometric mean of NCV and S³.
    #[test]
    fn ncv_gs3_is_geometric_mean((a, b, mapping) in instance()) {
        let s = score_alignment(&a, &b, &mapping);
        prop_assert!((s.ncv_gs3 - (s.ncv * s.s3).sqrt()).abs() < 1e-12);
    }

    /// S³ never exceeds EC's restricted counterpart: the S³ denominator
    /// dominates the conserved count, and ICS ≥ S³ always (its
    /// denominator is a subset term).
    #[test]
    fn metric_ordering((a, b, mapping) in instance()) {
        let s = score_alignment(&a, &b, &mapping);
        if s.conserved_edges > 0 {
            prop_assert!(s.ics >= s.s3 - 1e-12, "ics {} < s3 {}", s.ics, s.s3);
        }
    }

    /// Un-mapping a vertex never increases the conserved-edge count and
    /// never increases NCV.
    #[test]
    fn unmapping_is_monotone((a, b, mapping) in instance(), idx in 0usize..20) {
        let s_full = score_alignment(&a, &b, &mapping);
        let mut reduced = mapping.clone();
        if idx < reduced.len() {
            reduced[idx] = None;
        }
        let s_red = score_alignment(&a, &b, &reduced);
        prop_assert!(s_red.conserved_edges <= s_full.conserved_edges);
        prop_assert!(s_red.ncv <= s_full.ncv + 1e-12);
    }

    /// A true isomorphism scores exactly 1 on every metric.
    #[test]
    fn isomorphism_scores_one(n in 4usize..25, seed in 0u64..5000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = (n * 2).min(n * (n - 1) / 2);
        let a = cualign_graph::generators::erdos_renyi_gnm(n, m, &mut rng);
        let p = Permutation::random(n, &mut rng);
        let b = p.apply_to_graph(&a);
        let mapping: Vec<Option<VertexId>> =
            (0..n as VertexId).map(|u| Some(p.apply(u))).collect();
        let s = score_alignment(&a, &b, &mapping);
        prop_assert!((s.ncv_gs3 - 1.0).abs() < 1e-12);
        prop_assert_eq!(s.conserved_edges, a.num_edges());
    }
}
