//! ANN sparsifier benchmark: recall of the banded multi-probe LSH
//! kernel ([`cualign_sparsify::ann_candidates`]) against the exact
//! blocked-kNN oracle ([`cualign_sparsify::knn_candidates`]) over a
//! bands × bits grid, the downstream node-correctness cost of switching
//! the full pipeline from exact to approximate sparsification, and one
//! end-to-end multilevel alignment of a million-vertex pair — the run
//! the exact `O(n²d)` sweep cannot finish. The sink is
//! `BENCH_ann.json` (JSONL, one record per grid cell / run):
//!
//! ```text
//! cargo run --release -p cualign-bench --bin bench_ann
//! ```
//!
//! Phases and knobs (environment):
//!
//! 1. **Recall grid** — clustered planted embeddings (shared centers,
//!    independent member noise; splitmix64-generated so the workload is
//!    bit-reproducible) at `CUALIGN_BENCH_ANN_NS` sizes (default
//!    `20000,100000,1000000`), full bands × bits grid at the smallest
//!    size, thinned above it. Cells with `n ≤ CUALIGN_ANN_EXACT_MAX`
//!    (default `20000`) are scored against the exact oracle; larger
//!    cells carry `"recall": "unchecked"` — the knobs' recall is pinned
//!    by the checked cells, which is the contract `docs/APPROXIMATION.md`
//!    documents. The best checked recall must reach
//!    `CUALIGN_ANN_RECALL_MIN` (default `0.9`).
//! 2. **Downstream delta** — one seeded permuted-pair ER instance at
//!    `CUALIGN_ANN_PIPE_VERTICES` (default `20000`), the flat pipeline
//!    run once with exact union-kNN and once with `SparsifyMethod::Ann`
//!    at the best grid cell's knobs; ANN node correctness may trail the
//!    exact run's by at most `CUALIGN_ANN_NC_TOL` (default `0.02`).
//! 3. **Million-vertex end-to-end** — `--multilevel` alignment of an ER
//!    pair at `CUALIGN_ANN_E2E_VERTICES` (default `1000000`; `0` skips
//!    the phase) with `CUALIGN_ANN_E2E_LEVELS` (default `6`) coarsening
//!    levels and the ANN rule, so every orphan-rescue query at big
//!    levels routes through LSH. Records wall-clock, node correctness,
//!    and the `sparsify.ann.*` counters.

use std::io::Write;
use std::time::Instant;

use cualign::{Aligner, AlignerConfig, MultilevelConfig};
use cualign_bench::{env_f64, env_u64, json::JsonRecord};
use cualign_graph::generators::erdos_renyi_gnm;
use cualign_graph::permutation::AlignmentInstance;
use cualign_linalg::DenseMatrix;
use cualign_sparsify::{ann_candidates, ann_recall, knn_candidates, AnnConfig, KnnDirection};
use rand::rngs::StdRng;
use rand::SeedableRng;

const DIM: usize = 32;
const PER_CLUSTER: usize = 16;
const SIGMA: f64 = 0.05;

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(v) if !v.is_empty() => v
            .split(',')
            .map(|s| s.trim().parse().expect("grid entries are integers"))
            .collect(),
        _ => default.to_vec(),
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn gauss(state: &mut u64) -> f64 {
    let mut acc = 0.0;
    for _ in 0..12 {
        acc += (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    }
    acc - 6.0
}

/// Clustered planted workload: `n` rows in clusters of [`PER_CLUSTER`]
/// around shared gaussian centers, per-coordinate noise [`SIGMA`]. Both
/// sides draw the *same* centers (pass the same `center_seed`) with
/// independent member noise, so each query's exact top-`k` lives in its
/// own cluster and recall against the exact oracle is meaningful.
fn clustered(n: usize, center_seed: u64, member_seed: u64) -> DenseMatrix {
    let clusters = (n / PER_CLUSTER).max(1);
    let mut cstate = center_seed ^ 0xc1u64;
    let centers: Vec<f64> = (0..clusters * DIM).map(|_| gauss(&mut cstate)).collect();
    let mut mstate = member_seed ^ 0x3fu64;
    let mut data = Vec::with_capacity(n * DIM);
    for r in 0..n {
        let c = r % clusters;
        for j in 0..DIM {
            data.push(centers[c * DIM + j] + SIGMA * gauss(&mut mstate));
        }
    }
    DenseMatrix::from_vec(n, DIM, data)
}

/// The bands × bits grid for one workload size: full at oracle-checked
/// sizes, thinned to the strong corner above (the thin cells' recall is
/// pinned by the checked grid — same knobs, same planted distribution).
fn grid_for(n: usize, exact_max: usize) -> Vec<(usize, usize)> {
    if n <= exact_max {
        let mut g = Vec::new();
        for &bands in &[4usize, 8, 16] {
            for &bits in &[8usize, 12, 16] {
                g.push((bands, bits));
            }
        }
        g
    } else if n <= 200_000 {
        vec![(8, 12), (8, 16), (16, 12), (16, 16)]
    } else {
        vec![(16, 16)]
    }
}

fn ann_counter_deltas(
    reg: &'static cualign_telemetry::Registry,
    before: &[u64; 3],
) -> (u64, u64, u64) {
    (
        reg.counter("sparsify.ann.buckets").get() - before[0],
        reg.counter("sparsify.ann.collisions").get() - before[1],
        reg.counter("sparsify.ann.probed").get() - before[2],
    )
}

fn ann_counters(reg: &'static cualign_telemetry::Registry) -> [u64; 3] {
    [
        reg.counter("sparsify.ann.buckets").get(),
        reg.counter("sparsify.ann.collisions").get(),
        reg.counter("sparsify.ann.probed").get(),
    ]
}

fn main() {
    let telemetry = cualign_bench::telemetry_sink();
    let reg = cualign_telemetry::global();
    let ns = env_list("CUALIGN_BENCH_ANN_NS", &[20_000, 100_000, 1_000_000]);
    let k = env_u64("CUALIGN_BENCH_ANN_K", 8) as usize;
    let probes = env_u64("CUALIGN_BENCH_ANN_PROBES", 2) as usize;
    let exact_max = env_u64("CUALIGN_ANN_EXACT_MAX", 20_000) as usize;
    let recall_min = env_f64("CUALIGN_ANN_RECALL_MIN", 0.9);
    let nc_tol = env_f64("CUALIGN_ANN_NC_TOL", 0.02);
    let pipe_n = env_u64("CUALIGN_ANN_PIPE_VERTICES", 20_000) as usize;
    let e2e_n = env_u64("CUALIGN_ANN_E2E_VERTICES", 1_000_000) as usize;
    let e2e_levels = env_u64("CUALIGN_ANN_E2E_LEVELS", 6) as usize;
    let seed = env_u64("CUALIGN_SEED", 1);
    let out_path = std::env::var("CUALIGN_BENCH_ANN_OUT").unwrap_or("BENCH_ann.json".into());

    println!("bench_ann: n grid {ns:?}, k = {k}, probes = {probes} (records -> {out_path})");
    let mut lines = Vec::new();

    // Phase 1 — recall grid.
    let mut best_checked: Option<(f64, usize, usize)> = None; // (recall, bands, bits)
    for &n in &ns {
        let ya = clustered(n, seed, seed ^ 0xaaaa);
        let yb = clustered(n, seed, seed ^ 0xb0b);
        let exact = if n <= exact_max {
            let t = Instant::now();
            let e = knn_candidates(&ya, &yb, k, KnnDirection::AtoB);
            let exact_s = t.elapsed().as_secs_f64();
            println!("  n {n:>8}: exact oracle {exact_s:>8.2}s ({} triples)", e.len());
            Some((e, exact_s))
        } else {
            println!("  n {n:>8}: exact oracle skipped (n > {exact_max}), recall unchecked");
            None
        };
        for (bands, bits) in grid_for(n, exact_max) {
            let cfg = AnnConfig {
                k,
                bands,
                bits,
                probes,
                ..AnnConfig::default()
            };
            let before = ann_counters(reg);
            let t = Instant::now();
            let ann = ann_candidates(&ya, &yb, &cfg, KnnDirection::AtoB);
            let ann_s = t.elapsed().as_secs_f64();
            let (buckets, collisions, probed) = ann_counter_deltas(reg, &before);
            let mut rec = JsonRecord::new()
                .str("bench", "ann_recall")
                .int("n", n)
                .int("d", DIM)
                .int("k", k)
                .int("bands", bands)
                .int("bits", bits)
                .int("probes", probes)
                .num("ann_s", ann_s)
                .int("triples", ann.len())
                .int("buckets", buckets as usize)
                .int("collisions", collisions as usize)
                .int("probed", probed as usize);
            match &exact {
                Some((e, exact_s)) => {
                    let recall = ann_recall(&ann, e);
                    if best_checked.is_none_or(|(r, _, _)| recall > r) {
                        best_checked = Some((recall, bands, bits));
                    }
                    rec = rec.num("recall", recall).num("exact_s", *exact_s);
                    println!(
                        "    bands {bands:>2}, bits {bits:>2}: {ann_s:>8.2}s, \
                         recall {recall:.4} ({} triples)",
                        ann.len()
                    );
                }
                None => {
                    rec = rec.str("recall", "unchecked").null("exact_s");
                    println!(
                        "    bands {bands:>2}, bits {bits:>2}: {ann_s:>8.2}s, \
                         recall unchecked ({} triples)",
                        ann.len()
                    );
                }
            }
            lines.push(rec.finish());
        }
    }
    let (best_recall, best_bands, best_bits) =
        best_checked.expect("at least one oracle-checked grid cell");
    println!(
        "  best checked recall {best_recall:.4} at bands = {best_bands}, bits = {best_bits} \
         (floor {recall_min})"
    );

    // Phase 2 — downstream node-correctness delta, exact vs ANN, same
    // instance, same flat pipeline, best grid knobs.
    let mut rng = StdRng::seed_from_u64(seed);
    let a = erdos_renyi_gnm(pipe_n, 3 * pipe_n, &mut rng);
    let inst = AlignmentInstance::permuted_pair(a, &mut rng);
    let exact_cfg = AlignerConfig::builder()
        .embedding_dim(DIM.min(pipe_n / 2))
        .k(k)
        .bp_iters(10)
        .build()
        .expect("fixed exact config is valid");
    let ann_cfg = AlignerConfig::builder()
        .embedding_dim(DIM.min(pipe_n / 2))
        .ann(k, best_bands, best_bits, probes)
        .bp_iters(10)
        .build()
        .expect("fixed ann config is valid");

    let t = Instant::now();
    let exact_res = Aligner::new(exact_cfg)
        .align(&inst.a, &inst.b)
        .expect("the seeded instance aligns with exact kNN");
    let exact_pipe_s = t.elapsed().as_secs_f64();
    let exact_nc = inst.node_correctness(&exact_res.mapping);
    let t = Instant::now();
    let ann_res = Aligner::new(ann_cfg)
        .align(&inst.a, &inst.b)
        .expect("the seeded instance aligns with ANN");
    let ann_pipe_s = t.elapsed().as_secs_f64();
    let ann_nc = inst.node_correctness(&ann_res.mapping);
    // One-sided: the contract bounds how much *worse* ANN may be; the WL
    // structural candidates often make it strictly better, which is fine.
    let nc_delta = exact_nc - ann_nc;
    println!(
        "  pipeline @ n = {pipe_n}: exact nc {exact_nc:.4} ({exact_pipe_s:.2}s), \
         ann nc {ann_nc:.4} ({ann_pipe_s:.2}s), delta {nc_delta:.4} (tol {nc_tol})"
    );
    lines.push(
        JsonRecord::new()
            .str("bench", "ann_pipeline")
            .int("n", pipe_n)
            .int("k", k)
            .int("bands", best_bands)
            .int("bits", best_bits)
            .int("probes", probes)
            .num("exact_s", exact_pipe_s)
            .num("ann_s", ann_pipe_s)
            .num("exact_node_correctness", exact_nc)
            .num("ann_node_correctness", ann_nc)
            .num("nc_delta", nc_delta)
            .num("exact_sparsify_s", exact_res.timings.sparsify_s)
            .num("ann_sparsify_s", ann_res.timings.sparsify_s)
            .int("exact_l_edges", exact_res.l_edges)
            .int("ann_l_edges", ann_res.l_edges)
            .finish(),
    );

    // Phase 3 — million-vertex multilevel end-to-end under the ANN rule.
    if e2e_n > 0 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xe2e);
        let a = erdos_renyi_gnm(e2e_n, 3 * e2e_n, &mut rng);
        let inst = AlignmentInstance::permuted_pair(a, &mut rng);
        let ml = MultilevelConfig {
            levels: e2e_levels,
            refine_bp_iters: 4,
            ..MultilevelConfig::default()
        };
        let cfg = AlignerConfig::builder()
            .embedding_dim(DIM.min(e2e_n / 2))
            .ann(k, best_bands, best_bits, probes)
            .bp_iters(8)
            .multilevel_config(ml)
            .build()
            .expect("fixed e2e config is valid");
        println!("  e2e: ER n = {e2e_n}, m = {}, levels = {e2e_levels}, ann rule", 3 * e2e_n);
        let before = ann_counters(reg);
        let t = Instant::now();
        let res = Aligner::new(cfg)
            .align(&inst.a, &inst.b)
            .expect("the seeded pair aligns end-to-end under the ANN rule");
        let e2e_s = t.elapsed().as_secs_f64();
        let (buckets, collisions, probed) = ann_counter_deltas(reg, &before);
        let nc = inst.node_correctness(&res.mapping);
        let depth = reg.gauge("multilevel.depth").get() as usize;
        println!(
            "  e2e: {e2e_s:.1}s, depth {depth}, nc = {nc:.4}, NCV-GS3 = {:.4}, \
             L = {} edges",
            res.scores.ncv_gs3, res.l_edges
        );
        lines.push(
            JsonRecord::new()
                .str("bench", "ann_e2e")
                .int("vertices", e2e_n)
                .int("edges", 3 * e2e_n)
                .int("levels_requested", e2e_levels)
                .int("depth", depth)
                .int("k", k)
                .int("bands", best_bands)
                .int("bits", best_bits)
                .int("probes", probes)
                .num("total_s", e2e_s)
                .num("node_correctness", nc)
                .num("ncv_gs3", res.scores.ncv_gs3)
                .int("l_edges", res.l_edges)
                .int("s_nnz", res.s_nnz)
                .int("buckets", buckets as usize)
                .int("collisions", collisions as usize)
                .int("probed", probed as usize)
                .finish(),
        );
    } else {
        println!("  e2e: skipped (CUALIGN_ANN_E2E_VERTICES = 0)");
    }

    let mut f = std::fs::File::create(&out_path).expect("record sink is writable");
    for line in &lines {
        writeln!(f, "{line}").expect("record sink is writable");
    }
    println!("wrote {} records to {out_path}", lines.len());
    cualign_bench::emit_telemetry(&telemetry);

    assert!(
        best_recall >= recall_min,
        "best oracle-checked recall {best_recall:.4} below CUALIGN_ANN_RECALL_MIN {recall_min}"
    );
    assert!(
        nc_delta <= nc_tol,
        "ANN node correctness {ann_nc:.4} trails exact {exact_nc:.4} by more than \
         CUALIGN_ANN_NC_TOL {nc_tol}"
    );
}
