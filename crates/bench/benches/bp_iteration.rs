//! Criterion bench: one belief-propagation message update (Algorithm 2
//! lines 9–16) and one rounding, fused vs. unfused, at two instance sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cualign::PaperInput;
use cualign_bench::{prepare_instance, HarnessConfig};
use cualign_bp::{BpConfig, BpEngine};
use std::hint::black_box;

fn bench_bp(c: &mut Criterion) {
    let mut group = c.benchmark_group("bp_iteration");
    group.sample_size(10);
    for (label, scale) in [("small", 0.05), ("medium", 0.15)] {
        let h = HarnessConfig {
            scale,
            bp_iters: 1,
            seed: 1,
        };
        let p = prepare_instance(&h, PaperInput::FlyY2h1, 0.025);
        for fused in [true, false] {
            let cfg = BpConfig {
                fused,
                ..Default::default()
            };
            let name = format!("{label}/{}", if fused { "fused" } else { "unfused" });
            group.bench_with_input(BenchmarkId::new("iterate", name), &cfg, |bench, cfg| {
                let mut engine = BpEngine::new(&p.l, &p.s, cfg);
                bench.iter(|| {
                    engine.iterate();
                    black_box(engine.yc()[0])
                });
            });
        }
        let cfg = BpConfig::default();
        group.bench_function(BenchmarkId::new("round", label), |bench| {
            let mut engine = BpEngine::new(&p.l, &p.s, &cfg);
            engine.iterate();
            bench.iter(|| black_box(engine.round().1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bp);
criterion_main!(benches);
