//! Regenerates **Figure 7**: end-to-end run time of cuAlign (with its
//! optimization phase on the GPU model) vs. cone-align, per input.
//!
//! The paper's finding: with GPU acceleration, cuAlign's extra BP +
//! matching work no longer costs noticeable wall-clock relative to
//! cone-align — the quality gains of Fig. 6 come almost for free.
//!
//! ```text
//! cargo run --release -p cualign-bench --bin fig7
//! ```

use cualign::{cone_align, PaperInput};
use cualign_bench::{prepare_instance, HarnessConfig};
use cualign_bp::BpConfig;
use cualign_gpusim::report::table2_row;
use cualign_gpusim::ExecConfig;
use std::time::Instant;

fn main() {
    let h = HarnessConfig::from_env();
    let density = 0.025;
    println!(
        "Figure 7: run time, cuAlign-GPU vs cone-align (scale = {}, density = {}%, seed = {})\n",
        h.scale,
        density * 100.0,
        h.seed
    );
    println!(
        "{:<16} {:>12} {:>14} {:>14} {:>12}",
        "Network", "init (s)", "optimize-GPU(s)", "cuAlign total", "cone-align"
    );
    println!("{}", "-".repeat(74));
    for input in PaperInput::all() {
        // Shared front half (both methods pay it).
        let t = Instant::now();
        let p = prepare_instance(&h, input, density);
        let init_s = t.elapsed().as_secs_f64();

        // cuAlign's extra work under the GPU model.
        let cfg = BpConfig { max_iters: h.bp_iters, ..Default::default() };
        let row = table2_row(&p.l, &p.s, &cfg, &ExecConfig::optimized());
        let cualign_total = init_s + row.gpu.total_s();

        // cone-align's total, measured on this host (its back half is one
        // matching — negligible — so host time is dominated by the same
        // init both methods share).
        let cone = cone_align(&p.a, &p.b, &h.aligner_config(density));

        println!(
            "{:<16} {:>12.3} {:>14.4} {:>14.3} {:>12.3}",
            input.name(),
            init_s,
            row.gpu.total_s(),
            cualign_total,
            cone.seconds
        );
    }
    println!("\nExpected shape (paper): cuAlign-GPU totals track cone-align — the optimization");
    println!("phase is no longer a noticeable overhead once accelerated.");
}
