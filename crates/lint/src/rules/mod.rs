//! The rule implementations and the token-pattern helpers they share.

pub mod doc_links;
pub mod float_ordering;
pub mod no_panic;
pub mod oracle_pinning;
pub mod telemetry_names;
pub mod unsafe_hygiene;

use crate::lexer::{Tok, Token};

/// Is the token the punctuation character `c`?
pub(crate) fn is_punct(t: Option<&Token>, c: char) -> bool {
    matches!(t, Some(tok) if tok.tok == Tok::Punct(c))
}

/// The identifier text of a token, if it is one.
pub(crate) fn ident(t: Option<&Token>) -> Option<&str> {
    match t {
        Some(Token {
            tok: Tok::Ident(s), ..
        }) => Some(s.as_str()),
        _ => None,
    }
}

/// Given `toks[open]` = `(`, returns the index of the matching `)`
/// (or `toks.len()` if unbalanced). Tracks all three bracket kinds so
/// nested closures, arrays, and blocks inside the call do not confuse
/// the match.
pub(crate) fn matching_paren(toks: &[Token], open: usize) -> usize {
    let mut paren = 0isize;
    let mut bracket = 0isize;
    let mut brace = 0isize;
    let mut j = open;
    while let Some(t) = toks.get(j) {
        match t.tok {
            Tok::Punct('(') => paren += 1,
            Tok::Punct(')') => {
                paren -= 1;
                if paren == 0 && bracket <= 0 && brace <= 0 {
                    return j;
                }
            }
            Tok::Punct('[') => bracket += 1,
            Tok::Punct(']') => bracket -= 1,
            Tok::Punct('{') => brace += 1,
            Tok::Punct('}') => brace -= 1,
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// Token range of the *first argument* of a call whose `(` sits at
/// `open`: `(start, end)` exclusive of the delimiters, stopping at the
/// first comma that is at the call's own nesting level.
pub(crate) fn first_arg_range(toks: &[Token], open: usize) -> (usize, usize) {
    let close = matching_paren(toks, open);
    let mut paren = 0isize;
    let mut bracket = 0isize;
    let mut brace = 0isize;
    for (j, t) in toks.iter().enumerate().take(close).skip(open) {
        match t.tok {
            Tok::Punct('(') => paren += 1,
            Tok::Punct(')') => paren -= 1,
            Tok::Punct('[') => bracket += 1,
            Tok::Punct(']') => bracket -= 1,
            Tok::Punct('{') => brace += 1,
            Tok::Punct('}') => brace -= 1,
            Tok::Punct(',') if paren == 1 && bracket == 0 && brace == 0 => {
                return (open + 1, j);
            }
            _ => {}
        }
    }
    (open + 1, close)
}
