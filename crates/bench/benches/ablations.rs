//! Criterion bench: CPU-measurable ablations of the design choices
//! DESIGN.md calls out — kernel fusion (Listing 1) vs. the two-pass
//! update, the rounding matcher, and the sparsity level's effect on one
//! optimization step. (GPU-model ablations are printed by the
//! `ablation_gpu` binary; these are the host-measurable counterparts.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cualign::PaperInput;
use cualign_bench::{prepare_instance, HarnessConfig};
use cualign_bp::{BpConfig, BpEngine, DampingSchedule, MatcherKind};
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    // Fusion: same update, one pass vs two.
    let h = HarnessConfig {
        scale: 0.15,
        bp_iters: 1,
        seed: 1,
    };
    let p = prepare_instance(&h, PaperInput::FlyY2h1, 0.025);
    for fused in [true, false] {
        let cfg = BpConfig {
            fused,
            ..Default::default()
        };
        let name = if fused { "fused" } else { "unfused" };
        group.bench_function(BenchmarkId::new("f_dc_update", name), |b| {
            let mut e = BpEngine::new(&p.l, &p.s, &cfg);
            b.iter(|| {
                e.iterate();
                black_box(e.dc()[0])
            });
        });
    }

    // Matcher choice inside the rounding step.
    for matcher in [
        MatcherKind::Serial,
        MatcherKind::Parallel,
        MatcherKind::Greedy,
        MatcherKind::Suitor,
    ] {
        let cfg = BpConfig {
            matcher,
            max_iters: 1,
            ..Default::default()
        };
        group.bench_function(BenchmarkId::new("rounding", format!("{matcher:?}")), |b| {
            let mut e = BpEngine::new(&p.l, &p.s, &cfg);
            e.iterate();
            b.iter(|| black_box(e.round().1));
        });
    }

    // Damping schedule: identical per-iteration cost, benched to confirm
    // the schedule knob is free.
    for damping in [DampingSchedule::PowerDecay, DampingSchedule::Constant] {
        let cfg = BpConfig {
            damping,
            ..Default::default()
        };
        group.bench_function(BenchmarkId::new("damping", format!("{damping:?}")), |b| {
            let mut e = BpEngine::new(&p.l, &p.s, &cfg);
            b.iter(|| {
                e.iterate();
                black_box(e.dc()[0])
            });
        });
    }

    // Density's effect on one full BP step (iterate + round).
    for density in [0.01, 0.025, 0.05] {
        let p = prepare_instance(&h, PaperInput::Synthetic4000, density);
        let cfg = BpConfig::default();
        group.bench_function(
            BenchmarkId::new("step_vs_density", format!("{}%", density * 100.0)),
            |b| {
                let mut e = BpEngine::new(&p.l, &p.s, &cfg);
                b.iter(|| {
                    e.iterate();
                    black_box(e.round().1)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
