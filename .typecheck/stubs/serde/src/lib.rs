//! Offline stand-in for `serde` (typecheck harness only): real trait
//! names, no-op derives.

pub use serde_stub_derive::{Deserialize, Serialize};

/// No-op stand-in for `serde::Serialize`.
pub trait Serialize {}

/// No-op stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
