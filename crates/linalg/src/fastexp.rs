//! Branchless polynomial `exp` for the Sinkhorn log-sum-exp sweeps.
//!
//! The blocked Sinkhorn solver spends essentially all of its time inside
//! `Σ exp(v − max)` reductions. `f64::exp` is a libm call: accurate, but
//! opaque to the vectorizer, so every reduction runs one scalar call per
//! matrix element. [`exp_fast`] is the classic Cody–Waite range reduction
//! (`exp(x) = 2ᵏ · exp(r)`, `|r| ≤ ln2/2`) with a degree-13 Taylor
//! polynomial — straight-line `mul`/`add`/`round`/bit-cast code with no
//! data-dependent branches, which LLVM auto-vectorizes inside the sweep
//! loops.
//!
//! Accuracy: the polynomial truncation error is `r¹⁴/14! ≤ 4·10⁻¹⁸`
//! relative, so results agree with `f64::exp` to a few ulp (pinned by the
//! unit tests below at `1e-13` relative over the whole reduced range).
//! Inputs at or below [`EXP_UNDERFLOW`] flush to **exactly zero**: `exp`
//! of anything that negative is within one part in 10⁹ of zero on any
//! scale the solver measures, and a hard zero keeps the materialized
//! transport plans free of `1e-308`-magnitude residue — one subnormal-
//! operand multiply costs a ~100-cycle microcode assist on x86, and a
//! plan full of them poisons every downstream GEMM it feeds (measured:
//! 12× on the Procrustes projection). Inputs above `708` saturate at
//! `exp(708)` instead of overflowing.

/// Arguments at or below this flush to exactly `0.0` in [`exp_fast`].
/// `exp(−708) ≈ 3.3·10⁻³⁰⁸` is the edge of the normal `f64` range:
/// anything smaller would drag subnormals into the downstream arithmetic.
pub const EXP_UNDERFLOW: f64 = -708.0;

/// `exp(x)` to within a few ulp, as branch-free straight-line code.
///
/// Differences from `f64::exp`: inputs at or below [`EXP_UNDERFLOW`]
/// return exactly `0.0` (std keeps producing subnormals down to `−745`),
/// inputs above `708` saturate at `exp(708)` instead of overflowing to
/// `∞`, and `NaN` flushes to `0.0` like any non-finite comparison — the
/// Sinkhorn sweeps never produce one.
#[inline(always)]
// Not `clamp()`: it propagates NaN, while max/min substitute the bound —
// which is what routes NaN onto the flush-to-zero path below.
#[allow(clippy::manual_clamp)]
pub fn exp_fast(x: f64) -> f64 {
    // The underflow test compiles to cmp + select: still branchless.
    let ftz = if x > EXP_UNDERFLOW { 1.0 } else { 0.0 };
    // Clamp keeps 2ᵏ a normal number (k ∈ [−1022, 1022]); min/max compile
    // to vminsd/vmaxsd.
    let x = x.max(EXP_UNDERFLOW).min(708.0);
    const LOG2_E: f64 = std::f64::consts::LOG2_E;
    // ln 2 split high/low (Cody–Waite) so `x − k·ln2` is exact in the
    // high part and the low part mops up the residual.
    const LN2_HI: f64 = 0.693_147_180_369_123_8;
    const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;
    // Round-to-nearest-integer via the 2⁵² trick: adding 1.5·2⁵² forces
    // the FPU to round the sum to integer precision, leaving
    // `round(x·log₂e)` in the low mantissa bits. Unlike `f64::round()`
    // (libm) or an `as i64` cast (no packed f64→i64 before AVX-512),
    // every op here has a plain SSE2 packed form, so the whole function
    // vectorizes inside the sweep loops of the callers.
    const SHIFT: f64 = 6_755_399_441_055_744.0; // 1.5 · 2⁵²
    let t = x * LOG2_E + SHIFT;
    let k = t - SHIFT; // = round(x·log₂e), exact (|k| ≤ 1022 ≪ 2⁵¹)
    let r = (x - k * LN2_HI) - k * LN2_LO; // |r| ≤ ln2/2 ≈ 0.3466
                                           // exp(r) by degree-13 Taylor, Horner form. Coefficients are 1/n!.
    let mut p = 1.605_904_383_682_161_3e-10; // 1/13!
    p = p * r + 2.087_675_698_786_81e-9; // 1/12!
    p = p * r + 2.505_210_838_544_172e-8; // 1/11!
    p = p * r + 2.755_731_922_398_589_3e-7; // 1/10!
    p = p * r + 2.755_731_922_398_589_4e-6; // 1/9!
    p = p * r + 2.480_158_730_158_73e-5; // 1/8!
    p = p * r + 1.984_126_984_126_984e-4; // 1/7!
    p = p * r + 1.388_888_888_888_889e-3; // 1/6!
    p = p * r + 8.333_333_333_333_333e-3; // 1/5!
    p = p * r + 4.166_666_666_666_666_4e-2; // 1/4!
    p = p * r + 1.666_666_666_666_666_7e-1; // 1/3!
    p = p * r + 0.5; // 1/2!
    p = p * r + 1.0;
    p = p * r + 1.0;
    // 2ᵏ assembled in the exponent field, still without an int cast: the
    // low 12 mantissa bits of `t` hold `k` (mod 2¹², two's-complement
    // wrapped); shift them into the exponent field and re-bias with a
    // wrapping +1023·2⁵² — for negative `k` the wrap discards the borrow
    // bit and lands on the correct biased exponent. The clamp bounds `k`,
    // so the result is always a normal number.
    let two_k = f64::from_bits((t.to_bits() << 52).wrapping_add(1023u64 << 52));
    p * two_k * ftz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_std_exp_over_sinkhorn_range() {
        // Dense sweep over the magnitudes the LSE reductions produce.
        let mut worst = 0.0f64;
        let mut x = -80.0;
        while x <= 10.0 {
            let got = exp_fast(x);
            let want = x.exp();
            let rel = ((got - want) / want).abs();
            worst = worst.max(rel);
            x += 0.001_7;
        }
        assert!(worst < 1e-13, "worst relative error {worst:e}");
    }

    #[test]
    fn deep_negative_tail_is_accurate() {
        for &x in &[-100.0, -300.0, -700.0] {
            let rel = ((exp_fast(x) - x.exp()) / x.exp()).abs();
            assert!(rel < 1e-13, "x = {x}: rel {rel:e}");
        }
    }

    #[test]
    fn clamps_instead_of_overflowing() {
        assert_eq!(exp_fast(-1.0e9), 0.0, "deep underflow flushes to zero");
        assert_eq!(exp_fast(EXP_UNDERFLOW), 0.0, "cutoff is inclusive");
        assert!(exp_fast(EXP_UNDERFLOW + 1.0) > 0.0);
        assert!(exp_fast(1.0e9).is_finite());
        // NaN fails the underflow comparison and flushes to zero too.
        assert_eq!(exp_fast(f64::NAN), 0.0);
    }

    #[test]
    fn never_produces_subnormals() {
        let mut x = -720.0;
        while x <= -690.0 {
            let y = exp_fast(x);
            assert!(y == 0.0 || y >= f64::MIN_POSITIVE, "subnormal at x = {x}");
            x += 0.01;
        }
    }

    #[test]
    fn exact_at_zero_and_one() {
        assert_eq!(exp_fast(0.0), 1.0);
        let rel = ((exp_fast(1.0) - std::f64::consts::E) / std::f64::consts::E).abs();
        assert!(rel < 1e-15);
    }
}
