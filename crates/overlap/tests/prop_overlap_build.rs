//! Pins the two-phase masked-SpGEMM `OverlapMatrix::build` to the
//! original serial `build_reference`: exact equality of the full CSR
//! (row offsets, column indices, transpose permutation), not just nnz.
//! The construction is pure structure (no floating point), so equality
//! is exact by contract.

use cualign_graph::generators::erdos_renyi_gnm;
use cualign_graph::{BipartiteGraph, CsrGraph, Permutation, VertexId};
use cualign_overlap::OverlapMatrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_instance(
    n: usize,
    edges: usize,
    decoys: usize,
    seed: u64,
) -> (CsrGraph, CsrGraph, BipartiteGraph) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = erdos_renyi_gnm(n, edges, &mut rng);
    let p = Permutation::random(n, &mut rng);
    let b = p.apply_to_graph(&a);
    let mut triples: Vec<(VertexId, VertexId, f64)> = Vec::new();
    for i in 0..n as VertexId {
        triples.push((i, p.apply(i), 1.0));
        for _ in 0..decoys {
            triples.push((i, rng.gen_range(0..n as VertexId), 1.0));
        }
    }
    let l = BipartiteGraph::from_weighted_edges(n, n, &triples);
    (a, b, l)
}

fn assert_builds_agree(a: &CsrGraph, b: &CsrGraph, l: &BipartiteGraph) {
    let fast = OverlapMatrix::build(a, b, l);
    let slow = OverlapMatrix::build_reference(a, b, l);
    assert_eq!(fast.nnz(), slow.nnz());
    assert_eq!(fast.row_offsets(), slow.row_offsets());
    assert_eq!(fast.col_indices(), slow.col_indices());
    assert_eq!(fast.transpose_perm(), slow.transpose_perm());
    fast.check_invariants().expect("fast build invariants");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random graphs, random candidate sets: the parallel count+fill
    /// build and the serial reference agree exactly.
    #[test]
    fn build_matches_reference_on_random_instances(
        n in 2usize..28,
        edge_factor in 1usize..4,
        decoys in 0usize..5,
        seed in 0u64..10_000,
    ) {
        let edges = (n * edge_factor).min(n * (n - 1) / 2);
        let (a, b, l) = random_instance(n, edges, decoys, seed);
        assert_builds_agree(&a, &b, &l);
    }
}

/// Hub-skewed shape: a star in A (every edge touches the hub) and a
/// candidate list where the hub pairs with everything, giving the
/// overlap CSR hot rows that straddle merge chunks.
#[test]
fn build_matches_reference_on_hub_skewed_graphs() {
    let n = 80usize;
    let mut rng = StdRng::seed_from_u64(99);
    let mut pairs: Vec<(VertexId, VertexId)> = (1..n as VertexId).map(|j| (0, j)).collect();
    for _ in 0..n {
        let u = rng.gen_range(1..n as VertexId);
        let v = rng.gen_range(1..n as VertexId);
        if u != v {
            pairs.push((u, v));
        }
    }
    let a = CsrGraph::from_edges(n, &pairs);
    let p = Permutation::random(n, &mut rng);
    let b = p.apply_to_graph(&a);
    let mut triples: Vec<(VertexId, VertexId, f64)> = Vec::new();
    for i in 0..n as VertexId {
        triples.push((i, p.apply(i), 1.0));
        triples.push((0, i, 1.0));
        triples.push((i, 0, 1.0));
    }
    let l = BipartiteGraph::from_weighted_edges(n, n, &triples);
    assert_builds_agree(&a, &b, &l);
}

/// Degenerate shapes: empty candidate sets and edgeless graphs.
#[test]
fn build_matches_reference_on_degenerate_instances() {
    // Edgeless A: no squares exist at all.
    let a = CsrGraph::from_edges(5, &[]);
    let b = CsrGraph::from_edges(5, &[]);
    let l = BipartiteGraph::from_weighted_edges(
        5,
        5,
        &[(0, 0, 1.0), (1, 1, 1.0), (2, 3, 1.0)],
    );
    assert_builds_agree(&a, &b, &l);

    // Graphs with edges but an empty candidate list.
    let a = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
    let b = CsrGraph::from_edges(4, &[(0, 2), (1, 3)]);
    let l = BipartiteGraph::from_weighted_edges(4, 4, &[]);
    assert_builds_agree(&a, &b, &l);
}
