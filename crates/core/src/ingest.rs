//! Cheap, validated graph ingestion for untrusted request bodies.
//!
//! A long-running alignment service accepts graph pairs over the
//! network, so the path from "bytes a client sent" to a [`CsrGraph`]
//! must be total: every malformed input surfaces as a typed
//! [`AlignError::Protocol`] instead of a panic, and validation costs one
//! linear scan before the `O(E log E)` CSR build. The serving layer
//! (`cualign-serve`) parses its wire format down to `(n, edge list)`
//! and hands the rest to [`graph_from_edges`]; anything that clears this
//! function is a structurally sound input for
//! [`crate::AlignmentSession`].

use crate::error::AlignError;
use cualign_graph::{CsrGraph, VertexId};

/// Builds a CSR graph from an untrusted `(vertex count, edge list)`
/// description.
///
/// Semantics match [`CsrGraph::from_edges`] — self loops are dropped,
/// duplicate edges (in either orientation) collapse — but every
/// precondition that constructor asserts is checked here first and
/// reported as [`AlignError::Protocol`]:
///
/// * `n` must be at least 1 (a zero-vertex graph cannot be aligned),
/// * `n` must fit the [`VertexId`] range,
/// * every endpoint must be `< n`.
///
/// ```
/// use cualign::ingest::graph_from_edges;
/// let g = graph_from_edges(3, &[(0, 1), (1, 2), (1, 2)]).unwrap();
/// assert_eq!((g.num_vertices(), g.num_edges()), (3, 2));
/// assert!(graph_from_edges(3, &[(0, 7)]).is_err());
/// ```
pub fn graph_from_edges(n: usize, edges: &[(u64, u64)]) -> Result<CsrGraph, AlignError> {
    if n == 0 {
        return Err(AlignError::Protocol {
            reason: "graph has zero vertices".to_string(),
        });
    }
    if n > VertexId::MAX as usize {
        return Err(AlignError::Protocol {
            reason: format!(
                "vertex count {n} exceeds the supported maximum of {}",
                VertexId::MAX
            ),
        });
    }
    let mut checked = Vec::with_capacity(edges.len());
    for (idx, &(u, v)) in edges.iter().enumerate() {
        if u >= n as u64 || v >= n as u64 {
            return Err(AlignError::Protocol {
                reason: format!("edge #{idx} ({u}, {v}) is out of bounds for n = {n}"),
            });
        }
        checked.push((u as VertexId, v as VertexId));
    }
    Ok(CsrGraph::from_edges(n, &checked))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_edge_lists_round_trip() {
        let g = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 5);
        g.check_invariants().unwrap();
        // Self loops and duplicates are cleaned, not rejected.
        let g = graph_from_edges(3, &[(0, 0), (0, 1), (1, 0)]).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn degenerate_inputs_are_protocol_errors() {
        for (n, edges) in [
            (0usize, vec![]),
            (4, vec![(0u64, 4u64)]),
            (4, vec![(9, 1)]),
            (VertexId::MAX as usize + 1, vec![]),
        ] {
            let err = graph_from_edges(n, &edges).unwrap_err();
            assert!(
                matches!(err, AlignError::Protocol { .. }),
                "({n}, {edges:?}) must be a protocol error, got {err:?}"
            );
        }
        let msg = graph_from_edges(4, &[(0, 1), (2, 5)])
            .unwrap_err()
            .to_string();
        assert!(msg.contains("edge #1") && msg.contains("n = 4"), "{msg}");
    }
}
