//! End-to-end tests of the multilevel coarsen–align–project–refine
//! pipeline: quality against the flat pipeline, graceful degradation on
//! tiny inputs, determinism, and the per-level telemetry contract.

use cualign::{align_multilevel_with_registry, Aligner, AlignerConfig};
use cualign_graph::generators::{duplication_divergence, erdos_renyi_gnm};
use cualign_graph::permutation::AlignmentInstance;
use cualign_telemetry::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fresh_registry() -> &'static Registry {
    Box::leak(Box::new(Registry::new_enabled()))
}

fn cfg(levels: usize) -> AlignerConfig {
    AlignerConfig::builder()
        .k(6)
        .bp_iters(8)
        .multilevel(levels)
        .build()
        .unwrap()
}

/// The headline claim: on a permuted pair the multilevel path recovers
/// the hidden permutation at least as well as chance-free flat quality
/// thresholds, across graph families.
#[test]
fn multilevel_recovers_across_graph_families() {
    let mut rng = StdRng::seed_from_u64(3);
    let families = vec![
        ("erdos-renyi", erdos_renyi_gnm(500, 2000, &mut rng), 0.5),
        (
            "duplication-divergence",
            duplication_divergence(400, 0.45, 0.3, &mut rng),
            0.3,
        ),
    ];
    for (name, g, threshold) in families {
        let inst = AlignmentInstance::permuted_pair(g, &mut rng);
        let r = Aligner::new(cfg(2)).align(&inst.a, &inst.b).unwrap();
        let nc = inst.node_correctness(&r.mapping);
        assert!(
            nc > threshold,
            "{name}: node correctness {nc} below {threshold}"
        );
        assert!(
            r.scores.ncv_gs3 > threshold,
            "{name}: NCV-GS3 {} below {threshold}",
            r.scores.ncv_gs3
        );
    }
}

/// Requesting more levels than the coarsening floor allows must degrade
/// gracefully: tiny graphs cannot coarsen (depth 0) and fall back to the
/// flat session inside the same API.
#[test]
fn tiny_inputs_fall_back_to_flat() {
    let mut rng = StdRng::seed_from_u64(4);
    let a = erdos_renyi_gnm(60, 150, &mut rng);
    let inst = AlignmentInstance::permuted_pair(a, &mut rng);
    let mut c = AlignerConfig::builder()
        .k(6)
        .bp_iters(8)
        .embedding_dim(16)
        .multilevel(4)
        .build()
        .unwrap();
    // Floor above the graph size: no coarsening possible at all.
    c.multilevel.as_mut().unwrap().min_coarse_vertices = 128;
    let r = Aligner::new(c).align(&inst.a, &inst.b).unwrap();
    assert!(r.scores.ncv_gs3 > 0.0);
    assert_eq!(r.mapping.len(), 60);
}

/// Same config, same inputs, same answer — the multilevel path inherits
/// the pipeline's determinism guarantee.
#[test]
fn multilevel_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(5);
    let a = erdos_renyi_gnm(300, 1200, &mut rng);
    let inst = AlignmentInstance::permuted_pair(a, &mut rng);
    let r1 = Aligner::new(cfg(2)).align(&inst.a, &inst.b).unwrap();
    let r2 = Aligner::new(cfg(2)).align(&inst.a, &inst.b).unwrap();
    assert_eq!(r1.mapping, r2.mapping);
    assert_eq!(r1.scores, r2.scores);
}

/// The telemetry contract: coarsen/coarse-align spans, one refine span
/// per realized level with band/overlap/bp/repair children, the
/// `multilevel.depth` gauge, and non-zero per-level size counters.
#[test]
fn multilevel_telemetry_spans_and_counters() {
    let mut rng = StdRng::seed_from_u64(6);
    let a = erdos_renyi_gnm(400, 1600, &mut rng);
    let inst = AlignmentInstance::permuted_pair(a, &mut rng);
    let registry = fresh_registry();
    let r = align_multilevel_with_registry(&inst.a, &inst.b, &cfg(2), registry).unwrap();
    assert!(r.scores.ncv_gs3 > 0.0);

    let snap = registry.snapshot();
    let depth = snap.gauges["multilevel.depth"] as usize;
    assert!(
        depth >= 1,
        "a 400-vertex ER graph must coarsen at least once"
    );
    let spans = &snap.spans.children;
    assert!(spans.contains_key("multilevel.coarsen"));
    assert!(spans.contains_key("multilevel.coarse_align"));
    for j in 0..depth {
        let refine = &spans[&format!("multilevel.level{j}.refine")];
        for child in ["band", "overlap", "bp", "repair"] {
            assert!(
                refine
                    .children
                    .contains_key(&format!("multilevel.level{j}.{child}")),
                "missing level{j} child span {child}"
            );
        }
        assert!(snap.counters[&format!("multilevel.level{j}.projected_pairs")] > 0);
        assert!(snap.counters[&format!("multilevel.level{j}.band_edges")] > 0);
        assert!(snap.counters[&format!("multilevel.level{j}.bp_matched")] > 0);
    }
    // The session stages of the coarse alignment nest under its span.
    assert!(spans["multilevel.coarse_align"]
        .children
        .keys()
        .any(|k| k.starts_with("session.")));

    // Timing attribution reaches the returned record.
    assert!(r.timings.total_s() > 0.0);
    assert!(
        r.timings.sparsify_s > 0.0,
        "coarsen+band seconds must be attributed"
    );
    assert!(
        r.timings.optimize_s > 0.0,
        "bp+repair seconds must be attributed"
    );
}
