//! Consistency of the GPU execution model against the reference
//! implementations, on pipeline-produced structures: the simulator must
//! change *timing*, never *results*, and its cost orderings must reflect
//! the paper's §5 claims.

use cualign::{AlignerConfig, SparsityChoice};
use cualign_bp::{BpConfig, BpEngine};
use cualign_embed::align_subspaces;
use cualign_gpusim::bp_gpu::{model_bp_iteration, simulate_bp};
use cualign_gpusim::match_gpu::simulate_matching;
use cualign_gpusim::report::table2_row;
use cualign_gpusim::{DeviceSpec, ExecConfig};
use cualign_graph::generators::duplication_divergence;
use cualign_graph::permutation::AlignmentInstance;
use cualign_graph::BipartiteGraph;
use cualign_matching::locally_dominant_serial;
use cualign_overlap::OverlapMatrix;
use cualign_sparsify::build_alignment_graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pipeline_structures(n: usize, seed: u64, k: usize) -> (BipartiteGraph, OverlapMatrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = duplication_divergence(n, 0.42, 0.3, &mut rng);
    let inst = AlignmentInstance::permuted_pair(a, &mut rng);
    let cfg = AlignerConfig {
        sparsity: SparsityChoice::K(k),
        ..Default::default()
    };
    let y1 = cfg.embedding.embed(&inst.a);
    let y2 = cfg.embedding.with_seed_offset(1).embed(&inst.b);
    let sub = align_subspaces(&y1, &y2, &inst.a, &inst.b, &cfg.subspace).expect("valid inputs");
    let l = build_alignment_graph(&sub.ya, &sub.yb, k);
    let s = OverlapMatrix::build(&inst.a, &inst.b, &l);
    (l, s)
}

/// Simulated BP produces bit-identical outcomes to the reference engine,
/// under every device/exec combination.
#[test]
fn simulation_never_changes_results() {
    let (l, s) = pipeline_structures(150, 1, 6);
    let cfg = BpConfig {
        max_iters: 6,
        ..Default::default()
    };
    let reference = BpEngine::new(&l, &s, &cfg).run();
    for device in [DeviceSpec::a100(), DeviceSpec::epyc7702p()] {
        for exec in [ExecConfig::optimized(), ExecConfig::naive()] {
            let (out, report) = simulate_bp(&l, &s, &cfg, &device, &exec);
            assert_eq!(out.best_score, reference.best_score);
            assert_eq!(out.best_matching, reference.best_matching);
            assert!(report.seconds > 0.0);
        }
    }
}

/// Simulated matching numerics equal the serial reference (which in turn
/// pins the unique locally dominant matching).
#[test]
fn simulated_matching_is_reference_matching() {
    let (l, _) = pipeline_structures(200, 2, 8);
    let (m, stats, _) = simulate_matching(&l, &DeviceSpec::a100(), &ExecConfig::optimized());
    assert_eq!(m, locally_dominant_serial(&l));
    assert!(stats.rounds >= 1);
    assert_eq!(
        stats.detail.iter().map(|d| d.matched).sum::<usize>(),
        m.len(),
        "per-round commits must sum to the matching size"
    );
}

/// §5 claims as cost-model orderings, on real pipeline structure:
/// fusion helps, each §5 feature never hurts, naive is worst.
#[test]
fn optimization_orderings_hold() {
    let (l, s) = pipeline_structures(250, 3, 8);
    let gpu = DeviceSpec::a100();
    let opt = ExecConfig::optimized();
    let (_, fused) = model_bp_iteration(&l, &s, true, &gpu, &opt);
    let (_, unfused) = model_bp_iteration(&l, &s, false, &gpu, &opt);
    assert!(fused < unfused, "fusion must reduce modeled time");

    let (_, no_streams) = model_bp_iteration(
        &l,
        &s,
        true,
        &gpu,
        &ExecConfig {
            streams: false,
            ..opt
        },
    );
    assert!(fused <= no_streams, "streams must not hurt");

    let (_, naive) = model_bp_iteration(&l, &s, true, &gpu, &ExecConfig::naive());
    assert!(fused <= naive, "optimized must beat naive");
}

/// CPU modeling is insensitive to the SIMT-only toggles (warp width 1 has
/// no idle lanes to save and no warps to split).
#[test]
fn cpu_model_ignores_simt_toggles() {
    let (l, s) = pipeline_structures(150, 4, 6);
    let cpu = DeviceSpec::epyc7702p();
    let (_, a) = model_bp_iteration(&l, &s, true, &cpu, &ExecConfig::optimized());
    let (_, b) = model_bp_iteration(
        &l,
        &s,
        true,
        &cpu,
        &ExecConfig {
            virtual_warps: false,
            binning: false,
            streams: false,
        },
    );
    // Binning only changes launch counts; allow the overhead delta.
    let tol = 64.0 * cpu.launch_overhead_s;
    assert!((a - b).abs() <= tol, "CPU model diverged: {a} vs {b}");
}

/// Table 2's shape on a pipeline instance: both phases gain, BP gains
/// more, total in between.
#[test]
fn table2_shape_on_pipeline_instance() {
    let (l, s) = pipeline_structures(2500, 5, 25);
    let row = table2_row(&l, &s, &BpConfig::default(), &ExecConfig::optimized());
    assert!(row.bp_speedup() > 1.0, "BP speedup {}", row.bp_speedup());
    assert!(
        row.bp_speedup() > row.match_speedup(),
        "BP {} should outpace matching {}",
        row.bp_speedup(),
        row.match_speedup()
    );
    let t = row.total_speedup();
    assert!(t <= row.bp_speedup().max(row.match_speedup()) + 1e-9);
    assert!(t >= row.bp_speedup().min(row.match_speedup()) - 1e-9);
}
