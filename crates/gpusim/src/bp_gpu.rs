//! GPU cost model of the belief-propagation phase.
//!
//! [`simulate_bp`] runs the reference [`BpEngine`] for the numerics and
//! charges each of Algorithm 2's kernels against a [`DeviceSpec`] using the
//! run's *real* sparsity structure. Since the sweeps moved onto
//! `linalg::sparse`, the CSR-shaped kernels are charged per **merge
//! chunk** (equal-nnz work items from the same [`MergePlan`] the CPU
//! path uses, [`MERGE_CHUNK_NNZ`] nonzeros each) instead of per row:
//! lane-slot and transaction accounting then reflects the balanced
//! distribution, and skewed degrees no longer produce a hub-row
//! critical-path tail — the point of merge-path balancing:
//!
//! | kernel | work items | size | access pattern |
//! |---|---|---|---|
//! | fused `F`+`dᶜ` (Listing 1) | merge chunks of `S` | chunk nnz | `Sᵖ[perm[j]]` scattered, `F`/`dᶜ` coalesced |
//! | straddle fixup | straddle rows of `S` | row degree | serial re-sum of chunk-crossing rows |
//! | unfused `F` then `dᶜ` | merge chunks of `S` ×2 | chunk nnz | same + re-reads `F` |
//! | othermaxcol (positional) | merge chunks of B-side CSR | chunk nnz | b_eids indirection → scattered reads, coalesced scratch |
//! | gather + damp → `yᶜ`/`yᵖ` | edges | 1 | positional scratch scattered, rest coalesced |
//! | othermaxrow + `zᶜ`/`zᵖ` tail | merge chunks of A-side CSR | chunk nnz | canonical edge order → coalesced (`exclusion_max_apply`) |
//! | `Sᶜ` update + `Sᵖ` damp | merge chunks of `S` | chunk nnz | coalesced |
//!
//! The othermax / damping family mirrors the engine's fused tail: the
//! A-side exclusion writes the damped `zᶜ`/`zᵖ` in place (side-A
//! positions are edge ids), the B-side exclusion materializes its
//! positional scratch and one gather pass produces the damped
//! `yᶜ`/`yᵖ`, and the `Sᶜ` row update damps `Sᵖ` as it goes — no
//! standalone damping kernels remain.
//!
//! [`model_bp_iteration`] charges one iteration without running numerics,
//! so device sweeps don't pay for repeated BP runs.

use crate::device::DeviceSpec;
use crate::exec::{simulate_launch, ExecConfig, LaunchStats};
use crate::footprint::Footprint;
use cualign_bp::{BpConfig, BpEngine, BpOutcome};
use cualign_graph::{BipartiteGraph, VertexId};
use cualign_linalg::sparse::MergePlan;
use cualign_overlap::OverlapMatrix;

/// Nonzeros per merge chunk charged to the modeled CSR kernels. 256 f64
/// messages fill eight 32-lane strips — deep enough to amortize the
/// chunk's binary-search setup, small enough that a hot row spreads over
/// many chunks.
pub const MERGE_CHUNK_NNZ: usize = 256;

/// Timing report for a BP phase under one device model.
#[derive(Clone, Debug)]
pub struct BpGpuReport {
    /// Modeled seconds for the whole phase (`iters` iterations, matching
    /// excluded — Table 2 reports it separately).
    pub seconds: f64,
    /// Per-kernel modeled seconds per iteration, `(name, seconds)`.
    pub per_kernel: Vec<(&'static str, f64)>,
    /// Iterations charged.
    pub iterations: usize,
    /// Total modeled DRAM bytes per iteration.
    pub bytes_per_iteration: u64,
    /// Idle-lane fraction across the iteration's kernels.
    pub idle_fraction: f64,
}

/// Work distribution of one merge-balanced kernel: per-chunk nnz spans
/// (the launch's work items), the amortized owned-row count per chunk
/// (row-indexed loads/stores are spread evenly by construction), and the
/// straddle rows' full degrees (the serial re-sum fixup pass).
struct MergeModel {
    chunk_sizes: Vec<usize>,
    rows_per_chunk: usize,
    straddle_sizes: Vec<usize>,
}

fn merge_model(offsets: &[usize]) -> MergeModel {
    let plan = MergePlan::with_chunk_nnz(offsets, MERGE_CHUNK_NNZ);
    let chunk_sizes: Vec<usize> = plan.chunks().iter().map(|c| c.end - c.begin).collect();
    let rows = offsets.len() - 1;
    let rows_per_chunk = rows.div_ceil(chunk_sizes.len().max(1)).max(1);
    let straddle_sizes = plan
        .straddle_rows()
        .iter()
        .map(|&r| offsets[r + 1] - offsets[r])
        .collect();
    MergeModel {
        chunk_sizes,
        rows_per_chunk,
        straddle_sizes,
    }
}

fn side_offsets_a(l: &BipartiteGraph) -> Vec<usize> {
    let mut off = Vec::with_capacity(l.na() + 1);
    off.push(0);
    for a in 0..l.na() {
        off.push(off[a] + l.degree_a(a as VertexId));
    }
    off
}

fn side_offsets_b(l: &BipartiteGraph) -> Vec<usize> {
    let mut off = Vec::with_capacity(l.nb() + 1);
    off.push(0);
    for b in 0..l.nb() {
        off.push(off[b] + l.degree_b(b as VertexId));
    }
    off
}

/// Charges one BP iteration's kernels. Returns `(per-kernel stats,
/// seconds)`.
pub fn model_bp_iteration(
    l: &BipartiteGraph,
    s: &OverlapMatrix,
    fused: bool,
    device: &DeviceSpec,
    exec: &ExecConfig,
) -> (Vec<(&'static str, LaunchStats)>, f64) {
    let ms = merge_model(s.row_offsets());
    let ma = merge_model(&side_offsets_a(l));
    let mb = merge_model(&side_offsets_b(l));
    let rpc = ms.rows_per_chunk;
    let mut kernels: Vec<(&'static str, LaunchStats)> = Vec::new();

    if fused {
        // Listing 1 over merge chunks: one pass reads Sᵖ via perm
        // (scattered), writes F, reduces into dᶜ. Row-indexed traffic
        // (`w[row]`, `dc[row]`) amortizes to `rpc` elements per chunk.
        kernels.push((
            "fused_f_dc",
            simulate_launch(device, exec, &ms.chunk_sizes, |sz| Footprint {
                contiguous_reads: rpc,       // w[row] per owned row
                scattered_reads: sz,         // sp[perm[j]]
                contiguous_writes: sz + rpc, // F span + dc[row]
                scattered_writes: 0,
                flops: 3 * sz + 2 * rpc,
            }),
        ));
        // Rows crossing interior chunk boundaries are re-summed serially
        // from the materialized F values to keep the FP chain exact.
        if !ms.straddle_sizes.is_empty() {
            kernels.push((
                "merge_fixup",
                simulate_launch(device, exec, &ms.straddle_sizes, |sz| Footprint {
                    contiguous_reads: sz + 1,
                    contiguous_writes: 1,
                    flops: sz + 1,
                    ..Default::default()
                }),
            ));
        }
    } else {
        kernels.push((
            "unfused_f",
            simulate_launch(device, exec, &ms.chunk_sizes, |sz| Footprint {
                scattered_reads: sz,
                contiguous_writes: sz,
                flops: 2 * sz,
                ..Default::default()
            }),
        ));
        // Row reduction walks whole owned rows (straddle rows read past
        // the chunk boundary), so no fixup launch is charged here.
        kernels.push((
            "unfused_dc",
            simulate_launch(device, exec, &ms.chunk_sizes, |sz| Footprint {
                contiguous_reads: sz + rpc, // re-read F + w[row]
                contiguous_writes: rpc,
                flops: sz + 2 * rpc,
                ..Default::default()
            }),
        ));
    }

    // othermaxcol over zᵖ into the positional B-side scratch: the
    // message loads go through the b_eids indirection (scattered), the
    // scratch writes are coalesced.
    kernels.push((
        "othermax_col",
        simulate_launch(device, exec, &mb.chunk_sizes, |sz| Footprint {
            scattered_reads: sz,    // zp[eid]
            contiguous_writes: sz,  // positional scratch
            flops: 2 * sz,
            ..Default::default()
        }),
    ));
    // Fused gather + damp: yᶜ = dᶜ − scratch[pos], yᵖ = γ·yᶜ + (1−γ)·yᵖ
    // per edge — the scratch read is the only scattered access.
    let m_edges = vec![1usize; l.num_edges()];
    kernels.push((
        "gather_damp_yc_yp",
        simulate_launch(device, exec, &m_edges, |_| Footprint {
            contiguous_reads: 3, // pos, dc, yp
            scattered_reads: 1,  // scratch[pos]
            contiguous_writes: 2, // yc, yp
            flops: 4,
            ..Default::default()
        }),
    ));
    // othermaxrow over yᵖ fused with its whole tail
    // (`sparse::exclusion_max_apply`): A-side rows are the canonical
    // edge order — coalesced (the asymmetry the paper's Listing 2
    // exploits) — so the exclusion writes the damped `zᶜ`/`zᵖ` directly
    // with no positional scratch round-trip.
    kernels.push((
        "othermax_row_zc_zp",
        simulate_launch(device, exec, &ma.chunk_sizes, |sz| Footprint {
            contiguous_reads: 3 * sz,  // yp, dc, zp
            contiguous_writes: 2 * sz, // zc, zp
            flops: 6 * sz,
            ..Default::default()
        }),
    ));
    // Sᶜ = diag(yᶜ+zᶜ−dᶜ)·S − F fused with the Sᵖ damp:
    // Sᵖ' = γ·Sᶜ + (1−γ)·Sᵖ written in one row-scaled pass.
    kernels.push((
        "sc_update_damp_sp",
        simulate_launch(device, exec, &ms.chunk_sizes, |sz| Footprint {
            contiguous_reads: 2 * sz + 3 * rpc, // F, Sᵖ + yc/zc/dc per row
            contiguous_writes: sz,
            flops: 4 * sz + 2 * rpc,
            ..Default::default()
        }),
    ));

    let seconds = kernels.iter().map(|(_, st)| st.seconds).sum();
    (kernels, seconds)
}

/// Runs BP (reference numerics) and models the phase's time on `device`.
///
/// Returns the outcome together with the [`BpGpuReport`]. The report
/// charges `cfg.max_iters` iterations of the kernel family above;
/// rounding/matching time is reported by
/// [`crate::match_gpu::simulate_matching`].
pub fn simulate_bp(
    l: &BipartiteGraph,
    s: &OverlapMatrix,
    cfg: &BpConfig,
    device: &DeviceSpec,
    exec: &ExecConfig,
) -> (BpOutcome, BpGpuReport) {
    let outcome = BpEngine::new(l, s, cfg).run();
    let report = model_bp_phase(l, s, cfg, device, exec);
    (outcome, report)
}

/// Models the BP phase time without running numerics.
pub fn model_bp_phase(
    l: &BipartiteGraph,
    s: &OverlapMatrix,
    cfg: &BpConfig,
    device: &DeviceSpec,
    exec: &ExecConfig,
) -> BpGpuReport {
    let (kernels, per_iter_seconds) = model_bp_iteration(l, s, cfg.fused, device, exec);
    let bytes: u64 = kernels.iter().map(|(_, st)| st.bytes(device)).sum();
    let active: u64 = kernels.iter().map(|(_, st)| st.active_lane_slots()).sum();
    let idle: u64 = kernels.iter().map(|(_, st)| st.idle_lane_slots()).sum();
    BpGpuReport {
        seconds: per_iter_seconds * cfg.max_iters as f64,
        per_kernel: kernels
            .iter()
            .map(|(name, st)| (*name, st.seconds))
            .collect(),
        iterations: cfg.max_iters,
        bytes_per_iteration: bytes,
        idle_fraction: if active + idle == 0 {
            0.0
        } else {
            idle as f64 / (active + idle) as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cualign_graph::generators::erdos_renyi_gnm;
    use cualign_graph::Permutation;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn instance(n: usize, seed: u64) -> (BipartiteGraph, OverlapMatrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = erdos_renyi_gnm(n, n * 3, &mut rng);
        let p = Permutation::random(n, &mut rng);
        let b = p.apply_to_graph(&a);
        let mut triples = Vec::new();
        for i in 0..n as VertexId {
            triples.push((i, p.apply(i), 0.5));
            for _ in 0..9 {
                triples.push((i, rng.gen_range(0..n as VertexId), 0.5));
            }
        }
        let l = BipartiteGraph::from_weighted_edges(n, n, &triples);
        let s = OverlapMatrix::build(&a, &b, &l);
        (l, s)
    }

    #[test]
    fn fusion_reduces_traffic_and_time() {
        let (l, s) = instance(60, 1);
        let gpu = DeviceSpec::a100();
        let exec = ExecConfig::optimized();
        let (_, fused_s) = model_bp_iteration(&l, &s, true, &gpu, &exec);
        let (_, unfused_s) = model_bp_iteration(&l, &s, false, &gpu, &exec);
        assert!(fused_s < unfused_s, "fused {fused_s} ≥ unfused {unfused_s}");
        let fused_bytes = model_bp_phase(
            &l,
            &s,
            &BpConfig {
                fused: true,
                max_iters: 1,
                ..Default::default()
            },
            &gpu,
            &exec,
        )
        .bytes_per_iteration;
        let unfused_bytes = model_bp_phase(
            &l,
            &s,
            &BpConfig {
                fused: false,
                max_iters: 1,
                ..Default::default()
            },
            &gpu,
            &exec,
        )
        .bytes_per_iteration;
        assert!(fused_bytes < unfused_bytes);
    }

    #[test]
    fn gpu_faster_than_cpu_on_bp() {
        // Needs a real-scale structure: below ~10⁵ L-edges the GPU's launch
        // overhead dominates and the CPU wins — the same size effect the
        // paper's Synthetic_4000 row shows (5× vs 19× on the large inputs).
        let (l, s) = instance(6000, 2);
        let exec = ExecConfig::optimized();
        let cfg = BpConfig::default();
        let g = model_bp_phase(&l, &s, &cfg, &DeviceSpec::a100(), &exec);
        let c = model_bp_phase(&l, &s, &cfg, &DeviceSpec::epyc7702p(), &exec);
        let speedup = c.seconds / g.seconds;
        assert!(speedup > 2.0, "BP speedup only {speedup}");
    }

    #[test]
    fn tiny_instances_do_not_benefit_much() {
        // The flip side of the size effect above.
        let (l, s) = instance(60, 7);
        let exec = ExecConfig::optimized();
        let cfg = BpConfig::default();
        let g = model_bp_phase(&l, &s, &cfg, &DeviceSpec::a100(), &exec);
        let c = model_bp_phase(&l, &s, &cfg, &DeviceSpec::epyc7702p(), &exec);
        assert!(c.seconds / g.seconds < 4.0);
    }

    #[test]
    fn simulate_bp_numerics_match_reference() {
        let (l, s) = instance(40, 3);
        let cfg = BpConfig {
            max_iters: 8,
            ..Default::default()
        };
        let (out_sim, report) =
            simulate_bp(&l, &s, &cfg, &DeviceSpec::a100(), &ExecConfig::optimized());
        let out_ref = BpEngine::new(&l, &s, &cfg).run();
        assert_eq!(out_sim.best_score, out_ref.best_score);
        assert_eq!(out_sim.best_matching, out_ref.best_matching);
        assert!(report.seconds > 0.0);
        assert_eq!(report.iterations, 8);
    }

    /// Hub-skewed instance: one vertex pairs with everything, so `S` gets
    /// a dominant hot row. Charging per merge chunk must waste fewer lane
    /// slots and model less time than charging the same footprint per
    /// row, and the straddle fixup kernel must appear.
    #[test]
    fn merge_chunks_balance_skewed_rows() {
        let n = 400usize;
        let mut rng = StdRng::seed_from_u64(21);
        let a = erdos_renyi_gnm(n, n * 3, &mut rng);
        let p = Permutation::random(n, &mut rng);
        let b = p.apply_to_graph(&a);
        let mut triples = Vec::new();
        for i in 0..n as VertexId {
            triples.push((i, p.apply(i), 0.5));
            triples.push((0, i, 0.5));
            triples.push((i, 0, 0.5));
        }
        let l = BipartiteGraph::from_weighted_edges(n, n, &triples);
        let s = OverlapMatrix::build(&a, &b, &l);
        let gpu = DeviceSpec::a100();
        let exec = ExecConfig::optimized();

        let (kernels, _) = model_bp_iteration(&l, &s, true, &gpu, &exec);
        let names: Vec<&str> = kernels.iter().map(|(n, _)| *n).collect();
        assert!(
            names.contains(&"merge_fixup"),
            "skewed S must have straddle rows to fix up"
        );
        let chunked = &kernels
            .iter()
            .find(|(n, _)| *n == "fused_f_dc")
            .expect("fused kernel present")
            .1;
        // The same footprint charged per row of S: the hub row serializes.
        let rows: Vec<usize> = (0..s.num_rows()).map(|e| s.row_degree(e as u32)).collect();
        let per_row = simulate_launch(&gpu, &exec, &rows, |sz| Footprint {
            contiguous_reads: 1,
            scattered_reads: sz,
            contiguous_writes: sz + 1,
            scattered_writes: 0,
            flops: 3 * sz + 2,
        });
        assert!(
            chunked.idle_fraction() <= per_row.idle_fraction() + 1e-12,
            "chunked idle {} > per-row idle {}",
            chunked.idle_fraction(),
            per_row.idle_fraction()
        );
        assert!(
            chunked.seconds < per_row.seconds,
            "chunked {} ≥ per-row {}",
            chunked.seconds,
            per_row.seconds
        );
    }

    #[test]
    fn report_kernels_cover_pipeline() {
        let (l, s) = instance(30, 4);
        let r = model_bp_phase(
            &l,
            &s,
            &BpConfig::default(),
            &DeviceSpec::a100(),
            &ExecConfig::optimized(),
        );
        let names: Vec<&str> = r.per_kernel.iter().map(|(n, _)| *n).collect();
        for expected in [
            "fused_f_dc",
            "othermax_col",
            "gather_damp_yc_yp",
            "othermax_row_zc_zp",
            "sc_update_damp_sp",
        ] {
            assert!(names.contains(&expected), "missing kernel {expected}");
        }
    }
}
