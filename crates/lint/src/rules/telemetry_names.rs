//! `telemetry-names`: code and the telemetry-name manifest must agree.
//!
//! Every instrument or span name registered anywhere in the workspace
//! must appear in `docs/telemetry_names.txt`, and every manifest entry
//! must still be registered somewhere — drift in either direction is an
//! error, so DESIGN.md §5 (which is checked against the same manifest)
//! can never silently rot. Dynamic names built with `format!` are
//! normalized: each `{...}` capture becomes a literal `*` segment
//! (`session.{stage}.hits` → `session.*.hits`).
//!
//! Registration calls recognized: `.counter(_)`, `.gauge(_)`,
//! `.histogram(_)`, `.span(_)`, and `.timed(_, ..)` — string literals
//! are extracted from the call's *first* argument only (which also
//! covers `match`-selected names). A first argument containing no
//! literal at all is flagged as unanalyzable unless allowlisted.

use super::{first_arg_range, ident, is_punct};
use crate::lexer::Tok;
use crate::source::{FileKind, SourceFile};
use crate::Diagnostic;
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// Rule name as written in diagnostics and allow directives.
pub const RULE: &str = "telemetry-names";

/// Workspace-root-relative path of the manifest.
pub const MANIFEST: &str = "docs/telemetry_names.txt";

/// Crates exempt from extraction: the telemetry subsystem itself (its
/// API takes caller-supplied names) and this linter.
const EXEMPT_CRATES: &[&str] = &["telemetry", "lint"];

const METHODS: &[&str] = &["counter", "gauge", "histogram", "span", "timed"];

/// Replaces every `{...}` format capture with `*` (and unescapes
/// `{{`/`}}`).
pub fn normalize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut chars = name.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' if chars.peek() == Some(&'{') => {
                chars.next();
                out.push('{');
            }
            '{' => {
                for inner in chars.by_ref() {
                    if inner == '}' {
                        break;
                    }
                }
                out.push('*');
            }
            '}' if chars.peek() == Some(&'}') => {
                chars.next();
                out.push('}');
            }
            _ => out.push(c),
        }
    }
    out
}

/// Extracts every registered (normalized) name from one file, plus
/// diagnostics for unanalyzable registrations. Returns `(name, line)`
/// pairs.
pub fn extract(file: &SourceFile, diags: &mut Vec<Diagnostic>) -> Vec<(String, usize)> {
    if file.kind == FileKind::TestLike || EXEMPT_CRATES.contains(&file.crate_name.as_str()) {
        return Vec::new();
    }
    let toks = &file.lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let Some(name) = ident(toks.get(i)) else {
            continue;
        };
        if !METHODS.contains(&name)
            || !is_punct(toks.get(i.wrapping_sub(1)), '.')
            || !is_punct(toks.get(i + 1), '(')
        {
            continue;
        }
        let line = toks[i].line;
        if file.is_test_line(line) {
            continue;
        }
        let (start, end) = first_arg_range(toks, i + 1);
        let mut found = false;
        for t in &toks[start..end] {
            if let Tok::Str(s) = &t.tok {
                out.push((normalize(s), t.line));
                found = true;
            }
        }
        if !found && !file.allowed(RULE, line) {
            diags.push(Diagnostic {
                file: file.rel.clone(),
                line,
                rule: RULE,
                message: format!(
                    ".{name}(...) with no string literal in its name argument; \
                     the registered name cannot be checked against {MANIFEST}"
                ),
            });
        }
    }
    out
}

/// Runs the manifest diff over the whole workspace.
pub fn check(files: &[SourceFile], root: &Path) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // name -> first registration site.
    let mut registered: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for f in files {
        for (name, line) in extract(f, &mut diags) {
            registered
                .entry(name)
                .or_insert_with(|| (f.rel.clone(), line));
        }
    }

    let manifest_path = root.join(MANIFEST);
    let text = match fs::read_to_string(&manifest_path) {
        Ok(t) => t,
        Err(e) => {
            diags.push(Diagnostic {
                file: MANIFEST.to_string(),
                line: 0,
                rule: RULE,
                message: format!("cannot read telemetry-name manifest: {e}"),
            });
            return diags;
        }
    };
    let mut manifest: BTreeMap<&str, usize> = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let entry = raw.trim();
        if entry.is_empty() || entry.starts_with('#') {
            continue;
        }
        manifest.entry(entry).or_insert(idx + 1);
    }

    for (name, (file, line)) in &registered {
        if !manifest.contains_key(name.as_str()) {
            diags.push(Diagnostic {
                file: file.clone(),
                line: *line,
                rule: RULE,
                message: format!(
                    "telemetry name \"{name}\" is registered here but missing from {MANIFEST}"
                ),
            });
        }
    }
    for (name, line) in &manifest {
        if !registered.contains_key(*name) {
            diags.push(Diagnostic {
                file: MANIFEST.to_string(),
                line: *line,
                rule: RULE,
                message: format!("manifest name \"{name}\" is never registered in workspace code"),
            });
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_rewrites_captures() {
        assert_eq!(normalize("session.{stage}.hits"), "session.*.hits");
        assert_eq!(
            normalize("multilevel.level{j}.refine"),
            "multilevel.level*.refine"
        );
        assert_eq!(normalize("plain.name"), "plain.name");
        assert_eq!(normalize("brace{{literal}}"), "brace{literal}");
    }

    #[test]
    fn extracts_literals_format_strings_and_match_arms() {
        let src = r#"
            fn f(r: &Registry) {
                r.counter("a.count").inc();
                r.histogram(&format!("b.{k}.seconds"));
                let _s = r.span(match m { M::X => "c.x", M::Y => "c.y" });
                let (v, secs) = r.timed("d.stage", || compute("not.a.name"));
            }
        "#;
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let mut diags = Vec::new();
        let names: Vec<String> = extract(&f, &mut diags)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(
            names,
            vec!["a.count", "b.*.seconds", "c.x", "c.y", "d.stage"]
        );
        assert!(diags.is_empty());
    }

    #[test]
    fn dynamic_name_without_literal_is_flagged() {
        let src = "fn f(r: &Registry, n: &str) { r.counter(n).inc(); }";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let mut diags = Vec::new();
        let names = extract(&f, &mut diags);
        assert!(names.is_empty());
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn test_code_and_exempt_crates_are_skipped() {
        let src = "#[cfg(test)]\nmod t { fn f(r: &R) { r.counter(\"x.y\"); } }";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        let mut diags = Vec::new();
        assert!(extract(&f, &mut diags).is_empty());
        let f = SourceFile::parse(
            "crates/telemetry/src/registry.rs",
            "fn f(r: &R) { r.counter(\"x.y\"); }",
        );
        assert!(extract(&f, &mut diags).is_empty());
        assert!(diags.is_empty());
    }
}
