//! Matching-relaxation (MR) iteration — the LP/Lagrangian-relaxation
//! family of network aligners (Klau's natalie, the paper's references
//! \[13\] and \[19\]), in the simple fixed-point form netalign ships as
//! `netalignmr`'s cheap cousin.
//!
//! The quadratic objective `α⟨w, x⟩ + (β/2)⟨Sx, x⟩` is linearized at the
//! current iterate: with `x_t` the indicator of the last matching, solve
//!
//! ```text
//! x_{t+1} = argmax_matching ⟨ α·w + β·S·x_t , x ⟩
//! ```
//!
//! i.e. re-run maximum matching on weights boosted by how many
//! already-matched edges each candidate would conserve (a
//! Frank–Wolfe/conditional-gradient step over the matching polytope).
//! Iterate, keep the best rounding seen. The paper observes BP "results
//! are nearly as good as these techniques and can be parallelized
//! efficiently" — this implementation lets the test suite and benches
//! make that comparison concrete.

use crate::engine::MatcherKind;
use crate::evaluate_matching;
use cualign_graph::BipartiteGraph;
use cualign_matching::{
    greedy_matching, locally_dominant_parallel, locally_dominant_serial, suitor_matching, Matching,
};
use cualign_overlap::OverlapMatrix;

/// Configuration for [`mr_align`].
#[derive(Clone, Copy, Debug)]
pub struct MrConfig {
    /// Linear-term weight (as in Eq. 1).
    pub alpha: f64,
    /// Quadratic-term weight.
    pub beta: f64,
    /// Fixed-point iterations.
    pub max_iters: usize,
    /// Matcher used for each linearized subproblem.
    pub matcher: MatcherKind,
}

impl Default for MrConfig {
    fn default() -> Self {
        MrConfig {
            alpha: 1.0,
            beta: 2.0,
            max_iters: 15,
            matcher: MatcherKind::Parallel,
        }
    }
}

/// Result of an MR run.
pub struct MrOutcome {
    /// Best matching found.
    pub best_matching: Matching,
    /// Its Eq. 1 objective.
    pub best_score: f64,
    /// Its conserved-edge count.
    pub best_overlaps: usize,
    /// Objective per iteration (iteration 0 = plain similarity rounding).
    pub history: Vec<f64>,
    /// Iteration at which the fixed point was reached (the matching
    /// repeated), if it was.
    pub converged_at: Option<usize>,
}

fn run_matcher(l: &BipartiteGraph, kind: MatcherKind) -> Matching {
    match kind {
        MatcherKind::Serial => locally_dominant_serial(l),
        MatcherKind::Parallel => locally_dominant_parallel(l),
        MatcherKind::Greedy => greedy_matching(l),
        MatcherKind::Suitor => suitor_matching(l),
    }
}

/// Runs the MR fixed-point iteration on `l` and its overlap matrix.
///
/// # Panics
/// Panics if `s` was not built for `l`, or `max_iters == 0`.
pub fn mr_align(l: &BipartiteGraph, s: &OverlapMatrix, cfg: &MrConfig) -> MrOutcome {
    assert_eq!(s.num_rows(), l.num_edges(), "S rows must index E_L");
    assert!(cfg.max_iters > 0, "need at least one iteration");
    let w0 = l.weights().to_vec();
    let mut work = l.clone();

    // Iteration 0: plain rounding of the similarity weights.
    let mut current = run_matcher(&work, cfg.matcher);
    let (mut best_score, _, mut best_overlaps) =
        evaluate_matching(&w0, s, &current, cfg.alpha, cfg.beta);
    let mut best_matching = current.clone();
    let mut history = vec![best_score];
    let mut converged_at = None;

    for it in 1..=cfg.max_iters {
        // Linearize: boosted(e) = α·w(e) + β·|{e' ∈ S(e) : e' matched}|.
        let mut in_matching = vec![false; l.num_edges()];
        for &e in current.edge_ids() {
            in_matching[e as usize] = true;
        }
        let boosted: Vec<f64> = (0..l.num_edges())
            .map(|e| {
                let conserve = s
                    .row(e as u32)
                    .iter()
                    .filter(|&&e2| in_matching[e2 as usize])
                    .count() as f64;
                cfg.alpha * w0[e] + cfg.beta * conserve
            })
            .collect();
        work.set_weights(&boosted);
        let next = run_matcher(&work, cfg.matcher);
        let (score, _, overlaps) = evaluate_matching(&w0, s, &next, cfg.alpha, cfg.beta);
        history.push(score);
        if score > best_score {
            best_score = score;
            best_overlaps = overlaps;
            best_matching = next.clone();
        }
        if next == current {
            converged_at = Some(it);
            break;
        }
        current = next;
    }

    MrOutcome {
        best_matching,
        best_score,
        best_overlaps,
        history,
        converged_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BpConfig, BpEngine};
    use cualign_graph::generators::erdos_renyi_gnm;
    use cualign_graph::{CsrGraph, Permutation, VertexId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn planted(
        n: usize,
        decoys: usize,
        seed: u64,
    ) -> (CsrGraph, CsrGraph, BipartiteGraph, Permutation) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = erdos_renyi_gnm(n, n * 5 / 2, &mut rng);
        let p = Permutation::random(n, &mut rng);
        let b = p.apply_to_graph(&a);
        let mut triples = Vec::new();
        for i in 0..n as VertexId {
            triples.push((i, p.apply(i), 0.5));
            for _ in 0..decoys {
                triples.push((i, rng.gen_range(0..n as VertexId), 0.5));
            }
        }
        (
            a,
            b.clone(),
            BipartiteGraph::from_weighted_edges(n, n, &triples),
            p,
        )
    }

    #[test]
    fn mr_improves_over_direct_rounding() {
        let (a, b, l, _) = planted(40, 4, 1);
        let s = OverlapMatrix::build(&a, &b, &l);
        let out = mr_align(&l, &s, &MrConfig::default());
        assert!(
            out.best_score >= out.history[0],
            "best {} below iteration-0 {}",
            out.best_score,
            out.history[0]
        );
        assert!(out.best_overlaps > 0);
        out.best_matching.check_valid(&l).unwrap();
    }

    #[test]
    fn mr_converges_to_a_fixed_point() {
        let (a, b, l, _) = planted(30, 3, 2);
        let s = OverlapMatrix::build(&a, &b, &l);
        let out = mr_align(
            &l,
            &s,
            &MrConfig {
                max_iters: 50,
                ..Default::default()
            },
        );
        assert!(
            out.converged_at.is_some(),
            "no fixed point in 50 iterations"
        );
    }

    #[test]
    fn bp_is_at_least_comparable_to_mr() {
        // The paper's observation: BP results are "nearly as good as"
        // the relaxation techniques. With the iteration-0 candidate both
        // share, BP must never fall behind MR by much — allow a small
        // slack, require parity-or-better in aggregate.
        let mut bp_wins = 0;
        let mut total = 0;
        for seed in 0..5 {
            let (a, b, l, _) = planted(35, 4, 10 + seed);
            let s = OverlapMatrix::build(&a, &b, &l);
            let mr = mr_align(&l, &s, &MrConfig::default());
            let bp = BpEngine::new(
                &l,
                &s,
                &BpConfig {
                    max_iters: 15,
                    ..Default::default()
                },
            )
            .run();
            total += 1;
            if bp.best_score >= mr.best_score - 1e-9 {
                bp_wins += 1;
            }
        }
        assert!(
            bp_wins * 2 >= total,
            "BP behind MR on {}/{} instances",
            total - bp_wins,
            total
        );
    }

    #[test]
    fn history_starts_with_direct_rounding() {
        let (a, b, l, _) = planted(20, 3, 3);
        let s = OverlapMatrix::build(&a, &b, &l);
        let direct = locally_dominant_parallel(&l);
        let (direct_score, _, _) = evaluate_matching(l.weights(), &s, &direct, 1.0, 2.0);
        let out = mr_align(&l, &s, &MrConfig::default());
        assert_eq!(out.history[0], direct_score);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn rejects_zero_iters() {
        let (a, b, l, _) = planted(8, 1, 4);
        let s = OverlapMatrix::build(&a, &b, &l);
        let _ = mr_align(
            &l,
            &s,
            &MrConfig {
                max_iters: 0,
                ..Default::default()
            },
        );
    }
}
