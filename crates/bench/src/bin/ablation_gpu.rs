//! Ablation of the paper's §5 GPU design choices under the device model:
//! binning, virtual warps, streams, and kernel fusion, each toggled
//! independently on every input. Quantifies how much each optimization
//! contributes to the modeled BP-iteration time — the design-choice index
//! DESIGN.md calls out.
//!
//! ```text
//! cargo run --release -p cualign-bench --bin ablation_gpu
//! ```

use cualign::PaperInput;
use cualign_bench::{prepare_instance, HarnessConfig};
use cualign_gpusim::bp_gpu::model_bp_iteration;
use cualign_gpusim::{DeviceSpec, ExecConfig};

fn main() {
    let telemetry = cualign_bench::telemetry_sink();
    let h = HarnessConfig::from_env();
    let density = 0.025;
    let gpu = DeviceSpec::a100();
    println!(
        "GPU-model ablations: one BP iteration, µs on {} (scale = {}, density = {}%)\n",
        gpu.name,
        h.scale,
        density * 100.0
    );
    let variants: [(&str, ExecConfig, bool); 6] = [
        ("all-on", ExecConfig::optimized(), true),
        ("no-fusion", ExecConfig::optimized(), false),
        (
            "no-streams",
            ExecConfig {
                streams: false,
                ..ExecConfig::optimized()
            },
            true,
        ),
        (
            "no-vwarps",
            ExecConfig {
                virtual_warps: false,
                ..ExecConfig::optimized()
            },
            true,
        ),
        (
            "no-binning",
            ExecConfig {
                binning: false,
                virtual_warps: false,
                ..ExecConfig::optimized()
            },
            true,
        ),
        ("naive", ExecConfig::naive(), false),
    ];

    print!("{:<16}", "Network");
    for (name, _, _) in &variants {
        print!(" {:>11}", name);
    }
    println!();
    println!("{}", "-".repeat(16 + 12 * variants.len()));
    for input in PaperInput::all() {
        let p = prepare_instance(&h, input, density);
        print!("{:<16}", input.name());
        let mut base = 0.0;
        for (i, (_, exec, fused)) in variants.iter().enumerate() {
            let (_, secs) = model_bp_iteration(&p.l, &p.s, *fused, &gpu, exec);
            if i == 0 {
                base = secs;
                print!(" {:>11.2}", secs * 1e6);
            } else {
                print!(" {:>10.2}x", secs / base);
            }
        }
        println!();
    }
    println!("\n(first column: absolute µs with everything on; the rest: slowdown factors");
    println!("relative to it when one optimization is removed)");
    cualign_bench::emit_telemetry(&telemetry);
}
