//! Golden tests: each fixture tree under `fixtures/` is a miniature
//! workspace seeded with deliberate violations; `expected.txt` next to
//! it records the exact diagnostics the rule must produce.

use std::path::PathBuf;

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn check_fixture(name: &str, rule: &str) {
    let root = fixture_root(name);
    let diags = lint::run(&root, &[rule]).expect("fixture lint run");
    let got: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    let expected = std::fs::read_to_string(root.join("expected.txt")).expect("expected.txt");
    let want: Vec<&str> = expected.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(got, want, "fixture `{name}` diverged from its golden file");
    assert!(
        !got.is_empty(),
        "fixture `{name}` must violate its rule (the CI gate relies on a non-zero exit)"
    );
}

#[test]
fn no_panic_fixture() {
    check_fixture("no_panic", "no-panic");
}

#[test]
fn float_ordering_fixture() {
    check_fixture("float_ordering", "float-ordering");
}

#[test]
fn unsafe_hygiene_fixture() {
    check_fixture("unsafe_hygiene", "unsafe-hygiene");
}

#[test]
fn telemetry_names_fixture() {
    check_fixture("telemetry_names", "telemetry-names");
}

#[test]
fn oracle_pinning_fixture() {
    check_fixture("oracle_pinning", "oracle-pinning");
}

#[test]
fn doc_links_fixture() {
    check_fixture("doc_links", "doc-links");
}

/// The escape hatch needs a reason: an `allow(no-panic)` with none must
/// leave the violation standing AND report the directive itself, while
/// the reasoned allow two functions earlier suppresses cleanly.
#[test]
fn reasonless_allow_suppresses_nothing() {
    let root = fixture_root("no_panic");
    let diags = lint::run(&root, &["no-panic"]).expect("fixture lint run");
    let reasonless_line = 35;
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "lint-allow" && d.line == reasonless_line),
        "reasonless allow must be reported as a lint-allow violation"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "no-panic" && d.line == reasonless_line + 1),
        "the unwrap under a reasonless allow must still fire"
    );
    // The reasoned allow (line 29) suppresses its unwrap (line 30).
    assert!(
        !diags.iter().any(|d| d.line == 30),
        "a reasoned allow must suppress the following line"
    );
}
