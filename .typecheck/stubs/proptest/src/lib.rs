//! Offline stand-in for `proptest`, used only by the `.typecheck/check.sh`
//! harness. Implements the subset of the API this workspace's property
//! tests use; the `proptest!` macro runs a fixed number of cases with a
//! deterministic splitmix64 generator and maps `prop_assert*` to plain
//! asserts.

/// Deterministic generator threaded through strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test function.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9e3779b97f4a7c15 }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value-generation strategy.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Chains a dependent strategy.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Constant strategy.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// `any::<T>()` support for types with an obvious uniform draw.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64() * 2.0 - 1.0
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Run-count configuration (accepted, fixed case count used).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Requested case count.
    pub cases: u32,
}

impl ProptestConfig {
    /// Requests `cases` runs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Namespaced helper strategies (`prop::collection`, `prop::option`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Size specifiers accepted by [`vec`](fn@vec).
        pub trait SizeRange {
            /// Picks a concrete length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for std::ops::Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                assert!(self.start < self.end);
                self.start + (rng.next_u64() as usize) % (self.end - self.start)
            }
        }

        impl SizeRange for std::ops::RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                self.start() + (rng.next_u64() as usize) % (self.end() - self.start() + 1)
            }
        }

        /// Vector-of-`element` strategy.
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// `Option<S::Value>` strategy (3/4 `Some`, like proptest's default).
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `prop::option::of(element)`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64().is_multiple_of(4) {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Plain-assert version of `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Plain-assert version of `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Plain-assert version of `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// `prop_assume!` stand-in: an unmet assumption just ends the case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// The `proptest!` block: each test runs 24 deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        $(#![proptest_config($cfg:expr)])?
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0u64..24 {
                    let mut rng = $crate::TestRng::new(
                        case.wrapping_mul(0x517c_c1b7_2722_0a95)
                            ^ (stringify!($name).len() as u64),
                    );
                    let run = |rng: &mut $crate::TestRng| {
                        $(let $pat = $crate::Strategy::generate(&($strat), rng);)*
                        $body
                    };
                    run(&mut rng);
                }
            }
        )*
    };
}
