//! Cache semantics of [`AlignmentSession`]: which configuration changes
//! invalidate which pipeline stages, equivalence with the one-shot
//! [`Aligner`], and clean errors on degenerate inputs.

use cualign::{
    cone_align_session, AlignError, Aligner, AlignerConfig, AlignmentSession, GraphSide,
    SparsityChoice,
};
use cualign_embed::{EmbeddingMethod, SpectralConfig};
use cualign_graph::generators::{duplication_divergence, erdos_renyi_gnm};
use cualign_graph::permutation::AlignmentInstance;
use cualign_graph::CsrGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_cfg() -> AlignerConfig {
    let mut cfg = AlignerConfig {
        embedding: EmbeddingMethod::Spectral(SpectralConfig {
            dim: 20,
            oversample: 10,
            ..Default::default()
        }),
        sparsity: SparsityChoice::K(6),
        ..AlignerConfig::default()
    };
    cfg.bp.max_iters = 8;
    cfg.subspace.anchors = 0;
    cfg
}

fn instance(seed: u64, n: usize, m: usize) -> AlignmentInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = erdos_renyi_gnm(n, m, &mut rng);
    AlignmentInstance::permuted_pair(a, &mut rng)
}

/// The tentpole contract: changing `sparsity` must NOT recompute the
/// embeddings or the subspace alignment.
#[test]
fn changing_sparsity_reuses_embeddings_and_subspace() {
    let inst = instance(1, 120, 360);
    let mut s = AlignmentSession::new(&inst.a, &inst.b, test_cfg()).unwrap();
    s.align().unwrap();

    for (i, k) in [8, 10, 12].into_iter().enumerate() {
        s.update_config(|c| c.sparsity = SparsityChoice::K(k))
            .unwrap();
        let r = s.align().unwrap();
        // Embedding + subspace are served from cache every time.
        assert_eq!(r.timings.cache_hits, 2, "sweep step {i}");
        assert_eq!(r.timings.embedding_s, 0.0);
        assert_eq!(r.timings.subspace_s, 0.0);
    }
    let c = s.counters();
    assert_eq!(c.embedding_builds, 1);
    assert_eq!(c.subspace_builds, 1);
    assert_eq!(c.sparsify_builds, 4);
    assert_eq!(c.overlap_builds, 4);
    assert_eq!(c.optimize_builds, 4);
}

/// Changing only the BP budget reuses everything through `S`.
#[test]
fn changing_bp_iters_reuses_through_overlap() {
    let inst = instance(2, 100, 300);
    let mut s = AlignmentSession::new(&inst.a, &inst.b, test_cfg()).unwrap();
    s.align().unwrap();

    s.update_config(|c| c.bp.max_iters = 16).unwrap();
    let r = s.align().unwrap();
    assert_eq!(r.timings.cache_hits, 4);
    assert_eq!(r.timings.init_s(), 0.0);
    let c = s.counters();
    assert_eq!(c.embedding_builds, 1);
    assert_eq!(c.sparsify_builds, 1);
    assert_eq!(c.overlap_builds, 1);
    assert_eq!(c.optimize_builds, 2);
    // A longer budget extends the history past the shared prefix.
    assert_eq!(r.bp.history.len(), 17);
}

/// Changing the embedding seed invalidates the whole chain.
#[test]
fn changing_embedding_seed_invalidates_everything() {
    let inst = instance(3, 100, 300);
    let mut s = AlignmentSession::new(&inst.a, &inst.b, test_cfg()).unwrap();
    s.align().unwrap();

    s.update_config(|c| {
        if let EmbeddingMethod::Spectral(sc) = &mut c.embedding {
            sc.seed = sc.seed.wrapping_add(1);
        }
    })
    .unwrap();
    let r = s.align().unwrap();
    assert_eq!(r.timings.cache_hits, 0);
    let c = s.counters();
    assert_eq!(c.embedding_builds, 2);
    assert_eq!(c.subspace_builds, 2);
    assert_eq!(c.sparsify_builds, 2);
    assert_eq!(c.overlap_builds, 2);
    assert_eq!(c.optimize_builds, 2);
}

/// Round-tripping a config change back to the original value still
/// rebuilds (the cache holds one artifact per stage, not a history), and
/// the rebuilt result is bit-identical to the first.
#[test]
fn config_round_trip_rebuilds_deterministically() {
    let inst = instance(4, 90, 240);
    let mut s = AlignmentSession::new(&inst.a, &inst.b, test_cfg()).unwrap();
    let r1 = s.align().unwrap();
    s.update_config(|c| c.sparsity = SparsityChoice::K(9))
        .unwrap();
    s.align().unwrap();
    s.update_config(|c| c.sparsity = SparsityChoice::K(6))
        .unwrap();
    let r3 = s.align().unwrap();
    assert_eq!(r1.mapping, r3.mapping);
    assert_eq!(r1.scores, r3.scores);
    assert_eq!(s.counters().sparsify_builds, 3);
    assert_eq!(s.counters().embedding_builds, 1);
}

/// Session results equal the one-shot `Aligner::align` results exactly,
/// for every density in a sweep.
#[test]
fn session_sweep_matches_oneshot_sweep() {
    let mut rng = StdRng::seed_from_u64(5);
    let a = duplication_divergence(130, 0.45, 0.3, &mut rng);
    let inst = AlignmentInstance::permuted_pair(a, &mut rng);
    let mut session = AlignmentSession::new(&inst.a, &inst.b, test_cfg()).unwrap();
    for density in [0.02, 0.05, 0.10] {
        session
            .update_config(|c| c.sparsity = SparsityChoice::Density(density))
            .unwrap();
        let from_session = session.align().unwrap();

        let mut cfg = test_cfg();
        cfg.sparsity = SparsityChoice::Density(density);
        let oneshot = Aligner::new(cfg).align(&inst.a, &inst.b).unwrap();

        assert_eq!(from_session.mapping, oneshot.mapping, "density {density}");
        assert_eq!(from_session.scores, oneshot.scores);
        assert_eq!(from_session.l_edges, oneshot.l_edges);
        assert_eq!(from_session.s_nnz, oneshot.s_nnz);
        assert_eq!(from_session.bp.best_score, oneshot.bp.best_score);
    }
}

/// Partial pipelines: the stage accessors expose usable artifacts and
/// `cone_align_session` rounds the cached `L` without rebuilding.
#[test]
fn partial_pipeline_artifacts_are_consistent() {
    let inst = instance(6, 80, 220);
    let mut s = AlignmentSession::new(&inst.a, &inst.b, test_cfg()).unwrap();
    let dim = {
        let emb = s.embeddings().unwrap();
        assert_eq!(emb.y1.rows(), inst.a.num_vertices());
        assert_eq!(emb.y2.rows(), inst.b.num_vertices());
        emb.y1.cols()
    };
    assert_eq!(dim, 20);
    let (l_edges, s_rows) = {
        let (l, sm) = s.artifacts().unwrap();
        (l.num_edges(), sm.num_rows())
    };
    assert_eq!(l_edges, s_rows);
    let cone = cone_align_session(&mut s).unwrap();
    assert!(!cone.matching.is_empty());
    assert_eq!(s.counters().optimize_builds, 0, "cone must not trigger BP");
    assert_eq!(s.counters().sparsify_builds, 1);
}

/// Degenerate inputs and configs surface as typed errors, not panics.
#[test]
fn degenerate_inputs_and_configs_error() {
    let empty = CsrGraph::from_edges(0, &[]);
    let mut rng = StdRng::seed_from_u64(7);
    let g = erdos_renyi_gnm(40, 100, &mut rng);

    match AlignmentSession::new(&empty, &g, test_cfg()) {
        Err(AlignError::EmptyGraph { side }) => assert_eq!(side, GraphSide::A),
        other => panic!("expected EmptyGraph, got {:?}", other.err()),
    }
    match AlignmentSession::new(&g, &empty, test_cfg()) {
        Err(AlignError::EmptyGraph { side }) => assert_eq!(side, GraphSide::B),
        other => panic!("expected EmptyGraph, got {:?}", other.err()),
    }

    let tiny = erdos_renyi_gnm(8, 16, &mut rng);
    assert!(matches!(
        AlignmentSession::new(&tiny, &g, test_cfg()),
        Err(AlignError::DimExceedsVertices {
            dim: 20,
            vertices: 8
        })
    ));

    let mut bad = test_cfg();
    bad.sparsity = SparsityChoice::Density(0.0);
    assert!(matches!(
        AlignmentSession::new(&g, &g, bad),
        Err(AlignError::InvalidConfig {
            field: "sparsity.density",
            ..
        })
    ));

    // A threshold no pair clears yields EmptySparsification at stage 3
    // (two independent graphs, so no exact-1.0 similarity is expected).
    let h = erdos_renyi_gnm(40, 100, &mut rng);
    let mut strict = test_cfg();
    strict.sparsity = SparsityChoice::Threshold {
        min_weight: 1.0,
        cap_per_vertex: 4,
    };
    let mut s2 = AlignmentSession::new(&g, &h, strict).unwrap();
    match s2.align() {
        Err(AlignError::EmptySparsification) => {}
        Ok(r) => {
            // Numerically possible for a few exact hits to survive; the
            // contract is only "no panic, and if empty then typed error".
            assert!(r.l_edges > 0);
        }
        Err(other) => panic!("unexpected error {other:?}"),
    }

    // Rejected reconfiguration leaves the session usable.
    let inst = instance(8, 60, 150);
    let mut s3 = AlignmentSession::new(&inst.a, &inst.b, test_cfg()).unwrap();
    assert!(s3
        .update_config(|c| c.sparsity = SparsityChoice::Density(2.0))
        .is_err());
    assert!(s3.align().is_ok(), "session must survive a rejected config");
}

/// ANN knobs are sparsify-stage fingerprint ingredients: flipping only
/// `probes` rebuilds the sparsify suffix (L → S → BP) while embeddings
/// and subspace stay cached — exactly like sweeping `k` on the exact
/// path.
#[test]
fn changing_ann_probes_invalidates_sparsify_suffix_only() {
    let inst = instance(10, 120, 360);
    let mut cfg = test_cfg();
    cfg.sparsity = SparsityChoice::Ann {
        k: 6,
        bands: 8,
        bits: 10,
        probes: 2,
    };
    let mut s = AlignmentSession::new(&inst.a, &inst.b, cfg).unwrap();
    s.align().unwrap();

    s.update_config(|c| {
        if let SparsityChoice::Ann { probes, .. } = &mut c.sparsity {
            *probes = 3;
        }
    })
    .unwrap();
    let r = s.align().unwrap();
    // Embedding + subspace served from cache; sparsify onward rebuilt.
    assert_eq!(r.timings.cache_hits, 2);
    assert_eq!(r.timings.embedding_s, 0.0);
    assert_eq!(r.timings.subspace_s, 0.0);
    let c = s.counters();
    assert_eq!(c.embedding_builds, 1);
    assert_eq!(c.subspace_builds, 1);
    assert_eq!(c.sparsify_builds, 2);
    assert_eq!(c.overlap_builds, 2);
    assert_eq!(c.optimize_builds, 2);

    // A no-op reconfiguration must not invalidate anything.
    s.update_config(|_| {}).unwrap();
    let r2 = s.align().unwrap();
    assert_eq!(r2.timings.cache_hits, 5);
    assert_eq!(s.counters().sparsify_builds, 2);
}

/// `set_config` swaps whole configurations and still only rebuilds what
/// changed relative to the *cached artifacts*, not the previous config.
#[test]
fn set_config_invalidates_by_artifact_fingerprint() {
    let inst = instance(9, 100, 280);
    let cfg_a = test_cfg();
    let mut cfg_b = test_cfg();
    cfg_b.sparsity = SparsityChoice::K(10);

    let mut s = AlignmentSession::new(&inst.a, &inst.b, cfg_a.clone()).unwrap();
    s.align().unwrap();
    s.set_config(cfg_b).unwrap();
    s.align().unwrap();
    // Swapping back to A: the cache holds B's artifacts, so the back half
    // rebuilds, but the front half (identical in A and B) is reused.
    s.set_config(cfg_a).unwrap();
    let r = s.align().unwrap();
    assert_eq!(r.timings.cache_hits, 2);
    assert_eq!(s.counters().embedding_builds, 1);
    assert_eq!(s.counters().sparsify_builds, 3);
}
