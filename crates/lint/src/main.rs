//! The `cualign-lint` binary: walk the workspace, run the contract
//! rules, print diagnostics, exit non-zero on violations.
//!
//! ```text
//! cualign-lint [--root PATH] [--rules r1,r2,...] [--dump-telemetry]
//! ```
//!
//! With no `--root`, the workspace root is found by walking up from the
//! current directory to the first `Cargo.toml` that declares
//! `[workspace]`. `--dump-telemetry` prints the extracted telemetry
//! names (the generator for `docs/telemetry_names.txt`) and exits.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn find_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut rules: Option<Vec<String>> = None;
    let mut dump = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--rules" => match args.next() {
                Some(list) => rules = Some(list.split(',').map(|s| s.trim().to_string()).collect()),
                None => return usage("--rules needs a comma-separated list"),
            },
            "--dump-telemetry" => dump = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: cualign-lint [--root PATH] [--rules r1,r2,...] [--dump-telemetry]\n\
                     rules: {}",
                    lint::ALL_RULES.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(|| std::env::current_dir().ok().and_then(find_root)) {
        Some(r) => r,
        None => return usage("no workspace root found (run inside the repo or pass --root)"),
    };

    if dump {
        return match lint::dump_telemetry(&root) {
            Ok(names) => {
                println!(
                    "# Telemetry-name manifest — regenerate with `cualign-lint --dump-telemetry`."
                );
                println!("# `*` marks a dynamic format!-built segment. DESIGN.md §5 documents each name.");
                for n in names {
                    println!("{n}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cualign-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    let rule_refs: Vec<&str> = match &rules {
        Some(list) => list.iter().map(|s| s.as_str()).collect(),
        None => lint::ALL_RULES.to_vec(),
    };
    match lint::run(&root, &rule_refs) {
        Ok(diags) if diags.is_empty() => {
            println!(
                "cualign-lint: clean ({} rules over {})",
                rule_refs.len(),
                root.display()
            );
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("cualign-lint: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("cualign-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("cualign-lint: {msg} (try --help)");
    ExitCode::from(2)
}
