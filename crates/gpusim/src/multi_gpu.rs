//! Multi-GPU scaling model for belief propagation — the paper's stated
//! future work (§7: "We will also explore distributed multi-GPU
//! implementations of belief propagation and weighted matching").
//!
//! Decomposition modeled: rows of the overlap matrix `S` (i.e. edges of
//! `L`) are range-partitioned across `G` devices. Each BP iteration then
//! consists of
//!
//! 1. **local phase** — every device runs the full kernel family on its
//!    shard (bulk resources scale ≈ 1/G; the imbalance tail does not),
//! 2. **exchange phase** — the edge-indexed messages `yᶜ`/`zᶜ` feed the
//!    next iteration's `othermax` groups, whose members straddle
//!    partition boundaries, and the transposed `Sᵖ` values cross shards;
//!    both are modeled as a ring all-gather of the partitioned message
//!    vectors plus a halo of transposed overlap values.
//!
//! The model exposes the classic strong-scaling story: bandwidth-bound
//! bulk shrinks with `G`, the interconnect term and per-iteration launch
//! latencies do not, so efficiency decays with `G` and small instances
//! stop scaling first.

use crate::bp_gpu::model_bp_iteration;
use crate::device::DeviceSpec;
use crate::exec::ExecConfig;
use cualign_graph::BipartiteGraph;
use cualign_overlap::OverlapMatrix;

/// Interconnect description for the exchange phase.
#[derive(Clone, Copy, Debug)]
pub struct Interconnect {
    /// Per-link bandwidth in GB/s (NVLink 3: ~300 GB/s effective per
    /// direction on an A100 HGX board).
    pub link_gbps: f64,
    /// Per-message latency in seconds (kernel + NCCL ring step overhead).
    pub step_latency_s: f64,
}

impl Interconnect {
    /// NVLink 3 (HGX A100) defaults.
    pub fn nvlink3() -> Self {
        Interconnect {
            link_gbps: 300.0,
            step_latency_s: 10e-6,
        }
    }

    /// PCIe 4.0 x16 fallback.
    pub fn pcie4() -> Self {
        Interconnect {
            link_gbps: 25.0,
            step_latency_s: 25e-6,
        }
    }

    /// Ring all-gather time for `bytes` of payload across `g` devices.
    pub fn all_gather_s(&self, bytes: u64, g: usize) -> f64 {
        if g <= 1 {
            return 0.0;
        }
        let steps = (g - 1) as f64;
        // Each step moves (bytes / g) per device along the ring.
        steps * (bytes as f64 / g as f64) / (self.link_gbps * 1e9) + steps * self.step_latency_s
    }
}

/// One multi-GPU configuration's modeled outcome.
#[derive(Clone, Copy, Debug)]
pub struct MultiGpuPoint {
    /// Device count.
    pub gpus: usize,
    /// Seconds per BP iteration (local + exchange).
    pub iteration_s: f64,
    /// Local-compute share of the iteration.
    pub local_s: f64,
    /// Interconnect share of the iteration.
    pub exchange_s: f64,
    /// Speedup vs. the single-GPU iteration.
    pub speedup: f64,
    /// Parallel efficiency (`speedup / gpus`).
    pub efficiency: f64,
}

/// Models one BP iteration on `gpus` devices.
///
/// The local phase is the single-device iteration scaled by an even row
/// partition (bulk terms ∝ 1/G, tail unchanged); the exchange phase
/// all-gathers the two edge-message vectors and the halo of transposed
/// `Sᵖ` values (bounded by the nonzeros whose mirror lives off-shard,
/// estimated at `(G-1)/G` of the total).
pub fn model_multi_gpu_iteration(
    l: &BipartiteGraph,
    s: &OverlapMatrix,
    device: &DeviceSpec,
    interconnect: &Interconnect,
    exec: &ExecConfig,
    gpus: usize,
) -> MultiGpuPoint {
    assert!(gpus >= 1, "need at least one device");
    let (kernels, single_s) = model_bp_iteration(l, s, true, device, exec);
    // Split bulk and tail: the tail (critical path) is the max over items,
    // which partitioning does not shrink.
    let tail: f64 = kernels
        .iter()
        .flat_map(|(_, st)| st.bins.iter().map(|b| b.critical_path_s))
        .fold(0.0, f64::max);
    let launch: f64 = kernels.len() as f64 * device.launch_overhead_s;
    let bulk = (single_s - tail - launch).max(0.0);

    let local_s = bulk / gpus as f64 + tail + launch;
    // Exchange: yᶜ and zᶜ (f64 per edge of L, gathered fully) plus the
    // off-shard share of Sᵖ mirror values.
    let message_bytes = 2 * (l.num_edges() as u64) * 8;
    let halo_bytes = ((s.nnz() as u64) * 8) * (gpus as u64 - 1) / (gpus as u64).max(1);
    let exchange_s = interconnect.all_gather_s(message_bytes + halo_bytes, gpus);

    let iteration_s = local_s + exchange_s;
    let speedup = single_s / iteration_s;
    MultiGpuPoint {
        gpus,
        iteration_s,
        local_s,
        exchange_s,
        speedup,
        efficiency: speedup / gpus as f64,
    }
}

/// Sweeps device counts, returning one point per entry of `gpu_counts`.
pub fn strong_scaling_sweep(
    l: &BipartiteGraph,
    s: &OverlapMatrix,
    device: &DeviceSpec,
    interconnect: &Interconnect,
    exec: &ExecConfig,
    gpu_counts: &[usize],
) -> Vec<MultiGpuPoint> {
    gpu_counts
        .iter()
        .map(|&g| model_multi_gpu_iteration(l, s, device, interconnect, exec, g))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cualign_graph::generators::erdos_renyi_gnm;
    use cualign_graph::{Permutation, VertexId};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn instance(n: usize, decoys: usize, seed: u64) -> (BipartiteGraph, OverlapMatrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = erdos_renyi_gnm(n, n * 3, &mut rng);
        let p = Permutation::random(n, &mut rng);
        let b = p.apply_to_graph(&a);
        let mut triples = Vec::new();
        for i in 0..n as VertexId {
            triples.push((i, p.apply(i), 0.5));
            for _ in 0..decoys {
                triples.push((i, rng.gen_range(0..n as VertexId), 0.5));
            }
        }
        let l = BipartiteGraph::from_weighted_edges(n, n, &triples);
        let s = OverlapMatrix::build(&a, &b, &l);
        (l, s)
    }

    #[test]
    fn single_gpu_is_identity() {
        let (l, s) = instance(400, 6, 1);
        let p = model_multi_gpu_iteration(
            &l,
            &s,
            &DeviceSpec::a100(),
            &Interconnect::nvlink3(),
            &ExecConfig::optimized(),
            1,
        );
        assert!((p.speedup - 1.0).abs() < 1e-9);
        assert_eq!(p.exchange_s, 0.0);
    }

    #[test]
    fn speedup_bounded_by_device_count() {
        let (l, s) = instance(2000, 9, 2);
        for g in [2, 4, 8] {
            let p = model_multi_gpu_iteration(
                &l,
                &s,
                &DeviceSpec::a100(),
                &Interconnect::nvlink3(),
                &ExecConfig::optimized(),
                g,
            );
            assert!(p.speedup <= g as f64 + 1e-9, "superlinear at {g}");
            assert!(p.efficiency <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn efficiency_decays_with_devices() {
        let (l, s) = instance(2000, 9, 3);
        let sweep = strong_scaling_sweep(
            &l,
            &s,
            &DeviceSpec::a100(),
            &Interconnect::nvlink3(),
            &ExecConfig::optimized(),
            &[1, 2, 4, 8],
        );
        for w in sweep.windows(2) {
            assert!(
                w[1].efficiency <= w[0].efficiency + 1e-9,
                "efficiency rose from {} to {}",
                w[0].efficiency,
                w[1].efficiency
            );
        }
    }

    #[test]
    fn slow_interconnect_hurts() {
        let (l, s) = instance(1500, 9, 4);
        let fast = model_multi_gpu_iteration(
            &l,
            &s,
            &DeviceSpec::a100(),
            &Interconnect::nvlink3(),
            &ExecConfig::optimized(),
            4,
        );
        let slow = model_multi_gpu_iteration(
            &l,
            &s,
            &DeviceSpec::a100(),
            &Interconnect::pcie4(),
            &ExecConfig::optimized(),
            4,
        );
        assert!(slow.iteration_s > fast.iteration_s);
        assert!(slow.speedup < fast.speedup);
    }

    #[test]
    fn small_instances_stop_scaling_first() {
        let (ls, ss) = instance(200, 5, 5);
        let (ll, sl) = instance(3000, 9, 6);
        let g = 8;
        let small = model_multi_gpu_iteration(
            &ls,
            &ss,
            &DeviceSpec::a100(),
            &Interconnect::nvlink3(),
            &ExecConfig::optimized(),
            g,
        );
        let large = model_multi_gpu_iteration(
            &ll,
            &sl,
            &DeviceSpec::a100(),
            &Interconnect::nvlink3(),
            &ExecConfig::optimized(),
            g,
        );
        assert!(
            large.efficiency > small.efficiency,
            "large {} should out-scale small {}",
            large.efficiency,
            small.efficiency
        );
    }
}
