//! Invariants that span crate boundaries: the contracts each stage's
//! output must satisfy for the next stage, checked on realistic
//! pipeline-produced data rather than synthetic unit fixtures.

use cualign::{AlignerConfig, SparsityChoice};
use cualign_bp::{evaluate_matching, BpConfig, BpEngine};
use cualign_embed::align_subspaces;
use cualign_graph::generators::{duplication_divergence, erdos_renyi_gnm};
use cualign_graph::permutation::AlignmentInstance;
use cualign_graph::{BipartiteGraph, CsrGraph, VertexId};
use cualign_matching::{
    greedy_matching, hungarian_matching, locally_dominant_parallel, locally_dominant_serial,
};
use cualign_overlap::OverlapMatrix;
use cualign_sparsify::build_alignment_graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the pipeline front half on a permuted pair, returning
/// `(A, B, L, truth)`.
fn front_half(
    n: usize,
    seed: u64,
    k: usize,
) -> (CsrGraph, CsrGraph, BipartiteGraph, AlignmentInstance) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = duplication_divergence(n, 0.42, 0.3, &mut rng);
    let inst = AlignmentInstance::permuted_pair(a.clone(), &mut rng);
    let cfg = AlignerConfig {
        sparsity: SparsityChoice::K(k),
        ..Default::default()
    };
    let y1 = cfg.embedding.embed(&inst.a);
    let y2 = cfg.embedding.with_seed_offset(1).embed(&inst.b);
    let sub = align_subspaces(&y1, &y2, &inst.a, &inst.b, &cfg.subspace).expect("valid inputs");
    let l = build_alignment_graph(&sub.ya, &sub.yb, k);
    (inst.a.clone(), inst.b.clone(), l, inst)
}

/// The bipartite graph produced by the sparsifier upholds its structural
/// invariants, and the overlap matrix built on it upholds its own.
#[test]
fn pipeline_structures_validate() {
    let (a, b, l, _) = front_half(150, 1, 6);
    l.check_invariants().expect("L invariants");
    let s = OverlapMatrix::build(&a, &b, &l);
    s.check_invariants().expect("S invariants");
    assert_eq!(s.num_rows(), l.num_edges());
}

/// On pipeline-produced weights (real similarity distributions, many
/// near-ties), the three heuristic matchers agree exactly and the oracle
/// confirms the ½-approximation.
#[test]
fn matchers_agree_on_pipeline_weights() {
    let (_, _, l, _) = front_half(120, 2, 5);
    let serial = locally_dominant_serial(&l);
    let parallel = locally_dominant_parallel(&l);
    let greedy = greedy_matching(&l);
    assert_eq!(serial, parallel);
    assert_eq!(serial, greedy);
    serial.check_valid(&l).expect("valid matching");
    assert!(serial.is_maximal(&l));
    let opt = hungarian_matching(&l);
    assert!(serial.weight(&l) >= 0.5 * opt.weight(&l) - 1e-9);
}

/// The ground-truth alignment, expressed as a matching on L (where its
/// pairs survived sparsification), conserves exactly the edges the
/// overlap matrix says it does.
#[test]
fn ground_truth_overlap_consistency() {
    let (a, b, l, inst) = front_half(150, 3, 8);
    let s = OverlapMatrix::build(&a, &b, &l);
    // Collect the true pairs that survived kNN sparsification.
    let ids: Vec<u32> = (0..a.num_vertices() as VertexId)
        .filter_map(|u| l.edge_id(u, inst.truth.apply(u)))
        .collect();
    let survived = ids.len();
    let m = cualign_matching::Matching::from_edge_ids(&l, ids);
    let (_, _, overlaps) = evaluate_matching(l.weights(), &s, &m, 1.0, 1.0);
    // Count conserved edges directly from the mapping.
    let mapping: Vec<Option<VertexId>> = (0..a.num_vertices() as VertexId)
        .map(|u| m.mate_of_a(u))
        .collect();
    let direct = a
        .edges()
        .filter(|&(u, v)| {
            matches!(
                (mapping[u as usize], mapping[v as usize]),
                (Some(fu), Some(fv)) if b.has_edge(fu, fv)
            )
        })
        .count();
    assert_eq!(overlaps, direct, "S-based and mapping-based counts differ");
    // Most true pairs survive sparsification at k = 8 (the property that
    // makes sparsification safe, Fig. 4).
    assert!(
        survived as f64 > 0.85 * a.num_vertices() as f64,
        "only {survived} true pairs survived"
    );
}

/// BP on pipeline structures: message finiteness, history completeness,
/// and the outcome's internal consistency.
#[test]
fn bp_outcome_consistency_on_pipeline_data() {
    let (a, b, l, _) = front_half(120, 4, 6);
    let s = OverlapMatrix::build(&a, &b, &l);
    let cfg = BpConfig {
        max_iters: 10,
        ..Default::default()
    };
    let out = BpEngine::new(&l, &s, &cfg).run();
    assert_eq!(out.history.len(), 11); // 10 + iteration-0 direct rounding
    out.best_matching
        .check_valid(&l)
        .expect("best matching valid");
    // Re-evaluate the reported best matching; numbers must agree.
    let (score, weight, overlaps) =
        evaluate_matching(l.weights(), &s, &out.best_matching, cfg.alpha, cfg.beta);
    assert_eq!(score, out.best_score);
    assert_eq!(weight, out.best_weight);
    assert_eq!(overlaps, out.best_overlaps);
    // History's max is the best.
    let hist_max = out
        .history
        .iter()
        .map(|r| r.score)
        .fold(f64::NEG_INFINITY, f64::max);
    assert_eq!(hist_max, out.best_score);
}

/// Increasing k strictly enlarges L and never decreases how many true
/// pairs survive sparsification.
#[test]
fn sparsification_monotonicity() {
    let mut rng = StdRng::seed_from_u64(5);
    let a = erdos_renyi_gnm(120, 360, &mut rng);
    let inst = AlignmentInstance::permuted_pair(a, &mut rng);
    let cfg = AlignerConfig::default();
    let y1 = cfg.embedding.embed(&inst.a);
    let y2 = cfg.embedding.with_seed_offset(1).embed(&inst.b);
    let sub = align_subspaces(&y1, &y2, &inst.a, &inst.b, &cfg.subspace).expect("valid inputs");
    let mut last_edges = 0;
    let mut last_survivors = 0;
    for k in [2, 4, 8, 16] {
        let l = build_alignment_graph(&sub.ya, &sub.yb, k);
        let survivors = (0..120u32)
            .filter(|&u| l.edge_id(u, inst.truth.apply(u)).is_some())
            .count();
        assert!(l.num_edges() >= last_edges, "L shrank as k grew");
        assert!(survivors >= last_survivors, "survivors dropped as k grew");
        last_edges = l.num_edges();
        last_survivors = survivors;
    }
}
