#!/bin/bash
# Records every table/figure reproduction. Invoked for EXPERIMENTS.md.
set -x
export CUALIGN_SCALE=${CUALIGN_SCALE:-0.25}
export CUALIGN_BP_ITERS=${CUALIGN_BP_ITERS:-10}
export CUALIGN_SEED=${CUALIGN_SEED:-1}
cd /root/repo
for bin in table1 fig4 fig5 fig6 table2 fig7 ablation_gpu; do
  echo "=== $bin ==="
  ./target/release/$bin > results/$bin.txt 2>&1
done
echo ALL_RECORDED
