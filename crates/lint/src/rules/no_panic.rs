//! `no-panic`: library code must not contain panicking paths.
//!
//! The PR-5 fallible-builder migration promised that every error a
//! caller can hit surfaces as a typed `AlignError` / `SubspaceError`,
//! not a panic. This rule keeps that promise honest: in the library
//! source of the algorithmic crates, `.unwrap()`, `.expect(...)`, and
//! the `panic!` / `unreachable!` / `todo!` / `unimplemented!` macros
//! are forbidden. Tests, benches, binaries, and examples may panic
//! freely, and a genuinely-unreachable site can carry
//! `// lint: allow(no-panic): <invariant>` — with a mandatory reason.

use super::{ident, is_punct};
use crate::source::{FileKind, SourceFile};
use crate::Diagnostic;

/// Rule name as written in diagnostics and allow directives.
pub const RULE: &str = "no-panic";

/// Crates whose `src/` (minus bins) is held to the no-panic contract.
pub const CRATES: &[&str] = &[
    "core", "embed", "linalg", "sparsify", "bp", "matching", "overlap", "graph",
];

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Runs the rule over one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if file.kind != FileKind::Lib || !CRATES.contains(&file.crate_name.as_str()) {
        return Vec::new();
    }
    let toks = &file.lexed.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let Some(name) = ident(toks.get(i)) else {
            continue;
        };
        let line = toks[i].line;
        if file.is_test_line(line) || file.allowed(RULE, line) {
            continue;
        }
        if PANIC_METHODS.contains(&name)
            && is_punct(toks.get(i.wrapping_sub(1)), '.')
            && is_punct(toks.get(i + 1), '(')
        {
            out.push(Diagnostic {
                file: file.rel.clone(),
                line,
                rule: RULE,
                message: format!(
                    ".{name}() in library code; return a typed error or annotate \
                     `// lint: allow(no-panic): <invariant>`"
                ),
            });
        } else if PANIC_MACROS.contains(&name) && is_punct(toks.get(i + 1), '!') {
            out.push(Diagnostic {
                file: file.rel.clone(),
                line,
                rule: RULE,
                message: format!(
                    "{name}! in library code; return a typed error or annotate \
                     `// lint: allow(no-panic): <invariant>`"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(rel: &str, src: &str) -> Vec<Diagnostic> {
        check(&SourceFile::parse(rel, src))
    }

    #[test]
    fn flags_unwrap_expect_and_macros_in_lib_code() {
        let src = "fn f() { a.unwrap(); b.expect(\"x\"); panic!(\"y\"); unreachable!(); }";
        let d = diags("crates/core/src/x.rs", src);
        assert_eq!(d.len(), 4);
        assert!(d.iter().all(|d| d.rule == RULE));
    }

    #[test]
    fn unwrap_or_and_free_functions_are_fine() {
        let src = "fn f() { a.unwrap_or(0); a.unwrap_or_else(g); expect(1); fn unwrap() {} }";
        assert!(diags("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn tests_bins_and_other_crates_are_exempt() {
        let src = "fn f() { a.unwrap(); }";
        assert!(diags("crates/core/src/bin/main.rs", src).is_empty());
        assert!(diags("crates/core/tests/t.rs", src).is_empty());
        assert!(diags("crates/telemetry/src/registry.rs", src).is_empty());
        let test_mod = "#[cfg(test)]\nmod tests { fn f() { a.unwrap(); } }";
        assert!(diags("crates/core/src/x.rs", test_mod).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "fn f() {\n// lint: allow(no-panic): seeded above\na.unwrap();\n}";
        assert!(diags("crates/core/src/x.rs", src).is_empty());
        let no_reason = "fn f() {\n// lint: allow(no-panic)\na.unwrap();\n}";
        assert_eq!(diags("crates/core/src/x.rs", no_reason).len(), 1);
    }
}
