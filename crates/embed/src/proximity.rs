//! Proximity-preserving node embedding by iterated-propagation random
//! projection (the FastRP family).
//!
//! Start from a random Gaussian projection `R ∈ R^{n×d}`, repeatedly smooth
//! it through the degree-normalized adjacency operator `P = D⁻¹A`, and
//! combine the hop powers with decaying weights:
//!
//! ```text
//! Y = Σ_{r=1..T}  w_r · Pʳ R,      w_r = decay^(r-1)
//! ```
//!
//! Vertices with similar multi-hop neighborhoods receive similar rows — the
//! "proximity-based embedding" the paper's Algorithm 1 requires. Degree
//! normalization keeps hub rows from dominating; a final row normalization
//! makes downstream cosine similarity a plain dot product.
//!
//! Everything is `O(T · nnz · d)` with rayon-parallel propagation, so the
//! 10k-vertex inputs of Table 1 embed in milliseconds.

use cualign_graph::{CsrGraph, VertexId};
use cualign_linalg::{vecops, DenseMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

/// Configuration for [`fastrp_embedding`].
#[derive(Clone, Copy, Debug)]
pub struct FastRpConfig {
    /// Embedding dimension `d`.
    pub dim: usize,
    /// Number of propagation hops `T`.
    pub hops: usize,
    /// Per-hop weight decay: hop `r` contributes with weight `decay^(r-1)`.
    pub decay: f64,
    /// RNG seed for the initial projection.
    pub seed: u64,
    /// Whether to row-normalize the final embedding (recommended: cosine
    /// similarity becomes a dot product).
    pub normalize: bool,
}

impl Default for FastRpConfig {
    fn default() -> Self {
        FastRpConfig {
            dim: 64,
            hops: 4,
            decay: 0.7,
            seed: 0x5eed,
            normalize: true,
        }
    }
}

/// One step of `Y ← D⁻¹ A · Y`, parallel over vertices. Isolated vertices
/// keep a zero row.
fn propagate(g: &CsrGraph, y: &DenseMatrix) -> DenseMatrix {
    let n = g.num_vertices();
    let d = y.cols();
    let mut out = DenseMatrix::zeros(n, d);
    out.data_mut()
        .par_chunks_mut(d)
        .enumerate()
        .for_each(|(u, row)| {
            let nbrs = g.neighbors(u as VertexId);
            if nbrs.is_empty() {
                return;
            }
            for &v in nbrs {
                let src = y.row(v as usize);
                for j in 0..d {
                    row[j] += src[j];
                }
            }
            let inv_deg = 1.0 / nbrs.len() as f64;
            for x in row {
                *x *= inv_deg;
            }
        });
    out
}

/// Computes the FastRP-style proximity embedding of `g`.
///
/// # Panics
/// Panics if `dim == 0` or `hops == 0`.
pub fn fastrp_embedding(g: &CsrGraph, cfg: &FastRpConfig) -> DenseMatrix {
    assert!(cfg.dim > 0, "embedding dimension must be positive");
    assert!(cfg.hops > 0, "need at least one propagation hop");
    let n = g.num_vertices();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let r = DenseMatrix::gaussian(n, cfg.dim, &mut rng);

    let mut acc = DenseMatrix::zeros(n, cfg.dim);
    let mut cur = r;
    let mut weight = 1.0;
    for _ in 0..cfg.hops {
        cur = propagate(g, &cur);
        // acc += weight * cur
        acc.data_mut()
            .par_chunks_mut(cfg.dim)
            .zip(cur.data().par_chunks(cfg.dim))
            .for_each(|(a, c)| {
                for j in 0..cfg.dim {
                    a[j] += weight * c[j];
                }
            });
        weight *= cfg.decay;
    }
    if cfg.normalize {
        vecops::normalize_rows(&mut acc);
    }
    acc
}

/// Mean cosine similarity between embedding rows of adjacent vertex pairs
/// minus that of random pairs — a scalar diagnostic that the embedding is
/// actually proximity-preserving (positive and large = good). Used by tests
/// and examples.
pub fn neighborhood_coherence(g: &CsrGraph, y: &DenseMatrix, samples: usize, seed: u64) -> f64 {
    use rand::Rng;
    let n = g.num_vertices();
    if n < 2 || g.num_edges() == 0 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let edges = g.edge_list();
    let mut adj_sim = 0.0;
    let mut rnd_sim = 0.0;
    for _ in 0..samples {
        let &(u, v) = &edges[rng.gen_range(0..edges.len())];
        adj_sim += vecops::cosine_similarity(y.row(u as usize), y.row(v as usize));
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        rnd_sim += vecops::cosine_similarity(y.row(a), y.row(b));
    }
    (adj_sim - rnd_sim) / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cualign_graph::generators::{barabasi_albert, erdos_renyi_gnm, watts_strogatz};
    use cualign_graph::Permutation;

    #[test]
    fn shape_and_normalization() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi_gnm(100, 300, &mut rng);
        let y = fastrp_embedding(&g, &FastRpConfig::default());
        assert_eq!(y.rows(), 100);
        assert_eq!(y.cols(), 64);
        for i in 0..100 {
            let n = vecops::norm(y.row(i));
            assert!((n - 1.0).abs() < 1e-9 || n == 0.0, "row {i} norm {n}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = barabasi_albert(200, 3, &mut rng);
        let cfg = FastRpConfig::default();
        let y1 = fastrp_embedding(&g, &cfg);
        let y2 = fastrp_embedding(&g, &cfg);
        assert_eq!(y1, y2);
    }

    #[test]
    fn neighbors_embed_closer_than_random() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = watts_strogatz(400, 8, 0.05, &mut rng);
        let y = fastrp_embedding(&g, &FastRpConfig::default());
        let coherence = neighborhood_coherence(&g, &y, 2000, 7);
        assert!(coherence > 0.2, "coherence only {coherence}");
    }

    #[test]
    fn isolated_vertices_get_zero_rows() {
        let g = CsrGraph::from_edges(4, &[(0, 1)]);
        let y = fastrp_embedding(
            &g,
            &FastRpConfig {
                normalize: false,
                ..Default::default()
            },
        );
        assert!(y.row(2).iter().all(|&x| x == 0.0));
        assert!(y.row(3).iter().all(|&x| x == 0.0));
        assert!(y.row(0).iter().any(|&x| x != 0.0));
    }

    #[test]
    fn embedding_is_equivariant_under_relabeling() {
        // Relabeling the graph and permuting the random projection the same
        // way must permute the embedding rows: check via the structural
        // property that a permuted graph with the same per-vertex projection
        // rows yields permuted embeddings.  We verify the weaker, directly
        // observable property: degree-0 ↦ zero rows, and per-vertex rows
        // depend only on the neighborhood structure.
        let mut rng = StdRng::seed_from_u64(4);
        let g = erdos_renyi_gnm(60, 150, &mut rng);
        let p = Permutation::random(60, &mut StdRng::seed_from_u64(5));
        let h = p.apply_to_graph(&g);
        // Propagation of the *same* matrix must commute with relabeling.
        let x = DenseMatrix::gaussian(60, 8, &mut StdRng::seed_from_u64(6));
        // Build permuted x: row P(i) of xp equals row i of x.
        let mut xp = DenseMatrix::zeros(60, 8);
        for i in 0..60 {
            let pi = p.apply(i as VertexId) as usize;
            xp.row_mut(pi).copy_from_slice(x.row(i));
        }
        let prop_g = propagate(&g, &x);
        let prop_h = propagate(&h, &xp);
        for i in 0..60 {
            let pi = p.apply(i as VertexId) as usize;
            for j in 0..8 {
                assert!((prop_g[(i, j)] - prop_h[(pi, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn rejects_zero_dim() {
        let g = CsrGraph::empty(3);
        let _ = fastrp_embedding(
            &g,
            &FastRpConfig {
                dim: 0,
                ..Default::default()
            },
        );
    }
}
