//! # cualign
//!
//! A from-scratch Rust implementation of **cuAlign** (Xiang, Khan, Ferdous,
//! Aravind, Halappanavar — SC-W 2023): scalable global network alignment
//! combining proximity-preserving node embeddings, subspace alignment, kNN
//! sparsification, belief propagation on the alignment quadratic program,
//! and half-approximate weighted matching.
//!
//! ## Quickstart
//!
//! ```
//! use cualign::{Aligner, AlignerConfig};
//! use cualign_graph::generators::erdos_renyi_gnm;
//! use cualign_graph::permutation::AlignmentInstance;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let a = erdos_renyi_gnm(120, 360, &mut rng);
//! let inst = AlignmentInstance::permuted_pair(a, &mut rng);
//!
//! let cfg = AlignerConfig::builder().bp_iters(10).build().unwrap();
//! let result = Aligner::new(cfg).align(&inst.a, &inst.b).unwrap();
//! println!("NCV-GS3 = {:.3}", result.scores.ncv_gs3);
//! assert!(result.scores.ncv_gs3 > 0.0);
//! ```
//!
//! For parameter sweeps, hold an [`AlignmentSession`] instead of calling
//! [`Aligner::align`] in a loop: the session caches each pipeline stage
//! under a fingerprint of the config slice it depends on, so changing
//! `sparsity` reuses the embeddings and subspace, and changing
//! `bp.max_iters` reuses everything up to the overlap matrix.
//!
//! ## Architecture
//!
//! The pipeline (paper Fig. 2) is assembled from dedicated crates:
//! `cualign-graph` (substrate + coarsening), `cualign-linalg`
//! (SVD/Sinkhorn/Procrustes), `cualign-embed` (embeddings + Eq. 2),
//! `cualign-sparsify` (kNN → `L`), `cualign-overlap` (matrix `S`),
//! `cualign-bp` (Algorithm 2), `cualign-matching` (§4.3),
//! `cualign-gpusim` (the GPU cost model for the Table 2 study), and
//! `cualign-telemetry` (spans/counters under every stage). This crate
//! provides the user-facing [`Aligner`] and the stage-cached
//! [`AlignmentSession`] engine behind it, the [`multilevel`]
//! coarsen–align–project–refine driver
//! (`AlignerConfig::builder().multilevel(levels)`), the [`conealign`]
//! baseline, alignment [`scoring`], and the paper's named [`inputs`].
//! `docs/ARCHITECTURE.md` has the full stage diagram.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod conealign;
pub mod config;
pub mod error;
pub mod ingest;
pub mod inputs;
pub mod multilevel;
pub mod pipeline;
pub mod scoring;
pub mod session;

pub use baselines::{exact_alignment, isorank_align, seed_and_expand};
pub use conealign::{cone_align, cone_align_session, ConeAlignResult};
pub use config::{AlignerConfig, AlignerConfigBuilder, SparsifyMethod, SparsityChoice};
pub use cualign_sparsify::{ann_recall, AnnConfig};
pub use error::{AlignError, GraphSide};
pub use inputs::PaperInput;
pub use multilevel::{align_multilevel, align_multilevel_with_registry, MultilevelConfig};
pub use pipeline::{Aligner, AlignmentResult, StageTimings};
pub use scoring::{score_alignment, AlignmentScores};
pub use session::{graph_pair_fingerprint, AlignmentSession, Embeddings, StageCounters};
