//! Hardware descriptions for the cost model.

/// A device the cost model can charge work against. Two presets mirror the
/// paper's testbed: [`DeviceSpec::a100`] and [`DeviceSpec::epyc7702p`].
#[derive(Clone, Debug)]
pub struct DeviceSpec {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// Parallel execution units (GPU: SMs; CPU: cores).
    pub num_units: usize,
    /// SIMT lanes per scheduled warp (CPU: 1 — no lane idling, no
    /// coalescing constraint beyond the cache line).
    pub warp_width: u32,
    /// Warps resident per unit for latency hiding (GPU occupancy; CPU: 1
    /// hardware thread per core in this model, SMT ignored).
    pub warps_per_unit: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Sustainable DRAM bandwidth in GB/s (HBM2 vs. 8-channel DDR4).
    pub dram_gbps: f64,
    /// Memory transaction granularity in bytes (GPU: 32 B sectors; CPU:
    /// 64 B cache lines).
    pub transaction_bytes: usize,
    /// Average DRAM transaction latency in core cycles.
    pub dram_latency_cycles: f64,
    /// Outstanding scattered requests sustainable per warp slot
    /// (memory-level parallelism). Streaming/coalesced traffic is assumed
    /// fully pipelined and is charged to bandwidth only.
    pub memory_parallelism: f64,
    /// Scalar double-precision operations per lane per cycle.
    pub flops_per_lane_cycle: f64,
    /// Fixed cost of launching one kernel (GPU) or forking one parallel
    /// region (CPU), in seconds.
    pub launch_overhead_s: f64,
}

impl DeviceSpec {
    /// NVIDIA A100 (SXM4-40GB, CUDA 11 era) — the paper's GPU platform.
    pub fn a100() -> Self {
        DeviceSpec {
            name: "NVIDIA A100",
            num_units: 108,
            warp_width: 32,
            warps_per_unit: 8,
            clock_ghz: 1.41,
            dram_gbps: 1555.0,
            transaction_bytes: 32,
            dram_latency_cycles: 400.0,
            memory_parallelism: 12.0,
            flops_per_lane_cycle: 2.0, // FMA per lane
            launch_overhead_s: 5e-6,
        }
    }

    /// NVIDIA V100 (SXM2-32GB) — the previous GPU generation, for
    /// cross-generation sweeps of the model.
    pub fn v100() -> Self {
        DeviceSpec {
            name: "NVIDIA V100",
            num_units: 80,
            warp_width: 32,
            warps_per_unit: 8,
            clock_ghz: 1.38,
            dram_gbps: 900.0,
            transaction_bytes: 32,
            dram_latency_cycles: 440.0,
            memory_parallelism: 10.0,
            flops_per_lane_cycle: 2.0,
            launch_overhead_s: 6e-6,
        }
    }

    /// NVIDIA H100 (SXM5-80GB) — the generation after the paper's A100.
    pub fn h100() -> Self {
        DeviceSpec {
            name: "NVIDIA H100",
            num_units: 132,
            warp_width: 32,
            warps_per_unit: 8,
            clock_ghz: 1.83,
            dram_gbps: 3350.0,
            transaction_bytes: 32,
            dram_latency_cycles: 380.0,
            memory_parallelism: 14.0,
            flops_per_lane_cycle: 2.0,
            launch_overhead_s: 4e-6,
        }
    }

    /// AMD EPYC 7702P, 64 cores, 8-channel DDR4-3200 — the paper's CPU
    /// platform. `warp_width = 1`: no SIMT lane idling; vector units are
    /// folded into `flops_per_lane_cycle`.
    pub fn epyc7702p() -> Self {
        DeviceSpec {
            name: "AMD EPYC 7702P",
            num_units: 64,
            warp_width: 1,
            warps_per_unit: 1,
            clock_ghz: 2.0,
            dram_gbps: 120.0, // sustained 8-channel DDR4 triad
            transaction_bytes: 64,
            dram_latency_cycles: 200.0,
            memory_parallelism: 10.0,  // out-of-order MSHRs per core
            flops_per_lane_cycle: 8.0, // AVX2 FMA on f64
            launch_overhead_s: 3e-6,   // parallel-region fork/join barrier
        }
    }

    /// Total warp issue slots across the device.
    pub fn warp_slots(&self) -> usize {
        self.num_units * self.warps_per_unit
    }

    /// Peak lane-cycles per second.
    pub fn lane_throughput(&self) -> f64 {
        self.num_units as f64 * self.warp_width as f64 * self.clock_ghz * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_sane() {
        let gpu = DeviceSpec::a100();
        let cpu = DeviceSpec::epyc7702p();
        assert_eq!(gpu.num_units, 108);
        assert_eq!(cpu.warp_width, 1);
        // The bandwidth ratio drives the paper's BP speedups (5–19×).
        let ratio = gpu.dram_gbps / cpu.dram_gbps;
        assert!(ratio > 10.0 && ratio < 20.0, "bandwidth ratio {ratio}");
    }

    #[test]
    fn throughput_helpers() {
        let gpu = DeviceSpec::a100();
        assert_eq!(gpu.warp_slots(), 108 * 8);
        assert!(gpu.lane_throughput() > 4e12);
    }

    #[test]
    fn generations_order_sensibly() {
        let v = DeviceSpec::v100();
        let a = DeviceSpec::a100();
        let h = DeviceSpec::h100();
        assert!(v.dram_gbps < a.dram_gbps && a.dram_gbps < h.dram_gbps);
        assert!(v.lane_throughput() < a.lane_throughput());
        assert!(a.lane_throughput() < h.lane_throughput());
    }
}
