//! Entropic optimal transport via Sinkhorn–Knopp scaling.
//!
//! The subspace-alignment stage (Eq. 2, per Chen et al.'s cone-align) needs
//! a soft correspondence between the two embeddings: a doubly-(sub)stochastic
//! plan `T` minimizing `⟨T, C⟩ − ε·H(T)` for a pairwise cost matrix `C`.
//! Sinkhorn alternates row/column scalings of the Gibbs kernel
//! `K = exp(−C/ε)`; all updates run in log-space for numerical safety at
//! small `ε`.

use crate::DenseMatrix;
use rayon::prelude::*;

/// Sinkhorn solver parameters.
#[derive(Clone, Copy, Debug)]
pub struct SinkhornOptions {
    /// Entropic regularization strength `ε` (> 0). Smaller values give
    /// sharper (more permutation-like) plans but need more iterations.
    pub epsilon: f64,
    /// Maximum scaling iterations.
    pub max_iters: usize,
    /// Convergence threshold on the L1 marginal violation.
    pub tolerance: f64,
}

impl Default for SinkhornOptions {
    fn default() -> Self {
        SinkhornOptions {
            epsilon: 0.05,
            max_iters: 500,
            tolerance: 1e-6,
        }
    }
}

/// An optimal transport plan between uniform marginals.
pub struct TransportPlan {
    /// The `n × m` plan; rows sum to `1/n`, columns to `1/m` at convergence.
    pub plan: DenseMatrix,
    /// Iterations actually used.
    pub iterations: usize,
    /// Final L1 marginal violation.
    pub marginal_error: f64,
}

/// Runs log-domain Sinkhorn on cost matrix `cost` (`n × m`) with uniform
/// marginals `1/n`, `1/m`.
///
/// # Panics
/// Panics if the cost matrix is empty or `epsilon <= 0`.
pub fn sinkhorn(cost: &DenseMatrix, opts: &SinkhornOptions) -> TransportPlan {
    let (n, m) = (cost.rows(), cost.cols());
    assert!(n > 0 && m > 0, "empty cost matrix");
    assert!(opts.epsilon > 0.0, "epsilon must be positive");
    let eps = opts.epsilon;
    let log_mu = -(n as f64).ln(); // log(1/n)
    let log_nu = -(m as f64).ln(); // log(1/m)

    // Dual potentials f (rows) and g (cols), in units of cost.
    let mut f = vec![0.0; n];
    let mut g = vec![0.0; m];

    // logsumexp over a row of (-C(i,·) + f_i + g_·)/eps is what the updates
    // need; we fold f in afterwards, so define:
    //   row_lse(i) = log Σ_j exp((g_j − C(i,j)) / eps)
    let row_lse = |f_unused: &[f64], g: &[f64], i: usize| -> f64 {
        let _ = f_unused;
        let crow = cost.row(i);
        let mut maxv = f64::NEG_INFINITY;
        for j in 0..m {
            maxv = maxv.max((g[j] - crow[j]) / eps);
        }
        if maxv == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        let sum: f64 = (0..m).map(|j| ((g[j] - crow[j]) / eps - maxv).exp()).sum();
        maxv + sum.ln()
    };
    let col_lse = |f: &[f64], i_col: usize| -> f64 {
        let mut maxv = f64::NEG_INFINITY;
        for i in 0..n {
            maxv = maxv.max((f[i] - cost[(i, i_col)]) / eps);
        }
        if maxv == f64::NEG_INFINITY {
            return f64::NEG_INFINITY;
        }
        let sum: f64 = (0..n)
            .map(|i| ((f[i] - cost[(i, i_col)]) / eps - maxv).exp())
            .sum();
        maxv + sum.ln()
    };

    let mut iterations = 0;
    let mut marginal_error = f64::INFINITY;
    for it in 0..opts.max_iters {
        iterations = it + 1;
        // f_i ← ε (log μ_i − row_lse_i)
        let new_f: Vec<f64> = (0..n)
            .into_par_iter()
            .map(|i| eps * (log_mu - row_lse(&f, &g, i)))
            .collect();
        f = new_f;
        // g_j ← ε (log ν_j − col_lse_j)
        let new_g: Vec<f64> = (0..m)
            .into_par_iter()
            .map(|j| eps * (log_nu - col_lse(&f, j)))
            .collect();
        g = new_g;

        // Row marginal violation (columns are exact right after their
        // update). Collected then summed sequentially: a rayon f64 `sum()`
        // reduces in nondeterministic order, which would make the
        // convergence cutoff — and thus the whole pipeline — run-to-run
        // unstable.
        let errs: Vec<f64> = (0..n)
            .into_par_iter()
            .map(|i| {
                let lse = row_lse(&f, &g, i) + f[i] / eps;
                (lse.exp() - log_mu.exp()).abs()
            })
            .collect();
        marginal_error = errs.iter().sum();
        if marginal_error < opts.tolerance {
            break;
        }
    }

    // Materialize the plan T(i,j) = exp((f_i + g_j − C(i,j))/ε).
    let mut plan = DenseMatrix::zeros(n, m);
    plan.data_mut()
        .par_chunks_mut(m)
        .enumerate()
        .for_each(|(i, row)| {
            let crow = cost.row(i);
            for j in 0..m {
                row[j] = ((f[i] + g[j] - crow[j]) / eps).exp();
            }
        });

    TransportPlan {
        plan,
        iterations,
        marginal_error,
    }
}

impl TransportPlan {
    /// Hard correspondence: for each row, the column with maximum mass.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.plan.rows())
            .map(|i| {
                let row = self.plan.row(i);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("plan entries finite"))
                    .map(|(j, _)| j)
                    .expect("non-empty row")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_cost(n: usize) -> DenseMatrix {
        DenseMatrix::from_fn(n, n, |_, _| 1.0)
    }

    #[test]
    fn uniform_cost_gives_uniform_plan() {
        let c = uniform_cost(4);
        let tp = sinkhorn(&c, &SinkhornOptions::default());
        for i in 0..4 {
            for j in 0..4 {
                assert!((tp.plan[(i, j)] - 1.0 / 16.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn marginals_are_satisfied() {
        let c = DenseMatrix::from_fn(5, 7, |i, j| ((i * 3 + j * 5) % 11) as f64 / 11.0);
        let tp = sinkhorn(
            &c,
            &SinkhornOptions {
                epsilon: 0.1,
                max_iters: 2000,
                tolerance: 1e-10,
            },
        );
        for i in 0..5 {
            let rs: f64 = tp.plan.row(i).iter().sum();
            assert!((rs - 0.2).abs() < 1e-6, "row {i} sums to {rs}");
        }
        for j in 0..7 {
            let cs: f64 = (0..5).map(|i| tp.plan[(i, j)]).sum();
            assert!((cs - 1.0 / 7.0).abs() < 1e-6, "col {j} sums to {cs}");
        }
    }

    #[test]
    fn sharp_epsilon_recovers_permutation() {
        // Cost is a permuted identity-ish matrix: zero cost on the planted
        // permutation, high elsewhere.
        let perm = [2usize, 0, 3, 1];
        let c = DenseMatrix::from_fn(4, 4, |i, j| if perm[i] == j { 0.0 } else { 1.0 });
        let tp = sinkhorn(
            &c,
            &SinkhornOptions {
                epsilon: 0.02,
                max_iters: 3000,
                tolerance: 1e-9,
            },
        );
        assert_eq!(tp.argmax_rows(), perm.to_vec());
    }

    #[test]
    fn converges_and_reports_iterations() {
        let c = uniform_cost(3);
        let tp = sinkhorn(&c, &SinkhornOptions::default());
        assert!(tp.iterations <= 500);
        assert!(tp.marginal_error < 1e-5);
    }

    #[test]
    fn rectangular_plan_mass_is_one() {
        let c = DenseMatrix::from_fn(3, 8, |i, j| (i as f64 - j as f64).abs());
        let tp = sinkhorn(&c, &SinkhornOptions::default());
        let total: f64 = tp.plan.data().iter().sum();
        assert!((total - 1.0).abs() < 1e-5, "total mass {total}");
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_nonpositive_epsilon() {
        let c = uniform_cost(2);
        let _ = sinkhorn(
            &c,
            &SinkhornOptions {
                epsilon: 0.0,
                max_iters: 10,
                tolerance: 1e-6,
            },
        );
    }
}
