//! `doc-links`: relative markdown links in the documentation set
//! resolve to real files.
//!
//! The docs cross-reference each other heavily (README →
//! `docs/APPROXIMATION.md` → `docs/oracle_manifest.txt` → bench JSON
//! artifacts), and a rename anywhere silently strands the readers the
//! exactness contract is written for. This rule scans `README.md`,
//! `DESIGN.md`, `EXPERIMENTS.md`, and every `docs/*.md` file for inline
//! `[text](target)` links and fails the gate when a relative target
//! (resolved against the linking file's directory) does not exist.
//! External schemes (`http:`, `https:`, `mailto:`) and pure `#fragment`
//! anchors are skipped, fragments are stripped before resolution, and
//! fenced code blocks are ignored — doc examples are not navigation.
//!
//! The workspace walker only collects `.rs` files (and skips `docs/`
//! outright), so this rule reads the markdown set directly from disk.

use crate::walk::relative;
use crate::Diagnostic;
use std::fs;
use std::path::{Path, PathBuf};

/// Rule name as written in diagnostics.
pub const RULE: &str = "doc-links";

/// Root-level markdown files in scope (the navigable doc set; scratch
/// files like CHANGES.md / ISSUE.md are not part of it).
const ROOT_DOCS: &[&str] = &["README.md", "DESIGN.md", "EXPERIMENTS.md"];

/// The documentation files to scan: [`ROOT_DOCS`] plus `docs/*.md`,
/// sorted for deterministic diagnostics.
fn doc_set(root: &Path) -> Vec<PathBuf> {
    let mut docs: Vec<PathBuf> = ROOT_DOCS
        .iter()
        .map(|f| root.join(f))
        .filter(|p| p.is_file())
        .collect();
    if let Ok(entries) = fs::read_dir(root.join("docs")) {
        for entry in entries.flatten() {
            let p = entry.path();
            if p.extension().is_some_and(|e| e == "md") && p.is_file() {
                docs.push(p);
            }
        }
    }
    docs.sort();
    docs
}

/// Extracts the inline-link targets of one line: every `](target)`
/// occurrence, which covers both `[text](t)` and images `![alt](t)`.
fn link_targets(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            if let Some(close) = line[i + 2..].find(')') {
                out.push(line[i + 2..i + 2 + close].to_string());
                i += 2 + close;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Runs the rule over the documentation set under `root`.
pub fn check(root: &Path) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for path in doc_set(root) {
        let rel = relative(root, &path);
        let Ok(text) = fs::read_to_string(&path) else {
            continue;
        };
        let dir = path.parent().unwrap_or(root);
        let dir_rel = match relative(root, dir) {
            s if s.is_empty() => ".".to_string(),
            s => s,
        };
        let mut in_fence = false;
        for (idx, line) in text.lines().enumerate() {
            if line.trim_start().starts_with("```") {
                in_fence = !in_fence;
                continue;
            }
            if in_fence {
                continue;
            }
            for target in link_targets(line) {
                let target = target.trim();
                if target.is_empty()
                    || target.starts_with('#')
                    || target.contains("://")
                    || target.starts_with("mailto:")
                {
                    continue;
                }
                let file_part = target.split('#').next().unwrap_or(target);
                if !dir.join(file_part).exists() {
                    diags.push(Diagnostic {
                        file: rel.clone(),
                        line: idx + 1,
                        rule: RULE,
                        message: format!(
                            "relative link target `{file_part}` does not exist \
                             (resolved against `{dir_rel}`)"
                        ),
                    });
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_are_extracted_per_line() {
        let line = "see [a](x.md) and ![img](../y.png), not [b](#frag).";
        assert_eq!(link_targets(line), vec!["x.md", "../y.png", "#frag"]);
    }

    #[test]
    fn lines_without_links_yield_nothing() {
        assert!(link_targets("plain text ] ( separated").is_empty());
    }
}
