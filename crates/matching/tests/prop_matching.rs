//! Property-based tests for the matchers: the approximation guarantee,
//! serial/parallel equivalence, validity, and maximality on arbitrary
//! weighted bipartite graphs.

use cualign_graph::BipartiteGraph;
use cualign_matching::{
    greedy_matching, hungarian_matching, locally_dominant_parallel, locally_dominant_serial,
    suitor_matching,
};
use proptest::prelude::*;

/// Strategy: an arbitrary weighted bipartite graph, including negative
/// and zero weights and duplicate pairs.
fn bipartite() -> impl Strategy<Value = BipartiteGraph> {
    (1usize..12, 1usize..12).prop_flat_map(|(na, nb)| {
        prop::collection::vec((0..na as u32, 0..nb as u32, -2.0f64..8.0), 0..60)
            .prop_map(move |t| BipartiteGraph::from_weighted_edges(na, nb, &t))
    })
}

proptest! {
    /// Every matcher returns a valid matching; the heuristics are maximal
    /// over positive edges.
    #[test]
    fn matchers_valid_and_maximal(l in bipartite()) {
        for (name, m) in [
            ("serial", locally_dominant_serial(&l)),
            ("parallel", locally_dominant_parallel(&l)),
            ("greedy", greedy_matching(&l)),
            ("suitor", suitor_matching(&l)),
            ("hungarian", hungarian_matching(&l)),
        ] {
            prop_assert!(m.check_valid(&l).is_ok(), "{} invalid", name);
            if name != "hungarian" {
                prop_assert!(m.is_maximal(&l), "{} not maximal", name);
            }
        }
    }

    /// The locally dominant matching is unique under the total preference
    /// order, so the three ½-approx algorithms coincide exactly.
    #[test]
    fn heuristics_coincide(l in bipartite()) {
        let serial = locally_dominant_serial(&l);
        prop_assert_eq!(&serial, &locally_dominant_parallel(&l));
        prop_assert_eq!(&serial, &greedy_matching(&l));
        prop_assert_eq!(&serial, &suitor_matching(&l));
    }

    /// Half-approximation against the exact oracle, and the oracle
    /// dominates all heuristics.
    #[test]
    fn half_approximation_certified(l in bipartite()) {
        let opt = hungarian_matching(&l).weight(&l);
        let heur = locally_dominant_serial(&l).weight(&l);
        prop_assert!(heur <= opt + 1e-9, "heuristic beat the optimum");
        prop_assert!(heur >= 0.5 * opt - 1e-9, "below 1/2-approx: {} vs {}", heur, opt);
    }

    /// No matcher ever selects a non-positive edge.
    #[test]
    fn no_nonpositive_edges_matched(l in bipartite()) {
        for m in [
            locally_dominant_serial(&l),
            locally_dominant_parallel(&l),
            greedy_matching(&l),
            suitor_matching(&l),
            hungarian_matching(&l),
        ] {
            for &e in m.edge_ids() {
                prop_assert!(l.weights()[e as usize] > 0.0);
            }
        }
    }

    /// Scaling all weights by a positive constant leaves the locally
    /// dominant matching unchanged (the preference order is invariant).
    #[test]
    fn matching_is_scale_invariant(l in bipartite(), scale in 0.1f64..10.0) {
        let base = locally_dominant_serial(&l);
        let mut scaled = l.clone();
        let w: Vec<f64> = l.weights().iter().map(|x| x * scale).collect();
        scaled.set_weights(&w);
        prop_assert_eq!(base, locally_dominant_serial(&scaled));
    }

    /// Matching size is bounded by min(na, nb) and by the edge count.
    #[test]
    fn size_bounds(l in bipartite()) {
        let m = locally_dominant_serial(&l);
        prop_assert!(m.len() <= l.na().min(l.nb()));
        prop_assert!(m.len() <= l.num_edges());
    }
}
