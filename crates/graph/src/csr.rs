//! Undirected graphs in compressed sparse row (CSR) form.
//!
//! The CSR layout stores, for every vertex `u`, a contiguous sorted slice of
//! neighbor ids. Every undirected edge `{u, v}` appears twice: once in `u`'s
//! slice and once in `v`'s. This is the memory layout the paper assumes for
//! both input networks and is what the GPU simulator's coalescing model
//! reasons about.

use crate::VertexId;

/// An immutable undirected graph in CSR form.
///
/// Invariants (enforced by all constructors):
/// * `offsets.len() == n + 1`, `offsets[0] == 0`, `offsets` is
///   non-decreasing, and `offsets[n] == targets.len()`.
/// * each adjacency slice is strictly increasing (sorted, deduplicated),
/// * no self loops,
/// * symmetry: `v ∈ adj(u)` iff `u ∈ adj(v)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    n: usize,
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
}

impl CsrGraph {
    /// Builds a graph from an arbitrary edge list.
    ///
    /// Self loops are dropped; duplicate edges (in either orientation) are
    /// collapsed. Vertex ids must be `< n`.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut pairs: Vec<(VertexId, VertexId)> = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u}, {v}) out of bounds for n = {n}"
            );
            if u == v {
                continue;
            }
            pairs.push((u, v));
            pairs.push((v, u));
        }
        pairs.sort_unstable();
        pairs.dedup();

        let mut offsets = vec![0usize; n + 1];
        for &(u, _) in &pairs {
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets = pairs.into_iter().map(|(_, v)| v).collect();
        CsrGraph {
            n,
            offsets,
            targets,
        }
    }

    /// A graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        CsrGraph {
            n,
            offsets: vec![0; n + 1],
            targets: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// Sorted neighbor slice of `u`.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    /// Whether the undirected edge `{u, v}` exists (binary search).
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// The raw CSR offset array (length `n + 1`).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw CSR target array (length `2 * num_edges`).
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n as VertexId)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Iterator over each undirected edge exactly once, as `(u, v)` with
    /// `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.n as VertexId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Collects the edge list (each undirected edge once, `u < v`).
    pub fn edge_list(&self) -> Vec<(VertexId, VertexId)> {
        self.edges().collect()
    }

    /// Average degree `2|E| / |V|` (0 for the empty vertex set).
    pub fn average_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.targets.len() as f64 / self.n as f64
        }
    }

    /// Validates all structural invariants. Used by tests and debug builds;
    /// constructors uphold these by construction.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.offsets.len() != self.n + 1 {
            return Err("offsets length mismatch".into());
        }
        if self.offsets[0] != 0 || self.offsets[self.n] != self.targets.len() {
            return Err("offset endpoints wrong".into());
        }
        for u in 0..self.n as VertexId {
            let adj = self.neighbors(u);
            if !adj.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("adjacency of {u} not strictly sorted"));
            }
            if adj.contains(&u) {
                return Err(format!("self loop at {u}"));
            }
            for &v in adj {
                if (v as usize) >= self.n {
                    return Err(format!("neighbor {v} out of range"));
                }
                if !self.has_edge(v, u) {
                    return Err(format!("asymmetric edge ({u}, {v})"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn builds_triangle() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1]);
        g.check_invariants().unwrap();
    }

    #[test]
    fn drops_self_loops_and_duplicates() {
        let g = CsrGraph::from_edges(3, &[(0, 0), (0, 1), (1, 0), (0, 1), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        g.check_invariants().unwrap();
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        for u in 0..5 {
            assert!(g.neighbors(u).is_empty());
        }
        g.check_invariants().unwrap();
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = triangle();
        for u in 0..3 {
            for v in 0..3 {
                assert_eq!(g.has_edge(u, v), g.has_edge(v, u));
                assert_eq!(g.has_edge(u, v), u != v);
            }
        }
    }

    #[test]
    fn edge_list_roundtrip() {
        let edges = vec![(0, 3), (1, 2), (2, 3), (0, 1)];
        let g = CsrGraph::from_edges(4, &edges);
        let list = g.edge_list();
        let g2 = CsrGraph::from_edges(4, &list);
        assert_eq!(g, g2);
    }

    #[test]
    fn average_and_max_degree() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.max_degree(), 3);
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_range_vertex() {
        let _ = CsrGraph::from_edges(2, &[(0, 5)]);
    }
}
